"""Complexity study: O(N log N) vs the O(N log^2 N) baseline (Figure 4).

Sweeps N with a fixed skeleton rank, factorizes with both the paper's
telescoping method and the INV-ASKIT [36] baseline, and prints measured
time plus counted flops against the ideal N log N and N log^2 N
curves — the experiment behind the paper's Figure 4 (left) and the
2-4x speedups of Table III.

Run:  python examples/complexity_study.py
"""

import time

import numpy as np

from repro import GaussianKernel
from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.datasets import normal_embedded
from repro.hmatrix import build_hmatrix
from repro.solvers import factorize
from repro.util.flops import FlopCounter

LEAF = 128
RANK = 64


def factor_cost(n: int, method: str) -> tuple[float, int]:
    X = normal_embedded(n, ambient_dim=64, intrinsic_dim=6, seed=7)
    hmat = build_hmatrix(
        X,
        GaussianKernel(bandwidth=4.0),
        tree_config=TreeConfig(leaf_size=LEAF, seed=1),
        skeleton_config=SkeletonConfig(
            rank=RANK, num_samples=2 * RANK, num_neighbors=0, seed=2
        ),
    )
    with FlopCounter() as fc:
        t0 = time.perf_counter()
        factorize(hmat, 1.0, SolverConfig(method=method, check_stability=False))
        dt = time.perf_counter() - t0
    return dt, fc.flops


def main() -> None:
    sizes = [1024, 2048, 4096, 8192, 16384]
    print(f"NORMAL 64-D, fixed rank s={RANK}, leaf m={LEAF}")
    print(
        "  N       T-nlogn   T-nlog2n  speedup   GF-ratio  ideal-NlogN"
        "  ideal-Nlog2N"
    )
    base = None
    for n in sizes:
        t1, f1 = factor_cost(n, "nlogn")
        t2, f2 = factor_cost(n, "nlog2n")
        if base is None:
            base = (n, f1)
        n0, f0 = base
        scale = lambda p: (np.log2(n / LEAF) ** p * n) / (np.log2(n0 / LEAF) ** p * n0)
        print(
            f"  {n:<7} {t1:<9.2f} {t2:<9.2f} {t2 / t1:<9.2f} "
            f"{f2 / f1:<9.2f} {f1 / f0:<12.2f} {scale(2):<12.2f}"
        )
    print(
        "\nthe GF-ratio (extra work of [36]) grows with N — that is the"
        "\nremoved log factor; measured growth tracks the ideal-NlogN column."
    )


if __name__ == "__main__":
    main()
