"""The hybrid level-restricted solver (paper section II-C, Figure 5).

When off-diagonal blocks stop being low-rank, skeletonization must be
restricted to a frontier at level L.  The reduced system then has
dimension ~2^L s: the *direct* method LU-factorizes it (memory grows as
2^{2L} s^2 — infeasible at the paper's L = 7), while the *hybrid*
method solves it matrix-free with GMRES.  This example compares the
two and shows why the hybrid wins when its factorization savings exceed
the per-solve iteration cost — and contrasts both against plain
unpreconditioned GMRES on ``lambda I + K~``.

Run:  python examples/hybrid_solver.py
"""

import time
import warnings

import numpy as np

from repro import GaussianKernel
from repro.config import GMRESConfig, SkeletonConfig, SolverConfig, TreeConfig
from repro.datasets import load_dataset
from repro.hmatrix import build_hmatrix
from repro.solvers import factorize, gmres


def main() -> None:
    n = 4096
    ds = load_dataset("covtype", n, seed=0)
    print(f"dataset: {ds.name} stand-in, N={n}, d={ds.d}; level restriction L=2")

    hmat = build_hmatrix(
        ds.X_train,
        GaussianKernel(bandwidth=0.35),
        tree_config=TreeConfig(leaf_size=128, seed=1),
        skeleton_config=SkeletonConfig(
            tau=1e-5, max_rank=128, num_samples=256, num_neighbors=16, seed=2,
            level_restriction=2,
        ),
    )
    M = hmat.skeletons.total_frontier_rank()
    print(f"frontier: {len(hmat.frontier)} nodes, reduced system dim M={M}")

    lam = 0.01  # small regularization: plain GMRES struggles here
    u = np.random.default_rng(0).standard_normal(n)

    for method in ("direct", "hybrid"):
        cfg = SolverConfig(
            method=method, gmres=GMRESConfig(tol=1e-9, max_iters=300)
        )
        t0 = time.perf_counter()
        fact = factorize(hmat, lam, cfg)
        tf = time.perf_counter() - t0
        t0 = time.perf_counter()
        w = fact.solve(u)
        ts = time.perf_counter() - t0
        ksp = sum(fact.reduced_iterations)
        print(
            f"  {method:<7} Tf={tf:6.2f}s  Ts={ts:6.3f}s  "
            f"residual={fact.residual(u, w):.1e}"
            + (f"  ({ksp} GMRES iterations)" if ksp else "")
        )

    print("plain unpreconditioned GMRES on lambda I + K~ (same budget):")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        t0 = time.perf_counter()
        res = gmres(
            lambda v: hmat.regularized_matvec(lam, v),
            u,
            GMRESConfig(tol=1e-9, max_iters=300),
        )
        tp = time.perf_counter() - t0
    print(
        f"  gmres   T={tp:6.2f}s  residual={res.final_residual:.1e} "
        f"after {res.n_iters} iterations "
        f"({'converged' if res.converged else 'NOT converged'})"
    )


if __name__ == "__main__":
    main()
