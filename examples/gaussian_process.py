"""Gaussian-process regression with O(N log N) training.

GP regression is one of the paper's motivating applications (section I):
the training solve, the predictive variance, and the log marginal
likelihood all reduce to operations on ``K + sigma^2 I`` that the
hierarchical factorization makes log-linear — including the
log-determinant, which telescopes out of the factorization's LU blocks.

Run:  python examples/gaussian_process.py
"""

import numpy as np

from repro import GaussianKernel
from repro.config import SkeletonConfig, TreeConfig
from repro.learning import GaussianProcessRegressor


def main() -> None:
    rng = np.random.default_rng(0)
    n = 4096
    X = rng.uniform(-2, 2, size=(n, 2))
    truth = np.sin(2 * X[:, 0]) * np.cos(X[:, 1])
    noise_true = 0.05
    y = truth + noise_true * rng.standard_normal(n)
    print(f"N={n} noisy samples of sin(2x) cos(y); true noise {noise_true}")

    gp = GaussianProcessRegressor(
        GaussianKernel(bandwidth=0.7),
        noise=0.3,  # deliberately wrong; selected below
        tree_config=TreeConfig(leaf_size=128, seed=1),
        skeleton_config=SkeletonConfig(
            tau=1e-7, max_rank=128, num_samples=256, num_neighbors=16, seed=2
        ),
    )
    gp.fit(X, y)

    print("selecting the noise level by maximum marginal likelihood")
    print("(each candidate re-factorizes; the skeletons are shared):")
    for sigma in (0.01, 0.05, 0.2):
        gp.noise = sigma
        gp.solver.factorize(sigma**2)
        gp.alpha = gp.solver.solve(y)
        print(f"  sigma={sigma:<6} log p(y|X) = {gp.log_marginal_likelihood():10.1f}")
    best = gp.select_noise([0.01, 0.05, 0.2])
    print(f"selected sigma = {best}")

    Xq = rng.uniform(-1.8, 1.8, size=(200, 2))
    fq = np.sin(2 * Xq[:, 0]) * np.cos(Xq[:, 1])
    post = gp.predict(Xq, return_variance=True)
    rmse = float(np.sqrt(np.mean((post.mean - fq) ** 2)))
    inside = np.abs(post.mean - fq) <= 2 * np.sqrt(post.variance + best**2)
    print(f"posterior mean RMSE on 200 new points: {rmse:.3f}")
    print(
        f"2-sigma interval coverage: {100 * inside.mean():.0f}% "
        "(nominal ~95%)"
    )

    far = np.full((3, 2), 8.0)
    v_far = gp.predict(far, return_variance=True).variance
    print(f"predictive variance far from data -> prior: {v_far.round(3)}")


if __name__ == "__main__":
    main()
