"""Distributed factorization on the virtual MPI runtime (Algorithms II.4/II.5).

Runs DistFactorize/DistSolve over p = 1..8 virtual ranks (threads with
an explicit message fabric), checks every result against the serial
solver, and reports the communication profile — whose growth the paper
bounds by O(s^2 log^2 p) for the factorization and O(s log^2 p) per
solve.

Run:  python examples/distributed_solve.py
"""

import numpy as np

from repro import GaussianKernel
from repro.config import SkeletonConfig, TreeConfig
from repro.datasets import normal_embedded
from repro.hmatrix import HMatrix
from repro.parallel import (
    distributed_factorize,
    distributed_skeletonize,
    distributed_solve,
)
from repro.solvers import factorize
from repro.tree import BallTree


def main() -> None:
    n = 4096
    print(f"NORMAL dataset, N={n}; Gaussian kernel, lambda=1.0")
    X = normal_embedded(n, ambient_dim=64, intrinsic_dim=6, seed=1)
    kernel = GaussianKernel(bandwidth=4.0)
    tree = BallTree(X, TreeConfig(leaf_size=128, seed=2))
    skel_cfg = SkeletonConfig(
        tau=1e-6, max_rank=96, num_samples=256, num_neighbors=16, seed=3
    )

    # the construction phase itself runs under virtual MPI (and is
    # bit-identical to the serial build thanks to per-node seeding).
    sset, sk_stats = distributed_skeletonize(tree, kernel, skel_cfg, n_ranks=4)
    print(
        f"distributed skeletonization on 4 ranks: {sk_stats.messages} msgs, "
        f"{sk_stats.bytes / 1e3:.1f} KB"
    )
    hmat = HMatrix(tree, kernel, sset)
    u = np.random.default_rng(0).standard_normal(n)
    w_serial = factorize(hmat, 1.0).solve(u)
    print("serial solve done; now the distributed runs:")
    print("  p   factor-msgs  factor-MB  solve-msgs  solve-KB  max|w - w_serial|")

    for p in (1, 2, 4, 8):
        dist = distributed_factorize(hmat, 1.0, p)
        w, solve_stats = distributed_solve(dist, u)
        err = np.abs(w - w_serial).max()
        fs = dist.factor_stats
        print(
            f"  {p:<3} {fs.messages:<12} {fs.bytes / 1e6:<10.2f} "
            f"{solve_stats.messages:<11} {solve_stats.bytes / 1e3:<9.1f} {err:.2e}"
        )

    print(
        "\nmessage counts grow ~log^2 p per the paper's communication model;"
        "\nresults are identical to the serial factorization to roundoff."
    )


if __name__ == "__main__":
    main()
