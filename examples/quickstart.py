"""Quickstart: factorize and solve a regularized kernel system.

Builds the paper's synthetic NORMAL dataset (6-D Gaussian embedded in
64-D), constructs the hierarchical approximation K~ of the Gaussian
kernel matrix, factorizes ``lambda I + K~`` with the O(N log N)
telescoping method, and solves — then re-factorizes for other lambda
values *reusing the skeletons*, which is the cross-validation workload
the paper optimizes.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import FastKernelSolver, GaussianKernel
from repro.config import SkeletonConfig, TreeConfig
from repro.datasets import normal_embedded


def main() -> None:
    rng = np.random.default_rng(0)
    n = 8192
    print(f"generating NORMAL dataset: N={n}, 64 ambient / 6 intrinsic dims")
    X = normal_embedded(n, ambient_dim=64, intrinsic_dim=6, seed=1)

    solver = FastKernelSolver(
        GaussianKernel(bandwidth=4.0),
        tree_config=TreeConfig(leaf_size=256, seed=2),
        skeleton_config=SkeletonConfig(
            tau=1e-5,          # adaptive-rank tolerance
            max_rank=128,      # smax
            num_neighbors=16,  # kappa
            num_samples=256,   # |S'|
            seed=3,
        ),
    )

    print("building ball tree + skeletons (the ASKIT phase) ...")
    solver.fit(X)
    diag = solver.diagnostics()
    print(
        f"  tree depth {diag['depth']}, mean skeleton rank "
        f"{diag['mean_rank']:.1f}, max {diag['max_rank']}"
    )
    print(f"  estimated ||K - K~|| / ||K|| = {solver.approximation_error():.2e}")

    u = rng.standard_normal(n)
    for lam in (10.0, 1.0, 0.1):
        solver.factorize(lam)  # skeletons are reused across lambdas
        w, info = solver.solve_with_info(u)
        print(
            f"  lambda={lam:<5}  residual ||u - (lam I + K~) w|| / ||u|| "
            f"= {info.residual:.2e}   stable={info.stable}"
        )

    t = solver.times
    print(
        f"timings: build {t['tree+skeletonize']:.2f}s, "
        f"factorize (3x) {t['factorize']:.2f}s, solve (3x) {t['solve']:.2f}s"
    )


if __name__ == "__main__":
    main()
