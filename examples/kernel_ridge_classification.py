"""Kernel ridge regression for binary classification (paper section IV).

The paper's motivating learning task: train the model weights
``w = (lambda I + K~)^{-1} u`` on labels u, predict
``sign(K(x, X) w)`` for unseen points, and pick the Gaussian bandwidth
h and the regularization lambda by holdout cross-validation — the
workload where a fast factorization (re-run for every lambda) pays off.

Uses the COVTYPE stand-in (54 features, two classes; the paper reports
96% on the real COVTYPE).

Run:  python examples/kernel_ridge_classification.py
"""

from repro import GaussianKernel
from repro.config import SkeletonConfig, TreeConfig
from repro.datasets import load_dataset
from repro.learning import KernelRidgeClassifier, holdout_cross_validation


def main() -> None:
    ds = load_dataset("covtype", n_train=4096, n_test=512, seed=0)
    print(
        f"dataset: {ds.name} stand-in, N={ds.n}, d={ds.d} "
        f"(paper: N={ds.paper_n}, Acc={ds.paper_acc})"
    )

    tree = TreeConfig(leaf_size=128, seed=1)
    skel = SkeletonConfig(
        tau=1e-5, max_rank=128, num_samples=256, num_neighbors=16, seed=2
    )

    print("cross-validating (h, lambda) on a 20% holdout ...")
    cv = holdout_cross_validation(
        ds.X_train,
        ds.y_train,
        bandwidths=[0.5, 1.0, 2.0],
        lambdas=[0.01, 0.3, 3.0],
        holdout_fraction=0.2,
        seed=0,
        tree_config=tree,
        skeleton_config=skel,
    )
    print("  h      lambda   holdout-acc  train-residual")
    for h, lam, acc, res in cv.table:
        marker = "  <-- best" if (h, lam) == (cv.best_h, cv.best_lam) else ""
        print(f"  {h:<6} {lam:<8} {acc:<12.3f} {res:.1e}{marker}")

    print(f"training final model: h={cv.best_h}, lambda={cv.best_lam}")
    clf = KernelRidgeClassifier(
        GaussianKernel(bandwidth=cv.best_h),
        lam=cv.best_lam,
        tree_config=tree,
        skeleton_config=skel,
    )
    clf.fit(ds.X_train, ds.y_train)
    acc = clf.score(ds.X_test, ds.y_test)
    print(
        f"test accuracy on {len(ds.y_test)} held-out points: {100 * acc:.1f}% "
        f"(train residual {clf.train_residual:.1e})"
    )


if __name__ == "__main__":
    main()
