"""Using the factorization as a preconditioner for the exact system.

The direct solver inverts the *approximation* ``lambda I + K~`` — its
accuracy against the true kernel matrix is capped by the skeleton
tolerance.  Wrapping it as a preconditioner for GMRES on the exact
operator (applied matrix-free with GSKS tiles) removes that cap: a few
iterations reach machine precision on the true system, even when the
skeletonization is deliberately cheap.  This is the "use as a
preconditioner" extension suggested in the paper's related work.

Run:  python examples/preconditioned_exact_solve.py
"""

import time
import warnings

import numpy as np

from repro import GaussianKernel
from repro.config import GMRESConfig, SkeletonConfig, TreeConfig
from repro.datasets import normal_embedded
from repro.hmatrix import build_hmatrix
from repro.kernels.gsks import gsks_matvec
from repro.solvers import factorize, gmres, solve_exact


def main() -> None:
    n = 4096
    X = normal_embedded(n, ambient_dim=64, intrinsic_dim=6, seed=1)
    kernel = GaussianKernel(bandwidth=4.0)
    lam = 0.5
    u = np.random.default_rng(0).standard_normal(n)

    print(f"N={n}; cheap skeletonization (tau=1e-3, smax=64) on purpose")
    hmat = build_hmatrix(
        X,
        kernel,
        tree_config=TreeConfig(leaf_size=128, seed=2),
        skeleton_config=SkeletonConfig(
            tau=1e-3, max_rank=64, num_samples=192, num_neighbors=8, seed=3
        ),
    )
    fact = factorize(hmat, lam)

    pts = hmat.tree.points
    def exact_residual(w):
        r = u - (gsks_matvec(kernel, pts, pts, w) + lam * w)
        return float(np.linalg.norm(r) / np.linalg.norm(u))

    w_approx = fact.solve(u)
    print(f"approximate direct solve residual vs exact K: {exact_residual(w_approx):.2e}")

    t0 = time.perf_counter()
    res = solve_exact(fact, u, GMRESConfig(tol=1e-12, max_iters=40))
    dt = time.perf_counter() - t0
    print(
        f"preconditioned GMRES: {res.n_iters} iterations, "
        f"residual {res.residual:.2e}, {dt:.2f}s"
    )

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        t0 = time.perf_counter()
        plain = gmres(
            lambda v: gsks_matvec(kernel, pts, pts, v) + lam * v,
            u,
            GMRESConfig(tol=1e-12, max_iters=res.n_iters),
        )
        dt_plain = time.perf_counter() - t0
    print(
        f"unpreconditioned GMRES, same iteration budget: "
        f"residual {plain.final_residual:.2e}, {dt_plain:.2f}s"
    )


if __name__ == "__main__":
    main()
