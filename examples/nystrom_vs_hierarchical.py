"""Why hierarchical? Nystrom vs hierarchical compression across bandwidths.

The paper's opening argument: for most bandwidths the kernel matrix is
neither sparse nor globally low-rank, so global low-rank methods
(Nystrom) break down exactly where kernel learning lives.  This example
sweeps the bandwidth at a fixed rank budget and prints the
approximation error of both methods, then shows the end-to-end effect
on a classification task.

Run:  python examples/nystrom_vs_hierarchical.py
"""

import numpy as np

from repro import GaussianKernel
from repro.baselines import NystromApproximation
from repro.config import SkeletonConfig, TreeConfig
from repro.datasets import load_dataset
from repro.hmatrix import build_hmatrix, estimate_matrix_error
from repro.kernels.gsks import gsks_matvec
from repro.learning import KernelRidgeClassifier, accuracy


def main() -> None:
    ds = load_dataset("covtype", 2048, seed=0)
    rank = 128
    print(f"COVTYPE stand-in, N={ds.n}, d={ds.d}; rank budget {rank}\n")

    print("approximation error ||K - K_approx|| / ||K||:")
    print("  h       nystrom     hierarchical")
    for h in (10.0, 3.0, 1.0, 0.5):
        kernel = GaussianKernel(bandwidth=h)
        ny = NystromApproximation(kernel, rank=rank, seed=1).fit(ds.X_train)
        hm = build_hmatrix(
            ds.X_train,
            kernel,
            tree_config=TreeConfig(leaf_size=rank, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-8, max_rank=rank, num_samples=384, num_neighbors=16, seed=2
            ),
        )
        print(
            f"  {h:<7} {ny.matrix_error(ds.X_train, seed=3):<11.1e} "
            f"{estimate_matrix_error(hm, seed=3):.1e}"
        )

    h, lam = 0.35, 0.1  # the narrow bandwidth cross-validation selects
    print(f"\nkernel ridge classification at h={h}, lambda={lam}:")
    kernel = GaussianKernel(bandwidth=h)
    clf = KernelRidgeClassifier(
        kernel, lam=lam,
        tree_config=TreeConfig(leaf_size=128, seed=1),
        skeleton_config=SkeletonConfig(
            tau=1e-5, max_rank=rank, num_samples=256, num_neighbors=16, seed=2
        ),
    ).fit(ds.X_train, ds.y_train)
    print(f"  hierarchical solver accuracy: {100 * clf.score(ds.X_test, ds.y_test):.1f}%")

    ny = NystromApproximation(kernel, rank=rank, seed=1).fit(ds.X_train)
    ny.factorize(lam)
    w = ny.solve(np.asarray(ds.y_train, dtype=np.float64))
    scores = gsks_matvec(kernel, ds.X_test, ds.X_train, w)
    pred = np.sign(scores)
    pred[pred == 0] = 1.0
    print(f"  Nystrom (same rank) accuracy: {100 * accuracy(ds.y_test, pred):.1f}%")


if __name__ == "__main__":
    main()
