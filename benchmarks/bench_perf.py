#!/usr/bin/env python
"""Perf-layer benchmark: batched BLAS-3 solves + block cache vs seed path.

Measures factorize + multi-RHS solve (k right-hand sides) wall time for
the level-restricted hybrid solver in two configurations over the same
problem:

* ``optimized`` — this PR's defaults: process-wide :class:`BlockCache`
  (shared leaf/sibling/frontier/pair blocks, perfmodel store policy),
  tree-wide squared-norm tables, and ``batch_rhs=True`` (lockstep block
  GMRES, one (N, k) panel matvec per iteration);
* ``seed`` — ``batch_rhs=False``: the original column-by-column reduced
  solve (k separate GMRES runs, one GEMV-shaped matvec per iteration).

Emits ``BENCH_perf.json`` with wall times, block-cache hit rate, peak
persistent storage words, and the speedup ratio per problem size.

With ``--parallel`` the benchmark instead measures the vMPI *backend
axis* (docs/PARALLELISM.md): distributed factorize + solve on the
``thread`` backend (GIL-shared) vs the ``process`` backend (true
multi-core over shared-memory transport) vs the ``socket`` backend
(TCP control plane + shm envelopes), asserting the solutions are
bitwise identical, and writes ``BENCH_parallel.json``.  The speedup
claim is hardware-honest: ``cpu_count`` is recorded, the ">1x"
assertion only fires on hosts with at least two cores, and on a
single-core container the multiprocess backends are expected to *lose*
(spawn + IPC overhead with no cores to win back).

With ``--level-batch-compare`` it instead measures the *level-batching
axis* (docs/PERFORMANCE.md): factorization wall time of the nlogn direct
method with ``SolverConfig.level_batch`` on vs off over the same
skeletonized H-matrix, asserting the solutions are bitwise identical,
and writes ``BENCH_levelbatch.json``.

With ``--update-compare`` it instead measures the *incremental-update
axis* (docs/UPDATES.md): (a) inserting 1% clustered points via
``FastKernelSolver.update`` vs a from-scratch rebuild — asserting
1e-10 solution parity and that fewer than 25% of the nodes were
refactorized — and (b) a 5-value lambda sweep via ``update(lam=...)``
vs five full rebuilds, asserting the sweep is at least 3x faster.
Writes ``BENCH_update.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_perf.py                # full
    PYTHONPATH=src python benchmarks/bench_perf.py --smoke        # CI
    PYTHONPATH=src python benchmarks/bench_perf.py --sizes 4096 --k 16
    PYTHONPATH=src python benchmarks/bench_perf.py --parallel     # backend axis
    PYTHONPATH=src python benchmarks/bench_perf.py --parallel --smoke
    PYTHONPATH=src python benchmarks/bench_perf.py --level-batch-compare
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np

from repro.config import GMRESConfig, SkeletonConfig, SolverConfig, TreeConfig
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.obs import reset_telemetry, telemetry_snapshot
from repro.perf import configure_default_cache
from repro.solvers import factorize

DEFAULT_SIZES = (1024, 4096, 16384)
DEFAULT_K = 16
DEFAULT_OUT = pathlib.Path(__file__).parent / "results" / "BENCH_perf.json"

DEFAULT_PARALLEL_SIZES = (2048, 8192)
DEFAULT_RANKS = 4
PARALLEL_OUT = pathlib.Path(__file__).parent / "results" / "BENCH_parallel.json"

DEFAULT_LEVELBATCH_SIZES = (4096,)
LEVELBATCH_OUT = (
    pathlib.Path(__file__).parent / "results" / "BENCH_levelbatch.json"
)

DEFAULT_UPDATE_SIZES = (4096,)
UPDATE_LAMBDAS = (0.1, 0.5, 1.0, 5.0, 25.0)
UPDATE_OUT = pathlib.Path(__file__).parent / "results" / "BENCH_update.json"


def make_problem(n: int, seed: int = 2017):
    gen = np.random.default_rng(seed)
    X = gen.standard_normal((n, 3))
    kernel = GaussianKernel(bandwidth=1.0)
    return X, kernel, gen


def run_variant(X, kernel, B, *, batch_rhs: bool, level_restriction: int):
    """Fresh cache + fresh H-matrix; timed factorize + solve."""
    cache = configure_default_cache()  # unbounded, empty
    h = build_hmatrix(
        X,
        kernel,
        tree_config=TreeConfig(leaf_size=64, seed=0),
        skeleton_config=SkeletonConfig(
            tau=1e-5,
            max_rank=64,
            num_samples=192,
            num_neighbors=8,
            level_restriction=level_restriction,
            seed=1,
        ),
    )
    cfg = SolverConfig(
        method="hybrid",
        gmres=GMRESConfig(tol=1e-10, max_iters=300),
        batch_rhs=batch_rhs,
    )
    t0 = time.perf_counter()
    fact = factorize(h, 0.5, cfg)
    t_factorize = time.perf_counter() - t0

    t0 = time.perf_counter()
    W = fact.solve(B)
    t_solve = time.perf_counter() - t0

    stats = cache.stats()
    residual = float(fact.residual(B[:, 0], W[:, 0]))
    return {
        "batch_rhs": batch_rhs,
        "factorize_s": t_factorize,
        "solve_s": t_solve,
        "total_s": t_factorize + t_solve,
        "residual_col0": residual,
        "reduced_gmres_iters": int(sum(fact.reduced_iterations)),
        "cache_hit_rate": stats.hit_rate,
        "cache_hits": stats.hits,
        "cache_misses": stats.misses,
        "cache_evictions": stats.evictions,
        "peak_storage_words": int(stats.peak_words),
        "hmatrix_storage_words": int(h.storage_words()),
    }


def bench_size(n: int, k: int, level_restriction: int) -> dict:
    X, kernel, gen = make_problem(n)
    B = gen.standard_normal((n, k))
    opt = run_variant(
        X, kernel, B, batch_rhs=True, level_restriction=level_restriction
    )
    seed = run_variant(
        X, kernel, B, batch_rhs=False, level_restriction=level_restriction
    )
    return {
        "n": n,
        "k": k,
        "level_restriction": level_restriction,
        "optimized": opt,
        "seed_path": seed,
        "speedup_total": seed["total_s"] / max(opt["total_s"], 1e-12),
        "speedup_solve": seed["solve_s"] / max(opt["solve_s"], 1e-12),
    }


PARALLEL_BACKENDS = ("thread", "process", "socket")


def bench_parallel_size(n: int, n_ranks: int) -> dict:
    """Distributed factorize + solve across all three vMPI backends."""
    from repro.parallel import distributed_factorize, distributed_solve

    X, kernel, gen = make_problem(n)
    u = gen.standard_normal(n)
    configure_default_cache()
    h = build_hmatrix(
        X,
        kernel,
        tree_config=TreeConfig(leaf_size=64, seed=0),
        skeleton_config=SkeletonConfig(
            tau=1e-5, max_rank=64, num_samples=192, num_neighbors=8, seed=1
        ),
    )
    per_backend = {}
    solutions = {}
    for backend in PARALLEL_BACKENDS:
        t0 = time.perf_counter()
        dist = distributed_factorize(h, 0.5, n_ranks, backend=backend)
        t_factorize = time.perf_counter() - t0
        t0 = time.perf_counter()
        w, stats = distributed_solve(dist, u)
        t_solve = time.perf_counter() - t0
        solutions[backend] = w
        per_backend[backend] = {
            "factorize_s": t_factorize,
            "solve_s": t_solve,
            "total_s": t_factorize + t_solve,
            "comm_messages": stats.messages + dist.factor_stats.messages,
            "comm_bytes": stats.bytes + dist.factor_stats.bytes,
            "retries": stats.retries + dist.factor_stats.retries,
        }
    for backend in PARALLEL_BACKENDS[1:]:
        if not np.array_equal(solutions["thread"], solutions[backend]):
            raise AssertionError(
                f"backend parity violated at n={n}: thread and {backend} "
                "solutions differ bitwise"
            )
    result = {
        "n": n,
        "n_ranks": n_ranks,
        "bitwise_identical": True,
    }
    for backend in PARALLEL_BACKENDS:
        result[backend] = per_backend[backend]
    for backend in PARALLEL_BACKENDS[1:]:
        result[f"speedup_{backend}_vs_thread"] = (
            per_backend["thread"]["total_s"]
            / max(per_backend[backend]["total_s"], 1e-12)
        )
    return result


def bench_levelbatch_size(n: int, repeats: int = 7) -> dict:
    """Factorize wall time, level-batched vs per-node, same H-matrix.

    Tree/skeleton construction is excluded from the timing (both paths
    share one skeletonized H-matrix and a warm block cache), so the
    ratio isolates the factorization loops the batching restructures.
    A fixed skeleton rank keeps the level shape groups uniform — the
    paper's regime, where every node of a level does the same-shaped
    work — and the small leaf size puts the tree in the many-small-nodes
    regime the batching targets: hundreds of sub-50 LU/GEMM calls per
    level, where per-node dispatch overhead rivals the arithmetic.
    Bitwise solution parity is asserted, not assumed.
    """
    X, kernel, gen = make_problem(n)
    u = gen.standard_normal(n)
    configure_default_cache()
    h = build_hmatrix(
        X,
        kernel,
        tree_config=TreeConfig(leaf_size=16, seed=0),
        skeleton_config=SkeletonConfig(
            rank=12, num_samples=96, num_neighbors=8, seed=1
        ),
    )

    def run(level_batch: bool):
        cfg = SolverConfig(method="nlogn", level_batch=level_batch)
        best = float("inf")
        fact = None
        for _ in range(repeats):
            t0 = time.perf_counter()
            fact = factorize(h, 0.5, cfg)
            best = min(best, time.perf_counter() - t0)
        return fact, best

    fact_off, t_off = run(False)
    fact_on, t_on = run(True)
    w_off = fact_off.solve(u)
    w_on = fact_on.solve(u)
    bitwise = bool(np.array_equal(w_on, w_off))
    if not bitwise:
        raise AssertionError(
            f"level-batch parity violated at n={n}: batched and per-node "
            "solutions differ bitwise"
        )
    sd_on, sd_off = fact_on.slogdet(), fact_off.slogdet()
    return {
        "n": n,
        "repeats": repeats,
        "batched_factorize_s": t_on,
        "pernode_factorize_s": t_off,
        "speedup_factorize": t_off / max(t_on, 1e-12),
        "bitwise_identical": bitwise,
        "slogdet_identical": bool(sd_on == sd_off),
        "residual_batched": float(fact_on.residual(u, w_on)),
    }


def bench_update_size(n: int, lam: float = 5.0) -> dict:
    """Incremental update vs from-scratch rebuild at matched accuracy.

    The wide-bandwidth / large-sample recipe keeps the ASKIT
    approximation error below the 1e-10 parity bar, so the comparison
    measures the update machinery, not the approximation floor.  The
    inserted points are clustered (a tight blob around one existing
    point) — the incremental path's target workload, where the dirty
    region is a few subtrees rather than the whole tree.
    """
    from repro.core.solver import FastKernelSolver

    def make_solver(X):
        solver = FastKernelSolver(
            GaussianKernel(bandwidth=8.0),
            tree_config=TreeConfig(leaf_size=64, seed=0),
            skeleton_config=SkeletonConfig(
                tau=1e-12,
                num_samples=min(2048, n),
                num_neighbors=64,
                seed=1,
            ),
        )
        solver.fit(X)
        return solver

    gen = np.random.default_rng(2017)
    X = gen.standard_normal((n, 3))
    Xi = X[7] + 0.02 * gen.standard_normal((max(1, n // 100), 3))
    X_new = np.concatenate([X, Xi])
    u = gen.standard_normal(len(X_new))

    # (a) geometry: incremental insert vs full rebuild
    configure_default_cache()
    solver = make_solver(X)
    solver.factorize(lam)
    t0 = time.perf_counter()
    solver.update(X_insert=Xi)
    t_update = time.perf_counter() - t0
    report = solver.last_update

    configure_default_cache()
    t0 = time.perf_counter()
    fresh = make_solver(X_new)
    fresh.factorize(lam)
    t_rebuild = time.perf_counter() - t0

    w_upd, w_ref = solver.solve(u), fresh.solve(u)
    parity = float(
        np.abs(w_upd - w_ref).max() / max(1.0, np.abs(w_ref).max())
    )
    refactored_fraction = report.nodes_refactored / max(1, report.nodes_total)
    if report.mode != "incremental":
        raise AssertionError(
            f"expected the incremental path at n={n}, got {report.mode!r}"
        )
    if parity > 1e-10:
        raise AssertionError(
            f"update/rebuild parity violated at n={n}: {parity:.3e} > 1e-10"
        )
    if refactored_fraction >= 0.25:
        raise AssertionError(
            f"update refactorized {refactored_fraction:.1%} of the nodes "
            f"at n={n}; the incremental contract is < 25%"
        )

    # (b) lambda sweep: five update(lam=...) refits vs five rebuilds
    t0 = time.perf_counter()
    for lam_k in UPDATE_LAMBDAS:
        solver.update(lam=lam_k)
    t_sweep = time.perf_counter() - t0
    t_sweep_rebuild = 0.0
    for lam_k in UPDATE_LAMBDAS:
        configure_default_cache()
        t0 = time.perf_counter()
        s = make_solver(X_new)
        s.factorize(lam_k)
        t_sweep_rebuild += time.perf_counter() - t0
    sweep_speedup = t_sweep_rebuild / max(t_sweep, 1e-12)
    if sweep_speedup < 3.0:
        raise AssertionError(
            f"lambda sweep speedup {sweep_speedup:.2f}x at n={n}; the "
            "skeleton-reuse contract is >= 3x over full rebuilds"
        )

    return {
        "n": n,
        "n_inserted": len(Xi),
        "lam": lam,
        "update_s": t_update,
        "rebuild_s": t_rebuild,
        "speedup_update": t_rebuild / max(t_update, 1e-12),
        "parity_rel_err": parity,
        "dirty_leaves": report.dirty_leaves,
        "dirty_fraction": report.dirty_fraction,
        "nodes_total": report.nodes_total,
        "nodes_refactored": report.nodes_refactored,
        "nodes_reused": report.nodes_reused,
        "refactored_fraction": refactored_fraction,
        "sweep_lambdas": list(UPDATE_LAMBDAS),
        "sweep_update_s": t_sweep,
        "sweep_rebuild_s": t_sweep_rebuild,
        "speedup_sweep": sweep_speedup,
    }


def run_update_bench(args) -> int:
    sizes = args.sizes
    out = args.out
    if args.smoke:
        sizes = [1024]
        if out == UPDATE_OUT:
            out = UPDATE_OUT.with_suffix(".smoke.json")

    reset_telemetry()
    runs = []
    for n in sizes:
        print(f"[bench_update] n={n} ...", flush=True)
        run = bench_update_size(n)
        runs.append(run)
        print(
            f"  update {run['update_s']:.3f}s  rebuild {run['rebuild_s']:.3f}s  "
            f"speedup {run['speedup_update']:.2f}x  "
            f"refac {run['refactored_fraction']:.1%}  "
            f"parity {run['parity_rel_err']:.2e}  "
            f"sweep {run['speedup_sweep']:.2f}x",
            flush=True,
        )

    payload = {
        "benchmark": "incremental_update_vs_rebuild",
        "method": "nlogn direct, clustered 1% inserts + 5-value lambda sweep",
        "kernel": "gaussian(h=8.0), 3-D standard normal points",
        "runs": runs,
        "telemetry": telemetry_snapshot(),
    }
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench_update] wrote {out}")
    return 0


def run_levelbatch_bench(args) -> int:
    sizes = args.sizes
    out = args.out
    if args.smoke:
        sizes = [1024]
        if out == LEVELBATCH_OUT:
            out = LEVELBATCH_OUT.with_suffix(".smoke.json")

    reset_telemetry()
    runs = []
    for n in sizes:
        print(f"[bench_levelbatch] n={n} ...", flush=True)
        run = bench_levelbatch_size(n)
        runs.append(run)
        print(
            f"  batched {run['batched_factorize_s']:.4f}s  "
            f"per-node {run['pernode_factorize_s']:.4f}s  "
            f"speedup {run['speedup_factorize']:.2f}x  "
            f"bitwise={run['bitwise_identical']}",
            flush=True,
        )

    from repro.perfmodel.machine import probed_machine

    spec = probed_machine()
    payload = {
        "benchmark": "level_batched_vs_pernode_factorization",
        "method": "nlogn direct, fixed rank 12, leaf 16",
        "kernel": "gaussian(h=1.0), 3-D standard normal points",
        "machine": {
            "name": spec.name,
            "gemm_gflops": spec.gemm_gflops,
            "stream_bw_gbs": spec.stream_bw_gbs,
            "dispatch_us": spec.dispatch_us,
        },
        "runs": runs,
        "telemetry": telemetry_snapshot(),
    }
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench_levelbatch] wrote {out}")
    return 0


def run_parallel_bench(args) -> int:
    import os

    sizes, n_ranks = args.sizes, args.ranks
    out = args.out
    if args.smoke:
        sizes, n_ranks = [512], 2
        if out == PARALLEL_OUT:
            out = PARALLEL_OUT.with_suffix(".smoke.json")

    reset_telemetry()
    cpu_count = os.cpu_count() or 1
    runs = []
    for n in sizes:
        print(f"[bench_parallel] n={n} p={n_ranks} ...", flush=True)
        run = bench_parallel_size(n, n_ranks)
        runs.append(run)
        print(
            f"  thread {run['thread']['total_s']:.3f}s  "
            f"process {run['process']['total_s']:.3f}s  "
            f"socket {run['socket']['total_s']:.3f}s  "
            f"speedup(process) {run['speedup_process_vs_thread']:.2f}x  "
            f"bitwise={run['bitwise_identical']}",
            flush=True,
        )
        # the scaling claim is hardware-honest: only assert multi-core
        # backends win when the host actually has cores to win with.
        if cpu_count >= 2 and n >= 2048:
            for backend in PARALLEL_BACKENDS[1:]:
                speedup = run[f"speedup_{backend}_vs_thread"]
                if speedup <= 1.0:
                    raise AssertionError(
                        f"{backend} backend failed to beat the thread "
                        f"backend at n={n} on a {cpu_count}-core host "
                        f"(speedup {speedup:.2f}x)"
                    )

    payload = {
        "benchmark": "vmpi_backend_axis",
        "method": "nlogn distributed (Algorithms II.4/II.5)",
        "kernel": "gaussian(h=1.0), 3-D standard normal points",
        "cpu_count": cpu_count,
        "speedup_asserted": bool(cpu_count >= 2),
        "note": (
            "speedups over the thread backend require real cores; on a "
            "single-CPU host the process and socket backends pay spawn "
            "+ IPC overhead with no parallelism to win back, so the "
            "speedup assertion is gated on cpu_count >= 2"
        ),
        "runs": runs,
        "telemetry": telemetry_snapshot(),
    }
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench_parallel] wrote {out}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sizes", type=int, nargs="+", default=list(DEFAULT_SIZES))
    parser.add_argument("--k", type=int, default=DEFAULT_K)
    parser.add_argument(
        "--level-restriction", type=int, default=3,
        help="frontier level L for the hybrid method",
    )
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    parser.add_argument(
        "--trace-out", type=pathlib.Path, default=None,
        help="also write the standalone telemetry blob "
             "(repro.telemetry/v1) to this path (CI uploads it)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny single-size run for CI (overrides --sizes/--k)",
    )
    parser.add_argument(
        "--parallel", action="store_true",
        help="benchmark the vMPI backend axis (thread vs process vs "
             "socket) instead; writes BENCH_parallel.json",
    )
    parser.add_argument(
        "--ranks", type=int, default=DEFAULT_RANKS,
        help="virtual ranks for --parallel (power of two)",
    )
    parser.add_argument(
        "--level-batch-compare", action="store_true",
        help="benchmark level-batched vs per-node factorization "
             "instead; writes BENCH_levelbatch.json",
    )
    parser.add_argument(
        "--update-compare", action="store_true",
        help="benchmark incremental update() vs full rebuild instead "
             "(1% clustered inserts + 5-value lambda sweep); writes "
             "BENCH_update.json",
    )
    args = parser.parse_args(argv)

    if args.update_compare:
        if args.out == DEFAULT_OUT:
            args.out = UPDATE_OUT
        if args.sizes == list(DEFAULT_SIZES):
            args.sizes = list(DEFAULT_UPDATE_SIZES)
        return run_update_bench(args)

    if args.level_batch_compare:
        if args.out == DEFAULT_OUT:
            args.out = LEVELBATCH_OUT
        if args.sizes == list(DEFAULT_SIZES):
            args.sizes = list(DEFAULT_LEVELBATCH_SIZES)
        return run_levelbatch_bench(args)

    if args.parallel:
        if args.out == DEFAULT_OUT:
            args.out = PARALLEL_OUT
        if args.sizes == list(DEFAULT_SIZES):
            args.sizes = list(DEFAULT_PARALLEL_SIZES)
        return run_parallel_bench(args)

    sizes, k, level = args.sizes, args.k, args.level_restriction
    if args.smoke:
        sizes, k, level = [512], 4, 2
        if args.out == DEFAULT_OUT:
            # don't clobber the full-run artifact with smoke-sized numbers
            args.out = DEFAULT_OUT.with_suffix(".smoke.json")

    reset_telemetry()  # the blob should cover exactly this bench run
    runs = []
    for n in sizes:
        print(f"[bench_perf] n={n} k={k} ...", flush=True)
        run = bench_size(n, k, level)
        runs.append(run)
        print(
            f"  optimized {run['optimized']['total_s']:.3f}s  "
            f"seed {run['seed_path']['total_s']:.3f}s  "
            f"speedup {run['speedup_total']:.2f}x  "
            f"hit-rate {run['optimized']['cache_hit_rate']:.2f}  "
            f"peak words {run['optimized']['peak_storage_words']}",
            flush=True,
        )

    telemetry = telemetry_snapshot()
    payload = {
        "benchmark": "perf_layer_batched_vs_seed",
        "method": "hybrid",
        "kernel": "gaussian(h=1.0), 3-D standard normal points",
        "runs": runs,
        "telemetry": telemetry,
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"[bench_perf] wrote {args.out}")
    if args.trace_out is not None:
        args.trace_out.parent.mkdir(parents=True, exist_ok=True)
        args.trace_out.write_text(json.dumps(telemetry, indent=2) + "\n")
        print(f"[bench_perf] wrote telemetry blob {args.trace_out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
