"""Extension bench: task-parallel tree traversal (paper's future work).

The conclusions call for task parallelism "to address the load
balancing issue [of] adaptive ranks ... scheduling is important to
avoid the critical path."  This bench builds the factorization DAG of a
deliberately imbalanced problem (clusters of very different tightness,
so adaptive ranks differ wildly between subtrees), then compares the
paper's level-synchronous schedule against dependency-driven
critical-path list scheduling, and validates the real thread-pool
executor against the serial factorization.
"""

import numpy as np

from conftest import emit, fmt_row
from repro.config import SkeletonConfig, TreeConfig
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.parallel import build_factor_dag, execute_factorization, simulate_schedule
from repro.solvers import factorize

WORKERS = [2, 4, 8, 16, 32]


def _imbalanced_problem():
    rng = np.random.default_rng(31)
    spreads = [0.03, 0.08, 0.3, 0.6, 1.0, 1.6, 2.4, 3.0]
    centers = rng.standard_normal((8, 8)) * 4.0
    X = np.concatenate(
        [c + s * rng.standard_normal((512, 8)) for c, s in zip(centers, spreads)]
    )
    return build_hmatrix(
        X,
        GaussianKernel(bandwidth=0.8),
        tree_config=TreeConfig(leaf_size=64, seed=1),
        skeleton_config=SkeletonConfig(
            tau=1e-6, max_rank=192, num_samples=384, num_neighbors=16, seed=2
        ),
    )


def test_ext_task_scheduling(benchmark):
    h = _imbalanced_problem()
    dag = build_factor_dag(h)
    ranks = [sk.rank for sk in h.skeletons.skeletons.values()]

    rows = []
    for p in WORKERS:
        lv = simulate_schedule(dag, p, "level")
        tk = simulate_schedule(dag, p, "task")
        rows.append((p, lv, tk))

    widths = [4, 13, 9, 13, 9, 7]
    lines = [
        "EXTENSION -- task-parallel tree traversal (paper future work)",
        f"imbalanced clusters: skeleton ranks {min(ranks)}-{max(ranks)}, "
        f"{len(dag.tasks)} tasks, "
        f"critical path = {dag.critical_path_cost / dag.total_cost:.1%} of total work",
        "",
        fmt_row(["p", "level-makespan", "lvl-eff", "task-makespan", "tsk-eff",
                 "gain"], widths),
    ]
    for p, lv, tk in rows:
        lines.append(
            fmt_row(
                [
                    p, f"{lv.makespan / 1e9:.3f}GF", f"{lv.efficiency:.2f}",
                    f"{tk.makespan / 1e9:.3f}GF", f"{tk.efficiency:.2f}",
                    f"{lv.makespan / tk.makespan:.2f}x",
                ],
                widths,
            )
        )
    gains = [lv.makespan / tk.makespan for _p, lv, tk in rows]
    lines += [
        "",
        "level = the paper's current level-synchronous traversal (barrier",
        "per level); task = dependency-driven critical-path list scheduling.",
        f"task scheduling gains up to {max(gains):.2f}x at these worker",
        "counts by letting cheap subtrees race ahead through the barriers —",
        "the effect the paper predicts for adaptive-rank workloads.",
    ]
    emit("ext_scheduling", lines)

    # task scheduling must never lose, and must win somewhere.
    assert all(g >= 0.999 for g in gains)
    assert max(gains) > 1.02

    # the real executor reproduces the serial factors.
    serial = factorize(h, 0.5)
    parallel = execute_factorization(h, 0.5, n_workers=4)
    u = np.random.default_rng(0).standard_normal(h.n_points)
    assert np.allclose(parallel.solve(u), serial.solve(u), atol=1e-9)

    benchmark.pedantic(
        lambda: execute_factorization(h, 0.5, n_workers=4), rounds=1, iterations=1
    )
