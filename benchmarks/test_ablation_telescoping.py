"""Ablation: the telescoping identity (eq. 10) — where the log goes.

The single algorithmic difference between this paper and INV-ASKIT [36]
is how ``P^_alpha = K~_alpha^{-1} P_alpha`` is computed: eq. (10)
telescopes it from the children (O(s^2 |alpha|) per node), while [36]
re-solves over the whole subtree (O(s |alpha| log|alpha|) per node).
This ablation isolates exactly that term: counted flops of the P^
stage for both variants across N, showing the growing gap — the log
factor — while every other stage stays identical.
"""

import numpy as np
import pytest

from conftest import emit, fmt_row
from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.datasets import normal_embedded
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.solvers import factorize
from repro.util.flops import FlopCounter

SIZES = [512, 1024, 2048, 4096, 8192]
RANK = 32
LEAF = 64

#: flop labels charged only during the P^ computation stage.
TELESCOPE_LABELS = {"factor_telescope", "factor_z_solve"}
RECURSIVE_LABELS = {"factor_basis", "solve_leaf", "solve_z", "solve_correct"}


def _phat_flops(n, method):
    X = normal_embedded(n, ambient_dim=16, intrinsic_dim=4, seed=21)
    hmat = build_hmatrix(
        X,
        GaussianKernel(bandwidth=4.0),
        tree_config=TreeConfig(leaf_size=LEAF, seed=1),
        skeleton_config=SkeletonConfig(
            rank=RANK, num_samples=2 * RANK, num_neighbors=0, seed=2
        ),
    )
    with FlopCounter() as fc:
        factorize(hmat, 1.0, SolverConfig(method=method, check_stability=False))
    labels = TELESCOPE_LABELS if method == "nlogn" else RECURSIVE_LABELS
    stage = sum(fc.by_label.get(lbl, 0) for lbl in labels)
    return stage, fc.flops


def test_ablation_telescoping(benchmark):
    rows = []
    for n in SIZES:
        tele, total_t = _phat_flops(n, "nlogn")
        rec, total_r = _phat_flops(n, "nlog2n")
        rows.append((n, tele, rec, total_t, total_r))

    widths = [7, 12, 12, 9, 12, 12]
    lines = [
        "ABLATION -- telescoping (eq. 10) vs recursive subtree solves [36]",
        f"NORMAL-like 16-D data, fixed s={RANK}, leaf m={LEAF}",
        "'P^ stage' = flops spent computing the solved projections only",
        "",
        fmt_row(
            ["N", "P^ tele (M)", "P^ rec (M)", "stage-x", "total-log", "total-log2"],
            widths,
        ),
    ]
    for n, tele, rec, tt, tr in rows:
        lines.append(
            fmt_row(
                [
                    n, f"{tele / 1e6:.1f}", f"{rec / 1e6:.1f}",
                    f"{rec / tele:.1f}x", f"{tt / 1e6:.0f}M", f"{tr / 1e6:.0f}M",
                ],
                widths,
            )
        )
    gaps = [r[2] / r[1] for r in rows]
    lines += [
        "",
        f"P^-stage gap grows {gaps[0]:.1f}x -> {gaps[-1]:.1f}x as N grows "
        f"{SIZES[0]} -> {SIZES[-1]}: that growth *is* the extra log factor.",
    ]
    emit("ablation_telescoping", lines)

    assert all(r[2] > r[1] for r in rows)  # recursion always costs more
    assert gaps[-1] > gaps[0]  # and the gap widens with N

    benchmark.pedantic(lambda: _phat_flops(1024, "nlogn"), rounds=1, iterations=1)
