"""Figure 4 (right, #18): strong scaling of the distributed factorization.

Paper: NORMAL 1M, m = s = 2048, L = 1; scaling from 1 node to 128
Haswell nodes (3,072 cores, 62% efficiency) and 64 KNL nodes (4,352
cores, 70% efficiency); efficiency degrades as the per-core share of
the (fixed) problem shrinks.

Reproduction: NORMAL at N = 4096 over p = 1..16 *virtual* MPI ranks.
Each run produces per-rank flop counts and real message/byte traffic
from the fabric; the cluster model (latency + bandwidth + node rate)
converts them to modeled wall-clock, from which the efficiency series
is computed exactly as the paper's green-line comparison.
"""

import numpy as np

from conftest import emit, fmt_row
from repro.config import SkeletonConfig, TreeConfig
from repro.datasets import normal_embedded
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.parallel import distributed_factorize
from repro.perfmodel import HASWELL_NODE, KNL_NODE, ScalingModel

N = 4096
RANKS = [1, 2, 4, 8, 16]


def _build():
    X = normal_embedded(N, ambient_dim=64, intrinsic_dim=6, seed=18)
    return build_hmatrix(
        X,
        GaussianKernel(bandwidth=4.0),
        tree_config=TreeConfig(leaf_size=128, seed=1),
        skeleton_config=SkeletonConfig(
            rank=64, num_samples=128, num_neighbors=0, seed=2
        ),
    )


def test_fig4_strong_scaling(benchmark):
    runs = []
    for p in RANKS:
        # rebuild per p: kernel blocks are evaluated lazily during the
        # factorization and must be charged to every run equally.
        hmat = _build()
        dist = distributed_factorize(hmat, 1.0, p)
        max_flops = max(st.factor_flops for st in dist.states)
        runs.append((p, max_flops, dist.factor_stats))

    models = {
        "Haswell": ScalingModel(HASWELL_NODE, ranks_per_node=1, efficiency=0.62),
        "KNL": ScalingModel(KNL_NODE, ranks_per_node=1, efficiency=0.45),
    }
    widths = [6, 11, 9, 11, 12, 12, 11]
    lines = [
        f"FIGURE 4 (right, #18) -- strong scaling, NORMAL N={N}, fixed s=64",
        "per-rank work and real fabric traffic -> modeled cluster time",
        "",
        fmt_row(
            ["p", "max GFLOP", "msgs", "MB moved", "T-haswell", "T-knl",
             "eff-haswell"],
            widths,
        ),
    ]
    effs = {}
    for name, model in models.items():
        pts = [model.point(p, f, st) for (p, f, st) in runs]
        effs[name] = ScalingModel.efficiency_series(pts)

    hsw_pts = [models["Haswell"].point(p, f, st) for (p, f, st) in runs]
    knl_pts = [models["KNL"].point(p, f, st) for (p, f, st) in runs]
    for i, (p, f, st) in enumerate(runs):
        lines.append(
            fmt_row(
                [
                    p, f"{f / 1e9:.2f}", st.messages, f"{st.bytes / 1e6:.2f}",
                    f"{hsw_pts[i].seconds * 1e3:.2f}ms",
                    f"{knl_pts[i].seconds * 1e3:.2f}ms",
                    f"{100 * effs['Haswell'][i]:.0f}%",
                ],
                widths,
            )
        )
    lines += [
        "",
        f"efficiency series (Haswell): "
        + " ".join(f"{100 * e:.0f}%" for e in effs["Haswell"]),
        f"efficiency series (KNL):     "
        + " ".join(f"{100 * e:.0f}%" for e in effs["KNL"]),
        "paper: 100% -> 62% on 3,072 Haswell cores; 100% -> 70% on 4,352",
        "KNL cores — efficiency decays smoothly as p grows against fixed N;",
        "the same monotone decay (communication amortizes less work per",
        "rank) appears above.",
    ]
    emit("fig4_scaling", lines)

    eff = effs["Haswell"]
    assert eff[0] == 1.0
    # monotone decay (2% tolerance for load-imbalance noise at small p).
    assert all(b <= a + 0.02 for a, b in zip(eff, eff[1:]))
    assert 0.2 < eff[-1] < 0.9  # decayed but still scaling at max p
    # solution correctness across p is covered by tests/test_dist_solver.py.

    benchmark.pedantic(
        lambda: distributed_factorize(hmat, 1.0, 4), rounds=1, iterations=1
    )
