"""Table V: hybrid vs direct methods with level restriction L = 3.

Paper (#19-#27): SUSY, MRI, MNIST with adaptive ranks (tau = 1e-5,
smax = 2048).  The hybrid factorization is ~2x cheaper to build than
the level-restricted direct factorization; its solves are ~20x slower
(needing ~30-100 GMRES iterations to residual ~1e-3-1e-4 instead of a
direct apply at ~1e-10+); yet total Tf + Ts favors the hybrid.

Reproduction: stand-ins at N = 2048, L = 3, tau = 1e-5, smax = 256.
"""

import time
import warnings

import numpy as np
import pytest

from conftest import emit, fmt_row
from repro.config import GMRESConfig, SkeletonConfig, SolverConfig, TreeConfig
from repro.datasets import load_dataset
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.solvers import factorize
from repro.util.flops import FlopCounter

N = 2048
LEVEL = 3

#: (paper #s, dataset, bandwidth, lambda) — h scaled for the stand-ins.
CASES = [
    ("19-21", "susy", 1.0, 1.0),
    ("22-24", "mri", 2.0, 10.0),
    ("25-27", "mnist2m", 2.0, 1.0),
]

_rows = []


def _build(name, h):
    ds = load_dataset(name, N, seed=0)
    t0 = time.perf_counter()
    hmat = build_hmatrix(
        ds.X_train,
        GaussianKernel(bandwidth=h),
        tree_config=TreeConfig(leaf_size=128, seed=1),
        skeleton_config=SkeletonConfig(
            tau=1e-5, max_rank=256, num_samples=384, num_neighbors=16, seed=2,
            level_restriction=LEVEL,
        ),
    )
    return hmat, time.perf_counter() - t0


@pytest.mark.parametrize("case", CASES, ids=lambda c: c[1])
def test_table5_case(benchmark, case):
    nums, name, h, lam = case
    hmat, t_askit = _build(name, h)
    u = np.random.default_rng(0).standard_normal(N)

    for method, gmres_cfg in (
        ("direct", None),
        ("hybrid", GMRESConfig(tol=1e-4, max_iters=300)),
    ):
        cfg = SolverConfig(
            method=method,
            check_stability=False,
            **({"gmres": gmres_cfg} if gmres_cfg else {}),
        )
        with FlopCounter() as fc_f:
            t0 = time.perf_counter()
            fact = factorize(hmat, lam, cfg)
            tf = time.perf_counter() - t0
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with FlopCounter() as fc_s:
                t0 = time.perf_counter()
                w = fact.solve(u)
                ts = time.perf_counter() - t0
        res = fact.residual(u, w)
        ksp = sum(fact.reduced_iterations) if method == "hybrid" else 0
        _rows.append(
            (nums, name, method, t_askit, tf, fc_f.flops / 1e9, ts,
             fc_s.flops / 1e9, res, ksp)
        )

    direct_row = _rows[-2]
    hybrid_row = _rows[-1]
    # the hybrid factorization skips the big reduced LU: strictly cheaper.
    assert hybrid_row[5] < direct_row[5]
    # its solve is iterative: strictly more expensive, looser residual.
    assert hybrid_row[7] > direct_row[7]
    assert direct_row[8] < 1e-9
    assert hybrid_row[8] < 1e-2

    fact = factorize(hmat, lam, SolverConfig(check_stability=False))
    benchmark.pedantic(lambda: fact.solve(u), rounds=3, iterations=1)


def test_table5_emit(benchmark):
    benchmark(lambda: None)
    if not _rows:
        pytest.skip("run the per-dataset benchmarks first")
    widths = [7, 9, 7, 7, 7, 8, 9, 8, 9, 5]
    lines = [
        f"TABLE V -- hybrid vs direct, level restriction L={LEVEL}, "
        f"tau=1e-5, smax=256, N={N}",
        "",
        fmt_row(
            ["#", "dataset", "method", "ASKIT", "Tf(s)", "GF-f", "Ts(s)",
             "GF-s", "resid", "KSP"],
            widths,
        ),
    ]
    for nums, name, method, ta, tf, gf, ts, gs, res, ksp in _rows:
        lines.append(
            fmt_row(
                [nums, name, method, f"{ta:.1f}", f"{tf:.2f}", f"{gf:.1f}",
                 f"{ts:.3f}", f"{gs:.2f}", f"{res:.0e}", ksp or "-"],
                widths,
            )
        )
    lines += [
        "",
        "paper shape: hybrid Tf ~ 1/2 direct Tf; hybrid Ts ~ 20x direct Ts",
        "with 27-98 GMRES iterations to r ~ 1e-3/1e-4 (direct: r ~ 1e-10+);",
        "at larger L the direct method becomes infeasible (memory for Z",
        "alone: 2^L * smax squared) while the hybrid still runs — see the",
        "level-restriction ablation bench.",
    ]
    emit("table5_hybrid", lines)
