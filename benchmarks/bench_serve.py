#!/usr/bin/env python
"""Serving-layer benchmark: coalesced concurrent solves vs serialized.

The scenario the serving layer exists for: ``K`` concurrent clients
each ask the daemon for one single-RHS solve against the same resident
factorized model.  Two ways to serve them over the *same* factorization:

* ``coalesced`` — this PR's :class:`repro.serve.SolverService`: the
  requests land in one coalescing window, are stacked column-wise into
  a single ``(N, K)`` batched ``gmres_batched`` solve, and scattered
  back (BENCH_perf.json measured the raw batched-vs-column kernel gap
  at 3–5x; this benchmark measures it end-to-end through the service,
  threads, window latency and all);
* ``serialized`` — the baseline a daemon-less deployment gets: the
  same K right-hand sides solved back to back, one single-RHS solve
  per request.

Emits ``benchmarks/results/BENCH_serve.json`` with aggregate
throughput (requests/s) for both paths, the speedup ratio, the
coalescer's observed batch sizes, per-request parity against the
serial reference (must match to 1e-12), and a validity check of the
health endpoint's per-resident ``repro.telemetry/v1`` blob.

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py           # full
    PYTHONPATH=src python benchmarks/bench_serve.py --smoke   # CI
    PYTHONPATH=src python benchmarks/bench_serve.py --n 4096 --clients 16
"""

from __future__ import annotations

import argparse
import json
import pathlib
import threading
import time

import numpy as np

from repro import FastKernelSolver, GaussianKernel
from repro.config import GMRESConfig, SkeletonConfig, SolverConfig, TreeConfig
from repro.obs import reset_telemetry
from repro.serve import ServeConfig, SolverService

DEFAULT_N = 4096
DEFAULT_CLIENTS = 16
DEFAULT_OUT = pathlib.Path(__file__).parent / "results" / "BENCH_serve.json"
PARITY_TOL = 1e-12


def build_solver(n: int, *, level_restriction: int = 3) -> FastKernelSolver:
    gen = np.random.default_rng(2017)
    X = gen.standard_normal((n, 3))
    solver = FastKernelSolver(
        GaussianKernel(bandwidth=1.0),
        tree_config=TreeConfig(leaf_size=64, seed=0),
        skeleton_config=SkeletonConfig(
            tau=1e-5,
            max_rank=64,
            num_samples=192,
            num_neighbors=8,
            level_restriction=level_restriction,
            seed=1,
        ),
        # GMRES tolerance well below the 1e-12 parity requirement: the
        # batched and column-by-column paths take different Krylov
        # trajectories, so they only agree to ~the convergence tol.
        solver_config=SolverConfig(
            method="hybrid", gmres=GMRESConfig(tol=1e-14, max_iters=400)
        ),
    )
    solver.fit(X)
    solver.factorize(0.5)
    return solver


def run_serialized(solver: FastKernelSolver, rhs: list[np.ndarray]):
    """Baseline: one single-RHS solve per request, back to back."""
    t0 = time.perf_counter()
    results = [solver.solve(u) for u in rhs]
    wall = time.perf_counter() - t0
    return results, wall


def run_coalesced(solver: FastKernelSolver, rhs: list[np.ndarray]):
    """K concurrent clients against one SolverService."""
    k = len(rhs)
    service = SolverService(
        ServeConfig(window_seconds=0.05, max_batch=k)
    )
    service.registry.register(solver)
    results = [None] * k
    errors: list[Exception] = []
    barrier = threading.Barrier(k + 1)

    def client(i: int) -> None:
        try:
            barrier.wait()
            results[i] = service.solve(rhs[i])
        except Exception as exc:  # pragma: no cover - reported below
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(i,)) for i in range(k)
    ]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.perf_counter()
    for t in threads:
        t.join()
    wall = time.perf_counter() - t0
    if errors:
        raise errors[0]
    health = service.health()
    service.close()
    return results, wall, health


def bench(n: int, clients: int) -> dict:
    reset_telemetry()
    solver = build_solver(n)
    gen = np.random.default_rng(7)
    rhs = [gen.standard_normal(n) for _ in range(clients)]

    serial_results, serial_wall = run_serialized(solver, rhs)
    served_results, served_wall, health = run_coalesced(solver, rhs)

    parity = 0.0
    for got, ref in zip(served_results, serial_results):
        scale = float(np.max(np.abs(ref)))
        parity = max(parity, float(np.max(np.abs(got.w - ref))) / scale)

    telemetry_ok = all(
        entry["telemetry"].get("schema") == "repro.telemetry/v1"
        for entry in health["models"].values()
    )
    ratio = serial_wall / served_wall if served_wall > 0 else float("inf")
    row = {
        "n": n,
        "clients": clients,
        "serialized_wall_s": serial_wall,
        "coalesced_wall_s": served_wall,
        "serialized_rps": clients / serial_wall,
        "coalesced_rps": clients / served_wall,
        "speedup": ratio,
        "parity_max_rel_err": parity,
        "parity_tol": PARITY_TOL,
        "batch_sizes_seen": sorted(
            {r.batch_size for r in served_results}
        ),
        "coalesced_batches": health["coalescer"]["coalesced_batches"],
        "health_schema": health["schema"],
        "per_model_telemetry_valid": telemetry_ok,
    }
    print(
        f"n={n:>6} clients={clients:>3}  serialized {serial_wall:.3f}s "
        f"({row['serialized_rps']:.1f} rps)  coalesced {served_wall:.3f}s "
        f"({row['coalesced_rps']:.1f} rps)  speedup {ratio:.2f}x  "
        f"parity {parity:.2e}"
    )
    return row


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n", type=int, default=DEFAULT_N)
    parser.add_argument("--clients", type=int, default=DEFAULT_CLIENTS)
    parser.add_argument("--smoke", action="store_true",
                        help="small problem, no speedup assertion (CI)")
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    args = parser.parse_args()

    n = 1024 if args.smoke else args.n
    clients = 8 if args.smoke else args.clients
    row = bench(n, clients)

    blob = {
        "schema": "repro.bench/serve-v1",
        "smoke": args.smoke,
        "results": [row],
    }
    args.out.parent.mkdir(parents=True, exist_ok=True)
    with open(args.out, "w") as f:
        json.dump(blob, f, indent=2)
    print(f"wrote {args.out}")

    if row["parity_max_rel_err"] > PARITY_TOL:
        print(f"FAIL: parity {row['parity_max_rel_err']:.2e} > {PARITY_TOL}")
        return 1
    if not row["per_model_telemetry_valid"]:
        print("FAIL: health endpoint telemetry blob invalid")
        return 1
    if not args.smoke and row["speedup"] < 2.0:
        print(f"FAIL: coalesced speedup {row['speedup']:.2f}x < 2.0x")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
