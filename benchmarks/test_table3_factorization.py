"""Table III: factorization time — [36] O(N log^2 N) vs ours O(N log N).

Paper (#1-#10): same-parameter factorizations on several datasets and
tolerances tau in {1e-1, 1e-3, 1e-5}; the telescoping method is 2-4x
faster, with the gap growing with problem size, and both construct
exactly the same factorization.

Reproduction: stand-ins at N = 4096 (paper: 0.1M-32M on 3,072 cores);
we report wall seconds and counted GFLOP for both methods and verify
identical solve residuals.
"""

import time

import numpy as np
import pytest

from conftest import emit, fmt_row
from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.datasets import load_dataset
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.solvers import factorize
from repro.util.flops import FlopCounter

N = 4096
TAUS = [1e-1, 1e-3, 1e-5]

#: (#, dataset, bandwidth) — two bandwidths per dataset like the paper.
CASES = [
    (1, "covtype", 2.0),
    (2, "covtype", 1.0),
    (3, "susy", 2.0),
    (4, "susy", 0.7),
    (5, "mnist2m", 3.0),
    (6, "normal", 4.0),
]

_rows: list = []


def _build(name, h, tau):
    ds = load_dataset(name, N, seed=0)
    return build_hmatrix(
        ds.X_train,
        GaussianKernel(bandwidth=h),
        tree_config=TreeConfig(leaf_size=256, seed=1),
        skeleton_config=SkeletonConfig(
            tau=tau, max_rank=256, num_samples=384, num_neighbors=16, seed=2
        ),
    )


def _time_factor(hmat, method):
    with FlopCounter() as fc:
        t0 = time.perf_counter()
        fact = factorize(
            hmat, 1.0, SolverConfig(method=method, check_stability=False)
        )
        dt = time.perf_counter() - t0
    return fact, dt, fc.flops


@pytest.mark.parametrize("case", CASES, ids=lambda c: f"#{c[0]}-{c[1]}-h{c[2]}")
def test_table3_case(benchmark, case):
    num, name, h = case
    u = np.random.default_rng(0).standard_normal(N)
    for tau in TAUS:
        hmat = _build(name, h, tau)
        fact_log2, t_log2, f_log2 = _time_factor(hmat, "nlog2n")
        fact_log, t_log, f_log = _time_factor(hmat, "nlogn")
        # "both methods construct exactly the same factorization":
        r1 = fact_log.residual(u, fact_log.solve(u))
        r2 = fact_log2.residual(u, fact_log2.solve(u))
        assert r1 < 1e-8 and r2 < 1e-8
        assert f_log < f_log2  # telescoping always does less work
        smax = max(sk.rank for sk in hmat.skeletons.skeletons.values())
        _rows.append(
            (num, name, h, tau, t_log2, t_log, f_log2 / 1e9, f_log / 1e9, smax)
        )
    # benchmark target: our method at the tightest tolerance.
    hmat = _build(name, h, TAUS[-1])
    benchmark.pedantic(
        lambda: factorize(hmat, 1.0, SolverConfig(check_stability=False)),
        rounds=1,
        iterations=1,
    )


def test_table3_emit(benchmark):
    benchmark(lambda: None)
    if not _rows:
        pytest.skip("run the per-case benchmarks first")
    widths = [4, 9, 5, 7, 9, 9, 9, 9, 9, 6]
    lines = [
        f"TABLE III -- factorization: [36] N log^2 N vs ours N log N (N={N})",
        "times in seconds; GF = counted gigaflops; identical factors checked",
        "",
        fmt_row(
            ["#", "dataset", "h", "tau", "T-log2", "T-log", "GF-log2", "GF-log",
             "speedup", "smax"],
            widths,
        ),
    ]
    for num, name, h, tau, t2, t1, g2, g1, smax in _rows:
        lines.append(
            fmt_row(
                [num, name, h, f"{tau:.0e}", f"{t2:.2f}", f"{t1:.2f}",
                 f"{g2:.1f}", f"{g1:.1f}", f"{t2 / t1:.1f}x", smax],
                widths,
            )
        )
    flop_speedups = [r[6] / r[7] for r in _rows]
    lines += [
        "",
        f"flop-count speedups: min {min(flop_speedups):.1f}x, "
        f"max {max(flop_speedups):.1f}x  (paper: 2-4x at N=0.1M-32M, growing"
        " with N — see figure-4 bench for the growth)",
    ]
    emit("table3_factorization", lines)
