"""Ablation: the section III memory-reduction scheme (low-storage mode).

Paper, section III (Memory): the factorization needs U, V, I + WV per
level — O((2sN + s^2)(log(N/m) - L)) words.  "Using GSKS can reduce
sN log(N/m) to O(1) by computing V on the fly.  Recomputing W with (10)
can reduce another sN log(N/m) to sN ... with O((d + s^2) N log N) work
(still O(N log N) asymptotically)."

This bench measures exactly that trade at several N: persistent words
and solve time for the four storage configurations (V stored / fused,
W stored / re-telescoped), verifying identical solutions throughout.
"""

import time

import numpy as np

from conftest import emit, fmt_row
from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.datasets import normal_embedded
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.solvers import factorize

SIZES = [2048, 8192]
RANK = 64

CONFIGS = [
    ("V stored + W stored", "precomputed", "full"),
    ("V fused  + W stored", "fused", "full"),
    ("V stored + W recomp", "precomputed", "low"),
    ("V fused  + W recomp", "fused", "low"),
]


def _run(n, summation, storage):
    X = normal_embedded(n, ambient_dim=32, intrinsic_dim=5, seed=27)
    hmat = build_hmatrix(
        X,
        GaussianKernel(bandwidth=3.0),
        tree_config=TreeConfig(leaf_size=128, seed=1),
        skeleton_config=SkeletonConfig(
            rank=RANK, num_samples=2 * RANK, num_neighbors=0, seed=2
        ),
        summation=summation,
    )
    fact = factorize(
        hmat, 1.0,
        SolverConfig(summation=summation, storage=storage, check_stability=False),
    )
    u = np.random.default_rng(0).standard_normal(n)
    w = fact.solve(u)  # warm
    t0 = time.perf_counter()
    w = fact.solve(u)
    ts = time.perf_counter() - t0
    assert fact.residual(u, w) < 1e-9
    return fact.storage_words(), ts, w


def test_ablation_storage(benchmark):
    widths = [8, 22, 12, 10, 8]
    lines = [
        "ABLATION -- section III memory schemes (fixed s=%d, leaf m=128)" % RANK,
        "persistent factor storage vs solve time; identical solutions checked",
        "",
        fmt_row(["N", "configuration", "words", "Ts", "vs-base"], widths),
    ]
    for n in SIZES:
        base_words = None
        base_ts = None
        ref = None
        for label, summation, storage in CONFIGS:
            words, ts, w = _run(n, summation, storage)
            if ref is None:
                base_words, base_ts, ref = words, ts, w
            else:
                assert np.allclose(w, ref, atol=1e-8)
            lines.append(
                fmt_row(
                    [
                        n, label, f"{words / 1e6:.2f}M",
                        f"{ts * 1e3:.0f}ms",
                        f"{words / base_words:.2f}x",
                    ],
                    widths,
                )
            )
        lines.append("")

    # quantitative shape at the largest size.
    w_full, _, _ = _run(SIZES[-1], "precomputed", "full")
    w_low, _, _ = _run(SIZES[-1], "fused", "low")
    lines += [
        f"full vs fused+recompute at N={SIZES[-1]}: "
        f"{w_full / 1e6:.2f}M -> {w_low / 1e6:.2f}M words "
        f"({w_full / w_low:.1f}x less persistent memory), paying the",
        "re-telescoping work per solve — the exact trade of section III.",
    ]
    emit("ablation_storage", lines)

    assert w_low < w_full / 2

    benchmark.pedantic(
        lambda: _run(SIZES[0], "fused", "low"), rounds=1, iterations=1
    )
