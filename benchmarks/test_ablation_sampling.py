"""Ablation: skeletonization sampling — |S'| and the kappa neighbors.

ASKIT replaces the O(N) off-diagonal row set with a sampled S' of
neighbor rows (kappa per point) plus uniform rows.  This ablation
sweeps the sample budget and the neighbor fraction and reports the
resulting matrix approximation error and skeleton ranks — the
cost/accuracy knob behind every experiment in the paper.
"""

import numpy as np
import pytest

from conftest import emit, fmt_row
from repro.config import SkeletonConfig, TreeConfig
from repro.datasets import load_dataset
from repro.hmatrix import build_hmatrix, estimate_matrix_error
from repro.kernels import GaussianKernel

N = 2048


def _error(num_samples, num_neighbors):
    ds = load_dataset("covtype", N, seed=0)
    h = build_hmatrix(
        ds.X_train,
        GaussianKernel(bandwidth=1.0),
        tree_config=TreeConfig(leaf_size=128, seed=1),
        skeleton_config=SkeletonConfig(
            tau=1e-7, max_rank=128, num_samples=num_samples,
            num_neighbors=num_neighbors, seed=2,
        ),
    )
    err = estimate_matrix_error(h, n_probes=6, seed=3)
    ranks = [sk.rank for sk in h.skeletons.skeletons.values()]
    return err, float(np.mean(ranks)), max(ranks)


def test_ablation_sampling(benchmark):
    budgets = [64, 128, 256, 512]
    rows_budget = [(b, *_error(b, 16)) for b in budgets]

    neighbor_settings = [0, 8, 32]
    rows_kappa = [(k, *_error(256, k)) for k in neighbor_settings]

    widths = [10, 12, 11, 9]
    lines = [
        f"ABLATION -- skeletonization sampling (COVTYPE stand-in, N={N}, "
        "tau=1e-7, smax=128)",
        "",
        "sample budget |S'| sweep (kappa = 16 neighbors):",
        fmt_row(["|S'|", "rel-error", "mean-rank", "max-rank"], widths),
    ]
    for b, err, mean_r, max_r in rows_budget:
        lines.append(fmt_row([b, f"{err:.2e}", f"{mean_r:.1f}", max_r], widths))
    lines += [
        "",
        "neighbor sweep (|S'| = 256):",
        fmt_row(["kappa", "rel-error", "mean-rank", "max-rank"], widths),
    ]
    for k, err, mean_r, max_r in rows_kappa:
        lines.append(fmt_row([k, f"{err:.2e}", f"{mean_r:.1f}", max_r], widths))
    err_small = rows_budget[0][1]
    err_large = rows_budget[-1][1]
    lines += [
        "",
        f"error improves {err_small / err_large:.1f}x from |S'|={budgets[0]} "
        f"to {budgets[-1]}; neighbor rows capture the off-diagonal energy",
        "uniform sampling alone misses (ASKIT's kappa parameter).",
    ]
    emit("ablation_sampling", lines)

    # more samples must not hurt; the trend should be a clear improvement.
    assert err_large < err_small

    benchmark.pedantic(lambda: _error(128, 16), rounds=1, iterations=1)
