"""Figure 4 (left, #17): O(N log N) complexity verification.

Paper: NORMAL 64-D, m = 512, fixed s = 256, L = 1; factorization time
from 1M to 32M points tracks the ideal N log N curve and stays clearly
below N log^2 N.

Reproduction: NORMAL at N = 1K..16K (fixed s = 64, leaf 128); both
wall seconds and counted flops are fit against c*N log N and
c*N log^2 N anchored at the smallest size, and the N log N curve must
predict the largest run far better — for both our method and the [36]
baseline's deviation.
"""

import time

import numpy as np

from conftest import emit, fmt_row
from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.datasets import normal_embedded
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.solvers import factorize
from repro.util.flops import FlopCounter

SIZES = [1024, 2048, 4096, 8192, 16384]
RANK = 64
LEAF = 128


def _factor_cost(n):
    X = normal_embedded(n, ambient_dim=64, intrinsic_dim=6, seed=17)
    hmat = build_hmatrix(
        X,
        GaussianKernel(bandwidth=4.0),
        tree_config=TreeConfig(leaf_size=LEAF, seed=1),
        skeleton_config=SkeletonConfig(
            rank=RANK, num_samples=2 * RANK, num_neighbors=0, seed=2
        ),
    )
    with FlopCounter() as fc:
        t0 = time.perf_counter()
        factorize(hmat, 1.0, SolverConfig(check_stability=False))
        dt = time.perf_counter() - t0
    return dt, fc.flops


def test_fig4_complexity(benchmark):
    times, flops = {}, {}
    for n in SIZES:
        times[n], flops[n] = _factor_cost(n)

    n0 = SIZES[0]

    def ideal(n, power):
        return np.log2(n / LEAF) ** power * n / (np.log2(n0 / LEAF) ** power * n0)

    widths = [7, 9, 10, 11, 11, 11]
    lines = [
        "FIGURE 4 (left, #17) -- N log N complexity verification",
        f"NORMAL 64-D (6-D intrinsic), fixed s={RANK}, leaf m={LEAF}",
        "columns are normalized to the N=1K run (paper's yellow/purple lines)",
        "",
        fmt_row(["N", "time(s)", "GFLOP", "measured", "ideal-NlogN", "ideal-Nlog2N"],
                widths),
    ]
    for n in SIZES:
        lines.append(
            fmt_row(
                [
                    n, f"{times[n]:.2f}", f"{flops[n] / 1e9:.1f}",
                    f"{flops[n] / flops[n0]:.2f}x",
                    f"{ideal(n, 1):.2f}x", f"{ideal(n, 2):.2f}x",
                ],
                widths,
            )
        )

    n_big = SIZES[-1]
    measured = flops[n_big] / flops[n0]
    err_log = abs(measured - ideal(n_big, 1)) / ideal(n_big, 1)
    err_log2 = abs(measured - ideal(n_big, 2)) / ideal(n_big, 2)
    lines += [
        "",
        f"relative deviation at N={n_big}: from NlogN {100 * err_log:.0f}%, "
        f"from Nlog2N {100 * err_log2:.0f}%",
        "paper shape: experimental curve hugs NlogN, stays below Nlog2N.",
    ]
    emit("fig4_complexity", lines)

    assert err_log < err_log2  # NlogN is the better fit
    assert measured < ideal(n_big, 2)  # strictly below the log^2 curve

    benchmark.pedantic(lambda: _factor_cost(SIZES[1]), rounds=1, iterations=1)
