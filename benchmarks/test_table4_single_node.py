"""Table IV: single-node performance and the three solve schemes.

Paper (#11-#16): COVTYPE100K, m = s = 2048 (fixed rank), L = 3.
Reports factorization time/GFLOPS and three solve variants with
different storage: GEMV on stored V (fast, O(sN log N) memory), GEMM
re-evaluation (slowest), GSKS fused (matrix-free, within 1.2-1.6x of
GEMV and 4-7x faster than GEMM).

Reproduction: COVTYPE stand-in at N = 4096, m = s = 256, L = 3.  Wall
seconds are reported for completeness, but numpy's interpreter overhead
distorts the GEMV-vs-fused ratio (the paper's ratio comes from
assembly micro-kernels), so the shape comparison uses *modeled node
times* computed from the counted FLOPs/MOPs through the Haswell
roofline — the same accounting the paper's analysis uses.  Storage is
split out for the V blocks, which are what the matrix-free scheme
eliminates (the factors P^, Z are common to all three schemes).
"""

import time

import numpy as np

from conftest import emit, fmt_row
from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.datasets import load_dataset
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.perfmodel import HASWELL_NODE, KNL_NODE
from repro.solvers import factorize
from repro.util.flops import FlopCounter

N = 4096
RANK = 256
LEVEL = 3

SCHEME_LABEL = {
    "precomputed": "GEMV (store V)",
    "reevaluate": "GEMM (re-evaluate)",
    "fused": "GSKS (matrix-free)",
}


def _build(summation):
    ds = load_dataset("covtype", N, seed=0)
    return build_hmatrix(
        ds.X_train,
        GaussianKernel(bandwidth=1.0),
        tree_config=TreeConfig(leaf_size=RANK, seed=1),
        skeleton_config=SkeletonConfig(
            rank=RANK, num_samples=384, num_neighbors=16, seed=2,
            level_restriction=LEVEL,
        ),
        summation=summation,
    )


def _v_block_words(fact) -> int:
    """Persistent storage of the off-diagonal V blocks only."""
    words = 0
    for nf in fact.node_factors.values():
        words += nf.vblock_l.storage_words + nf.vblock_r.storage_words
    if fact.reduced is not None:
        seen = set()
        for block in fact.reduced.pair_blocks.values():
            if id(block) not in seen:
                words += block.storage_words
                seen.add(id(block))
    return words


def _modeled_seconds(machine, scheme: str, flops: int, mops: int, evals: int) -> float:
    """Scheme-specific node-time model (mirrors the Table I models).

    * GEMV on stored blocks: bandwidth-vs-GEMM roofline.
    * GEMM re-evaluate: the phases serialize (evaluate with vendor GEMM,
      exponentiate with VML streaming the block, then GEMV) — the
      paper's "best-known method".
    * GSKS: one fused pass at the fused-kernel rate, tiny traffic.
    """
    bw = machine.stream_bw_gbs * 1e9
    if scheme == "precomputed":
        return max(flops / (machine.gemm_gflops * 1e9), mops * 8.0 / bw)
    if scheme == "reevaluate":
        return (
            flops / (machine.gemm_gflops * 1e9)
            + evals / (machine.exp_gelems * 1e9)
            + mops * 8.0 / bw
        )
    return max(flops / (machine.fused_gflops * 1e9), mops * 8.0 / bw)


def test_table4_single_node(benchmark):
    u = np.random.default_rng(0).standard_normal(N)
    rows = []
    factor_stats = None
    bench_fact = None
    for scheme in ("precomputed", "reevaluate", "fused"):
        hmat = _build(scheme)
        cfg = SolverConfig(method="direct", summation=scheme, check_stability=False)
        with FlopCounter() as fc_f:
            t0 = time.perf_counter()
            fact = factorize(hmat, 1.0, cfg)
            tf = time.perf_counter() - t0
        fact.solve(u)  # warm caches
        with FlopCounter() as fc_s:
            t0 = time.perf_counter()
            w = fact.solve(u)
            ts = time.perf_counter() - t0
        res = fact.residual(u, w)
        modeled = _modeled_seconds(
            HASWELL_NODE, scheme, fc_s.flops, fc_s.mops, fc_s.kernel_evals
        )
        rows.append((scheme, ts, fc_s.flops, fc_s.mops, modeled, _v_block_words(fact), res))
        if scheme == "precomputed":
            factor_stats = (tf, fc_f.flops)
            bench_fact = fact

    tf, ff = factor_stats
    widths = [20, 10, 8, 8, 13, 12, 9]
    lines = [
        f"TABLE IV -- single node, COVTYPE stand-in N={N}, m=s={RANK}, L={LEVEL}",
        "",
        f"factorization: Tf={tf:.2f}s wall, counted={ff / 1e9:.1f} GFLOP",
        f"  modeled node Tf: Haswell {ff / (0.62 * HASWELL_NODE.peak_gflops * 1e9) * 1e3:.1f}ms"
        f" (62% peak, paper #11), KNL {ff / (0.45 * KNL_NODE.peak_gflops * 1e9) * 1e3:.1f}ms"
        " (45% peak, paper #13)",
        "",
        "solve phase (one RHS) under the three kernel-summation schemes:",
        fmt_row(
            ["scheme", "Ts wall", "GFLOP", "Mwords", "Ts modeled", "V storage",
             "residual"],
            widths,
        ),
    ]
    for scheme, ts, fs, ms, modeled, vwords, res in rows:
        lines.append(
            fmt_row(
                [
                    SCHEME_LABEL[scheme], f"{ts * 1e3:.1f}ms", f"{fs / 1e9:.2f}",
                    f"{ms / 1e6:.1f}", f"{modeled * 1e3:.2f}ms",
                    f"{vwords / 1e6:.2f}Mw", f"{res:.0e}",
                ],
                widths,
            )
        )
    m_gemv, m_gemm, m_gsks = rows[0][4], rows[1][4], rows[2][4]
    v_gemv, v_gsks = rows[0][5], rows[2][5]
    lines += [
        "",
        "shape checks vs paper (modeled node times, Haswell roofline):",
        f"  GSKS/GEMV = {m_gsks / m_gemv:.2f}x   (paper: 1.2-1.6x slower)",
        f"  GEMM/GSKS = {m_gemm / m_gsks:.2f}x   (paper: 4-7x slower)",
        f"  V-block storage GEMV/GSKS = {v_gemv / max(v_gsks, 1):.0f}x"
        "   (paper: O(sN log N) -> O(1))",
        "",
        "wall-clock caveat: in numpy the fused path pays interpreter-level",
        "re-evaluation costs the paper's AVX micro-kernels do not; the",
        "modeled columns carry the architectural comparison.",
    ]
    emit("table4_single_node", lines)

    # paper shape assertions.
    assert v_gsks < v_gemv / 50  # matrix-free eliminates V storage
    assert m_gsks < 3.0 * m_gemv  # fused within a small factor of GEMV
    assert m_gemm > 1.5 * m_gsks  # re-evaluate is the slowest scheme

    benchmark.pedantic(lambda: bench_fact.solve(u), rounds=3, iterations=1)
