"""Figure 5 (#28-#39): convergence solving lambda*I + K~.

Paper: four dataset/bandwidth rows x three columns with
lambda = [1e-2, 1e-3, 1e-5] * sigma_1(K~) (condition numbers ~1e2,
1e3, 1e5).  Compares (a) unpreconditioned GMRES using ASKIT's fast
matvec (blue) against (b) the hybrid method (orange).  Findings: the
hybrid converges steadily and is 10-1000x faster on the solve; plain
GMRES goes flat at kappa ~ 1e5; in the narrow-bandwidth #30 case the
solver *detects* the ill-conditioning of D and both methods fail.

Reproduction: stand-ins at N = 2048 with level restriction (paper used
L = 5/7 at millions of points; L = 2 gives the same frontier-to-depth
proportions here).  The x-axis (seconds in the paper) is Krylov
iterations; residual checkpoints reproduce the curve shapes.
"""

import warnings

import numpy as np
import pytest

from conftest import emit, fmt_row
from repro.config import GMRESConfig, SkeletonConfig, SolverConfig, TreeConfig
from repro.datasets import load_dataset
from repro.exceptions import StabilityWarning
from repro.hmatrix import build_hmatrix, estimate_largest_singular_value
from repro.kernels import GaussianKernel
from repro.solvers import factorize, gmres

N = 2048
LEVEL = 2
MAX_ITERS = 80
CHECKPOINTS = [5, 10, 20, 40, 80]

#: (paper #s, dataset, bandwidth); the last row is the narrow-bandwidth
#: regime of #28-#30 (small h for the normalized stand-in).
ROWS = [
    ("31-33", "susy", 1.0),
    ("34-36", "higgs", 1.5),
    ("37-39", "mnist2m", 2.0),
    ("28-30", "covtype", 0.35),
]

KAPPAS = [(1e-2, "1e+2"), (1e-3, "1e+3"), (1e-5, "1e+5")]

_lines: list[str] = []
_summary: list[tuple] = []


def _checkpoint_series(residuals: list[float]) -> str:
    out = []
    for c in CHECKPOINTS:
        if c < len(residuals):
            out.append(f"{residuals[c]:.0e}")
        else:
            out.append(f"{residuals[-1]:.0e}*")
    return " ".join(x.rjust(7) for x in out)


@pytest.mark.parametrize("row", ROWS, ids=lambda r: f"#{r[0]}-{r[1]}")
def test_fig5_row(benchmark, row):
    nums, name, h = row
    ds = load_dataset(name, N, seed=0)
    hmat = build_hmatrix(
        ds.X_train,
        GaussianKernel(bandwidth=h),
        tree_config=TreeConfig(leaf_size=128, seed=1),
        skeleton_config=SkeletonConfig(
            tau=1e-5, max_rank=128, num_samples=256, num_neighbors=16, seed=2,
            level_restriction=LEVEL,
        ),
    )
    sigma1 = estimate_largest_singular_value(hmat, n_iters=15, seed=0)
    u = np.random.default_rng(1).standard_normal(N)

    _lines.append(f"-- {nums}: {name} stand-in, h={h}, sigma1(K~)={sigma1:.1f}")
    header = "   " + "kappa".ljust(7) + "method".ljust(9) + "  " + " ".join(
        f"it={c}".rjust(7) for c in CHECKPOINTS
    ) + "   final-resid  detect"
    _lines.append(header)

    for frac, kappa_label in KAPPAS:
        lam = frac * sigma1
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            plain = gmres(
                lambda v: hmat.regularized_matvec(lam, v),
                u,
                GMRESConfig(tol=1e-10, max_iters=MAX_ITERS),
            )
            fact = factorize(
                hmat,
                lam,
                SolverConfig(
                    method="hybrid",
                    gmres=GMRESConfig(tol=1e-10, max_iters=MAX_ITERS),
                ),
            )
            w = fact.solve(u)
        detected = any(issubclass(c.category, StabilityWarning) for c in caught)
        hybrid_hist = fact.reduced_histories[-1]
        hybrid_res = fact.residual(u, w)
        _lines.append(
            "   " + kappa_label.ljust(7) + "GMRES".ljust(9) + "  "
            + _checkpoint_series(plain.residuals)
            + f"   {plain.final_residual:.1e}"
        )
        _lines.append(
            "   " + kappa_label.ljust(7) + "hybrid".ljust(9) + "  "
            + _checkpoint_series(hybrid_hist)
            + f"   {hybrid_res:.1e}"
            + ("      D ill-cond" if detected else "")
        )
        _summary.append(
            (nums, name, kappa_label, plain.final_residual, hybrid_res, detected)
        )
    _lines.append("")

    # paper shape per row: at kappa=1e2 the hybrid reaches a much
    # smaller residual than plain GMRES within the same iteration budget.
    easy = [s for s in _summary if s[0] == nums and s[2] == "1e+2"][0]
    assert easy[4] < easy[3] * 1e-2 or easy[4] < 1e-9

    benchmark.pedantic(
        lambda: gmres(
            lambda v: hmat.regularized_matvec(sigma1 * 1e-2, v),
            u,
            GMRESConfig(tol=1e-10, max_iters=10),
        ),
        rounds=1,
        iterations=1,
    )


def test_fig5_emit(benchmark):
    benchmark(lambda: None)
    if not _summary:
        pytest.skip("run the per-row benchmarks first")
    hard = [s for s in _summary if s[2] == "1e+5"]
    stalled = sum(1 for s in hard if s[3] > 1e-4)
    lines = [
        f"FIGURE 5 (#28-#39) -- convergence solving lambda*I + K~ (N={N}, "
        f"L={LEVEL}, tau=1e-5)",
        "residual checkpoints vs Krylov iteration (x-axis; '*' = converged/",
        "stopped earlier).  GMRES = unpreconditioned with ASKIT matvec",
        "(paper blue); hybrid = Algorithm II.6 (paper orange).",
        "",
        *_lines,
        "paper shape: hybrid curves drop steeply at every kappa; plain",
        f"GMRES flattens near kappa ~ 1e5 ({stalled}/{len(hard)} hard cases"
        " stalled above 1e-4 here).  The row where BOTH methods stall at",
        "kappa=1e5 is the paper's #30 regime; the 'detect' column reports",
        "the D-ill-conditioning detector (it fires when a diagonal block",
        "passes rcond 1e-12 — exercised directly in tests/test_stability.py).",
    ]
    emit("fig5_convergence", lines)
