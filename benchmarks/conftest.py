"""Shared benchmark infrastructure.

Every benchmark regenerates one paper table/figure (scaled to laptop
sizes) and emits it twice: to stdout and to
``benchmarks/results/<name>.txt`` so the artifact survives pytest's
output capture.  EXPERIMENTS.md is the curated paper-vs-measured
comparison built from these outputs.
"""

from __future__ import annotations

import pathlib

import numpy as np
import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def emit(name: str, lines: list[str]) -> str:
    """Print a result table and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    text = "\n".join(lines) + "\n"
    (RESULTS_DIR / f"{name}.txt").write_text(text)
    print(f"\n{'=' * 72}\n{text}{'=' * 72}")
    return text


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(2017)


def fmt_row(cols, widths):
    return "  ".join(str(c).ljust(w) for c, w in zip(cols, widths))
