"""Table I: Gaussian kernel summation efficiency — GSKS vs MKL+VML.

Paper: GFLOPS of m x n x d Gaussian summation for m = n in {4K, 8K, 16K}
and d in {4, 20, 36, 68, 132, 260}, on Haswell and KNL; GSKS is
3-30x faster than the reference on KNL for d < 68.

Reproduction: the modeled-GFLOPS table comes from the roofline models
fed by the exact FLOP/MOP structure of both paths; the *measured*
section times our fused tile loop against the evaluate-then-GEMV
reference in this process (both numpy) at a scaled size, confirming
the memory-traffic ordering on real hardware too.
"""

import time

import numpy as np
import pytest

from conftest import emit, fmt_row
from repro.kernels import GaussianKernel
from repro.kernels.gsks import GSKSWorkspace, gsks_matvec
from repro.perfmodel import (
    HASWELL_NODE,
    KNL_NODE,
    model_gsks_summation,
    model_reference_summation,
)

DIMS = [4, 20, 36, 68, 132, 260]
SIZES = [16384, 8192, 4096]

MEASURE_N = 2048
MEASURE_DIMS = [4, 36, 132]


def _measured_ratio(d: int) -> tuple[float, float, float]:
    """(t_reference, t_fused, ratio) at the scaled measurement size."""
    rng = np.random.default_rng(d)
    X = rng.standard_normal((MEASURE_N, d))
    u = rng.standard_normal(MEASURE_N)
    kernel = GaussianKernel(bandwidth=1.0)
    ws = GSKSWorkspace()

    def reference():
        return kernel(X, X) @ u  # materialize, then GEMV

    def fused():
        return gsks_matvec(kernel, X, X, u, workspace=ws)

    reference(), fused()  # warm up
    t0 = time.perf_counter()
    reference()
    t_ref = time.perf_counter() - t0
    t0 = time.perf_counter()
    fused()
    t_fused = time.perf_counter() - t0
    return t_ref, t_fused, t_ref / t_fused


def test_table1_model_and_measurement(benchmark):
    lines = [
        "TABLE I -- Gaussian kernel summation efficiency (GFLOPS, modeled)",
        "paper metric: useful GEMM flops (2*m*n*d) / wall time",
        "",
        fmt_row(["Arch", "size", "method"] + [f"d={d}" for d in DIMS],
                [9, 6, 9] + [8] * len(DIMS)),
    ]
    for size in SIZES:
        for machine, tag in ((HASWELL_NODE, "Haswell"), (KNL_NODE, "KNL")):
            ref = [model_reference_summation(machine, size, size, d).gflops for d in DIMS]
            gsks = [model_gsks_summation(machine, size, size, d).gflops for d in DIMS]
            lines.append(fmt_row(
                [tag, f"{size // 1024}K", "MKL+VML"] + [f"{g:.0f}" for g in ref],
                [9, 6, 9] + [8] * len(DIMS)))
            lines.append(fmt_row(
                [tag, f"{size // 1024}K", "GSKS"] + [f"{g:.0f}" for g in gsks],
                [9, 6, 9] + [8] * len(DIMS)))
    lines += [
        "",
        "paper shape: GSKS > MKL+VML everywhere; advantage largest at small d",
        "and on KNL (3-30x for d < 68).  Modeled speedups (KNL, 16K):",
        "  " + "  ".join(
            f"d={d}: {model_reference_summation(KNL_NODE, 16384, 16384, d).seconds / model_gsks_summation(KNL_NODE, 16384, 16384, d).seconds:.1f}x"
            for d in DIMS
        ),
        "",
        f"measured in-process (N={MEASURE_N}, numpy): evaluate-then-GEMV vs fused tiles",
    ]
    for d in MEASURE_DIMS:
        t_ref, t_fused, ratio = _measured_ratio(d)
        lines.append(
            f"  d={d:<4d} reference {t_ref * 1e3:7.1f} ms   fused {t_fused * 1e3:7.1f} ms"
            f"   (fused avoids the O(m*n) store: ratio {ratio:.2f}x)"
        )
    emit("table1_gsks", lines)

    # timed benchmark target: the fused summation kernel itself.
    rng = np.random.default_rng(0)
    X = rng.standard_normal((MEASURE_N, 36))
    u = rng.standard_normal(MEASURE_N)
    kernel = GaussianKernel(bandwidth=1.0)
    ws = GSKSWorkspace()
    benchmark(lambda: gsks_matvec(kernel, X, X, u, workspace=ws))


@pytest.mark.parametrize("d", DIMS)
def test_table1_gsks_wins_everywhere(benchmark, d):
    """Shape assertion per dimension + per-d model benchmark."""
    ref = model_reference_summation(KNL_NODE, 16384, 16384, d)
    gsks = model_gsks_summation(KNL_NODE, 16384, 16384, d)
    assert gsks.seconds < ref.seconds
    benchmark(lambda: model_gsks_summation(KNL_NODE, 16384, 16384, d))
