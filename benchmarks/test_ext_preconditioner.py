"""Extension bench: the factorization as an exact-system preconditioner.

The related-work discussion ([36]) notes the factorization can serve as
a preconditioner.  This bench quantifies the trade: sweep the skeleton
tolerance tau, use each (cheap -> accurate) factorization once as a
standalone approximate solver and once as a GMRES preconditioner for
the *exact* matrix-free operator, and report residuals and iteration
counts — showing that even a crude factorization buys near-machine
precision on the true system in a few iterations.
"""

import warnings

import numpy as np

from conftest import emit, fmt_row
from repro.config import GMRESConfig, SkeletonConfig, TreeConfig
from repro.datasets import load_dataset
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.kernels.gsks import gsks_matvec
from repro.solvers import factorize, gmres, solve_exact

N = 2048
TAUS = [1e-1, 1e-3, 1e-6]
LAM = 0.5


def test_ext_preconditioner(benchmark):
    ds = load_dataset("covtype", N, seed=0)
    kernel = GaussianKernel(bandwidth=1.0)
    u = np.random.default_rng(0).standard_normal(N)

    rows = []
    fact_for_bench = None
    for tau in TAUS:
        hmat = build_hmatrix(
            ds.X_train,
            kernel,
            tree_config=TreeConfig(leaf_size=128, seed=1),
            skeleton_config=SkeletonConfig(
                tau=tau, max_rank=128, num_samples=256, num_neighbors=16, seed=2
            ),
        )
        fact = factorize(hmat, LAM)
        pts = hmat.tree.points

        w0 = fact.solve(u)
        r0 = u - (gsks_matvec(kernel, pts, pts, w0) + LAM * w0)
        res_direct = float(np.linalg.norm(r0) / np.linalg.norm(u))

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            pre = solve_exact(fact, u, GMRESConfig(tol=1e-12, max_iters=50))
        rows.append((tau, res_direct, pre.n_iters, pre.residual))
        fact_for_bench = fact

    # reference: unpreconditioned GMRES with the largest budget used.
    hmat = fact_for_bench.hmatrix
    pts = hmat.tree.points
    budget = max(r[2] for r in rows)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        plain = gmres(
            lambda v: gsks_matvec(kernel, pts, pts, v) + LAM * v,
            u,
            GMRESConfig(tol=1e-12, max_iters=budget),
        )

    widths = [8, 16, 8, 16]
    lines = [
        f"EXTENSION -- factorization as exact-system preconditioner "
        f"(COVTYPE stand-in, N={N}, lambda={LAM})",
        "",
        fmt_row(["tau", "direct-resid", "iters", "precond-resid"], widths),
    ]
    for tau, rd, it, rp in rows:
        lines.append(
            fmt_row([f"{tau:.0e}", f"{rd:.1e}", it, f"{rp:.1e}"], widths)
        )
    lines += [
        "",
        f"unpreconditioned GMRES with the same max budget ({budget} iters): "
        f"{plain.final_residual:.1e}",
        "direct-resid = using the approximate factorization alone (capped by",
        "the skeleton error); precond-resid = after preconditioned GMRES on",
        "the exact operator — machine precision regardless of tau, with the",
        "iteration count shrinking as the factorization gets more accurate.",
    ]
    emit("ext_preconditioner", lines)

    # shape assertions.
    assert all(rp < 1e-9 for _t, _rd, _it, rp in rows)
    assert rows[-1][2] <= rows[0][2]  # tighter tau -> fewer iterations
    assert plain.final_residual > 10 * max(rp for *_x, rp in rows)

    benchmark.pedantic(
        lambda: solve_exact(fact_for_bench, u, GMRESConfig(tol=1e-10, max_iters=30)),
        rounds=1,
        iterations=1,
    )
