"""Baseline comparison: hierarchical vs Nystrom vs dense.

Reproduces the paper's *motivation* (sections I and Related Work):

* "For small h, K approaches the identity ... for large h, K approaches
  the rank-one constant matrix ... for the majority of h values, K is
  neither sparse nor globally low-rank."
* "Nystrom methods ... can be used to build fast factorizations.
  However, not all kernel matrices can be approximated well by Nystrom
  methods."

Two comparisons at a matched rank budget:

1. approximation error ``||K - K_approx|| / ||K||`` across bandwidths —
   the global low-rank approximation collapses as h shrinks while the
   hierarchical one keeps compressing;
2. end-to-end kernel ridge classification on the COVTYPE stand-in at
   narrow bandwidths (the regime real cross-validation picks) — the
   approximation gap turns into an accuracy gap.

The dense solver anchors exactness and the O(N^3) vs O(N log N) work
crossover.
"""

import numpy as np

from conftest import emit, fmt_row
from repro.baselines import DenseSolver, NystromApproximation
from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.datasets import load_dataset, normal_embedded
from repro.hmatrix import build_hmatrix, estimate_matrix_error
from repro.kernels import GaussianKernel
from repro.kernels.gsks import gsks_matvec
from repro.learning import KernelRidgeClassifier, accuracy
from repro.solvers import factorize
from repro.util.flops import FlopCounter

N = 2048
RANK = 128
BANDWIDTHS = [30.0, 8.0, 3.0, 1.5, 0.8]
LAM = 0.5

TREE = TreeConfig(leaf_size=RANK, seed=1)
SKEL = SkeletonConfig(
    tau=1e-10, max_rank=RANK, num_samples=4 * RANK, num_neighbors=16, seed=2
)


def test_baseline_approximation_sweep(benchmark):
    X = normal_embedded(N, ambient_dim=16, intrinsic_dim=4, seed=33)
    rows = []
    for h in BANDWIDTHS:
        kernel = GaussianKernel(bandwidth=h)
        ny = NystromApproximation(kernel, rank=RANK, seed=1).fit(X)
        ny_err = ny.matrix_error(X, seed=2)
        hm = build_hmatrix(X, kernel, tree_config=TREE, skeleton_config=SKEL)
        hier_err = estimate_matrix_error(hm, seed=2)
        rows.append((h, ny_err, hier_err))

    # dense work anchor.
    kernel = GaussianKernel(bandwidth=3.0)
    with FlopCounter() as fc_dense:
        DenseSolver(kernel).fit(X).factorize(LAM)
    hm = build_hmatrix(X, kernel, tree_config=TREE, skeleton_config=SKEL)
    with FlopCounter() as fc_hier:
        factorize(hm, LAM, SolverConfig(check_stability=False))

    widths = [7, 13, 12, 9]
    lines = [
        f"BASELINES (1/2) -- approximation error at matched rank budget "
        f"{RANK} (N={N}, NORMAL-like 16-D data)",
        "",
        fmt_row(["h", "nystrom-err", "hier-err", "ratio"], widths),
    ]
    for h, ne, he in rows:
        lines.append(
            fmt_row([h, f"{ne:.1e}", f"{he:.1e}", f"{ne / he:.0f}x"], widths)
        )
    lines += [
        "",
        "paper shape: at large h K is globally low rank and Nystrom matches",
        "the hierarchical approximation; as h shrinks into the 'neither",
        "sparse nor low-rank' regime the global approximation collapses",
        "(errors near 1) while the hierarchical one holds at percent level.",
        "",
        f"work anchor (h=3.0, N={N}): dense LAPACK {fc_dense.flops / 1e9:.1f}"
        f" GFLOP vs hierarchical {fc_hier.flops / 1e9:.1f} GFLOP "
        f"({fc_dense.flops / fc_hier.flops:.0f}x; gap grows ~N^2/(s log N)).",
    ]
    emit("baseline_approximation", lines)

    assert rows[0][1] < 1e-4                    # Nystrom fine at huge h
    assert rows[-1][1] > 10 * rows[-1][2]       # collapses at small h
    assert rows[-1][2] < 0.1                    # hierarchical still works
    assert fc_dense.flops > 2 * fc_hier.flops

    benchmark.pedantic(
        lambda: NystromApproximation(
            GaussianKernel(bandwidth=3.0), rank=RANK, seed=1
        ).fit(X),
        rounds=1,
        iterations=1,
    )


def test_baseline_ridge_accuracy(benchmark):
    """End-to-end: the approximation gap becomes an accuracy gap."""
    ds = load_dataset("covtype", N, seed=0)
    rows = []
    for h, lam in ((0.5, 0.3), (0.35, 0.1)):
        kernel = GaussianKernel(bandwidth=h)
        clf = KernelRidgeClassifier(
            kernel, lam=lam,
            tree_config=TreeConfig(leaf_size=128, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-5, max_rank=RANK, num_samples=256, num_neighbors=16, seed=2
            ),
        ).fit(ds.X_train, ds.y_train)
        acc_h = clf.score(ds.X_test, ds.y_test)

        ny = NystromApproximation(kernel, rank=RANK, seed=1).fit(ds.X_train)
        ny.factorize(lam)
        w = ny.solve(np.asarray(ds.y_train, dtype=np.float64))
        scores = gsks_matvec(kernel, ds.X_test, ds.X_train, w)
        pred = np.sign(scores)
        pred[pred == 0] = 1.0
        acc_n = accuracy(ds.y_test, pred)
        rows.append((h, lam, acc_h, acc_n, ny.matrix_error(ds.X_train, seed=3)))

    widths = [7, 7, 10, 13, 13]
    lines = [
        f"BASELINES (2/2) -- kernel ridge accuracy, COVTYPE stand-in "
        f"(N={N}, rank budget {RANK})",
        "",
        fmt_row(["h", "lam", "hier-acc", "nystrom-acc", "nystrom-err"], widths),
    ]
    for h, lam, ah, an, ne in rows:
        lines.append(
            fmt_row(
                [h, lam, f"{100 * ah:.1f}%", f"{100 * an:.1f}%", f"{ne:.1e}"],
                widths,
            )
        )
    lines += [
        "",
        "at the narrow bandwidths cross-validation actually selects, the",
        "Nystrom model's approximation error costs classification accuracy",
        "while the hierarchical solver is unaffected — the paper's point",
        "about kernel methods needing more than global low rank.",
    ]
    emit("baseline_ridge", lines)

    assert rows[-1][2] > rows[-1][3] + 0.05  # hier wins at narrow h
    assert rows[-1][2] > 0.9

    benchmark(lambda: None)
