"""Ablation: level restriction L — reduced-system size vs solver cost.

Section II-C: with the frontier at level L, the coalesced reduced
system has dimension ~2^L * s; the direct method pays
O(2^{2L} s^2 N + 2^{3L} s^3) to factorize it (infeasible at the
paper's L = 7: >500 GB just for Z), while the hybrid pays per-solve
GMRES iterations instead.  This sweep shows the crossover.
"""

import time
import warnings

import numpy as np
import pytest

from conftest import emit, fmt_row
from repro.config import GMRESConfig, SkeletonConfig, SolverConfig, TreeConfig
from repro.datasets import load_dataset
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.solvers import factorize
from repro.util.flops import FlopCounter

N = 4096
LEVELS = [1, 2, 3, 4]


def _case(level):
    ds = load_dataset("susy", N, seed=0)
    hmat = build_hmatrix(
        ds.X_train,
        GaussianKernel(bandwidth=1.0),
        tree_config=TreeConfig(leaf_size=128, seed=1),
        skeleton_config=SkeletonConfig(
            tau=1e-5, max_rank=128, num_samples=256, num_neighbors=16, seed=2,
            level_restriction=level,
        ),
    )
    u = np.random.default_rng(0).standard_normal(N)
    out = {"level": level, "reduced": hmat.skeletons.total_frontier_rank()}
    for method in ("direct", "hybrid"):
        cfg = SolverConfig(
            method=method,
            check_stability=False,
            gmres=GMRESConfig(tol=1e-8, max_iters=400),
        )
        with FlopCounter() as fc:
            t0 = time.perf_counter()
            fact = factorize(hmat, 1.0, cfg)
            tf = time.perf_counter() - t0
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            t0 = time.perf_counter()
            w = fact.solve(u)
            ts = time.perf_counter() - t0
        out[method] = (
            tf, fc.flops, ts, fact.residual(u, w),
            sum(fact.reduced_iterations),
        )
    return out


def test_ablation_level_restriction(benchmark):
    rows = [_case(level) for level in LEVELS]
    widths = [4, 8, 10, 11, 10, 11, 10, 6]
    lines = [
        f"ABLATION -- level restriction L sweep (SUSY stand-in, N={N}, "
        "tau=1e-5, smax=128)",
        "M = coalesced reduced-system dimension (sum of frontier ranks)",
        "",
        fmt_row(
            ["L", "M", "Tf-direct", "GF-direct", "Tf-hybrid", "GF-hybrid",
             "Ts-hybrid", "KSP"],
            widths,
        ),
    ]
    for r in rows:
        tf_d, ff_d, _ts_d, _res_d, _ = r["direct"]
        tf_h, ff_h, ts_h, _res_h, ksp = r["hybrid"]
        lines.append(
            fmt_row(
                [
                    r["level"], r["reduced"], f"{tf_d:.2f}s",
                    f"{ff_d / 1e9:.1f}", f"{tf_h:.2f}s", f"{ff_h / 1e9:.1f}",
                    f"{ts_h:.3f}s", ksp,
                ],
                widths,
            )
        )
    m0, m_last = rows[0]["reduced"], rows[-1]["reduced"]
    lines += [
        "",
        f"reduced system grows {m0} -> {m_last} (~2^L s); the direct",
        "factorization's flops grow with it while the hybrid's stay flat —",
        "at the paper's L=7 the direct Z alone would need >500 GB, the",
        "hybrid still runs (its cost moves into the per-solve iterations).",
    ]
    emit("ablation_level", lines)

    assert rows[-1]["reduced"] > rows[0]["reduced"]
    # hybrid factorization cost must not blow up with L.
    ratio_hybrid = rows[-1]["hybrid"][1] / rows[0]["hybrid"][1]
    ratio_direct = rows[-1]["direct"][1] / rows[0]["direct"][1]
    assert ratio_direct > ratio_hybrid

    benchmark.pedantic(lambda: _case(2), rounds=1, iterations=1)
