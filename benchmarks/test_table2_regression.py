"""Table II: datasets + kernel ridge regression accuracy.

Paper: binary classification accuracy via kernel ridge regression on
COVTYPE (96%), SUSY (78%), MNIST2M (100%), HIGGS (73%), with (h, lam)
from holdout cross-validation.

Reproduction: synthetic stand-ins at N = 2048 (paper: 0.1M-10.5M) with
matched d and class-overlap structure; a small (h, lambda) grid search
mirrors the paper's cross-validation, then the best model is scored on
disjoint test points.  Absolute accuracies depend on the stand-in
geometry; the *shape* reproduced is easy sets high / hard sets lower,
plus the full train-predict pipeline through the fast solver.
"""

import pytest

from conftest import emit, fmt_row
from repro.config import SkeletonConfig, TreeConfig
from repro.datasets import load_dataset, paper_parameters
from repro.kernels import GaussianKernel
from repro.learning import KernelRidgeClassifier, holdout_cross_validation

N_TRAIN = 2048

TREE = TreeConfig(leaf_size=128, seed=1)
SKEL = SkeletonConfig(
    tau=1e-5, max_rank=128, num_samples=256, num_neighbors=16, seed=2
)

#: grids per dataset: the stand-ins are normalized, so bandwidths near 1
#: are the relevant range (the paper's h values were for its raw data).
GRIDS = {
    "covtype": ([0.5, 1.0, 2.0], [0.01, 0.3]),
    "susy": ([0.5, 1.0, 2.0], [0.1, 1.0]),
    "higgs": ([0.5, 1.0, 2.0], [0.1, 1.0]),
    "mnist2m": ([1.0, 3.0], [0.01, 1.0]),
}

_results: dict[str, tuple] = {}


@pytest.mark.parametrize("name", list(GRIDS))
def test_table2_dataset(benchmark, name):
    ds = load_dataset(name, N_TRAIN, seed=0)
    bandwidths, lambdas = GRIDS[name]
    cv = holdout_cross_validation(
        ds.X_train,
        ds.y_train,
        bandwidths,
        lambdas,
        holdout_fraction=0.2,
        seed=0,
        tree_config=TREE,
        skeleton_config=SKEL,
    )
    clf = KernelRidgeClassifier(
        GaussianKernel(bandwidth=cv.best_h),
        lam=cv.best_lam,
        tree_config=TREE,
        skeleton_config=SKEL,
    )

    def train():
        clf.fit(ds.X_train, ds.y_train)
        return clf

    benchmark.pedantic(train, rounds=1, iterations=1)
    acc = clf.score(ds.X_test, ds.y_test)
    _results[name] = (ds, cv, acc, clf.train_residual)
    assert acc > 0.6  # every stand-in is learnable well above chance


def test_table2_emit(benchmark):
    benchmark(lambda: None)  # keep this row alive under --benchmark-only
    if not _results:
        pytest.skip("run the per-dataset benchmarks first")
    widths = [9, 7, 5, 7, 8, 7, 10, 10, 11]
    lines = [
        f"TABLE II -- kernel ridge regression (stand-ins, N={N_TRAIN}; "
        "paper N in millions)",
        "",
        fmt_row(
            ["dataset", "N", "d", "h*", "lam*", "Acc", "paper-Acc", "paper-N", "residual"],
            widths,
        ),
    ]
    for name, (ds, cv, acc, res) in _results.items():
        paper = paper_parameters(name)
        lines.append(
            fmt_row(
                [
                    name, ds.n, ds.d, cv.best_h, cv.best_lam,
                    f"{100 * acc:.0f}%", paper["paper_acc"], paper["paper_n"],
                    f"{res:.1e}",
                ],
                widths,
            )
        )
    lines += [
        "",
        "(h*, lam*) from holdout cross-validation on the training split,",
        "exactly the paper's selection procedure; Acc on disjoint test points.",
    ]
    emit("table2_regression", lines)
