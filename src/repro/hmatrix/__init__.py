"""Hierarchical (ASKIT) representation of the kernel matrix.

:class:`HMatrix` pins down *exactly* which approximate matrix ``K~``
the library works with:

* leaf diagonal blocks are exact: ``K~_leaf = K_leaf``;
* at every skeletonized internal node (at or below the frontier), the
  sibling off-diagonal blocks are row-compressed through the target
  node's telescoped skeleton basis: ``K_lr ~= P_{l l~} K_{l~ r}``
  (paper eq. 6);
* above the skeletonization frontier A, off-diagonal blocks between
  frontier nodes f != g use f's skeleton against g's raw points:
  ``K_fg ~= P_{f f~} K_{f~ g}`` (the coalesced ``W V`` of section II-C).

The direct factorization inverts this K~ *exactly* (up to roundoff), so
``HMatrix.to_dense`` is the ground truth every solver test compares
against, and ``HMatrix.matvec`` is the fast O(s N log N) treecode
evaluation used by the iterative baselines.
"""

from repro.hmatrix.hmatrix import HMatrix, build_hmatrix
from repro.hmatrix.errors import estimate_matrix_error, estimate_largest_singular_value

__all__ = [
    "HMatrix",
    "build_hmatrix",
    "estimate_matrix_error",
    "estimate_largest_singular_value",
]
