"""Dense assembly of K~ for validation (tests and small problems).

Assembles, in tree order, exactly the matrix :class:`~repro.hmatrix.HMatrix`
defines; the direct factorization must invert this matrix to roundoff.
O(N^2) memory — only use for validation-scale N.
"""

from __future__ import annotations

import numpy as np

from repro.hmatrix.hmatrix import HMatrix
from repro.tree.node import Node

__all__ = ["assemble_dense", "assemble_dense_block"]


def assemble_dense_block(h: HMatrix, node: Node) -> np.ndarray:
    """Dense ``K~_{node,node}`` for a node at/below the frontier."""
    tree = h.tree
    if tree.is_leaf(node):
        return np.array(h.leaf_block(node), copy=True)
    left, right = tree.children(node)
    nl = left.size
    out = np.zeros((node.size, node.size))
    out[:nl, :nl] = assemble_dense_block(h, left)
    out[nl:, nl:] = assemble_dense_block(h, right)
    Pl = h.skeletons.telescoped_basis(left)
    Pr = h.skeletons.telescoped_basis(right)
    out[:nl, nl:] = Pl @ h.sibling_block(left).to_dense()
    out[nl:, :nl] = Pr @ h.sibling_block(right).to_dense()
    return out


def assemble_dense(h: HMatrix) -> np.ndarray:
    """Dense K~ in tree order."""
    n = h.n_points
    out = np.zeros((n, n))
    for f in h.frontier:
        out[f.lo : f.hi, f.lo : f.hi] = assemble_dense_block(h, f)
    if len(h.frontier) > 1:
        for f in h.frontier:
            sk = h.skeletons[f.id]
            Pf = h.skeletons.telescoped_basis(f)
            rows = h.kernel(h.tree.points[sk.skeleton], h.tree.points)
            block = Pf @ rows
            out[f.lo : f.hi, : f.lo] = block[:, : f.lo]
            out[f.lo : f.hi, f.hi :] = block[:, f.hi :]
    return out
