"""Approximation-error and spectrum estimators.

Figure 5's lambda sweep sets ``lambda = c * sigma_1(K~)``; we estimate
``sigma_1`` by power iteration on ``K~ K~^T`` through the fast matvec.
The matrix-approximation error ``||K - K~||`` is estimated by sampling
(exact entries vs. H-matrix entries on random probe vectors), the same
style of estimate the ASKIT papers report.
"""

from __future__ import annotations

import numpy as np

from repro.hmatrix.hmatrix import HMatrix
from repro.util.random import as_generator

__all__ = ["estimate_matrix_error", "estimate_largest_singular_value"]


def estimate_largest_singular_value(
    h: HMatrix, *, n_iters: int = 20, seed: int | np.random.Generator | None = 0
) -> float:
    """Power-iteration estimate of ``sigma_1(K~)``.

    K~ is mildly nonsymmetric (the two-sided compression is not
    symmetric), so we iterate on the Gram operator using matvecs with
    K~ and its transpose approximated by K~ itself; for the kernels at
    hand the asymmetry is O(tau) and the sigma_1 estimate is used only
    to place lambda on the paper's condition-number grid.
    """
    rng = as_generator(seed)
    v = rng.standard_normal(h.n_points)
    v /= np.linalg.norm(v)
    sigma = 0.0
    for _ in range(max(1, n_iters)):
        w = h.matvec(v)
        sigma = float(np.linalg.norm(w))
        if sigma == 0.0:
            return 0.0
        v = w / sigma
    return sigma


def estimate_matrix_error(
    h: HMatrix,
    *,
    n_probes: int = 10,
    seed: int | np.random.Generator | None = 0,
) -> float:
    """Randomized estimate of the relative error ``||K - K~|| / ||K||``.

    Compares exact kernel products (blocked, matrix-free) with the
    H-matrix matvec on Gaussian probe vectors:
    ``sqrt(mean ||(K - K~) g||^2 / mean ||K g||^2)`` — an unbiased
    Frobenius-norm ratio estimate.
    """
    from repro.kernels.gsks import gsks_matvec

    rng = as_generator(seed)
    n = h.n_points
    norms = h.norms.all()
    num = 0.0
    den = 0.0
    for _ in range(max(1, n_probes)):
        g = rng.standard_normal(n)
        exact = gsks_matvec(
            h.kernel, h.tree.points, h.tree.points, g,
            norms_a=norms, norms_b=norms,
        )
        approx = h.matvec(g)
        num += float(np.dot(exact - approx, exact - approx))
        den += float(np.dot(exact, exact))
    if den == 0.0:
        return 0.0
    return float(np.sqrt(num / den))
