"""The hierarchical kernel matrix K~ (tree + skeletons + evaluation).

All vectors here live in *tree order* (the ball tree's permutation);
the :class:`~repro.core.solver.FastKernelSolver` facade translates to
and from user order.

Dense block payloads (leaf diagonal blocks and the skeleton-row blocks
of PRECOMPUTED summations) live in a shared
:class:`~repro.perf.BlockCache` under this matrix's namespace, so the
storage budget and store-vs-recompute policy apply uniformly; the
lightweight :class:`~repro.kernels.summation.KernelSummation` wrappers
are memoized per node under the cache's striped locks, which lets the
task-parallel factorization executor fill different blocks
concurrently.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.config import SkeletonConfig, TreeConfig
from repro.kernels.base import Kernel
from repro.kernels.gsks import GSKSWorkspace
from repro.kernels.summation import KernelSummation, SummationMethod
from repro.perf.blockcache import BlockCache, BlockInfo, default_cache, next_namespace
from repro.perf.norms import NormTable
from repro.sampling.neighbors import NeighborTable
from repro.skeleton.skeletonize import SkeletonSet, skeletonize
from repro.tree.balltree import BallTree
from repro.tree.node import Node
from repro.util.flops import count_flops
from repro.util.validation import check_points, check_vector

__all__ = ["HMatrix", "build_hmatrix"]


class HMatrix:
    """ASKIT approximation ``K~`` of the kernel matrix over a ball tree.

    Parameters
    ----------
    tree:
        Built ball tree.
    kernel:
        Kernel function.
    skeletons:
        :class:`SkeletonSet` from :func:`repro.skeleton.skeletonize`.
    summation:
        Strategy for off-diagonal skeleton-row blocks during matvec
        ("precomputed" stores them, "fused"/"reevaluate" are
        matrix-free; paper section II-D).
    cache:
        :class:`~repro.perf.BlockCache` holding this matrix's dense
        blocks; defaults to the process-wide
        :func:`~repro.perf.default_cache`.
    """

    def __init__(
        self,
        tree: BallTree,
        kernel: Kernel,
        skeletons: SkeletonSet,
        *,
        summation: str | SummationMethod = SummationMethod.PRECOMPUTED,
        cache: BlockCache | None = None,
    ) -> None:
        self.tree = tree
        self.kernel = kernel
        self.skeletons = skeletons
        self.summation = SummationMethod(summation)
        self.frontier: list[Node] = skeletons.frontier()
        self._frontier_ids = {f.id for f in self.frontier}
        self._below: list[Node] = self._nodes_at_or_below_frontier()
        self._workspace = GSKSWorkspace()
        #: tree-wide squared norms, shared by every GSKS call site.
        self.norms = NormTable(tree.points, kernel)
        self._attach_cache(cache if cache is not None else default_cache())
        # memoized summation wrappers (dense payloads live in the cache;
        # fills are guarded per key by the cache's striped locks).
        self._sibling_blocks: dict[int, KernelSummation] = {}
        self._frontier_blocks: dict[int, KernelSummation] = {}
        self._own_blocks: dict[int, KernelSummation] = {}
        self._pair_blocks: dict[tuple, KernelSummation] = {}

    def _attach_cache(self, cache: BlockCache) -> None:
        self.cache = cache
        self._ns = next_namespace()
        # release this matrix's blocks when it is garbage collected (the
        # cache is process-wide and would otherwise pin them forever).
        self._finalizer = weakref.finalize(self, cache.drop_prefix, self._ns)

    # -- pickling: cache handles are process-local ------------------------
    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("cache")
        state.pop("_ns")
        state.pop("_finalizer")
        # summation wrappers are lazy caches holding cache handles; the
        # receiver rebuilds them (kernel evaluation is deterministic, so
        # rebuilt blocks are bitwise identical).
        state["_sibling_blocks"] = {}
        state["_frontier_blocks"] = {}
        state["_own_blocks"] = {}
        state["_pair_blocks"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._attach_cache(default_cache())

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        n = self.tree.n_points
        return (n, n)

    @property
    def n_points(self) -> int:
        return self.tree.n_points

    def _nodes_at_or_below_frontier(self) -> list[Node]:
        out: list[Node] = []
        stack = list(self.frontier)
        while stack:
            node = stack.pop()
            out.append(node)
            if not self.tree.is_leaf(node):
                left, right = self.tree.children(node)
                stack.extend((left, right))
        return out

    # -- cached blocks ---------------------------------------------------
    def leaf_block(self, leaf: Node) -> np.ndarray:
        """Exact dense diagonal block of a leaf."""
        key = (self._ns, "leaf", leaf.id)
        d = self.tree.points.shape[1]

        def build() -> np.ndarray:
            return self._build_leaf(leaf)

        info = BlockInfo(
            m=leaf.size, n=leaf.size, d=d,
            flops_per_entry=self.kernel.flops_per_entry,
        )
        return self.cache.get_or_compute(key, build, info)

    def leaf_blocks_stacked(self, leaves: list[Node]) -> np.ndarray:
        """Dense diagonal blocks of same-sized leaves as one (g, m, m) stack.

        Cache misses are evaluated in a single stacked kernel call
        (bitwise identical to per-leaf evaluation) and admitted to the
        block cache under the same keys :meth:`leaf_block` uses, so the
        two entry points stay interchangeable.  The returned stack is
        freshly written (safe for the caller to modify in place).
        """
        from repro.perf import levelbatch

        d = self.tree.points.shape[1]
        m = leaves[0].size
        info = BlockInfo(
            m=m, n=m, d=d, flops_per_entry=self.kernel.flops_per_entry
        )
        keys = [(self._ns, "leaf", leaf.id) for leaf in leaves]
        need = [
            i for i, key in enumerate(keys) if not self.cache.contains(key)
        ]
        slices: dict[int, np.ndarray] = {}
        if need:
            pts = np.stack([self.tree.node_points(leaves[i]) for i in need])
            nrm = np.stack([self.norms.node(leaves[i]) for i in need])
            blocks = levelbatch.stacked_kernel_blocks(
                self.kernel, pts, pts, nrm, nrm
            )
            for pos, i in enumerate(need):
                slices[i] = blocks[pos].copy()

        out = np.empty((len(leaves), m, m))
        for i, key in enumerate(keys):
            pre = slices.get(i)
            if pre is not None:
                out[i] = self.cache.get_or_compute(key, lambda s=pre: s, info)
            else:
                out[i] = self.cache.get_or_compute(
                    key, lambda leaf=leaves[i]: self._build_leaf(leaf), info
                )
        return out

    def _build_leaf(self, leaf: Node) -> np.ndarray:
        pts = self.tree.node_points(leaf)
        nrm = self.norms.node(leaf)
        return self.kernel(pts, pts, norms_a=nrm, norms_b=nrm)

    def materialize_blocks(
        self, summs: list[KernelSummation]
    ) -> list[np.ndarray | None]:
        """Dense payloads for a same-shaped group of summation blocks.

        Batched-cache-fill version of ``KernelSummation._stored()``: one
        stacked kernel evaluation covers the group's cache misses; a
        ``None`` entry means the cache declined that block and the
        caller must use its per-node matrix-free path (exactly as a
        per-node product would).
        """
        from repro.perf import levelbatch

        return levelbatch.materialize_summations(summs)

    def _summation(
        self,
        store: dict,
        obj_key,
        rows: np.ndarray,
        node: Node | None,
        method: SummationMethod,
        cache_kind: str | None,
        *,
        norms_a: np.ndarray | None,
        norms_b: np.ndarray | None,
        XB: np.ndarray | None = None,
    ) -> KernelSummation:
        """Memoize one KernelSummation under a striped lock."""
        ks = store.get(obj_key)
        if ks is not None:
            return ks
        with self.cache.key_lock((self._ns, "obj", obj_key)):
            ks = store.get(obj_key)
            if ks is None:
                if XB is None:
                    XB = self.tree.node_points(node)
                cache_key = (
                    (self._ns, cache_kind, obj_key) if cache_kind else None
                )
                ks = KernelSummation(
                    self.kernel,
                    rows,
                    XB,
                    method,
                    workspace=self._workspace,
                    norms_a=norms_a,
                    norms_b=norms_b,
                    cache=self.cache if cache_key else None,
                    cache_key=cache_key,
                )
                store[obj_key] = ks
        return ks

    def sibling_block(self, child: Node) -> KernelSummation:
        """``K_{c~ sib(c)}`` — child-skeleton rows vs raw sibling points.

        ``child`` must be a child of a skeletonized (or frontier) node.
        """
        ks = self._sibling_blocks.get(child.id)
        if ks is not None:
            return ks
        sk = self.skeletons[child.id]
        sib = self.tree.node(child.sibling_id)
        return self._summation(
            self._sibling_blocks,
            child.id,
            self.tree.points[sk.skeleton],
            sib,
            self.summation,
            "sib",
            norms_a=self.norms.gather(sk.skeleton),
            norms_b=self.norms.node(sib),
        )

    def frontier_row_block(self, f: Node) -> KernelSummation:
        """``K_{f~ X}`` — frontier-skeleton rows against *all* points.

        Used by the coalesced above-frontier correction; the own-block
        part is subtracted by the caller.
        """
        ks = self._frontier_blocks.get(f.id)
        if ks is not None:
            return ks
        sk = self.skeletons[f.id]
        return self._summation(
            self._frontier_blocks,
            f.id,
            self.tree.points[sk.skeleton],
            None,
            self.summation,
            "frontier",
            norms_a=self.norms.gather(sk.skeleton),
            norms_b=self.norms.all(),
            XB=self.tree.points,
        )

    def own_block(self, f: Node) -> KernelSummation:
        """``K_{f~ f}`` — frontier-skeleton rows vs the node's own points
        (always matrix-free: used once per product as a correction)."""
        ks = self._own_blocks.get(f.id)
        if ks is not None:
            return ks
        sk = self.skeletons[f.id]
        return self._summation(
            self._own_blocks,
            f.id,
            self.tree.points[sk.skeleton],
            f,
            SummationMethod.FUSED,
            None,
            norms_a=self.norms.gather(sk.skeleton),
            norms_b=self.norms.node(f),
        )

    def pair_block(
        self,
        f: Node,
        g: Node,
        method: SummationMethod | str | None = None,
    ) -> KernelSummation:
        """``K_{f~ g}`` — skeleton rows of ``f`` against the raw points of
        ``g`` (the reduced frontier system's off-diagonal V blocks).
        For ``g == sib(f)`` prefer :meth:`sibling_block`, which this
        block would duplicate."""
        method = SummationMethod(method) if method is not None else self.summation
        obj_key = (f.id, g.id, method.value)
        ks = self._pair_blocks.get(obj_key)
        if ks is not None:
            return ks
        skf = self.skeletons[f.id]
        return self._summation(
            self._pair_blocks,
            obj_key,
            self.tree.points[skf.skeleton],
            g,
            method,
            "pair",
            norms_a=self.norms.gather(skf.skeleton),
            norms_b=self.norms.node(g),
        )

    # ------------------------------------------------------------------
    def matvec(self, u: np.ndarray) -> np.ndarray:
        """Fast product ``K~ @ u`` in O(s N log N) (tree order).

        Accepts shape (N,) or (N, k).
        """
        u = check_vector(u, self.n_points)
        single = u.ndim == 1
        U = u[:, None] if single else u
        tree = self.tree
        sset = self.skeletons

        # skeleton-space accumulators z_alpha (s_alpha, k).
        z: dict[int, np.ndarray] = {}

        def zadd(node_id: int, contrib: np.ndarray) -> None:
            acc = z.get(node_id)
            if acc is None:
                z[node_id] = contrib.copy()
            else:
                acc += contrib

        # 1) exact leaf diagonal blocks.
        w = np.zeros_like(U)
        for leaf in tree.leaves():
            if not sset.is_skeletonized(leaf.id) and tree.depth > 0:
                continue  # unreachable by construction; defensive.
            block = self.leaf_block(leaf)
            w[leaf.lo : leaf.hi] = block @ U[leaf.lo : leaf.hi]
            count_flops(2 * block.size * U.shape[1], label="matvec_leaf")
        if tree.depth == 0:
            return w[:, 0] if single else w

        # 2) sibling interactions below (and at) the frontier.
        for node in self._below:
            if tree.is_leaf(node):
                continue
            left, right = tree.children(node)
            zadd(left.id, self.sibling_block(left).matvec(U[right.lo : right.hi]))
            zadd(right.id, self.sibling_block(right).matvec(U[left.lo : left.hi]))

        # 3) coalesced correction above the frontier:
        #    z_f += K_{f~ X} u - K_{f~ f} u_f.
        if len(self.frontier) > 1:
            for f in self.frontier:
                full = self.frontier_row_block(f).matvec(U)
                own = self.own_block(f).matvec(U[f.lo : f.hi])
                zadd(f.id, full - own)

        # 4) push skeleton-space contributions down through P^T.
        for node in self._topdown_below():
            acc = z.get(node.id)
            if acc is None:
                continue
            sk = sset[node.id]
            if tree.is_leaf(node):
                w[node.lo : node.hi] += sk.proj.T @ acc
                count_flops(2 * sk.proj.size * U.shape[1], label="matvec_down")
            else:
                left, right = tree.children(node)
                sl = sset[left.id].rank
                zadd(left.id, sk.proj[:, :sl].T @ acc)
                zadd(right.id, sk.proj[:, sl:].T @ acc)
                count_flops(2 * sk.proj.size * U.shape[1], label="matvec_down")
        return w[:, 0] if single else w

    def _topdown_below(self):
        """Nodes at/below the frontier, parents before children."""
        return sorted(self._below, key=lambda n: n.level)

    # ------------------------------------------------------------------
    def rmatvec(self, u: np.ndarray) -> np.ndarray:
        """Transpose product ``K~^T @ u`` in O(s N log N) (tree order).

        K~ is mildly nonsymmetric (target-side row compression), so the
        adjoint is a distinct operation: transposing
        ``K_lr ~= P_{l l~} K_{l~ r}`` gives *source-side* compression
        ``K~^T_{rl} = K_{r l~} P_{l~ l}`` — the classic treecode shape
        with an *upward* pass accumulating skeleton weights
        ``z_alpha = P_{alpha~ alpha} u_alpha`` (telescoped through the
        children) followed by skeleton-row transposed products.
        """
        u = check_vector(u, self.n_points)
        single = u.ndim == 1
        U = u[:, None] if single else u
        tree = self.tree
        sset = self.skeletons

        w = np.zeros_like(U)
        for leaf in tree.leaves():
            block = self.leaf_block(leaf)
            w[leaf.lo : leaf.hi] = block.T @ U[leaf.lo : leaf.hi]
            count_flops(2 * block.size * U.shape[1], label="rmatvec_leaf")
        if tree.depth == 0:
            return w[:, 0] if single else w

        # upward pass: skeleton weights z_alpha = P_{alpha~ alpha} u_alpha,
        # telescoped from the children (leaves first).
        z: dict[int, np.ndarray] = {}
        for node in sorted(self._below, key=lambda n: -n.level):
            sk = sset[node.id]
            if tree.is_leaf(node):
                z[node.id] = sk.proj @ U[node.lo : node.hi]
            else:
                left, right = tree.children(node)
                z[node.id] = sk.proj @ np.concatenate(
                    [z[left.id], z[right.id]], axis=0
                )
            count_flops(2 * sk.proj.size * U.shape[1], label="rmatvec_up")

        # sibling interactions, transposed: w_r += K_{l~ r}^T z_l.
        for node in self._below:
            if tree.is_leaf(node):
                continue
            left, right = tree.children(node)
            w[right.lo : right.hi] += self.sibling_block(left).rmatvec(z[left.id])
            w[left.lo : left.hi] += self.sibling_block(right).rmatvec(z[right.id])

        # above the frontier: w += sum_f K_{f~ X}^T z_f minus own blocks.
        if len(self.frontier) > 1:
            for f in self.frontier:
                zf = z[f.id]
                w += self.frontier_row_block(f).rmatvec(zf)
                w[f.lo : f.hi] -= self.own_block(f).rmatvec(zf)
        return w[:, 0] if single else w

    def as_linear_operator(self, lam: float = 0.0):
        """``lambda I + K~`` as a :class:`scipy.sparse.linalg.LinearOperator`.

        Exposes ``matvec`` and ``rmatvec``, so the hierarchical matrix
        plugs directly into SciPy's iterative solvers and eigensolvers
        (``gmres``, ``lsqr``, ``eigs``, ...).
        """
        from scipy.sparse.linalg import LinearOperator

        n = self.n_points
        return LinearOperator(
            (n, n),
            matvec=lambda v: self.matvec(v) + lam * np.asarray(v, dtype=np.float64),
            rmatvec=lambda v: self.rmatvec(v) + lam * np.asarray(v, dtype=np.float64),
            dtype=np.float64,
        )

    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize K~ (tree order) for validation.  O(N^2) memory."""
        from repro.hmatrix.dense import assemble_dense

        return assemble_dense(self)

    def regularized_matvec(self, lam: float, u: np.ndarray) -> np.ndarray:
        """``(lambda I + K~) u`` — the operator the solvers invert."""
        return self.matvec(u) + lam * np.asarray(u, dtype=np.float64)

    def storage_words(self) -> int:
        """Persistent float64 words held for this matrix (memory study):
        cached dense blocks under its namespace, the norm table, and the
        skeleton projection factors."""
        total = self.cache.words_of_prefix(self._ns)
        total += self.norms.storage_words()
        for sk in self.skeletons.skeletons.values():
            total += sk.proj.size
        return total

    def cache_stats(self):
        """Counter snapshot of the underlying block cache (process-wide)."""
        return self.cache.stats()


def build_hmatrix(
    X: np.ndarray,
    kernel: Kernel,
    *,
    tree_config: TreeConfig | None = None,
    skeleton_config: SkeletonConfig | None = None,
    neighbors: NeighborTable | None = None,
    summation: str | SummationMethod = SummationMethod.PRECOMPUTED,
    cache: BlockCache | None = None,
    deadline=None,
    coarsen=None,
) -> HMatrix:
    """Convenience constructor: tree + skeletonization + HMatrix.

    ``deadline``/``coarsen`` (see :mod:`repro.resilience`) bound the
    work: with a coarsen policy, deadline pressure coarsens ``tau``
    mid-skeletonization instead of raising.
    """
    from repro.obs import span

    X = check_points(X)
    with span("tree", counters=True, attrs={"n": X.shape[0], "d": X.shape[1]}):
        tree = BallTree(X, tree_config)
    with span("skeletonize", counters=True, fallback=True,
              attrs={"depth": tree.depth}):
        sset = skeletonize(
            tree,
            kernel,
            skeleton_config,
            neighbors=neighbors,
            deadline=deadline,
            coarsen=coarsen,
        )
    return HMatrix(tree, kernel, sset, summation=summation, cache=cache)
