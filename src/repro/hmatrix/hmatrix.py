"""The hierarchical kernel matrix K~ (tree + skeletons + evaluation).

All vectors here live in *tree order* (the ball tree's permutation);
the :class:`~repro.core.solver.FastKernelSolver` facade translates to
and from user order.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.config import SkeletonConfig, TreeConfig
from repro.kernels.base import Kernel
from repro.kernels.gsks import GSKSWorkspace
from repro.kernels.summation import KernelSummation, SummationMethod
from repro.sampling.neighbors import NeighborTable
from repro.skeleton.skeletonize import SkeletonSet, skeletonize
from repro.tree.balltree import BallTree
from repro.tree.node import Node
from repro.util.flops import count_flops
from repro.util.validation import check_points, check_vector

__all__ = ["HMatrix", "build_hmatrix"]


class HMatrix:
    """ASKIT approximation ``K~`` of the kernel matrix over a ball tree.

    Parameters
    ----------
    tree:
        Built ball tree.
    kernel:
        Kernel function.
    skeletons:
        :class:`SkeletonSet` from :func:`repro.skeleton.skeletonize`.
    summation:
        Strategy for off-diagonal skeleton-row blocks during matvec
        ("precomputed" stores them, "fused"/"reevaluate" are
        matrix-free; paper section II-D).
    """

    def __init__(
        self,
        tree: BallTree,
        kernel: Kernel,
        skeletons: SkeletonSet,
        *,
        summation: str | SummationMethod = SummationMethod.PRECOMPUTED,
    ) -> None:
        self.tree = tree
        self.kernel = kernel
        self.skeletons = skeletons
        self.summation = SummationMethod(summation)
        self.frontier: list[Node] = skeletons.frontier()
        self._frontier_ids = {f.id for f in self.frontier}
        self._below: list[Node] = self._nodes_at_or_below_frontier()
        self._workspace = GSKSWorkspace()
        # lazy caches; the lock makes them safe under the task-parallel
        # factorization executor (repro.parallel.taskdag).
        self._cache_lock = threading.Lock()
        self._sibling_blocks: dict[int, KernelSummation] = {}
        self._frontier_blocks: dict[int, KernelSummation] = {}
        self._leaf_blocks: dict[int, np.ndarray] = {}

    # -- pickling: locks are not picklable; recreate on load -------------
    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_cache_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._cache_lock = threading.Lock()

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        n = self.tree.n_points
        return (n, n)

    @property
    def n_points(self) -> int:
        return self.tree.n_points

    def _nodes_at_or_below_frontier(self) -> list[Node]:
        out: list[Node] = []
        stack = list(self.frontier)
        while stack:
            node = stack.pop()
            out.append(node)
            if not self.tree.is_leaf(node):
                left, right = self.tree.children(node)
                stack.extend((left, right))
        return out

    # -- cached blocks ---------------------------------------------------
    def leaf_block(self, leaf: Node) -> np.ndarray:
        """Exact dense diagonal block of a leaf."""
        block = self._leaf_blocks.get(leaf.id)
        if block is None:
            pts = self.tree.node_points(leaf)
            block = self.kernel(pts, pts)
            with self._cache_lock:
                block = self._leaf_blocks.setdefault(leaf.id, block)
        return block

    def sibling_block(self, child: Node) -> KernelSummation:
        """``K_{c~ sib(c)}`` — child-skeleton rows vs raw sibling points.

        ``child`` must be a child of a skeletonized (or frontier) node.
        """
        ks = self._sibling_blocks.get(child.id)
        if ks is None:
            sk = self.skeletons[child.id]
            sib = self.tree.node(child.sibling_id)
            ks = KernelSummation(
                self.kernel,
                self.tree.points[sk.skeleton],
                self.tree.node_points(sib),
                self.summation,
                workspace=self._workspace,
            )
            with self._cache_lock:
                ks = self._sibling_blocks.setdefault(child.id, ks)
        return ks

    def frontier_row_block(self, f: Node) -> KernelSummation:
        """``K_{f~ X}`` — frontier-skeleton rows against *all* points.

        Used by the coalesced above-frontier correction; the own-block
        part is subtracted by the caller.
        """
        ks = self._frontier_blocks.get(f.id)
        if ks is None:
            sk = self.skeletons[f.id]
            ks = KernelSummation(
                self.kernel,
                self.tree.points[sk.skeleton],
                self.tree.points,
                self.summation,
                workspace=self._workspace,
            )
            with self._cache_lock:
                ks = self._frontier_blocks.setdefault(f.id, ks)
        return ks

    # ------------------------------------------------------------------
    def matvec(self, u: np.ndarray) -> np.ndarray:
        """Fast product ``K~ @ u`` in O(s N log N) (tree order).

        Accepts shape (N,) or (N, k).
        """
        u = check_vector(u, self.n_points)
        single = u.ndim == 1
        U = u[:, None] if single else u
        tree = self.tree
        sset = self.skeletons

        # skeleton-space accumulators z_alpha (s_alpha, k).
        z: dict[int, np.ndarray] = {}

        def zadd(node_id: int, contrib: np.ndarray) -> None:
            acc = z.get(node_id)
            if acc is None:
                z[node_id] = contrib.copy()
            else:
                acc += contrib

        # 1) exact leaf diagonal blocks.
        w = np.zeros_like(U)
        for leaf in tree.leaves():
            if not sset.is_skeletonized(leaf.id) and tree.depth > 0:
                continue  # unreachable by construction; defensive.
            block = self.leaf_block(leaf)
            w[leaf.lo : leaf.hi] = block @ U[leaf.lo : leaf.hi]
            count_flops(2 * block.size * U.shape[1], label="matvec_leaf")
        if tree.depth == 0:
            return w[:, 0] if single else w

        # 2) sibling interactions below (and at) the frontier.
        for node in self._below:
            if tree.is_leaf(node):
                continue
            left, right = tree.children(node)
            zadd(left.id, self.sibling_block(left).matvec(U[right.lo : right.hi]))
            zadd(right.id, self.sibling_block(right).matvec(U[left.lo : left.hi]))

        # 3) coalesced correction above the frontier:
        #    z_f += K_{f~ X} u - K_{f~ f} u_f.
        if len(self.frontier) > 1:
            for f in self.frontier:
                full = self.frontier_row_block(f).matvec(U)
                sk = self.skeletons[f.id]
                own = KernelSummation(
                    self.kernel,
                    self.tree.points[sk.skeleton],
                    self.tree.node_points(f),
                    SummationMethod.FUSED,
                    workspace=self._workspace,
                ).matvec(U[f.lo : f.hi])
                zadd(f.id, full - own)

        # 4) push skeleton-space contributions down through P^T.
        for node in self._topdown_below():
            acc = z.get(node.id)
            if acc is None:
                continue
            sk = sset[node.id]
            if tree.is_leaf(node):
                w[node.lo : node.hi] += sk.proj.T @ acc
                count_flops(2 * sk.proj.size * U.shape[1], label="matvec_down")
            else:
                left, right = tree.children(node)
                sl = sset[left.id].rank
                zadd(left.id, sk.proj[:, :sl].T @ acc)
                zadd(right.id, sk.proj[:, sl:].T @ acc)
                count_flops(2 * sk.proj.size * U.shape[1], label="matvec_down")
        return w[:, 0] if single else w

    def _topdown_below(self):
        """Nodes at/below the frontier, parents before children."""
        return sorted(self._below, key=lambda n: n.level)

    # ------------------------------------------------------------------
    def rmatvec(self, u: np.ndarray) -> np.ndarray:
        """Transpose product ``K~^T @ u`` in O(s N log N) (tree order).

        K~ is mildly nonsymmetric (target-side row compression), so the
        adjoint is a distinct operation: transposing
        ``K_lr ~= P_{l l~} K_{l~ r}`` gives *source-side* compression
        ``K~^T_{rl} = K_{r l~} P_{l~ l}`` — the classic treecode shape
        with an *upward* pass accumulating skeleton weights
        ``z_alpha = P_{alpha~ alpha} u_alpha`` (telescoped through the
        children) followed by skeleton-row transposed products.
        """
        u = check_vector(u, self.n_points)
        single = u.ndim == 1
        U = u[:, None] if single else u
        tree = self.tree
        sset = self.skeletons

        w = np.zeros_like(U)
        for leaf in tree.leaves():
            block = self.leaf_block(leaf)
            w[leaf.lo : leaf.hi] = block.T @ U[leaf.lo : leaf.hi]
            count_flops(2 * block.size * U.shape[1], label="rmatvec_leaf")
        if tree.depth == 0:
            return w[:, 0] if single else w

        # upward pass: skeleton weights z_alpha = P_{alpha~ alpha} u_alpha,
        # telescoped from the children (leaves first).
        z: dict[int, np.ndarray] = {}
        for node in sorted(self._below, key=lambda n: -n.level):
            sk = sset[node.id]
            if tree.is_leaf(node):
                z[node.id] = sk.proj @ U[node.lo : node.hi]
            else:
                left, right = tree.children(node)
                z[node.id] = sk.proj @ np.concatenate(
                    [z[left.id], z[right.id]], axis=0
                )
            count_flops(2 * sk.proj.size * U.shape[1], label="rmatvec_up")

        # sibling interactions, transposed: w_r += K_{l~ r}^T z_l.
        for node in self._below:
            if tree.is_leaf(node):
                continue
            left, right = tree.children(node)
            w[right.lo : right.hi] += self.sibling_block(left).rmatvec(z[left.id])
            w[left.lo : left.hi] += self.sibling_block(right).rmatvec(z[right.id])

        # above the frontier: w += sum_f K_{f~ X}^T z_f minus own blocks.
        if len(self.frontier) > 1:
            for f in self.frontier:
                zf = z[f.id]
                w += self.frontier_row_block(f).rmatvec(zf)
                own = KernelSummation(
                    self.kernel,
                    self.tree.points[sset[f.id].skeleton],
                    self.tree.node_points(f),
                    SummationMethod.FUSED,
                    workspace=self._workspace,
                ).rmatvec(zf)
                w[f.lo : f.hi] -= own
        return w[:, 0] if single else w

    def as_linear_operator(self, lam: float = 0.0):
        """``lambda I + K~`` as a :class:`scipy.sparse.linalg.LinearOperator`.

        Exposes ``matvec`` and ``rmatvec``, so the hierarchical matrix
        plugs directly into SciPy's iterative solvers and eigensolvers
        (``gmres``, ``lsqr``, ``eigs``, ...).
        """
        from scipy.sparse.linalg import LinearOperator

        n = self.n_points
        return LinearOperator(
            (n, n),
            matvec=lambda v: self.matvec(v) + lam * np.asarray(v, dtype=np.float64),
            rmatvec=lambda v: self.rmatvec(v) + lam * np.asarray(v, dtype=np.float64),
            dtype=np.float64,
        )

    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize K~ (tree order) for validation.  O(N^2) memory."""
        from repro.hmatrix.dense import assemble_dense

        return assemble_dense(self)

    def regularized_matvec(self, lam: float, u: np.ndarray) -> np.ndarray:
        """``(lambda I + K~) u`` — the operator the solvers invert."""
        return self.matvec(u) + lam * np.asarray(u, dtype=np.float64)

    def storage_words(self) -> int:
        """Persistent float64 words held by cached blocks (memory study)."""
        total = sum(b.size for b in self._leaf_blocks.values())
        total += sum(b.storage_words for b in self._sibling_blocks.values())
        total += sum(b.storage_words for b in self._frontier_blocks.values())
        for sk in self.skeletons.skeletons.values():
            total += sk.proj.size
        return total


def build_hmatrix(
    X: np.ndarray,
    kernel: Kernel,
    *,
    tree_config: TreeConfig | None = None,
    skeleton_config: SkeletonConfig | None = None,
    neighbors: NeighborTable | None = None,
    summation: str | SummationMethod = SummationMethod.PRECOMPUTED,
) -> HMatrix:
    """Convenience constructor: tree + skeletonization + HMatrix."""
    X = check_points(X)
    tree = BallTree(X, tree_config)
    sset = skeletonize(tree, kernel, skeleton_config, neighbors=neighbors)
    return HMatrix(tree, kernel, sset, summation=summation)
