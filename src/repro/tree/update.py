"""Incremental point insertion/deletion on a built ball tree.

The tree's *topology* (heap ids, depth, splitting hyperplanes) is kept
frozen; only the leaf memberships change.  New points are routed to the
leaf that would have owned them via the recorded splitting hyperplanes
(:meth:`~repro.tree.balltree.BallTree.route_point`), deleted points are
dropped from their leaf, and every node's ``[lo, hi)`` slice is
recomputed from the new leaf sizes.  The result is a new
:class:`~repro.tree.balltree.BallTree` sharing the old split planes,
plus the position map clean skeletons are re-indexed through
(:mod:`repro.skeleton.update`).

Freezing the topology is what makes the downstream repair *local*
(Ryan–Damle, arXiv:2001.11619): only the leaves that gained or lost
points — and their root paths — carry stale skeletons and factors.
The trade-off is that leaf sizes drift from the median split's balance;
past the configured dirty-fraction threshold the caller rebuilds from
scratch instead (see docs/UPDATES.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.tree.balltree import BallTree
from repro.tree.node import Node

__all__ = ["TreeUpdate", "apply_point_updates"]


@dataclass
class TreeUpdate:
    """Result of :func:`apply_point_updates`.

    Attributes
    ----------
    tree:
        The updated tree (same heap topology/depth/split planes as the
        input, new point storage and node offsets).
    pos_map:
        ``(n_old,)`` array mapping old tree positions to new tree
        positions; deleted positions map to ``-1``.
    dirty_leaves:
        Heap ids of the leaves whose point sets changed.
    dirty_points:
        Total points (new count) owned by the dirty leaves.
    n_inserted, n_deleted:
        Update sizes.
    """

    tree: BallTree
    pos_map: np.ndarray
    dirty_leaves: list[int]
    dirty_points: int
    n_inserted: int
    n_deleted: int

    @property
    def dirty_fraction(self) -> float:
        """Fraction of the (new) point set living in dirty leaves."""
        return self.dirty_points / max(self.tree.n_points, 1)


def apply_point_updates(
    tree: BallTree,
    X_insert: np.ndarray | None = None,
    delete_positions: np.ndarray | None = None,
) -> TreeUpdate:
    """Insert/delete points on ``tree`` without changing its topology.

    Parameters
    ----------
    tree:
        Built tree with recorded splitting hyperplanes
        (:attr:`~repro.tree.balltree.BallTree.has_routing`).
    X_insert:
        Optional ``(k, d)`` new points, routed to their owning leaves.
    delete_positions:
        Optional unique *tree positions* to remove.

    New user-order indexing after the update: surviving points keep
    their relative order and are followed by the inserted rows, so the
    new user order is ``concat(delete(X_old, deleted), X_insert)``.
    Inside each leaf, survivors keep their relative tree order and
    inserted points are appended in insertion order — fully
    deterministic, which is what keeps updated solvers bitwise
    checkpointable.

    Raises
    ------
    ConfigurationError
        When the tree has no routing planes, a leaf would be emptied,
        or every point would be deleted — the caller should fall back
        to a full rebuild.
    """
    n_old = tree.n_points
    if X_insert is not None:
        X_insert = np.ascontiguousarray(X_insert, dtype=np.float64)
        if X_insert.ndim != 2 or X_insert.shape[1] != tree.n_dims:
            raise ConfigurationError(
                f"X_insert must be (k, {tree.n_dims}); got {X_insert.shape}"
            )
        if X_insert.shape[0] == 0:
            X_insert = None
    n_ins = 0 if X_insert is None else X_insert.shape[0]

    if delete_positions is None:
        delete_positions = np.empty(0, dtype=np.intp)
    else:
        delete_positions = np.unique(np.asarray(delete_positions, dtype=np.intp))
        if len(delete_positions) and (
            delete_positions[0] < 0 or delete_positions[-1] >= n_old
        ):
            raise ConfigurationError(
                f"delete positions out of range [0, {n_old})"
            )
    n_del = len(delete_positions)
    if n_del >= n_old + n_ins:
        raise ConfigurationError("update would delete every point")
    if n_ins and not tree.has_routing:
        raise ConfigurationError(
            "tree records no splitting hyperplanes; cannot route new points"
        )

    keep = np.ones(n_old, dtype=bool)
    keep[delete_positions] = False

    leaves = tree.leaves()
    # route inserts; collect deletions per leaf
    assigned: dict[int, list[int]] = {}
    if X_insert is not None:
        for j in range(n_ins):
            leaf = tree.route_point(X_insert[j])
            assigned.setdefault(leaf.id, []).append(j)
    dirty = set(assigned)
    if n_del:
        lows = np.fromiter((l.lo for l in leaves), dtype=np.intp, count=len(leaves))
        owners = np.searchsorted(lows, delete_positions, side="right") - 1
        dirty.update(leaves[int(i)].id for i in np.unique(owners))

    # per-leaf new content, in leaf (left-to-right) order
    pos_map = np.full(n_old, -1, dtype=np.intp)
    chunks: list[np.ndarray] = []
    perm_chunks: list[np.ndarray] = []
    sizes: list[int] = []
    # survivors keep their old user index minus the deleted ones before it;
    # inserted row j gets user index (n_old - n_del + j).
    deleted_users = np.sort(tree.perm[delete_positions]) if n_del else None
    cursor = 0
    for leaf in leaves:
        old_pos = np.arange(leaf.lo, leaf.hi, dtype=np.intp)
        kept = old_pos[keep[leaf.lo : leaf.hi]]
        ins = assigned.get(leaf.id, [])
        size = len(kept) + len(ins)
        if size == 0:
            raise ConfigurationError(
                f"update would empty leaf {leaf.id}; a full rebuild is "
                "required to re-balance the tree"
            )
        pos_map[kept] = cursor + np.arange(len(kept), dtype=np.intp)
        chunks.append(tree.points[kept])
        users = tree.perm[kept]
        if deleted_users is not None:
            users = users - np.searchsorted(deleted_users, users)
        if ins:
            chunks.append(X_insert[ins])
            users = np.concatenate(
                [users, n_old - n_del + np.asarray(ins, dtype=np.intp)]
            )
        perm_chunks.append(users)
        sizes.append(size)
        cursor += size

    n_new = cursor
    new_points = np.ascontiguousarray(np.concatenate(chunks, axis=0))
    new_perm = np.concatenate(perm_chunks)

    # recompute node offsets: leaves from the prefix sums, internals
    # from their children (the heap topology is unchanged).
    new_nodes: dict[int, Node] = {}
    lo = 0
    for leaf, size in zip(leaves, sizes):
        new_nodes[leaf.id] = Node(id=leaf.id, level=leaf.level, lo=lo, hi=lo + size)
        lo += size
    for level in range(tree.depth - 1, -1, -1):
        for node in tree.level_nodes(level):
            left = new_nodes[node.left_id]
            right = new_nodes[node.right_id]
            new_nodes[node.id] = Node(
                id=node.id, level=node.level, lo=left.lo, hi=right.hi
            )

    new_tree = object.__new__(BallTree)
    new_tree.config = tree.config
    new_tree.n_points = n_new
    new_tree.n_dims = tree.n_dims
    new_tree.depth = tree.depth
    new_tree.splits = getattr(tree, "splits", {})
    new_tree._nodes = new_nodes
    new_tree.perm = new_perm
    new_tree.iperm = np.empty_like(new_perm)
    new_tree.iperm[new_perm] = np.arange(n_new, dtype=np.intp)
    new_tree.points = new_points
    assert new_points.dtype == np.float64, new_points.dtype

    dirty_leaves = sorted(dirty)
    dirty_points = sum(
        new_nodes[lid].size for lid in dirty_leaves
    )
    return TreeUpdate(
        tree=new_tree,
        pos_map=pos_map,
        dirty_leaves=dirty_leaves,
        dirty_points=dirty_points,
        n_inserted=n_ins,
        n_deleted=n_del,
    )
