"""Ball-tree construction and traversal (paper section II-A).

:class:`BallTree` permutes the input points into tree order once and
keeps a contiguous copy, so every node's points are a *view*
``tree.points[node.lo:node.hi]`` — no per-node copies, which matters
for the blocked kernel evaluations downstream.
"""

from __future__ import annotations

import math
from typing import Iterator

import numpy as np

from repro.config import TreeConfig
from repro.tree.node import Node
from repro.tree.partition import median_split_plane
from repro.util.random import as_generator
from repro.util.validation import check_points

__all__ = ["BallTree"]


class BallTree:
    """Perfect binary ball tree over an (N, d) point set.

    Parameters
    ----------
    X:
        Input points, shape (N, d).  A permuted copy is stored; the
        original array is not modified.
    config:
        :class:`~repro.config.TreeConfig` (leaf size ``m``, seed).

    Attributes
    ----------
    depth:
        Leaf level ``D = ceil(log2(N / m))`` (0 when N <= m).
    perm:
        ``perm[i]`` is the original index of the point at tree position
        ``i`` (so ``points == X[perm]``).
    iperm:
        Inverse permutation: tree position of original point ``i``.
    points:
        (N, d) contiguous permuted copy of the input.
    """

    def __init__(self, X: np.ndarray, config: TreeConfig | None = None) -> None:
        X = check_points(X)
        self.config = config or TreeConfig()
        self.n_points, self.n_dims = X.shape
        m = self.config.leaf_size
        if self.n_points > m:
            depth = math.ceil(math.log2(self.n_points / m))
            # never create more leaves than points: every leaf keeps at
            # least one point (leaf sizes may then reach max(m, 2)).
            self.depth = max(0, min(depth, math.floor(math.log2(self.n_points))))
        else:
            self.depth = 0

        rng = as_generator(self.config.seed)
        self._nodes: dict[int, Node] = {}
        #: per-internal-node splitting hyperplane ``(direction, cut)``
        #: recorded at build time: a point with ``x @ direction <= cut``
        #: belongs to the left child.  This is what lets incremental
        #: updates route *new* points to the leaf that would have owned
        #: them (:meth:`route_point`) without rebuilding the tree.
        self.splits: dict[int, tuple[np.ndarray, float]] = {}
        perm = np.empty(self.n_points, dtype=np.intp)

        # Iterative level-by-level build (mirrors the paper's level-wise
        # traversals and avoids recursion limits for deep trees).
        frontier: list[tuple[int, int, int, np.ndarray]] = [
            (1, 0, 0, np.arange(self.n_points, dtype=np.intp))
        ]
        while frontier:
            next_frontier = []
            for node_id, level, lo, idx in frontier:
                hi = lo + len(idx)
                self._nodes[node_id] = Node(id=node_id, level=level, lo=lo, hi=hi)
                if level == self.depth:
                    perm[lo:hi] = idx
                else:
                    left, right, direction, cut = median_split_plane(X, idx, rng)
                    self.splits[node_id] = (direction, cut)
                    next_frontier.append((2 * node_id, level + 1, lo, left))
                    next_frontier.append((2 * node_id + 1, level + 1, lo + len(left), right))
            frontier = next_frontier

        self.perm = perm
        self.iperm = np.empty_like(perm)
        self.iperm[perm] = np.arange(self.n_points, dtype=np.intp)
        # check_points coerced X to float64 above; pin the dtype here too
        # so a future caller bypassing validation cannot leak float32
        # into the kernel/skeleton paths (skeleton/id.py forces float64,
        # and config_fingerprint hashes a float64 copy — mixed precision
        # would silently diverge from both).
        self.points = np.ascontiguousarray(X[perm], dtype=np.float64)
        assert self.points.dtype == np.float64, self.points.dtype

    # ------------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        """Look up a node by heap id (root = 1)."""
        return self._nodes[node_id]

    @property
    def root(self) -> Node:
        return self._nodes[1]

    @property
    def n_nodes(self) -> int:
        return len(self._nodes)

    def children(self, node: Node) -> tuple[Node, Node]:
        """Left and right children (raises KeyError on leaves)."""
        return self._nodes[node.left_id], self._nodes[node.right_id]

    def is_leaf(self, node: Node) -> bool:
        return node.level == self.depth

    def level_nodes(self, level: int) -> list[Node]:
        """All nodes at ``level``, left to right."""
        return [self._nodes[i] for i in range(1 << level, 2 << level)]

    def leaves(self) -> list[Node]:
        return self.level_nodes(self.depth)

    def postorder(self) -> Iterator[Node]:
        """Bottom-up, level-by-level traversal (leaves first, root last).

        The factorization only needs "children before parent", so the
        level-wise order used by the paper's parallel implementation is
        a valid postorder linearization.
        """
        for level in range(self.depth, -1, -1):
            yield from self.level_nodes(level)

    def ancestors(self, node: Node) -> Iterator[Node]:
        """Proper ancestors of ``node``, nearest first."""
        nid = node.parent_id
        while nid >= 1:
            yield self._nodes[nid]
            nid //= 2

    def node_points(self, node: Node) -> np.ndarray:
        """View of the permuted points owned by ``node``."""
        return self.points[node.lo : node.hi]

    # -- incremental-update routing (repro.tree.update) ------------------
    @property
    def has_routing(self) -> bool:
        """Whether splitting hyperplanes are available for routing.

        Trees unpickled from checkpoints written before splits were
        recorded have none; incremental updates then fall back to a
        full rebuild.
        """
        return self.depth == 0 or bool(getattr(self, "splits", None))

    def route_point(self, x: np.ndarray) -> Node:
        """The leaf that would own a new point ``x``.

        Descends the recorded splitting hyperplanes from the root —
        O(d log N), no tree mutation.
        """
        if not self.has_routing:
            raise ValueError(
                "this tree records no splitting hyperplanes (built before "
                "routing existed); rebuild it to route new points"
            )
        x = np.asarray(x, dtype=np.float64).reshape(-1)
        node = self.root
        while not self.is_leaf(node):
            direction, cut = self.splits[node.id]
            child = node.left_id if float(x @ direction) <= cut else node.right_id
            node = self._nodes[child]
        return node

    def leaf_of_position(self, pos: int) -> Node:
        """The leaf owning tree position ``pos`` (leaves are contiguous)."""
        if not 0 <= pos < self.n_points:
            raise IndexError(f"tree position {pos} out of range")
        leaves = self.leaves()
        lows = np.fromiter((l.lo for l in leaves), dtype=np.intp, count=len(leaves))
        return leaves[int(np.searchsorted(lows, pos, side="right")) - 1]

    def subtree_at(self, node: Node, target_level: int) -> list[Node]:
        """Descendants of ``node`` at absolute level ``target_level``."""
        if target_level < node.level:
            raise ValueError("target_level above the node")
        span = target_level - node.level
        first = node.id << span
        return [self._nodes[i] for i in range(first, first + (1 << span))]
