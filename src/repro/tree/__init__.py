"""Ball-tree partitioning of the point set (paper section II-A).

The tree induces the row/column ordering under which the kernel
matrix's off-diagonal blocks are numerically low-rank.  Splits are
median splits along a far-point splitting hyperplane (Omohundro ball
tree), so the tree is a *perfect* binary tree: every leaf sits at the
same level ``D = ceil(log2(N / m))`` and sibling subtrees differ in
size by at most one point.
"""

from repro.tree.node import Node
from repro.tree.balltree import BallTree
from repro.tree.partition import split_direction, median_split

__all__ = ["Node", "BallTree", "split_direction", "median_split"]
