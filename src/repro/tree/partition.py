"""Splitting rules for the ball tree.

The paper partitions each node into two equal halves with a splitting
hyperplane.  We use the classic far-point heuristic: pick a random
point, walk to the farthest point from it, then to the farthest point
from *that*; the segment between the two far points approximates the
direction of maximum spread, and the median of the projections defines
the hyperplane.  The heuristic costs O(|alpha| d) per node, keeping
tree construction at O(d N log N) total.
"""

from __future__ import annotations

import numpy as np

from repro.util.flops import count_flops

__all__ = ["split_direction", "median_split", "median_split_plane"]


def split_direction(X: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Approximate maximum-spread direction of the rows of ``X``.

    Returns a unit vector.  Degenerate inputs (all points coincident)
    yield a random unit direction so the median split still produces
    equal halves.
    """
    n, d = X.shape
    pivot = X[int(rng.integers(n))]
    dist = np.einsum("ij,ij->i", X - pivot, X - pivot)
    a = X[int(np.argmax(dist))]
    dist = np.einsum("ij,ij->i", X - a, X - a)
    b = X[int(np.argmax(dist))]
    count_flops(6 * n * d, label="tree_split")
    direction = a - b
    norm = float(np.linalg.norm(direction))
    if norm < 1e-300:
        direction = rng.standard_normal(d)
        norm = float(np.linalg.norm(direction))
    return direction / norm


def median_split(
    X: np.ndarray, idx: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Split global point indices ``idx`` into equal halves.

    Points are projected on the splitting direction and partitioned at
    the median projection.  Sizes are ``ceil(n/2)`` and ``floor(n/2)``
    regardless of ties (``argpartition`` breaks them arbitrarily but
    deterministically), which is what keeps all leaves at one level.
    """
    left, right, _, _ = median_split_plane(X, idx, rng)
    return left, right


def median_split_plane(
    X: np.ndarray, idx: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray, np.ndarray, float]:
    """:func:`median_split` that also returns the splitting hyperplane.

    Returns ``(left, right, direction, cut)``: a point ``x`` routes to
    the left half when ``x @ direction <= cut``.  ``cut`` is the
    midpoint between the largest left projection and the smallest right
    projection, so later points route to the half whose projections
    they fall among (ties at the median may land on either side — any
    deterministic rule is fine for routing, the original assignment is
    already frozen in the tree).
    """
    n = len(idx)
    if n < 2:
        raise ValueError("cannot split a node with fewer than 2 points")
    direction = split_direction(X[idx], rng)
    proj = X[idx] @ direction
    count_flops(2 * n * X.shape[1], label="tree_split")
    half_left = (n + 1) // 2
    order = np.argpartition(proj, half_left - 1)
    left = idx[order[:half_left]]
    right = idx[order[half_left:]]
    cut = 0.5 * (
        float(np.max(proj[order[:half_left]]))
        + float(np.min(proj[order[half_left:]]))
    )
    return left, right, direction, cut
