"""Tree node bookkeeping.

Nodes are stored heap-ordered: the root has id 1 and node ``i`` has
children ``2i`` and ``2i + 1``.  A node does not hold point data —
only a ``[lo, hi)`` slice into the tree's permuted point order — so the
whole topology is O(N/m) small objects over two contiguous arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Node"]


@dataclass(frozen=True)
class Node:
    """One ball-tree node.

    Attributes
    ----------
    id:
        Heap index (root = 1; children of ``i`` are ``2i``, ``2i+1``).
    level:
        Depth, root = 0, leaves = tree depth D.
    lo, hi:
        Half-open slice of the tree's permuted point ordering owned by
        this node (``|alpha| = hi - lo``).
    """

    id: int
    level: int
    lo: int
    hi: int

    @property
    def size(self) -> int:
        return self.hi - self.lo

    @property
    def left_id(self) -> int:
        return 2 * self.id

    @property
    def right_id(self) -> int:
        return 2 * self.id + 1

    @property
    def parent_id(self) -> int:
        return self.id // 2

    @property
    def sibling_id(self) -> int:
        """Heap id of the sibling (the root has none; returns 0)."""
        if self.id == 1:
            return 0
        return self.id ^ 1

    @property
    def is_root(self) -> bool:
        return self.id == 1

    def indices(self):
        """``range`` over the permuted point positions of this node."""
        return range(self.lo, self.hi)
