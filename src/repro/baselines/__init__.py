"""Reference baselines the paper positions itself against.

* :class:`DenseSolver` — the O(N^3) LAPACK factorization every fast
  method is measured against (and the only option below the crossover
  size).
* :class:`NystromApproximation` — global low-rank approximation with a
  Woodbury solve.  The paper's related work: "Nystrom methods and their
  variants can be used to build fast factorizations.  However, not all
  kernel matrices can be approximated well by Nystrom methods" — the
  comparison bench quantifies exactly when (bandwidths where K is not
  globally low rank), which is the regime motivating the hierarchical
  factorization.
"""

from repro.baselines.dense import DenseSolver
from repro.baselines.nystrom import NystromApproximation

__all__ = ["DenseSolver", "NystromApproximation"]
