"""Nystrom low-rank approximation with a Woodbury solve.

The global-low-rank competitor (paper references [7], [13], [28],
[34]): pick ``r`` landmark points ``L``, approximate

    K  ~=  C W^+ C^T,   C = K(X, L),  W = K(L, L),

and solve ``(lambda I + C W^+ C^T) x = u`` with the Woodbury identity —
O(N r^2) setup, O(N r) per solve.  Works beautifully when K is
*globally* low rank (large bandwidth) and fails when it is not (the
moderate-bandwidth regime), which is precisely the paper's motivation
for hierarchical off-diagonal compression: there only the off-diagonal
blocks are low rank, not K itself.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.exceptions import ConfigurationError, NotFactorizedError
from repro.kernels.base import Kernel
from repro.util.flops import count_flops
from repro.util.random import as_generator
from repro.util.validation import check_points, check_vector

__all__ = ["NystromApproximation"]


class NystromApproximation:
    """Rank-``r`` Nystrom approximation of a kernel matrix.

    Parameters
    ----------
    kernel:
        Kernel function.
    rank:
        Number of landmarks ``r``.
    landmark_method:
        ``"uniform"`` — landmarks sampled uniformly; ``"farthest"`` —
        greedy farthest-point traversal (k-center style), more robust
        for clustered data.
    jitter:
        Relative Tikhonov jitter on ``W`` for the pseudo-inverse
        (numerical stabilization of the landmark block).
    seed:
        RNG seed for landmark selection.
    """

    def __init__(
        self,
        kernel: Kernel,
        rank: int,
        *,
        landmark_method: str = "uniform",
        jitter: float = 1e-10,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if rank < 1:
            raise ConfigurationError(f"rank must be >= 1; got {rank}")
        if landmark_method not in ("uniform", "farthest"):
            raise ConfigurationError(
                f"landmark_method must be uniform|farthest; got {landmark_method!r}"
            )
        self.kernel = kernel
        self.rank = int(rank)
        self.landmark_method = landmark_method
        self.jitter = float(jitter)
        self.seed = seed
        self.landmarks: np.ndarray | None = None  # indices into X
        self._C: np.ndarray | None = None  # (N, r)
        self._Winv_half: np.ndarray | None = None  # W^{-1/2}-ish factor
        self._solve_factor = None
        self.lam = 0.0

    # ------------------------------------------------------------------
    def _select_landmarks(self, X: np.ndarray) -> np.ndarray:
        rng = as_generator(self.seed)
        n = X.shape[0]
        r = min(self.rank, n)
        if self.landmark_method == "uniform":
            return np.sort(rng.choice(n, size=r, replace=False))
        # greedy farthest-point (2-approximation of k-center).
        first = int(rng.integers(n))
        chosen = [first]
        d2 = np.einsum("ij,ij->i", X - X[first], X - X[first])
        for _ in range(r - 1):
            nxt = int(np.argmax(d2))
            chosen.append(nxt)
            delta = np.einsum("ij,ij->i", X - X[nxt], X - X[nxt])
            np.minimum(d2, delta, out=d2)
        count_flops(3 * n * X.shape[1] * r, label="nystrom_landmarks")
        return np.sort(np.asarray(chosen, dtype=np.intp))

    def fit(self, X: np.ndarray) -> "NystromApproximation":
        """Select landmarks and build the factored approximation."""
        X = check_points(X)
        self.landmarks = self._select_landmarks(X)
        L = X[self.landmarks]
        C = self.kernel(X, L)  # (N, r)
        W = self.kernel(L, L)  # (r, r)
        # symmetric square-root pseudo-inverse of W via eigh.
        w, V = np.linalg.eigh((W + W.T) / 2.0)
        count_flops(10 * W.shape[0] ** 3, label="nystrom_eigh")
        floor = self.jitter * max(float(w.max()), 1.0)
        keep = w > floor
        if not np.any(keep):
            raise ConfigurationError(
                "landmark block is numerically zero; increase rank or jitter"
            )
        self._Winv_half = V[:, keep] / np.sqrt(w[keep])
        # K ~= F F^T with F = C W^{-1/2}.
        self._C = C @ self._Winv_half
        count_flops(2 * C.size * int(keep.sum()), label="nystrom_build")
        self._solve_factor = None
        return self

    def _require_fitted(self) -> None:
        if self._C is None:
            raise NotFactorizedError("call fit(X) first")

    @property
    def n_points(self) -> int:
        self._require_fitted()
        return self._C.shape[0]

    # ------------------------------------------------------------------
    def matvec(self, u: np.ndarray) -> np.ndarray:
        """Approximate ``K u ~= F (F^T u)`` in O(N r)."""
        self._require_fitted()
        u = check_vector(u, self.n_points)
        F = self._C
        count_flops(4 * F.size * (1 if u.ndim == 1 else u.shape[1]))
        return F @ (F.T @ u)

    def factorize(self, lam: float) -> "NystromApproximation":
        """Woodbury setup for ``(lambda I + F F^T)^{-1}``."""
        self._require_fitted()
        if lam <= 0:
            raise ConfigurationError(
                "the Nystrom-Woodbury solve needs lambda > 0 (the "
                "approximation is rank deficient)"
            )
        self.lam = float(lam)
        F = self._C
        r = F.shape[1]
        Z = lam * np.eye(r) + F.T @ F
        count_flops(2 * F.size * r, label="nystrom_gram")
        self._solve_factor = scipy.linalg.cho_factor(Z, check_finite=False)
        return self

    def solve(self, u: np.ndarray) -> np.ndarray:
        """Woodbury: ``(lam I + F F^T)^{-1} u = (u - F Z^{-1} F^T u)/lam``."""
        if self._solve_factor is None:
            raise NotFactorizedError("call factorize(lam) first")
        u = check_vector(u, self.n_points)
        F = self._C
        t = scipy.linalg.cho_solve(self._solve_factor, F.T @ u, check_finite=False)
        count_flops(4 * F.size * (1 if u.ndim == 1 else u.shape[1]))
        return (u - F @ t) / self.lam

    # ------------------------------------------------------------------
    def matrix_error(
        self,
        X: np.ndarray,
        *,
        n_probes: int = 8,
        seed: int | np.random.Generator | None = 0,
    ) -> float:
        """Randomized relative error ``||K - K_nys|| / ||K||`` (Frobenius)."""
        from repro.kernels.gsks import gsks_matvec

        self._require_fitted()
        X = check_points(X)
        rng = as_generator(seed)
        num = den = 0.0
        for _ in range(max(1, n_probes)):
            g = rng.standard_normal(self.n_points)
            exact = gsks_matvec(self.kernel, X, X, g)
            num += float(np.sum((exact - self.matvec(g)) ** 2))
            den += float(np.sum(exact**2))
        return float(np.sqrt(num / den)) if den > 0 else 0.0

    def storage_words(self) -> int:
        """O(N r) for the factored approximation."""
        total = 0
        if self._C is not None:
            total += self._C.size + self._Winv_half.size
        if self._solve_factor is not None:
            total += self._solve_factor[0].size
        return total
