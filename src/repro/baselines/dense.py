"""Dense direct solver: the O(N^3) reference.

Materializes the full kernel matrix and factorizes ``lambda I + K``
with LAPACK (Cholesky for PSD kernels, LU fallback).  Exact up to
roundoff; O(N^2) memory and O(N^3) factorization work — the costs the
hierarchical solver removes.  Used by the comparison bench to locate
the crossover and by tests as ground truth.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

from repro.exceptions import NotFactorizedError
from repro.kernels.base import Kernel
from repro.util.flops import count_flops
from repro.util.validation import check_points, check_vector

__all__ = ["DenseSolver"]


class DenseSolver:
    """Exact dense factorization of ``lambda I + K``.

    Parameters
    ----------
    kernel:
        Kernel function.
    try_cholesky:
        Attempt a Cholesky factorization first (half the work of LU);
        falls back to LU if the regularized matrix is not numerically
        positive definite.
    """

    def __init__(self, kernel: Kernel, *, try_cholesky: bool = True) -> None:
        self.kernel = kernel
        self.try_cholesky = try_cholesky
        self._X: np.ndarray | None = None
        self._K: np.ndarray | None = None
        self._chol = None
        self._lu = None
        self.lam: float = 0.0

    @property
    def n_points(self) -> int:
        if self._X is None:
            raise NotFactorizedError("call fit(X) first")
        return self._X.shape[0]

    def fit(self, X: np.ndarray) -> "DenseSolver":
        """Evaluate and store the full N x N kernel matrix."""
        X = check_points(X)
        self._X = X
        self._K = self.kernel(X, X)
        self._chol = None
        self._lu = None
        return self

    def factorize(self, lam: float = 0.0) -> "DenseSolver":
        """LAPACK factorization of ``lambda I + K``."""
        if self._K is None:
            raise NotFactorizedError("call fit(X) first")
        if lam < 0:
            raise ValueError(f"lambda must be >= 0; got {lam}")
        self.lam = float(lam)
        n = self._K.shape[0]
        A = np.array(self._K, copy=True)
        idx = np.arange(n)
        A[idx, idx] += lam
        self._chol = None
        self._lu = None
        if self.try_cholesky:
            try:
                self._chol = scipy.linalg.cho_factor(A, check_finite=False)
                count_flops(n**3 // 3, label="dense_chol")
                return self
            except scipy.linalg.LinAlgError:
                pass
        self._lu = scipy.linalg.lu_factor(A, check_finite=False)
        count_flops(2 * n**3 // 3, label="dense_lu")
        return self

    def _require_factorized(self) -> None:
        if self._chol is None and self._lu is None:
            raise NotFactorizedError("call factorize(lam) first")

    def solve(self, u: np.ndarray) -> np.ndarray:
        """``(lambda I + K)^{-1} u`` (exact)."""
        self._require_factorized()
        u = check_vector(u, self.n_points)
        n = self.n_points
        k = 1 if u.ndim == 1 else u.shape[1]
        count_flops(2 * n * n * k, label="dense_solve")
        if self._chol is not None:
            return scipy.linalg.cho_solve(self._chol, u, check_finite=False)
        return scipy.linalg.lu_solve(self._lu, u, check_finite=False)

    def matvec(self, u: np.ndarray) -> np.ndarray:
        """Exact ``K u``."""
        if self._K is None:
            raise NotFactorizedError("call fit(X) first")
        u = check_vector(u, self.n_points)
        count_flops(2 * self._K.size * (1 if u.ndim == 1 else u.shape[1]))
        return self._K @ u

    def slogdet(self) -> tuple[float, float]:
        """Sign and log|det| of the factorized matrix."""
        self._require_factorized()
        if self._chol is not None:
            c, _lower = self._chol
            return 1.0, 2.0 * float(np.sum(np.log(np.abs(np.diag(c)))))
        lu, piv = self._lu
        diag = np.diag(lu)
        sign = 1.0 if (np.count_nonzero(diag < 0) + np.count_nonzero(
            piv != np.arange(len(piv)))) % 2 == 0 else -1.0
        return sign, float(np.sum(np.log(np.abs(diag))))

    def storage_words(self) -> int:
        """O(N^2): the stored kernel matrix plus the factor."""
        if self._K is None:
            return 0
        total = self._K.size
        if self._chol is not None:
            total += self._chol[0].size
        if self._lu is not None:
            total += self._lu[0].size
        return total
