"""Kernel function interface.

A :class:`Kernel` maps two point sets to the dense matrix of pairwise
kernel values, ``K[i, j] = K(XA[i], XB[j])``, evaluated in ``O(d)`` per
entry.  Subclasses implement :meth:`_apply` on a squared-distance (or
inner-product) block; the base class handles distance computation,
workspace reuse, and FLOP/kernel-evaluation accounting so every
evaluation path in the library is instrumented consistently.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.kernels.distances import pairwise_sq_dists, sq_norms
from repro.util.flops import count_flops, count_kernel_evals

__all__ = ["Kernel"]


class Kernel(abc.ABC):
    """Abstract base class for kernel functions.

    Subclasses define:

    * :attr:`uses_distances` — whether :meth:`_apply` consumes squared
      distances (RBF-type kernels) or raw inner products (polynomial).
    * :meth:`_apply` — in-place elementwise transform of the block.
    * :attr:`flops_per_entry` — modeled cost of one kernel evaluation,
      used by the performance model (the rank-d update is charged
      separately by the distance routine).
    """

    #: if True, _apply receives squared distances; else inner products.
    uses_distances: bool = True

    #: modeled elementwise cost (flops per kernel entry past the GEMM).
    flops_per_entry: int = 1

    @abc.abstractmethod
    def _apply(
        self, block: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        """Transform a block of squared distances / inner products.

        The result is written into ``out`` when given (a distinct buffer
        of the same shape — never an alias of ``block``), else into
        ``block`` where the kernel's arithmetic allows.  ``block`` may be
        destroyed either way.  Implementations must not allocate when
        ``out`` is provided: this is what lets the GSKS tile loop reuse
        its two workspace buffers across every tile.
        """

    # ------------------------------------------------------------------
    def __call__(
        self,
        XA: np.ndarray,
        XB: np.ndarray,
        *,
        norms_a: np.ndarray | None = None,
        norms_b: np.ndarray | None = None,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Dense kernel block ``K(XA, XB)`` of shape (len(XA), len(XB)).

        ``norms_a``/``norms_b`` are optional precomputed squared norms
        (ignored for inner-product kernels); ``out`` is an optional
        preallocated workspace of the right shape.
        """
        XA = np.atleast_2d(np.asarray(XA, dtype=np.float64))
        XB = np.atleast_2d(np.asarray(XB, dtype=np.float64))
        m, n = XA.shape[0], XB.shape[0]
        if self.uses_distances:
            block = pairwise_sq_dists(
                XA, XB, norms_a=norms_a, norms_b=norms_b, out=out
            )
        else:
            if out is None:
                block = XA @ XB.T
            else:
                np.matmul(XA, XB.T, out=out)
                block = out
            count_flops(2 * m * n * XA.shape[1], label="kernel_gemm")
        block = self._apply(block)
        count_flops(self.flops_per_entry * m * n, label="kernel_elementwise")
        count_kernel_evals(m * n)
        return block

    # ------------------------------------------------------------------
    def diag_value(self) -> float:
        """Value of K(x, x) (constant for stationary kernels)."""
        z = np.zeros((1, 1))
        if self.uses_distances:
            return float(self._apply(z.copy())[0, 0])
        return float(self._apply(z.copy())[0, 0])

    def prepare_norms(self, X: np.ndarray) -> np.ndarray | None:
        """Precompute whatever per-point data speeds up blocked eval."""
        if self.uses_distances:
            return sq_norms(np.asarray(X, dtype=np.float64))
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        params = ", ".join(
            f"{k}={v!r}" for k, v in sorted(vars(self).items())
        )
        return f"{type(self).__name__}({params})"
