"""GSKS-style fused, matrix-free kernel summation (paper section II-D).

Computes ``w = K(XA, XB) @ u`` without ever materializing the full
``m x n`` kernel block.  The BLIS-style decomposition of the paper's
AVX2/AVX512 implementation is reproduced as a tile loop: for each
``(tile_m, tile_n)`` subproblem, perform the rank-d update (semi-ring
GEMM), apply the kernel function while the tile is "in registers"
(here: in a reused cache-sized workspace), reduce against ``u``, and
accumulate into ``w``.  Only the tile is ever stored, so the extra
memory traffic is ``O(m d + n d)`` words instead of the
``O(m d + n d + m n)`` of the evaluate-then-GEMV reference — exactly
the trade the paper measures in Table I.

FLOPs (``2 m n d`` for the update plus the elementwise kernel cost)
and MOPs are charged to the active :class:`~repro.util.flops.FlopCounter`
so the performance model can convert them into modeled node times.
"""

from __future__ import annotations

import os
import threading

import numpy as np

from repro.kernels.base import Kernel
from repro.obs import registry, tracer
from repro.util.flops import count_flops, count_mops

__all__ = ["GSKSWorkspace", "autotuned_tiles", "gsks_matvec"]

#: default tile sizes — sized so a float64 tile stays ~2 MiB (L2-ish),
#: mirroring the macro-kernel blocking of the BLIS framework.
DEFAULT_TILE_M = 256
DEFAULT_TILE_N = 1024

_TUNED: tuple[int, int] | None = None


def autotuned_tiles() -> tuple[int, int]:
    """Machine-tuned ``(tile_m, tile_n)`` for :class:`GSKSWorkspace`.

    ``tile_n`` is widened until one tile's elementwise pass costs well
    over the measured per-call dispatch overhead (~2 %), so small-tile
    loops are dominated by math, not Python — the probed
    :class:`~repro.perfmodel.MachineSpec` supplies both rates.  Clamped
    to ``[DEFAULT_TILE_N, 4096]`` columns and rounded to a power of two;
    ``REPRO_GSKS_TILE=MxN`` overrides, and with probing disabled
    (``REPRO_MACHINE_PROBE=0``) the static defaults are used.  Cached
    per process (the probe itself is also cached).
    """
    global _TUNED
    env = os.environ.get("REPRO_GSKS_TILE")
    if env:
        try:
            m_s, n_s = env.lower().split("x", 1)
            tm, tn = int(m_s), int(n_s)
            if tm > 0 and tn > 0:
                return (tm, tn)
        except ValueError:
            pass
    if _TUNED is not None:
        return _TUNED
    from repro.perfmodel.machine import probed_machine, probing_enabled

    if not probing_enabled():
        _TUNED = (DEFAULT_TILE_M, DEFAULT_TILE_N)
        return _TUNED
    spec = probed_machine()
    # columns needed so DEFAULT_TILE_M rows of exp() take >= 50x the
    # per-call dispatch time (2% overhead ceiling).
    target = 50.0 * spec.dispatch_us * 1e-6 * spec.exp_gelems * 1e9
    tn = DEFAULT_TILE_N
    while tn < 4096 and DEFAULT_TILE_M * tn < target:
        tn *= 2
    _TUNED = (DEFAULT_TILE_M, tn)
    return _TUNED


class GSKSWorkspace:
    """Reusable tile buffer for :func:`gsks_matvec`.

    Allocating the tile once per traversal (rather than per call)
    matters when the solver performs thousands of small summations.
    The buffer is *thread-local*: one workspace object may be shared by
    the task-parallel executor and the virtual-MPI rank threads without
    tile races (each thread lazily gets its own tile).

    Tile sizes default to :func:`autotuned_tiles`; they are fixed at
    construction and travel with the pickled workspace, so every worker
    process of a distributed run tiles identically no matter what its
    own probe would say.
    """

    def __init__(self, tile_m: int | None = None, tile_n: int | None = None):
        auto_m, auto_n = autotuned_tiles()
        tile_m = auto_m if tile_m is None else tile_m
        tile_n = auto_n if tile_n is None else tile_n
        if tile_m <= 0 or tile_n <= 0:
            raise ValueError("tile sizes must be positive")
        self.tile_m = int(tile_m)
        self.tile_n = int(tile_n)
        self._local = threading.local()

    def tile_view(self, m: int, n: int) -> np.ndarray:
        """An (m, n) view into this thread's tile (m/n within bounds)."""
        tile = getattr(self._local, "tile", None)
        if tile is None:
            tile = np.empty((self.tile_m, self.tile_n), dtype=np.float64)
            self._local.tile = tile
        return tile[:m, :n]

    def scratch_view(self, m: int, n: int) -> np.ndarray:
        """Second (m, n) buffer for kernels whose ``_apply`` needs one
        (Matern nu >= 3/2 holds the prefactor and the exponential at
        once).  Same thread-local lifetime as :meth:`tile_view`."""
        scratch = getattr(self._local, "scratch", None)
        if scratch is None:
            scratch = np.empty((self.tile_m, self.tile_n), dtype=np.float64)
            self._local.scratch = scratch
        return scratch[:m, :n]

    # -- pickling: drop the per-thread buffers ---------------------------
    def __getstate__(self):
        return {"tile_m": self.tile_m, "tile_n": self.tile_n}

    def __setstate__(self, state):
        self.tile_m = state["tile_m"]
        self.tile_n = state["tile_n"]
        self._local = threading.local()


def gsks_matvec(
    kernel: Kernel,
    XA: np.ndarray,
    XB: np.ndarray,
    u: np.ndarray,
    *,
    workspace: GSKSWorkspace | None = None,
    norms_a: np.ndarray | None = None,
    norms_b: np.ndarray | None = None,
) -> np.ndarray:
    """Fused kernel summation ``w = K(XA, XB) @ u``.

    Parameters
    ----------
    kernel:
        Kernel function to evaluate entrywise.
    XA, XB:
        Target (m, d) and source (n, d) point blocks.
    u:
        Source weights, shape (n,) or (n, k).
    workspace:
        Optional preallocated :class:`GSKSWorkspace`.
    norms_a, norms_b:
        Optional precomputed squared norms of XA / XB rows (only used by
        distance-based kernels).

    Returns
    -------
    w : ndarray of shape (m,) or (m, k)
    """
    XA = np.atleast_2d(np.asarray(XA, dtype=np.float64))
    XB = np.atleast_2d(np.asarray(XB, dtype=np.float64))
    u = np.asarray(u, dtype=np.float64)
    m, d = XA.shape
    n = XB.shape[0]
    if XB.shape[1] != d:
        raise ValueError(f"dimension mismatch: XA is {XA.shape}, XB is {XB.shape}")
    single = u.ndim == 1
    U = u[:, None] if single else u
    if U.shape[0] != n:
        raise ValueError(f"u has leading dimension {U.shape[0]}, expected {n}")
    k = U.shape[1]

    if workspace is None:
        workspace = GSKSWorkspace()
    tm, tn = workspace.tile_m, workspace.tile_n

    use_dist = kernel.uses_distances
    if use_dist:
        if norms_a is None:
            norms_a = np.einsum("ij,ij->i", XA, XA)
        if norms_b is None:
            norms_b = np.einsum("ij,ij->i", XB, XB)

    # per-tile spans are behind the sampling knob (REPRO_TRACE_TILES):
    # with sampling off (the default) the tracer is never consulted in
    # the inner loop — only the tile counter is bumped, once per call.
    tr = tracer()
    trace_tiles = tr.sample_every > 0
    n_tiles = 0

    w = np.zeros((m, k), dtype=np.float64)
    for i0 in range(0, m, tm):
        i1 = min(i0 + tm, m)
        Ai = XA[i0:i1]
        na = norms_a[i0:i1] if use_dist else None
        for j0 in range(0, n, tn):
            j1 = min(j0 + tn, n)
            n_tiles += 1
            handle = (
                tr.span(
                    "gsks.tile",
                    attrs={"m": i1 - i0, "n": j1 - j0},
                    sampled=True,
                )
                if trace_tiles
                else None
            )
            if handle is not None:
                handle.__enter__()
            Bj = XB[j0:j1]
            tile = workspace.tile_view(i1 - i0, j1 - j0)
            if use_dist:
                np.matmul(Ai, Bj.T, out=tile)
                tile *= -2.0
                tile += na[:, None]
                tile += norms_b[j0:j1][None, :]
                np.maximum(tile, 0.0, out=tile)
            else:
                np.matmul(Ai, Bj.T, out=tile)
            tile = kernel._apply(
                tile, out=workspace.scratch_view(i1 - i0, j1 - j0)
            )
            # reduce against u while the tile is hot; never written back.
            w[i0:i1] += tile @ U[j0:j1]
            if handle is not None:
                handle.__exit__(None, None, None)

    registry().counter("gsks.tiles").inc(n_tiles)

    mt, nt = m, n
    count_flops(
        2 * mt * nt * d + kernel.flops_per_entry * mt * nt + 2 * mt * nt * k,
        label="gsks",
    )
    # memory traffic model: stream XA, XB, u, w once; tiles never spill.
    count_mops(mt * d + nt * d + nt * k + mt * k)
    return w[:, 0] if single else w
