"""Gaussian (RBF) kernel — the paper's evaluation kernel (eq. 1)."""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel
from repro.util.validation import check_positive

__all__ = ["GaussianKernel"]


class GaussianKernel(Kernel):
    r"""Gaussian kernel :math:`K(x, y) = \exp(-\|x-y\|^2 / (2 h^2))`.

    For small bandwidth ``h`` the kernel matrix approaches the identity
    (sparse regime); for large ``h`` it approaches the rank-one constant
    matrix (globally low-rank regime).  The interesting — and hard —
    middle regime is where the hierarchical factorization earns its keep.
    """

    uses_distances = True
    #: one scale + one exp per entry; exp modeled at ~10 flops as in the
    #: VML/SVML cost used for the Table I reference implementation model.
    flops_per_entry = 11

    def __init__(self, bandwidth: float = 1.0) -> None:
        check_positive(bandwidth, "bandwidth")
        self.bandwidth = float(bandwidth)

    def _apply(
        self, block: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        if out is None:
            out = block
        np.multiply(block, -0.5 / (self.bandwidth * self.bandwidth), out=out)
        np.exp(out, out=out)
        return out
