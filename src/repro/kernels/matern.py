"""Matern kernel family (nu in {1/2, 3/2, 5/2})."""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel
from repro.exceptions import ConfigurationError
from repro.util.validation import check_positive

__all__ = ["MaternKernel"]

_SQRT3 = np.sqrt(3.0)
_SQRT5 = np.sqrt(5.0)


class MaternKernel(Kernel):
    r"""Matern kernel with half-integer smoothness.

    * nu = 1/2: :math:`\exp(-r/h)` (identical to the Laplacian kernel)
    * nu = 3/2: :math:`(1 + \sqrt3 r/h)\exp(-\sqrt3 r/h)`
    * nu = 5/2: :math:`(1 + \sqrt5 r/h + 5r^2/(3h^2))\exp(-\sqrt5 r/h)`

    These closed forms avoid Bessel functions and are the variants used
    in large-scale Gaussian-process practice.
    """

    uses_distances = True
    flops_per_entry = 16

    def __init__(self, bandwidth: float = 1.0, nu: float = 1.5) -> None:
        check_positive(bandwidth, "bandwidth")
        if nu not in (0.5, 1.5, 2.5):
            raise ConfigurationError(
                f"MaternKernel supports nu in {{0.5, 1.5, 2.5}}; got {nu}"
            )
        self.bandwidth = float(bandwidth)
        self.nu = float(nu)

    def _apply(
        self, block: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        np.sqrt(block, out=block)  # block now holds r
        r = block
        h = self.bandwidth
        if self.nu == 0.5:
            if out is None:
                out = r
            np.multiply(r, -1.0 / h, out=out)
            np.exp(out, out=out)
            return out
        # nu >= 3/2 needs the polynomial prefactor and the exponential
        # simultaneously, hence a second buffer.
        if out is None:
            out = np.empty_like(block)
        if self.nu == 1.5:
            r *= _SQRT3 / h  # r now holds z
            np.negative(r, out=out)
            np.exp(out, out=out)  # out = exp(-z)
            r += 1.0
            out *= r
            return out
        r *= _SQRT5 / h  # r now holds z
        np.multiply(r, r, out=out)
        out *= 1.0 / 3.0
        out += r
        out += 1.0  # out = 1 + z + z^2/3
        r *= -1.0
        np.exp(r, out=r)
        out *= r
        return out
