"""Laplacian (exponential) kernel."""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel
from repro.util.validation import check_positive

__all__ = ["LaplacianKernel"]


class LaplacianKernel(Kernel):
    r"""Laplacian kernel :math:`K(x, y) = \exp(-\|x-y\| / h)`.

    Less smooth than the Gaussian at the origin; ASKIT (and hence this
    solver) handles it identically since only kernel *evaluations* are
    required.
    """

    uses_distances = True
    flops_per_entry = 13  # sqrt + scale + exp

    def __init__(self, bandwidth: float = 1.0) -> None:
        check_positive(bandwidth, "bandwidth")
        self.bandwidth = float(bandwidth)

    def _apply(
        self, block: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        if out is None:
            out = block
        np.sqrt(block, out=out)
        out *= -1.0 / self.bandwidth
        np.exp(out, out=out)
        return out
