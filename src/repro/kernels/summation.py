"""Kernel-summation strategies (paper Table IV, section II-D).

The solve phase repeatedly multiplies stored-or-implicit kernel blocks
``K(XA, XB)`` with vectors.  The paper studies three realizations with
different storage/time trade-offs; :class:`KernelSummation` implements
all three behind one interface so the solver can switch by configuration:

* ``PRECOMPUTED`` — store the dense block at construction, multiply with
  GEMV.  O(m n) storage, fastest per solve.
* ``REEVALUATE`` — store nothing; on every product, materialize the full
  block with a GEMM-based evaluation and then multiply.  O(m n) transient
  workspace, O(1) persistent storage, slowest (Table IV "GEMM" rows).
* ``FUSED`` — GSKS tiles: O(tile) workspace, O(1) persistent storage,
  within 1.2–1.6x of PRECOMPUTED per the paper.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.kernels.base import Kernel
from repro.kernels.gsks import GSKSWorkspace, gsks_matvec
from repro.util.flops import count_flops, count_mops

__all__ = ["SummationMethod", "KernelSummation"]


class SummationMethod(str, enum.Enum):
    """How ``K(XA, XB) @ u`` products are realized."""

    PRECOMPUTED = "precomputed"
    REEVALUATE = "reevaluate"
    FUSED = "fused"


class KernelSummation:
    """A (possibly implicit) kernel block ``K(XA, XB)`` with matvec.

    Parameters
    ----------
    kernel:
        The kernel function.
    XA, XB:
        Row/column point blocks.
    method:
        One of :class:`SummationMethod`.
    workspace:
        Shared :class:`GSKSWorkspace` for the FUSED method.
    """

    def __init__(
        self,
        kernel: Kernel,
        XA: np.ndarray,
        XB: np.ndarray,
        method: SummationMethod | str = SummationMethod.PRECOMPUTED,
        *,
        workspace: GSKSWorkspace | None = None,
    ) -> None:
        self.kernel = kernel
        self.XA = np.atleast_2d(np.asarray(XA, dtype=np.float64))
        self.XB = np.atleast_2d(np.asarray(XB, dtype=np.float64))
        self.method = SummationMethod(method)
        self.shape = (self.XA.shape[0], self.XB.shape[0])
        self._workspace = workspace
        self._matrix: np.ndarray | None = None
        self._norms_a = None
        self._norms_b = None
        if self.method is SummationMethod.PRECOMPUTED:
            self._matrix = kernel(self.XA, self.XB)
        elif self.method is SummationMethod.FUSED and kernel.uses_distances:
            self._norms_a = np.einsum("ij,ij->i", self.XA, self.XA)
            self._norms_b = np.einsum("ij,ij->i", self.XB, self.XB)

    # ------------------------------------------------------------------
    @property
    def storage_words(self) -> int:
        """Persistent float64 words held by this block (paper's memory study)."""
        if self._matrix is not None:
            return self._matrix.size
        extra = 0
        if self._norms_a is not None:
            extra = self._norms_a.size + self._norms_b.size
        return extra

    def matvec(self, u: np.ndarray) -> np.ndarray:
        """Compute ``K(XA, XB) @ u`` with the configured strategy."""
        m, n = self.shape
        u = np.asarray(u, dtype=np.float64)
        k = 1 if u.ndim == 1 else u.shape[1]
        if self.method is SummationMethod.PRECOMPUTED:
            count_flops(2 * m * n * k, label="summation_gemv")
            # streams the stored matrix plus vectors.
            count_mops(m * n + n * k + m * k)
            return self._matrix @ u
        if self.method is SummationMethod.REEVALUATE:
            K = self.kernel(self.XA, self.XB)
            count_flops(2 * m * n * k, label="summation_gemv")
            # the materialized block is written out and read back.
            count_mops(2 * m * n + m * self.XA.shape[1] + n * self.XB.shape[1] + n * k + m * k)
            return K @ u
        return gsks_matvec(
            self.kernel,
            self.XA,
            self.XB,
            u,
            workspace=self._workspace,
            norms_a=self._norms_a,
            norms_b=self._norms_b,
        )

    def rmatvec(self, u: np.ndarray) -> np.ndarray:
        """Compute ``K(XA, XB).T @ u == K(XB, XA) @ u`` (symmetric kernels)."""
        m, n = self.shape
        u = np.asarray(u, dtype=np.float64)
        k = 1 if u.ndim == 1 else u.shape[1]
        if self.method is SummationMethod.PRECOMPUTED:
            count_flops(2 * m * n * k, label="summation_gemv")
            count_mops(m * n + n * k + m * k)
            return self._matrix.T @ u
        if self.method is SummationMethod.REEVALUATE:
            K = self.kernel(self.XB, self.XA)
            count_flops(2 * m * n * k, label="summation_gemv")
            count_mops(2 * m * n + m * self.XA.shape[1] + n * self.XB.shape[1] + n * k + m * k)
            return K @ u
        return gsks_matvec(
            self.kernel,
            self.XB,
            self.XA,
            u,
            workspace=self._workspace,
            norms_a=self._norms_b,
            norms_b=self._norms_a,
        )

    def to_dense(self) -> np.ndarray:
        """Materialize the block (for testing / dense assembly)."""
        if self._matrix is not None:
            return self._matrix
        return self.kernel(self.XA, self.XB)
