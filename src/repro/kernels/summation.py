"""Kernel-summation strategies (paper Table IV, section II-D).

The solve phase repeatedly multiplies stored-or-implicit kernel blocks
``K(XA, XB)`` with vectors.  The paper studies three realizations with
different storage/time trade-offs; :class:`KernelSummation` implements
all three behind one interface so the solver can switch by configuration:

* ``PRECOMPUTED`` — store the dense block, multiply with GEMV.
  O(m n) storage, fastest per solve.
* ``REEVALUATE`` — store nothing; on every product, materialize the full
  block with a GEMM-based evaluation and then multiply.  O(m n) transient
  workspace, O(1) persistent storage, slowest (Table IV "GEMM" rows).
* ``FUSED`` — GSKS tiles: O(tile) workspace, O(1) persistent storage,
  within 1.2–1.6x of PRECOMPUTED per the paper.

When a :class:`~repro.perf.BlockCache` is attached, PRECOMPUTED blocks
live in the cache rather than on the summation object: the dense block
is materialized lazily on first product, subject to the cache's word
budget and store-vs-recompute policy, and a product whose block the
cache declines (or has evicted) falls back to the FUSED path.  That is
the paper's Table IV trade-off made per block at runtime.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Hashable

import numpy as np

from repro.exceptions import ConfigurationError
from repro.kernels.base import Kernel
from repro.kernels.gsks import GSKSWorkspace, gsks_matvec
from repro.util.flops import count_flops, count_mops

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.perf.blockcache import BlockCache

__all__ = ["SummationMethod", "KernelSummation"]


class SummationMethod(str, enum.Enum):
    """How ``K(XA, XB) @ u`` products are realized."""

    PRECOMPUTED = "precomputed"
    REEVALUATE = "reevaluate"
    FUSED = "fused"


class KernelSummation:
    """A (possibly implicit) kernel block ``K(XA, XB)`` with matvec.

    Parameters
    ----------
    kernel:
        The kernel function.
    XA, XB:
        Row/column point blocks.
    method:
        One of :class:`SummationMethod`.
    workspace:
        Shared :class:`GSKSWorkspace` for the FUSED method.
    norms_a, norms_b:
        Optional precomputed squared norms of the XA / XB rows (views
        into a tree-wide :class:`~repro.perf.NormTable`); computed here
        only when needed and not supplied.
    cache, cache_key:
        Optional :class:`~repro.perf.BlockCache` and key under which a
        PRECOMPUTED dense block is stored; both must be supplied
        together (a half-specified pair raises
        :class:`~repro.exceptions.ConfigurationError`).  Without a
        cache the block is computed eagerly and held on the object
        (seed behavior).
    """

    def __init__(
        self,
        kernel: Kernel,
        XA: np.ndarray,
        XB: np.ndarray,
        method: SummationMethod | str = SummationMethod.PRECOMPUTED,
        *,
        workspace: GSKSWorkspace | None = None,
        norms_a: np.ndarray | None = None,
        norms_b: np.ndarray | None = None,
        cache: "BlockCache | None" = None,
        cache_key: Hashable | None = None,
    ) -> None:
        self.kernel = kernel
        self.XA = np.atleast_2d(np.asarray(XA, dtype=np.float64))
        self.XB = np.atleast_2d(np.asarray(XB, dtype=np.float64))
        self.method = SummationMethod(method)
        self.shape = (self.XA.shape[0], self.XB.shape[0])
        self._workspace = workspace
        self._matrix: np.ndarray | None = None
        if (cache is None) != (cache_key is None):
            # a half-specified pair used to silently disable caching —
            # the caller asked for caching and got the eager/matrix-free
            # path instead, with no signal anything was wrong.
            raise ConfigurationError(
                "cache and cache_key must be supplied together; got "
                f"cache={'set' if cache is not None else None}, "
                f"cache_key={cache_key!r}"
            )
        self._cache = cache
        self._cache_key = cache_key
        self._norms_a = norms_a if kernel.uses_distances else None
        self._norms_b = norms_b if kernel.uses_distances else None
        needs_norms = kernel.uses_distances and (
            self.method is not SummationMethod.REEVALUATE
        )
        if needs_norms:
            if self._norms_a is None:
                self._norms_a = np.einsum("ij,ij->i", self.XA, self.XA)
            if self._norms_b is None:
                self._norms_b = np.einsum("ij,ij->i", self.XB, self.XB)
        if self.method is SummationMethod.PRECOMPUTED and self._cache is None:
            self._matrix = self._evaluate()

    # ------------------------------------------------------------------
    def _evaluate(self) -> np.ndarray:
        """Materialize the dense block."""
        return self.kernel(
            self.XA, self.XB, norms_a=self._norms_a, norms_b=self._norms_b
        )

    def _block_info(self):
        from repro.perf.blockcache import BlockInfo

        m, n = self.shape
        return BlockInfo(
            m=m, n=n, d=self.XA.shape[1], flops_per_entry=self.kernel.flops_per_entry
        )

    def _stored(self) -> np.ndarray | None:
        """The dense block if stored (object or cache), else None.

        With a cache this asks the budget/policy on each product, so a
        block the cache declines today may be admitted tomorrow after
        evictions free room — and vice versa.
        """
        if self._matrix is not None:
            return self._matrix
        if self._cache is not None:
            return self._cache.offer(
                self._cache_key, self._evaluate, self._block_info()
            )
        return None

    @property
    def storage_words(self) -> int:
        """Persistent float64 words held by this block (paper's memory study).

        Norm vectors are shared views of the tree-wide table when one is
        attached; they are only counted here when this object owns them
        (no cache/table involved, FUSED method) to match the seed
        accounting.
        """
        if self._matrix is not None:
            return self._matrix.size
        if self._cache is not None:
            if self._cache.contains(self._cache_key):
                m, n = self.shape
                return m * n
            return 0
        extra = 0
        if self.method is SummationMethod.FUSED and self._norms_a is not None:
            extra = self._norms_a.size + self._norms_b.size
        return extra

    def matvec(self, u: np.ndarray) -> np.ndarray:
        """Compute ``K(XA, XB) @ u`` with the configured strategy."""
        m, n = self.shape
        u = np.asarray(u, dtype=np.float64)
        k = 1 if u.ndim == 1 else u.shape[1]
        if self.method is SummationMethod.PRECOMPUTED:
            K = self._stored()
            if K is not None:
                count_flops(2 * m * n * k, label="summation_gemv")
                # streams the stored matrix plus vectors.
                count_mops(m * n + n * k + m * k)
                return K @ u
            # cache declined the block: recompute matrix-free.
        elif self.method is SummationMethod.REEVALUATE:
            K = self.kernel(self.XA, self.XB)
            count_flops(2 * m * n * k, label="summation_gemv")
            # the materialized block is written out and read back.
            count_mops(2 * m * n + m * self.XA.shape[1] + n * self.XB.shape[1] + n * k + m * k)
            return K @ u
        return gsks_matvec(
            self.kernel,
            self.XA,
            self.XB,
            u,
            workspace=self._workspace,
            norms_a=self._norms_a,
            norms_b=self._norms_b,
        )

    def rmatvec(self, u: np.ndarray) -> np.ndarray:
        """Compute ``K(XA, XB).T @ u == K(XB, XA) @ u`` (symmetric kernels)."""
        m, n = self.shape
        u = np.asarray(u, dtype=np.float64)
        k = 1 if u.ndim == 1 else u.shape[1]
        if self.method is SummationMethod.PRECOMPUTED:
            K = self._stored()
            if K is not None:
                count_flops(2 * m * n * k, label="summation_gemv")
                count_mops(m * n + n * k + m * k)
                return K.T @ u
        elif self.method is SummationMethod.REEVALUATE:
            K = self.kernel(self.XB, self.XA)
            count_flops(2 * m * n * k, label="summation_gemv")
            count_mops(2 * m * n + m * self.XA.shape[1] + n * self.XB.shape[1] + n * k + m * k)
            return K @ u
        return gsks_matvec(
            self.kernel,
            self.XB,
            self.XA,
            u,
            workspace=self._workspace,
            norms_a=self._norms_b,
            norms_b=self._norms_a,
        )

    def to_dense(self) -> np.ndarray:
        """Materialize the block (for testing / dense assembly)."""
        if self._matrix is not None:
            return self._matrix
        if self._cache is not None:
            block = self._cache.fetch(self._cache_key)
            if block is not None:
                return block
        return self._evaluate()

    # -- pickling: the cache handle is process-local ---------------------
    def __getstate__(self):
        state = dict(self.__dict__)
        state["_cache"] = None
        state["_cache_key"] = None
        if state["_matrix"] is None and self.method is SummationMethod.PRECOMPUTED:
            # ship nothing dense; the receiver re-evaluates lazily
            # against its own default cache (deterministic, so products
            # are bitwise identical).
            pass
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        if (
            self.method is SummationMethod.PRECOMPUTED
            and self._matrix is None
            and self._cache is None
        ):
            from repro.perf.blockcache import default_cache, next_namespace

            self._cache = default_cache()
            self._cache_key = (next_namespace(), "summation")
