"""Polynomial kernel."""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel
from repro.util.validation import check_positive

__all__ = ["PolynomialKernel"]


class PolynomialKernel(Kernel):
    r"""Polynomial kernel :math:`K(x, y) = (\gamma\, x\cdot y + c)^p`.

    An inner-product (non-stationary) kernel; exercises the
    ``uses_distances = False`` path of the summation machinery.
    """

    uses_distances = False
    flops_per_entry = 4

    def __init__(self, degree: int = 2, gamma: float = 1.0, coef0: float = 1.0) -> None:
        check_positive(degree, "degree")
        check_positive(gamma, "gamma")
        self.degree = int(degree)
        self.gamma = float(gamma)
        self.coef0 = float(coef0)

    def _apply(
        self, block: np.ndarray, out: np.ndarray | None = None
    ) -> np.ndarray:
        if out is None:
            out = block
        np.multiply(block, self.gamma, out=out)
        out += self.coef0
        if self.degree != 1:
            np.power(out, self.degree, out=out)
        return out
