"""Blocked pairwise squared Euclidean distances.

The rank-d update ``-2 X_A X_B^T`` plus squared-norm broadcasts is the
"semi-ring GEMM" at the heart of GSKS (paper section II-D).  We expose it
as a standalone routine because both the dense kernel evaluation and the
tiled matrix-free summation are built on it, and because it carries the
FLOP accounting for the performance model.
"""

from __future__ import annotations

import numpy as np

from repro.util.flops import count_flops

__all__ = ["pairwise_sq_dists", "sq_norms"]


def sq_norms(X: np.ndarray) -> np.ndarray:
    """Row-wise squared 2-norms of an (n, d) matrix."""
    X = np.asarray(X, dtype=np.float64)
    count_flops(2 * X.shape[0] * X.shape[1], label="sqnorm")
    return np.einsum("ij,ij->i", X, X)


def pairwise_sq_dists(
    XA: np.ndarray,
    XB: np.ndarray,
    *,
    norms_a: np.ndarray | None = None,
    norms_b: np.ndarray | None = None,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """Squared distances ``D2[i, j] = ||XA[i] - XB[j]||^2``.

    Uses the expansion ``||a||^2 - 2 a.b + ||b||^2`` (a rank-d update),
    clamping tiny negative values arising from cancellation to zero.
    Precomputed squared norms may be passed to avoid recomputation in
    tiled loops; ``out`` allows reuse of an (m, n) workspace.
    """
    XA = np.asarray(XA, dtype=np.float64)
    XB = np.asarray(XB, dtype=np.float64)
    if XA.ndim != 2 or XB.ndim != 2 or XA.shape[1] != XB.shape[1]:
        raise ValueError(
            f"incompatible point blocks: {XA.shape} vs {XB.shape}"
        )
    m, d = XA.shape
    n = XB.shape[0]
    if norms_a is None:
        norms_a = sq_norms(XA)
    if norms_b is None:
        norms_b = sq_norms(XB)

    if out is None:
        D2 = XA @ XB.T
        D2 *= -2.0
    else:
        if out.shape != (m, n):
            raise ValueError(f"out has shape {out.shape}, expected {(m, n)}")
        np.matmul(XA, XB.T, out=out)
        out *= -2.0
        D2 = out
    # rank-d update: 2*m*n*d flops, plus the broadcast adds.
    count_flops(2 * m * n * d + 3 * m * n, label="pairwise_sq_dists")
    D2 += norms_a[:, None]
    D2 += norms_b[None, :]
    np.maximum(D2, 0.0, out=D2)
    return D2
