"""Kernel functions and kernel summation (paper sections I, II-D).

Provides the kernel zoo ASKIT has been applied to (Gaussian, Laplacian,
Matern, polynomial), blocked pairwise-distance computation, and the
GSKS-style fused matrix-free kernel summation with FLOP/MOP accounting.
"""

from repro.kernels.base import Kernel
from repro.kernels.gaussian import GaussianKernel
from repro.kernels.laplacian import LaplacianKernel
from repro.kernels.matern import MaternKernel
from repro.kernels.polynomial import PolynomialKernel
from repro.kernels.distances import pairwise_sq_dists
from repro.kernels.gsks import autotuned_tiles, gsks_matvec, GSKSWorkspace
from repro.kernels.summation import SummationMethod, KernelSummation

__all__ = [
    "Kernel",
    "GaussianKernel",
    "LaplacianKernel",
    "MaternKernel",
    "PolynomialKernel",
    "pairwise_sq_dists",
    "autotuned_tiles",
    "gsks_matvec",
    "GSKSWorkspace",
    "SummationMethod",
    "KernelSummation",
    "kernel_by_name",
]


def kernel_by_name(name: str, **params) -> Kernel:
    """Construct a kernel from its string name.

    Parameters are forwarded to the kernel constructor, e.g.
    ``kernel_by_name("gaussian", bandwidth=0.5)``.
    """
    registry = {
        "gaussian": GaussianKernel,
        "laplacian": LaplacianKernel,
        "matern": MaternKernel,
        "polynomial": PolynomialKernel,
    }
    try:
        cls = registry[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {sorted(registry)}"
        ) from None
    return cls(**params)
