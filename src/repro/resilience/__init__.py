"""Resilient execution: deadlines, work budgets, checkpoint/restart.

The paper's value proposition is a *predictable* O(N log N)
factorization; this layer makes the reproduction predictable under
operational pressure too:

* :mod:`repro.resilience.deadline` — a monotonic-clock
  :class:`Deadline` / :class:`WorkBudget` threaded through tree build,
  skeletonization, per-level factorization, the iterative solvers, and
  ``run_spmd``, with cooperative cancellation checks at tree-node /
  level / iteration granularity;
* :mod:`repro.resilience.checkpoint` — the versioned on-disk
  ``repro.checkpoint/v1`` format: content checksums, config
  fingerprints, refuse-to-load-on-mismatch, so an interrupted
  factorization resumes from the last completed level;
* :mod:`repro.resilience.degradation` — the deadline-pressure ladder
  (coarsen rank tolerance → freeze the frontier and finish with the
  hybrid GMRES path → preconditioned iterative fallback), every rung
  recorded in :class:`repro.solvers.recovery.SolverHealth`.

See docs/ROBUSTNESS.md sections 6–8 for the full guide.
"""

from repro.resilience.checkpoint import (
    CHECKPOINT_SCHEMA,
    Checkpoint,
    config_fingerprint,
)
from repro.resilience.deadline import (
    CoarsenPolicy,
    Deadline,
    WorkBudget,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.resilience.degradation import (
    freeze_frontier_at_level,
    resilient_factorize,
)

__all__ = [
    "CHECKPOINT_SCHEMA",
    "Checkpoint",
    "CoarsenPolicy",
    "Deadline",
    "WorkBudget",
    "check_deadline",
    "config_fingerprint",
    "current_deadline",
    "deadline_scope",
    "freeze_frontier_at_level",
    "resilient_factorize",
]
