"""Degradation ladder: finish *something* when the budget runs out.

The source paper's level-restricted hybrid scheme (section II-C) is
what makes graceful degradation possible at all: a factorization that
stops at *any* antichain of skeletonized nodes is still a valid
partial factorization, and the hybrid GMRES path can finish the solve
from there without ever factorizing the coalesced system.  The ladder:

1. **coarsen** (in :func:`repro.skeleton.skeletonize.skeletonize`) —
   under deadline pressure the rank tolerance ``tau`` is multiplied up
   at level boundaries, shrinking skeletons and all downstream work;
2. **freeze-frontier** (:func:`freeze_frontier_at_level`, here) — when
   the deadline lands mid-factorization, the deepest *completed* level
   becomes the frontier; the finished factors are transplanted and the
   hybrid reduced solve finishes the job;
3. **iterative** — preconditioned GMRES on ``lambda I + K~`` via
   :class:`repro.solvers.recovery.IterativeFallback`.

Every rung lands in :class:`~repro.solvers.recovery.SolverHealth` and
the ``resilience.degradation`` metric, so a degraded answer always
says how it was obtained.
"""

from __future__ import annotations

import copy
from dataclasses import replace

from repro.config import SolverConfig
from repro.exceptions import DeadlineExceededError, StabilityError
from repro.hmatrix.hmatrix import HMatrix
from repro.obs import registry
from repro.resilience.deadline import Deadline
from repro.solvers.factorization import factorize
from repro.solvers.recovery import (
    IterativeFallback,
    SolverHealth,
    robust_factorize,
)

__all__ = ["freeze_frontier_at_level", "resilient_factorize"]


def freeze_frontier_at_level(hmatrix: HMatrix, level: int) -> HMatrix:
    """A shallow copy of ``hmatrix`` with the frontier frozen at ``level``.

    The frozen frontier is the antichain made of (a) every node at
    exactly ``level`` that sat at/below the old frontier and (b) old
    frontier nodes already deeper than ``level``.  Because leaves all
    sit at the same depth and splits are median, this antichain
    partitions the point set, and every member is skeletonized (the
    whole below-frontier region is), so the hybrid method can run on it
    directly.  Skeletons, blocks, and the cache are shared — only the
    factorization boundary moves, exactly like
    :func:`repro.solvers.recovery.descend_frontier` but *upward-bounded*
    by finished work instead of downward by breakdown.
    """
    new_frontier = [f for f in hmatrix.frontier if f.level > level]
    new_frontier += [
        n for n in hmatrix._nodes_at_or_below_frontier() if n.level == level
    ]
    new_frontier.sort(key=lambda n: n.lo)
    frozen = copy.copy(hmatrix)
    frozen.frontier = new_frontier
    frozen._frontier_ids = {f.id for f in new_frontier}
    frozen._below = frozen._nodes_at_or_below_frontier()
    return frozen


def resilient_factorize(
    hmatrix: HMatrix,
    lam: float = 0.0,
    config: SolverConfig | None = None,
    *,
    health: SolverHealth | None = None,
    deadline: Deadline | None = None,
    checkpoint=None,
):
    """Factorize under a deadline, degrading instead of dying.

    Runs the configured factorization (through
    :func:`~repro.solvers.recovery.robust_factorize` when the numerical
    recovery ladder is enabled) with ``deadline`` charged per node and
    ``checkpoint`` written per completed level.  When the budget runs
    out mid-factorization and ``config.resilience.degrade`` is on:

    * **rung 2 (freeze-frontier)** — if at least one level finished at
      or below ``resilience.freeze_frontier_cap``, the completed
      factors are transplanted onto
      :func:`freeze_frontier_at_level`'s frozen H-matrix and the cheap
      hybrid reduced stage finishes the factorization (no per-node work
      remains; the finishing stage runs on a fresh unlimited deadline —
      the budget already spoke, the point now is to return);
    * **rung 3 (iterative)** — otherwise, or if the frozen hybrid also
      fails, an :class:`~repro.solvers.recovery.IterativeFallback`.

    With ``degrade`` off the
    :class:`~repro.exceptions.DeadlineExceededError` propagates.

    Returns ``(factorization_like, health)``.
    """
    config = config or SolverConfig()
    res = config.resilience
    health = health or SolverHealth()
    partial: list = []

    resume_levels = None
    on_level = None
    if checkpoint is not None:
        resume_levels = checkpoint.load_levels(lam=lam, method=config.method)

        def on_level(level, fact):
            checkpoint.save_level(
                level,
                fact.export_level_payload(level),
                lam=lam,
                method=config.method,
            )
            if fact.recovery_events:
                # a lambda bump re-factorizes a whole subtree, touching
                # levels already on disk — re-save them so a later
                # resume never mixes pre- and post-bump factors.
                for lv in fact.completed_levels:
                    if lv != level:
                        checkpoint.save_level(
                            lv,
                            fact.export_level_payload(lv),
                            lam=lam,
                            method=config.method,
                        )

    kwargs = dict(
        deadline=deadline,
        resume_levels=resume_levels,
        on_level=on_level,
        partial_sink=partial,
    )
    try:
        if config.recovery.enabled:
            return robust_factorize(hmatrix, lam, config, health, **kwargs)
        fact = factorize(hmatrix, lam, config, **kwargs)
        health.ingest_factorization(fact)
        health.final_path = config.method
        return fact, health
    except DeadlineExceededError as exc:
        if not res.degrade:
            raise
        health.record("escalation", rung="deadline", error=repr(exc))

    # ---- rung 2: freeze the frontier at the deepest completed level --
    fact0 = partial[0] if partial else None
    finish = Deadline()  # unlimited: the remaining work is the cheap tail
    if fact0 is not None and fact0.completed_levels:
        cut = min(fact0.completed_levels)
        if cut >= res.freeze_frontier_cap:
            frozen = freeze_frontier_at_level(hmatrix, cut)
            hybrid = replace(config, method="hybrid")
            transplant = {
                lv: fact0.export_level_payload(lv)
                for lv in fact0.completed_levels
            }
            try:
                fact = factorize(
                    frozen,
                    lam,
                    hybrid,
                    deadline=finish,
                    resume_levels=transplant,
                )
                health.ingest_factorization(fact)
                health.record(
                    "frontier_freeze",
                    level=cut,
                    frontier_size=len(frozen.frontier),
                )
                registry().counter(
                    "resilience.degradation", rung="frontier_freeze"
                ).inc()
                health.final_path = "hybrid"
                return fact, health
            except StabilityError as exc:
                health.record(
                    "escalation", rung="frontier_freeze", error=repr(exc)
                )

    # ---- rung 3: iterative fallback ---------------------------------
    health.record("iterative_fallback", rung="deadline")
    registry().counter("resilience.degradation", rung="iterative").inc()
    health.final_path = "iterative"
    return IterativeFallback(hmatrix, lam, config), health
