"""Monotonic-clock deadlines and work budgets with cooperative checks.

A :class:`Deadline` is created once at the top of a pipeline (the
facade builds it from ``SolverConfig.resilience``) and *installed* for
the duration of the work with :func:`deadline_scope`.  Deep code —
skeletonization levels, factorization nodes, GMRES/CG iterations —
calls :func:`check_deadline` (or reads :func:`current_deadline` once
and polls ``expired``) at natural cancellation points.  When no
deadline is installed every check is a single ``ContextVar`` read (or
a pre-resolved ``None`` test), so the un-budgeted paths keep their
performance.

Checks are *cooperative*: a BLAS call in flight is never interrupted,
so cancellation latency is bounded by the largest single dense
operation (one leaf LU, one reduced-system solve), not by the whole
factorization.

Thread propagation: a ``ContextVar`` does not cross thread spawns, so
the executors that fan work out to threads (``run_spmd``, the task-DAG
executor) capture :func:`current_deadline` in the caller and
re-install it inside each worker.
"""

from __future__ import annotations

import contextlib
import contextvars
import threading
import time
from dataclasses import dataclass

from repro.exceptions import BudgetExhaustedError, DeadlineExceededError

__all__ = [
    "CoarsenPolicy",
    "Deadline",
    "WorkBudget",
    "check_deadline",
    "current_deadline",
    "deadline_scope",
]


class WorkBudget:
    """A counted budget of abstract work units (e.g. node factorizations).

    Deterministic companion to the wall-clock deadline: tests and
    reproducible degradation runs trip on an exact unit count instead
    of a racy timer.

    Parameters
    ----------
    limit:
        Maximum units; ``None`` means unlimited.
    """

    def __init__(self, limit: int | None = None) -> None:
        if limit is not None and limit < 0:
            raise ValueError(f"work budget limit must be >= 0; got {limit}")
        self.limit = limit
        self.used = 0
        # concurrent solves against one resident solver charge the same
        # budget; an unlocked `used += units` loses updates under
        # threads, silently inflating the budget.
        self._lock = threading.Lock()

    # -- pickling: locks are not picklable; recreate on load -------------
    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    @property
    def exhausted(self) -> bool:
        return self.limit is not None and self.used >= self.limit

    def remaining(self) -> float:
        if self.limit is None:
            return float("inf")
        return max(0, self.limit - self.used)

    def charge(self, units: int = 1, where: str = "") -> None:
        """Consume ``units``; raise once the budget is exhausted."""
        with self._lock:
            self.used += units
            used = self.used
        if self.limit is not None and used >= self.limit:
            raise BudgetExhaustedError(
                f"work budget exhausted ({used}/{self.limit} units"
                + (f" at {where}" if where else "")
                + ")"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorkBudget(used={self.used}, limit={self.limit})"


class Deadline:
    """A monotonic-clock deadline, optionally paired with a work budget.

    The clock starts at construction.  ``seconds=None`` means no time
    limit (useful to carry only a :class:`WorkBudget`); an entirely
    limitless deadline is legal and never expires.

    Parameters
    ----------
    seconds:
        Wall-clock budget from construction, or ``None``.
    budget:
        Optional :class:`WorkBudget` checked alongside the clock.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        seconds: float | None = None,
        *,
        budget: WorkBudget | None = None,
        clock=time.monotonic,
    ) -> None:
        if seconds is not None and seconds < 0:
            raise ValueError(f"deadline seconds must be >= 0; got {seconds}")
        self._clock = clock
        self._start = clock()
        self.seconds = seconds
        self.budget = budget

    @classmethod
    def after(cls, seconds: float, **kwargs) -> "Deadline":
        return cls(seconds, **kwargs)

    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        return self._clock() - self._start

    def remaining(self) -> float:
        """Seconds left (``inf`` when untimed, clamped at 0.0)."""
        if self.seconds is None:
            return float("inf")
        return max(0.0, self.seconds - self.elapsed())

    @property
    def expired(self) -> bool:
        if self.budget is not None and self.budget.exhausted:
            return True
        return self.seconds is not None and self.elapsed() >= self.seconds

    def fraction_used(self) -> float:
        """Pressure gauge in [0, inf): elapsed / budget (0 when untimed)."""
        if self.seconds is None or self.seconds <= 0.0:
            return float("inf") if self.seconds == 0.0 else 0.0
        return self.elapsed() / self.seconds

    # ------------------------------------------------------------------
    def check(self, where: str = "") -> None:
        """Cooperative cancellation point: raise when out of budget."""
        if self.budget is not None and self.budget.exhausted:
            raise BudgetExhaustedError(
                f"work budget exhausted ({self.budget.used}/"
                f"{self.budget.limit} units"
                + (f" at {where}" if where else "")
                + ")"
            )
        if self.seconds is not None and self.elapsed() >= self.seconds:
            raise DeadlineExceededError(
                f"deadline of {self.seconds:.3f}s exceeded "
                f"({self.elapsed():.3f}s elapsed"
                + (f" at {where}" if where else "")
                + ")"
            )

    def charge(self, units: int = 1, where: str = "") -> None:
        """Consume work units (if budgeted) and check the clock."""
        if self.budget is not None:
            self.budget.charge(units, where)
        self.check(where)

    def summary(self) -> dict:
        """JSON-friendly digest for telemetry and reports."""
        out: dict = {
            "seconds": self.seconds,
            "elapsed": self.elapsed(),
            "expired": self.expired,
        }
        if self.budget is not None:
            out["work_used"] = self.budget.used
            out["work_limit"] = self.budget.limit
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Deadline(seconds={self.seconds}, elapsed={self.elapsed():.3f}, "
            f"budget={self.budget})"
        )


@dataclass(frozen=True)
class CoarsenPolicy:
    """Rung 1 of the degradation ladder: coarsen the rank tolerance.

    Skeletonization watches :meth:`Deadline.fraction_used` at level
    boundaries; each time the pressure crosses the next threshold the
    effective ``tau`` is multiplied by ``tau_factor`` (coarser
    tolerance → smaller skeletons → cheaper remaining levels).  The
    thresholds halve the remaining headroom each step:
    ``pressure, (1+pressure)/2, (3+pressure)/4, ...``.

    Attributes
    ----------
    pressure:
        Budget fraction at which the first coarsening triggers.
    tau_factor:
        Multiplier applied to ``tau`` per rung step.
    max_steps:
        Cap on coarsening steps (``tau`` never exceeds 0.5).
    """

    pressure: float = 0.5
    tau_factor: float = 10.0
    max_steps: int = 3

    def thresholds(self) -> list[float]:
        out, p = [], self.pressure
        for _ in range(self.max_steps):
            out.append(p)
            p = (1.0 + p) / 2.0
        return out


# ------------------------------------------------------------------
# the installed deadline (per-thread; executors re-install explicitly)
# ------------------------------------------------------------------
_current: contextvars.ContextVar[Deadline | None] = contextvars.ContextVar(
    "repro_deadline", default=None
)


def current_deadline() -> Deadline | None:
    """The deadline installed by the innermost :func:`deadline_scope`."""
    return _current.get()


@contextlib.contextmanager
def deadline_scope(deadline: Deadline | None):
    """Install ``deadline`` for the duration of the block.

    ``None`` is accepted and installs nothing, so call sites can write
    ``with deadline_scope(maybe_none):`` unconditionally.
    """
    if deadline is None:
        yield None
        return
    token = _current.set(deadline)
    try:
        yield deadline
    finally:
        _current.reset(token)


def check_deadline(where: str = "") -> None:
    """Check the installed deadline, if any (no-op otherwise)."""
    deadline = _current.get()
    if deadline is not None:
        deadline.check(where)
