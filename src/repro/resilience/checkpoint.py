"""The versioned on-disk checkpoint format ``repro.checkpoint/v1``.

Layout (one directory per checkpoint):

.. code-block:: text

    <dir>/MANIFEST.json     # schema, config fingerprint, payload index
    <dir>/<name>.pkl        # pickled payloads (solver meta, skeletons,
                            # level_<L> factor payloads)

``MANIFEST.json`` is the source of truth: a payload file not listed
there does not exist (crash-consistency — payloads are written and
fsync-replaced *before* the manifest references them, so a kill at any
point leaves either the previous consistent state or the new one,
never a manifest pointing at a truncated file).

Safety model — *refuse to load, never a wrong answer*:

* every payload records its sha256; a mismatch on load raises
  :class:`~repro.exceptions.CheckpointError`;
* the manifest records a :func:`config_fingerprint` over the data
  matrix, kernel, and tree/skeleton configs; opening for resume with a
  different fingerprint raises — factors from a different problem are
  never transplanted;
* factor-level payloads additionally record ``lam`` and the solver
  method; :meth:`Checkpoint.load_levels` silently *skips* entries for
  a different ``lam``/method (a legitimate new factorization of the
  same matrix), it does not error.

Pickle note: payloads are loaded with :mod:`pickle`, so a checkpoint
directory carries the usual pickle trust model — only resume from
directories you wrote.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile

import numpy as np

from repro.exceptions import CheckpointError

__all__ = ["CHECKPOINT_SCHEMA", "Checkpoint", "config_fingerprint"]

CHECKPOINT_SCHEMA = "repro.checkpoint/v1"

_MANIFEST = "MANIFEST.json"


def _canonical(obj) -> object:
    """JSON-serializable canonical form of config-ish values."""
    if isinstance(obj, dict):
        return {str(k): _canonical(v) for k, v in sorted(obj.items())}
    if isinstance(obj, (list, tuple)):
        return [_canonical(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return hashlib.sha256(np.ascontiguousarray(obj).tobytes()).hexdigest()
    if isinstance(obj, (str, int, bool)) or obj is None:
        return obj
    if isinstance(obj, float):
        return repr(obj)
    if hasattr(obj, "__dataclass_fields__"):
        # execution-only knobs (e.g. SolverConfig.backend) do not change
        # the math, so checkpoints stay interchangeable across them.
        skip = getattr(obj, "_FINGERPRINT_EXCLUDE", ())
        return {
            "__type__": type(obj).__name__,
            **{
                k: _canonical(getattr(obj, k))
                for k in sorted(obj.__dataclass_fields__)
                if k not in skip
            },
        }
    # kernels and other simple objects: type name + public attributes
    return {
        "__type__": type(obj).__name__,
        **{
            k: _canonical(v)
            for k, v in sorted(vars(obj).items())
            if not k.startswith("_")
        },
    }


def config_fingerprint(X: np.ndarray, kernel, *configs) -> str:
    """sha256 identity of (data, kernel, configs).

    Two runs with the same fingerprint skeletonize and factorize the
    same matrix with the same parameters, so their checkpointed factors
    are interchangeable.  The data matrix enters via a content hash of
    its float64 bytes (shape included), not object identity.
    """
    X = np.ascontiguousarray(np.asarray(X, dtype=np.float64))
    doc = {
        "schema": CHECKPOINT_SCHEMA,
        "x_shape": list(X.shape),
        "x_sha256": hashlib.sha256(X.tobytes()).hexdigest(),
        "kernel": _canonical(kernel),
        "configs": [_canonical(c) for c in configs],
    }
    blob = json.dumps(doc, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def _sha256_file(path: str) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as f:
        for chunk in iter(lambda: f.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def _atomic_write(path: str, data: bytes) -> None:
    d = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=d, prefix=".tmp-", suffix=".part")
    try:
        with os.fdopen(fd, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


class Checkpoint:
    """One ``repro.checkpoint/v1`` directory.

    Parameters
    ----------
    path:
        Checkpoint directory (created on first save).
    fingerprint:
        The writer's :func:`config_fingerprint`.  On open, an existing
        manifest with a *different* fingerprint is rejected in
        ``mode="resume"`` (:class:`~repro.exceptions.CheckpointError`)
        and discarded in ``mode="write"`` (a new problem starts a fresh
        checkpoint).  ``None`` (inspection tools) accepts any manifest.
    mode:
        ``"write"`` | ``"resume"`` | ``"inspect"``.
    """

    def __init__(
        self,
        path: str,
        fingerprint: str | None = None,
        mode: str = "write",
    ) -> None:
        if mode not in ("write", "resume", "inspect"):
            raise ValueError(f"bad checkpoint mode {mode!r}")
        self.path = str(path)
        self.fingerprint = fingerprint
        self.mode = mode
        self.manifest = self._open()

    # ------------------------------------------------------------------
    def _manifest_path(self) -> str:
        return os.path.join(self.path, _MANIFEST)

    def _fresh_manifest(self) -> dict:
        return {
            "schema": CHECKPOINT_SCHEMA,
            "fingerprint": self.fingerprint,
            "payloads": {},
        }

    def _open(self) -> dict:
        mp = self._manifest_path()
        if not os.path.exists(mp):
            if self.mode == "resume":
                raise CheckpointError(
                    f"no checkpoint manifest at {mp}; nothing to resume"
                )
            return self._fresh_manifest()
        try:
            with open(mp, encoding="utf-8") as f:
                manifest = json.load(f)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable checkpoint manifest {mp}: {exc}") from exc
        schema = manifest.get("schema")
        if schema != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"checkpoint schema mismatch at {mp}: found {schema!r}, "
                f"this build reads {CHECKPOINT_SCHEMA!r}"
            )
        theirs = manifest.get("fingerprint")
        if self.fingerprint is not None and theirs != self.fingerprint:
            if self.mode == "write":
                # different problem/config: start over rather than mixing
                # incompatible factors in one directory.
                return self._fresh_manifest()
            raise CheckpointError(
                f"checkpoint at {self.path} was written for a different "
                f"problem/config (fingerprint {theirs!r:.20} != "
                f"{self.fingerprint!r:.20}); refusing to load"
            )
        manifest.setdefault("payloads", {})
        return manifest

    def _write_manifest(self) -> None:
        blob = json.dumps(self.manifest, indent=2, sort_keys=True)
        _atomic_write(self._manifest_path(), blob.encode())

    # ------------------------------------------------------------------
    def names(self) -> list[str]:
        return sorted(self.manifest["payloads"])

    def has(self, name: str) -> bool:
        return name in self.manifest["payloads"]

    def save(self, name: str, obj, meta: dict | None = None) -> None:
        """Pickle ``obj`` atomically and index it in the manifest."""
        os.makedirs(self.path, exist_ok=True)
        fname = f"{name}.pkl"
        try:
            blob = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(
                f"checkpoint payload {name!r} is not serializable: {exc}"
            ) from exc
        _atomic_write(os.path.join(self.path, fname), blob)
        entry = {
            "file": fname,
            "sha256": hashlib.sha256(blob).hexdigest(),
            "bytes": len(blob),
        }
        if meta:
            entry.update(meta)
        self.manifest["payloads"][name] = entry
        self._write_manifest()

    def load(self, name: str):
        """Load a payload, verifying its recorded sha256 first."""
        entry = self.manifest["payloads"].get(name)
        if entry is None:
            raise CheckpointError(
                f"checkpoint at {self.path} has no payload {name!r} "
                f"(have: {self.names()})"
            )
        fpath = os.path.join(self.path, entry["file"])
        if not os.path.exists(fpath):
            raise CheckpointError(
                f"checkpoint payload file missing: {fpath} (manifest lists it)"
            )
        digest = _sha256_file(fpath)
        if digest != entry["sha256"]:
            raise CheckpointError(
                f"checkpoint payload {name!r} is corrupted: sha256 "
                f"{digest:.16} != recorded {entry['sha256']:.16}; "
                "refusing to load"
            )
        with open(fpath, "rb") as f:
            try:
                return pickle.load(f)
            except Exception as exc:
                raise CheckpointError(
                    f"checkpoint payload {name!r} failed to unpickle: {exc}"
                ) from exc

    def meta(self, name: str) -> dict:
        entry = self.manifest["payloads"].get(name)
        if entry is None:
            raise CheckpointError(f"no payload {name!r} in {self.path}")
        return dict(entry)

    # ------------------------------------------------------------------
    # factor-level helpers
    # ------------------------------------------------------------------
    @staticmethod
    def level_name(level: int) -> str:
        return f"level_{level:03d}"

    def save_level(
        self, level: int, payload: dict, *, lam: float, method: str
    ) -> None:
        self.save(
            self.level_name(level),
            payload,
            meta={"level": level, "lam": lam, "method": method},
        )

    def load_levels(self, *, lam: float, method: str) -> dict[int, dict]:
        """All stored factor levels matching (lam, method).

        Entries for a different ``lam`` or method belong to a different
        (legitimate) factorization of the same matrix and are skipped,
        not errors.  Corrupted matching payloads still raise.
        """
        out: dict[int, dict] = {}
        for name, entry in self.manifest["payloads"].items():
            if "level" not in entry:
                continue
            if entry.get("lam") != lam or entry.get("method") != method:
                continue
            out[int(entry["level"])] = self.load(name)
        return out

    def drop_levels(self) -> None:
        """Forget factor levels (e.g. before re-factorizing with new lam)."""
        names = [n for n, e in self.manifest["payloads"].items() if "level" in e]
        for n in names:
            del self.manifest["payloads"][n]
        if names:
            self._write_manifest()

    def describe(self) -> dict:
        """JSON-friendly summary for ``repro checkpoint inspect``."""
        payloads = {}
        for name, entry in sorted(self.manifest["payloads"].items()):
            fpath = os.path.join(self.path, entry["file"])
            ok = os.path.exists(fpath) and _sha256_file(fpath) == entry["sha256"]
            payloads[name] = {**entry, "intact": ok}
        return {
            "schema": self.manifest.get("schema"),
            "path": self.path,
            "fingerprint": self.manifest.get("fingerprint"),
            "payloads": payloads,
        }
