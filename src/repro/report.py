"""Human-readable and machine-readable reports.

Downstream users debugging a failing compression need to *see* where
ranks blow up.  :func:`rank_structure` renders the tree with per-node
skeleton ranks, compression ratios, and frontier markers;
:func:`summarize` produces the one-paragraph digest used by the CLI
and the examples; :func:`json_report` bundles the structural
diagnostics with the process telemetry blob (span tree + metrics, see
docs/OBSERVABILITY.md) into one JSON-serializable dict.
"""

from __future__ import annotations

import numpy as np

from repro.hmatrix.hmatrix import HMatrix

__all__ = ["rank_structure", "summarize", "json_report"]


def rank_structure(h: HMatrix, *, max_depth: int | None = None) -> str:
    """ASCII rendering of the tree with skeleton ranks.

    One line per node: indentation by level, node id, point count,
    skeleton rank (``-`` above the frontier), the compression ratio
    rank/candidates, and a ``*`` marker on frontier nodes.

    Parameters
    ----------
    h:
        Built hierarchical matrix.
    max_depth:
        Deepest level to print (default: whole tree; leaves of big
        trees make long listings).
    """
    tree = h.tree
    sset = h.skeletons
    frontier_ids = {f.id for f in h.frontier}
    depth = tree.depth if max_depth is None else min(max_depth, tree.depth)
    lines = [
        f"tree: N={tree.n_points} d={tree.n_dims} depth={tree.depth} "
        f"leaf<= {tree.config.leaf_size}",
        "id".rjust(8) + "  level  " + "points".rjust(7) + "  "
        + "rank".rjust(5) + "  " + "compr".rjust(6) + "  frontier",
    ]

    def visit(node_id: int) -> None:
        node = tree.node(node_id)
        if node.level > depth:
            return
        indent = "  " * node.level
        if sset.is_skeletonized(node_id):
            sk = sset[node_id]
            rank = str(sk.rank)
            compr = f"{sk.rank / max(len(sk.candidates), 1):.2f}"
        else:
            rank, compr = "-", "-"
        marker = "*" if node_id in frontier_ids else ""
        lines.append(
            f"{node_id:>8}  {node.level:>5}  {node.size:>7}  {rank:>5}  "
            f"{compr:>6}  {indent}{marker}"
        )
        if not tree.is_leaf(node):
            visit(node.left_id)
            visit(node.right_id)

    visit(1)
    return "\n".join(lines)


def summarize(h: HMatrix) -> str:
    """One-paragraph digest: ranks, frontier, reduced size, storage."""
    sset = h.skeletons
    ranks = [sk.rank for sk in sset.skeletons.values()]
    if not ranks:
        return (
            f"single dense block: N={h.n_points} (leaf size covers the "
            "whole set; no compression)"
        )
    frontier = h.frontier
    per_level: dict[int, list[int]] = {}
    for nid, sk in sset.skeletons.items():
        per_level.setdefault(h.tree.node(nid).level, []).append(sk.rank)
    level_txt = ", ".join(
        f"L{lvl}: mean {np.mean(rs):.0f}" for lvl, rs in sorted(per_level.items())
    )
    return (
        f"N={h.n_points}, depth={h.tree.depth}; skeleton ranks "
        f"min {min(ranks)} / mean {np.mean(ranks):.1f} / max {max(ranks)} "
        f"({level_txt}); frontier: {len(frontier)} nodes at level(s) "
        f"{sorted({f.level for f in frontier})}, reduced dim "
        f"{sset.total_frontier_rank()}; cached storage "
        f"{h.storage_words() / 1e6:.2f} Mwords"
    )


def json_report(solver) -> dict:
    """Machine-readable run report for a fitted :class:`FastKernelSolver`.

    Sections:

    * ``summary`` — the :func:`summarize` paragraph;
    * ``diagnostics`` — :meth:`~repro.core.solver.FastKernelSolver.diagnostics`;
    * ``telemetry`` — the observability blob from
      :meth:`~repro.core.solver.FastKernelSolver.telemetry`: schema
      ``repro.telemetry/v1`` with the span tree (``spans``), every
      metric series (``metrics``), the solver's stage accumulators
      (``stages``), and the recovery-health digest (``health``) when
      recovery is armed.

    The result round-trips through ``json.dumps``.
    """
    return {
        "summary": summarize(solver.hmatrix),
        "diagnostics": solver.diagnostics(),
        "telemetry": solver.telemetry(),
    }
