"""Command-line interface: run the solver pipeline from a shell.

Examples
--------
::

    python -m repro solve --dataset normal --n 8192 --bandwidth 4 --lam 1
    python -m repro solve --dataset susy --method hybrid --level 3
    python -m repro solve --dataset normal --trace --trace-out run.json
    python -m repro trace --dataset normal --n 2048
    python -m repro classify --dataset covtype --n 4096
    python -m repro info

Installed as the ``repro`` console script as well.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro import FastKernelSolver, GaussianKernel
from repro.config import (
    GMRESConfig,
    ResilienceConfig,
    SkeletonConfig,
    SolverConfig,
    TreeConfig,
)
from repro.datasets import DATASET_NAMES, load_dataset, paper_parameters
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    DeadlineExceededError,
    OverloadedError,
    ReproError,
    StabilityError,
)

__all__ = [
    "main",
    "build_parser",
    "EXIT_OK",
    "EXIT_ERROR",
    "EXIT_USAGE",
    "EXIT_NUMERICAL",
    "EXIT_DEADLINE",
    "EXIT_CHECKPOINT",
    "EXIT_OVERLOADED",
]

# Distinct exit codes so shell callers (and the CI smoke jobs) can tell
# apart "you asked wrong", "the numerics gave up", "the clock ran out",
# and "the checkpoint is unusable" without parsing stderr.
EXIT_OK = 0
EXIT_ERROR = 1       # internal / unclassified ReproError
EXIT_USAGE = 2       # bad arguments or configuration
EXIT_NUMERICAL = 3   # StabilityError: factorization/solve not salvageable
EXIT_DEADLINE = 4    # DeadlineExceededError with degradation disabled
EXIT_CHECKPOINT = 5  # CheckpointError: missing/corrupt/mismatched snapshot
EXIT_OVERLOADED = 6  # OverloadedError: the serving layer shed the request


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "An N log N parallel fast direct solver for kernel matrices "
            "(reproduction of Yu, March & Biros, IPDPS 2017)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    common = argparse.ArgumentParser(add_help=False)
    common.add_argument("--dataset", default="normal", choices=DATASET_NAMES)
    common.add_argument("--n", type=int, default=4096, help="training points")
    common.add_argument("--bandwidth", type=float, default=None,
                        help="Gaussian bandwidth h (default: dataset's)")
    common.add_argument("--leaf", type=int, default=128, help="leaf size m")
    common.add_argument("--tau", type=float, default=1e-5,
                        help="adaptive-rank tolerance")
    common.add_argument("--smax", type=int, default=128, help="max skeleton size")
    common.add_argument("--neighbors", type=int, default=16,
                        help="kappa sampling neighbors")
    common.add_argument("--seed", type=int, default=0)

    p_solve = sub.add_parser(
        "solve", parents=[common],
        help="factorize lambda*I + K~ and solve against a random RHS",
    )
    p_solve.add_argument("--lam", type=float, default=None,
                         help="regularization (default: dataset's)")
    p_solve.add_argument("--method", default="nlogn",
                         choices=["nlogn", "nlog2n", "direct", "hybrid"])
    p_solve.add_argument("--level", type=int, default=0,
                         help="level restriction L (0 = none)")
    p_solve.add_argument("--trace", action="store_true",
                         help="render the observability span trace after "
                              "solving (docs/OBSERVABILITY.md)")
    p_solve.add_argument("--trace-out", metavar="PATH", default=None,
                         help="write the telemetry JSON blob "
                              "(repro.telemetry/v1) to PATH")
    p_solve.add_argument("--deadline", type=float, default=None, metavar="SEC",
                         help="wall-clock budget for the whole pipeline; "
                              "under pressure the solver degrades instead "
                              "of hanging (docs/ROBUSTNESS.md)")
    p_solve.add_argument("--work-budget", type=int, default=None,
                         metavar="UNITS",
                         help="deterministic work-unit budget (testing aid; "
                              "one unit per skeletonized/factorized node)")
    p_solve.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                         help="snapshot after skeletonization and each "
                              "factorization level; resume with the same DIR")
    p_solve.add_argument("--no-degrade", action="store_true",
                         help="raise on deadline expiry instead of stepping "
                              "down the degradation ladder (exit code 4)")
    p_solve.add_argument("--backend", default=None,
                         choices=["thread", "process", "socket"],
                         help="vMPI execution backend for the parallel paths "
                              "(default: REPRO_VMPI_BACKEND or 'thread'; "
                              "docs/PARALLELISM.md)")
    p_solve.add_argument("--ranks", type=int, default=0, metavar="P",
                         help="run the distributed factorize/solve "
                              "(Algorithms II.4/II.5) over P virtual ranks "
                              "(power of two; 0 = serial pipeline)")
    p_solve.add_argument("--hosts", default=None, metavar="H1,H2,...",
                         help="socket backend: comma-separated host list; "
                              "ranks are assigned round-robin and non-local "
                              "ranks use inline (TCP-shippable) envelopes "
                              "(default: REPRO_VMPI_HOSTS)")
    p_solve.add_argument("--hb-interval", type=float, default=None,
                         metavar="SEC",
                         help="socket backend: heartbeat period "
                              "(default: REPRO_VMPI_HB_INTERVAL or 0.5)")
    p_solve.add_argument("--hb-suspect", type=float, default=None,
                         metavar="SEC",
                         help="socket backend: silence before a rank is "
                              "suspected (default: REPRO_VMPI_HB_SUSPECT "
                              "or 2.0)")
    p_solve.add_argument("--hb-confirm", type=float, default=None,
                         metavar="SEC",
                         help="socket backend: silence before a suspected "
                              "rank is confirmed dead (default: "
                              "REPRO_VMPI_HB_CONFIRM or 6.0)")
    p_solve.add_argument("--elastic", action="store_true",
                         help="on permanent rank loss, repartition the "
                              "subtrees onto the survivors and resume from "
                              "per-level checkpoints instead of failing "
                              "(docs/PARALLELISM.md)")

    p_trace = sub.add_parser(
        "trace", parents=[common],
        help="run the solve pipeline and render its span trace + metrics",
    )
    p_trace.add_argument("--lam", type=float, default=None,
                         help="regularization (default: dataset's)")
    p_trace.add_argument("--method", default="nlogn",
                         choices=["nlogn", "nlog2n", "direct", "hybrid"])
    p_trace.add_argument("--level", type=int, default=0,
                         help="level restriction L (0 = none)")
    p_trace.add_argument("--trace-out", metavar="PATH", default=None,
                         help="also write the telemetry JSON blob to PATH")

    p_cls = sub.add_parser(
        "classify", parents=[common],
        help="kernel ridge binary classification with (h, lambda) CV",
    )
    p_cls.add_argument("--lam", type=float, default=None)

    p_ckpt = sub.add_parser(
        "checkpoint",
        help="inspect or verify an on-disk solver checkpoint directory",
    )
    ckpt_sub = p_ckpt.add_subparsers(dest="ckpt_command", required=True)
    p_inspect = ckpt_sub.add_parser(
        "inspect", help="print the manifest: schema, fingerprint, payloads",
    )
    p_inspect.add_argument("dir", help="checkpoint directory")
    p_inspect.add_argument("--json", action="store_true",
                           help="emit the description as JSON")
    p_verify = ckpt_sub.add_parser(
        "verify",
        help="recompute payload checksums; exit 5 if any payload is corrupt",
    )
    p_verify.add_argument("dir", help="checkpoint directory")

    p_serve = sub.add_parser(
        "serve",
        help="long-lived solver daemon: resident factorization registry "
             "with request coalescing (docs/SERVING.md)",
    )
    p_serve.add_argument("--warm", action="append", default=[], metavar="DIR",
                         help="checkpoint directory to warm-load at startup "
                              "(repeatable)")
    p_serve.add_argument("--lam", type=float, default=None,
                         help="regularization used to factorize warm-loaded "
                              "checkpoints that hold no factorized state")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=0,
                         help="TCP port (0 = ephemeral; the bound port is "
                              "printed on startup)")
    p_serve.add_argument("--window-ms", type=float, default=5.0,
                         help="coalescing window in milliseconds")
    p_serve.add_argument("--max-batch", type=int, default=32,
                         help="max RHS columns stacked into one batched solve")
    p_serve.add_argument("--max-pending", type=int, default=1024,
                         help="admission bound on in-flight requests; beyond "
                              "it requests are shed (status code 6)")
    p_serve.add_argument("--deadline", type=float, default=None, metavar="SEC",
                         help="default per-request wall-clock deadline")
    p_serve.add_argument("--work-budget", type=int, default=None,
                         metavar="UNITS",
                         help="default per-request work-unit budget")
    p_serve.add_argument("--budget-mwords", type=float, default=None,
                         help="registry word budget in millions of float64 "
                              "words; LRU residents are evicted to fit")
    p_serve.add_argument("--health-out", metavar="PATH", default=None,
                         help="write the final repro.serve/v1 health blob "
                              "here at shutdown (CI artifact)")

    p_update = sub.add_parser(
        "update",
        help="incrementally update a model: point insertion/deletion, "
             "lambda refit, kernel-parameter sweep (docs/UPDATES.md)",
    )
    p_update.add_argument("--host", default=None,
                          help="serve daemon host; with --port, the update "
                               "targets a resident model over the wire")
    p_update.add_argument("--port", type=int, default=None,
                          help="serve daemon port")
    p_update.add_argument("--checkpoint", metavar="DIR", default=None,
                          help="offline mode: resume the solver from this "
                               "checkpoint directory, update it, and "
                               "re-checkpoint under its new fingerprint")
    p_update.add_argument("--model", default=None,
                          help="resident model fingerprint or unique prefix "
                               "(daemon mode; default: the sole resident)")
    p_update.add_argument("--insert", metavar="FILE.npy", default=None,
                          help=".npy file of (k, d) points to insert")
    p_update.add_argument("--delete", metavar="I,J,K", default=None,
                          help="comma-separated point indices to delete "
                               "(in the original fit order)")
    p_update.add_argument("--lam", type=float, default=None,
                          help="refactorize at this regularization")
    p_update.add_argument("--bandwidth", type=float, default=None,
                          help="kernel bandwidth sweep: refit projections "
                               "under the new bandwidth, structure frozen")
    p_update.add_argument("--kernel-param", action="append", default=[],
                          metavar="NAME=VALUE",
                          help="generic kernel parameter override "
                               "(repeatable; e.g. --kernel-param nu=2.5)")
    p_update.add_argument("--json", action="store_true",
                          help="emit the update report as JSON")

    sub.add_parser("info", help="list datasets and their Table II parameters")
    return parser


def _skeleton_config(args) -> SkeletonConfig:
    return SkeletonConfig(
        tau=args.tau,
        max_rank=args.smax,
        num_samples=max(2 * args.smax, 128),
        num_neighbors=args.neighbors,
        seed=args.seed,
        level_restriction=getattr(args, "level", 0),
    )


def _cmd_solve(args) -> int:
    ds = load_dataset(args.dataset, args.n, seed=args.seed)
    h = args.bandwidth if args.bandwidth is not None else max(ds.h, 0.5)
    lam = args.lam if args.lam is not None else max(ds.lam, 1e-3)
    print(f"dataset={ds.name} N={ds.n} d={ds.d}  h={h}  lambda={lam}  "
          f"method={args.method}")
    resilience = ResilienceConfig(
        deadline_seconds=getattr(args, "deadline", None),
        work_budget=getattr(args, "work_budget", None),
        checkpoint_dir=getattr(args, "checkpoint_dir", None),
        degrade=not getattr(args, "no_degrade", False),
    )
    solver = FastKernelSolver(
        GaussianKernel(bandwidth=h),
        tree_config=TreeConfig(leaf_size=args.leaf, seed=args.seed),
        skeleton_config=_skeleton_config(args),
        solver_config=SolverConfig(
            method=args.method,
            gmres=GMRESConfig(tol=1e-9, max_iters=400),
            resilience=resilience,
            backend=getattr(args, "backend", None),
        ),
    )
    t0 = time.perf_counter()
    solver.fit(ds.X_train)
    t_fit = time.perf_counter() - t0
    ranks = getattr(args, "ranks", 0)
    if ranks > 1:
        return _solve_distributed(args, solver, ds, lam, t_fit, ranks)
    t0 = time.perf_counter()
    solver.factorize(lam)
    t_factor = time.perf_counter() - t0
    u = np.random.default_rng(args.seed).standard_normal(ds.n)
    t0 = time.perf_counter()
    w, info = solver.solve_with_info(u)
    t_solve = time.perf_counter() - t0
    d = solver.diagnostics()
    print(f"build {t_fit:.2f}s   factorize {t_factor:.2f}s   solve {t_solve:.3f}s")
    print(f"residual {info.residual:.2e}   stable={info.stable}"
          + (f"   gmres_iters={info.gmres_iterations}"
             if info.gmres_iterations else ""))
    print(f"depth {d['depth']}  mean rank {d['mean_rank']:.1f}  "
          f"reduced dim {d['reduced_size']}  "
          f"factor storage {d['factor_storage_words'] / 1e6:.1f} Mwords")
    if solver.health is not None and solver.health.degraded:
        hs = solver.health.summary()
        stages = ",".join(sorted(hs.get("stages", {})))
        print(f"degraded: final_path={hs.get('final_path')}  stages=[{stages}]")
    if resilience.checkpoint_dir:
        print(f"checkpoint directory: {resilience.checkpoint_dir}")
    if getattr(args, "trace", False):
        from repro.obs import render_trace

        print()
        print(render_trace())
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        with open(trace_out, "w") as f:
            json.dump(solver.telemetry(), f, indent=2)
        print(f"telemetry blob written to {trace_out}")
    return 0


def _solve_distributed(args, solver, ds, lam, t_fit, ranks) -> int:
    """``repro solve --ranks P``: the distributed pipeline (Alg. II.4/II.5)."""
    from repro.parallel import distributed_factorize, distributed_solve
    from repro.parallel.vmpi import HeartbeatConfig
    from repro.parallel.vmpi.membership import heartbeat_config_from_env

    hosts_arg = getattr(args, "hosts", None)
    hosts = (
        [h.strip() for h in hosts_arg.split(",") if h.strip()]
        if hosts_arg else None
    )
    hb_knobs = {
        "interval": getattr(args, "hb_interval", None),
        "suspect_after": getattr(args, "hb_suspect", None),
        "confirm_after": getattr(args, "hb_confirm", None),
    }
    heartbeat = None
    if any(v is not None for v in hb_knobs.values()):
        base = heartbeat_config_from_env()
        heartbeat = HeartbeatConfig(
            **{k: (v if v is not None else getattr(base, k))
               for k, v in hb_knobs.items()}
        )
    t0 = time.perf_counter()
    dist = distributed_factorize(
        solver.hmatrix, lam, ranks, solver.solver_config,
        backend=getattr(args, "backend", None),
        elastic=getattr(args, "elastic", False),
        hosts=hosts,
        heartbeat=heartbeat,
    )
    t_factor = time.perf_counter() - t0
    u = np.random.default_rng(args.seed).standard_normal(ds.n)
    u_tree = u[solver.hmatrix.tree.perm]
    t0 = time.perf_counter()
    w, stats = distributed_solve(dist, u_tree)
    t_solve = time.perf_counter() - t0
    r = lam * w + solver.hmatrix.matvec(w) - u_tree
    residual = float(np.linalg.norm(r) / np.linalg.norm(u_tree))
    print(f"build {t_fit:.2f}s   dist-factorize[{dist.backend},p={dist.n_ranks}] "
          f"{t_factor:.2f}s   dist-solve {t_solve:.3f}s")
    print(f"residual {residual:.2e}   "
          f"factor msgs {dist.factor_stats.messages} "
          f"({dist.factor_stats.bytes / 1e3:.1f} kB)   "
          f"solve msgs {stats.messages} ({stats.bytes / 1e3:.1f} kB)")
    if dist.factor_stats.rank_recoveries:
        print(f"rank recoveries: {len(dist.factor_stats.rank_recoveries)}")
    if dist.n_ranks != ranks:
        print(f"elastic repartition: started with p={ranks}, finished "
              f"with p={dist.n_ranks} after permanent rank loss")
    return 0


def _cmd_trace(args) -> int:
    """``repro trace``: a solve run with the span trace as the output."""
    from repro.obs import reset_telemetry

    reset_telemetry()  # the trace should cover exactly this run
    args.trace = True
    return _cmd_solve(args)


def _cmd_classify(args) -> int:
    from repro.learning import KernelRidgeClassifier, holdout_cross_validation

    ds = load_dataset(args.dataset, args.n, seed=args.seed)
    if ds.y_train is None:
        print(f"dataset {ds.name!r} has no labels; pick one of "
              "covtype/susy/higgs/mnist2m", file=sys.stderr)
        return 2
    tree = TreeConfig(leaf_size=args.leaf, seed=args.seed)
    skel = _skeleton_config(args)
    bandwidths = [args.bandwidth] if args.bandwidth else [0.5, 1.0, 2.0]
    lambdas = [args.lam] if args.lam else [0.01, 0.3, 3.0]
    cv = holdout_cross_validation(
        ds.X_train, ds.y_train, bandwidths, lambdas,
        seed=args.seed, tree_config=tree, skeleton_config=skel,
    )
    print(f"cross-validated: h={cv.best_h} lambda={cv.best_lam} "
          f"(holdout acc {cv.best_accuracy:.3f})")
    clf = KernelRidgeClassifier(
        GaussianKernel(bandwidth=cv.best_h), lam=cv.best_lam,
        tree_config=tree, skeleton_config=skel,
    ).fit(ds.X_train, ds.y_train)
    acc = clf.score(ds.X_test, ds.y_test)
    print(f"test accuracy: {100 * acc:.1f}%  (paper on real "
          f"{ds.name.upper()}: {ds.paper_acc})")
    return 0


def _cmd_checkpoint(args) -> int:
    import os

    from repro.resilience import Checkpoint

    if not os.path.exists(os.path.join(args.dir, "MANIFEST.json")):
        raise CheckpointError(f"no checkpoint manifest in {args.dir}")
    cp = Checkpoint(args.dir, mode="inspect")
    desc = cp.describe()
    if args.ckpt_command == "inspect":
        if getattr(args, "json", False):
            print(json.dumps(desc, indent=2, sort_keys=True))
        else:
            print(f"schema      {desc['schema']}")
            print(f"path        {desc['path']}")
            print(f"fingerprint {desc['fingerprint']}")
            for name, entry in desc["payloads"].items():
                mark = "ok" if entry["intact"] else "CORRUPT"
                print(f"  {name:<12} {entry['file']:<20} {mark}")
        return EXIT_OK
    broken = [n for n, e in desc["payloads"].items() if not e["intact"]]
    if broken:
        raise CheckpointError(
            f"checkpoint {args.dir}: corrupt or missing payloads: "
            + ", ".join(sorted(broken))
        )
    print(f"checkpoint {args.dir}: {len(desc['payloads'])} payloads intact")
    return EXIT_OK


def _cmd_serve(args) -> int:
    """``repro serve``: run the solver daemon (docs/SERVING.md)."""
    from repro.serve import ModelRegistry, ServeConfig, SolverService, run_daemon

    budget_words = (
        int(args.budget_mwords * 1e6) if args.budget_mwords is not None else None
    )
    config = ServeConfig(
        window_seconds=args.window_ms / 1e3,
        max_batch=args.max_batch,
        max_pending=args.max_pending,
        deadline_seconds=args.deadline,
        work_budget=args.work_budget,
        registry_budget_words=budget_words,
    )
    service = SolverService(config, registry=ModelRegistry(budget_words))
    for directory in args.warm:
        fingerprint = service.registry.load(directory, lam=args.lam)
        print(f"warm-loaded {fingerprint[:12]} from {directory}")
    run_daemon(
        service, host=args.host, port=args.port, health_out=args.health_out
    )
    return EXIT_OK


def _cmd_update(args) -> int:
    """``repro update``: incremental model updates (docs/UPDATES.md).

    Daemon mode (``--host``/``--port``) sends an ``update`` op to a
    running ``repro serve``; offline mode (``--checkpoint DIR``) resumes
    the solver, updates it, and re-checkpoints it under the new
    fingerprint.
    """
    kernel_params: dict = {}
    if args.bandwidth is not None:
        kernel_params["bandwidth"] = args.bandwidth
    for item in args.kernel_param:
        name, sep, value = item.partition("=")
        if not sep or not name:
            raise ConfigurationError(
                f"--kernel-param needs NAME=VALUE; got {item!r}"
            )
        try:
            kernel_params[name] = json.loads(value)
        except json.JSONDecodeError:
            kernel_params[name] = value
    insert = np.load(args.insert) if args.insert is not None else None
    delete = (
        np.asarray([int(tok) for tok in args.delete.split(",") if tok.strip()],
                   dtype=np.intp)
        if args.delete is not None else None
    )
    if insert is None and delete is None and args.lam is None and not kernel_params:
        raise ConfigurationError(
            "update needs --insert, --delete, --lam, --bandwidth, or "
            "--kernel-param"
        )

    if (args.host is not None) != (args.port is not None):
        raise ConfigurationError("daemon mode needs both --host and --port")
    if args.host is not None and args.checkpoint is not None:
        raise ConfigurationError(
            "pick one: --host/--port (daemon) or --checkpoint (offline)"
        )

    if args.host is not None:
        from repro.serve import ServeClient

        with ServeClient(args.host, args.port) as client:
            response = client.update(
                model=args.model,
                insert=insert,
                delete=delete,
                lam=args.lam,
                kernel_params=kernel_params or None,
            )
        report = response.get("report") or {}
        if args.json:
            print(json.dumps(response, indent=2, sort_keys=True))
        else:
            print(f"model {response['previous'][:12]} -> "
                  f"{response['model'][:12]}  mode={report.get('mode')}")
            _print_update_report(report)
        return EXIT_OK

    if args.checkpoint is None:
        raise ConfigurationError(
            "pick a target: --host/--port (daemon) or --checkpoint DIR"
        )
    solver = FastKernelSolver.resume(args.checkpoint)
    previous = solver.fingerprint()
    solver.update(
        X_insert=insert,
        X_delete=delete,
        lam=args.lam,
        kernel_params=kernel_params or None,
    )
    path = solver.save_checkpoint(args.checkpoint)
    report = solver.last_update.to_payload()
    if args.json:
        print(json.dumps(
            {"previous": previous, "model": solver.fingerprint(),
             "checkpoint": path, "report": report},
            indent=2, sort_keys=True,
        ))
    else:
        print(f"model {previous[:12]} -> {solver.fingerprint()[:12]}  "
              f"mode={report.get('mode')}")
        _print_update_report(report)
        print(f"re-checkpointed at {path}")
    return EXIT_OK


def _print_update_report(report: dict) -> None:
    if not report:
        return
    if report.get("mode") in ("incremental", "rebuild"):
        print(f"  inserted {report.get('n_inserted', 0)}  "
              f"deleted {report.get('n_deleted', 0)}  "
              f"dirty leaves {report.get('dirty_leaves', 0)} "
              f"({100 * report.get('dirty_fraction', 0.0):.1f}% of points)")
    total = report.get("nodes_total", 0)
    if total:
        print(f"  refactorized {report.get('nodes_refactored', 0)}/{total} "
              f"nodes ({report.get('nodes_reused', 0)} transplanted)")
    print(f"  {report.get('seconds', 0.0):.3f}s")


def _cmd_info(_args) -> int:
    print(f"{'dataset':<10} {'d':>5} {'h':>6} {'lambda':>8} {'paper N':>10} {'paper Acc':>10}")
    for name in DATASET_NAMES:
        p = paper_parameters(name)
        print(f"{name:<10} {p['d']:>5} {p['h']:>6} {p['lam']:>8} "
              f"{p['paper_n']:>10} {p['paper_acc']:>10}")
    return 0


_COMMANDS = {
    "solve": _cmd_solve,
    "trace": _cmd_trace,
    "classify": _cmd_classify,
    "checkpoint": _cmd_checkpoint,
    "serve": _cmd_serve,
    "update": _cmd_update,
    "info": _cmd_info,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ConfigurationError as exc:
        print(f"repro: usage error: {exc}", file=sys.stderr)
        return EXIT_USAGE
    except DeadlineExceededError as exc:
        print(f"repro: deadline exceeded: {exc}", file=sys.stderr)
        return EXIT_DEADLINE
    except CheckpointError as exc:
        print(f"repro: checkpoint error: {exc}", file=sys.stderr)
        return EXIT_CHECKPOINT
    except StabilityError as exc:
        print(f"repro: numerical failure: {exc}", file=sys.stderr)
        return EXIT_NUMERICAL
    except OverloadedError as exc:
        print(f"repro: overloaded: {exc}", file=sys.stderr)
        return EXIT_OVERLOADED
    except ReproError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
