"""Exception and warning types for :mod:`repro`.

The solver distinguishes *usage* errors (bad arguments, calling ``solve``
before ``factorize``) from *numerical* conditions detected at runtime
(ill-conditioned diagonal blocks, per paper section III).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "NotFactorizedError",
    "NotSkeletonizedError",
    "ConfigurationError",
    "StabilityError",
    "StabilityWarning",
    "ConvergenceWarning",
    "CommunicatorError",
    "DeadlockError",
    "FaultInjectionError",
    "RankCrashError",
    "RankHangError",
    "RankLostError",
    "RecoveryExhaustedError",
    "ServeUnavailableError",
    "DeadlineExceededError",
    "BudgetExhaustedError",
    "CheckpointError",
    "OverloadedError",
    "ResidentEvictedError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter combination was supplied."""


class NotSkeletonizedError(ReproError, RuntimeError):
    """An operation required skeletons that have not been computed."""


class NotFactorizedError(ReproError, RuntimeError):
    """``solve`` was called before ``factorize``."""


class StabilityError(ReproError, ArithmeticError):
    """The factorization is numerically unstable beyond recovery.

    Raised when a diagonal block or reduced system is singular to working
    precision.  Paper section III: with a small regularization ``lambda``
    and a narrow bandwidth ``h``, ``lambda*I + D`` can become poorly
    conditioned even when ``lambda*I + K`` is fine; the method can detect
    but not repair this while staying log-linear.
    """


class StabilityWarning(UserWarning):
    """A diagonal block or reduced system is ill-conditioned.

    The factorization proceeds, but the computed solution may be
    inaccurate.  Mirrors the detection behaviour described for
    experiment #30 in the paper.
    """


class ConvergenceWarning(UserWarning):
    """An iterative solve stopped before reaching its tolerance."""


class CommunicatorError(ReproError, RuntimeError):
    """Misuse of the virtual MPI communicator API."""


class DeadlockError(CommunicatorError):
    """A virtual MPI operation timed out waiting for a peer."""


class FaultInjectionError(CommunicatorError):
    """A receive exhausted its retransmission budget under injected
    faults (the link is treated as down, not merely lossy)."""


class RankCrashError(CommunicatorError):
    """An injected rank crash (chaos testing).

    Raised *inside* the victim rank by the fault plan; the SPMD
    supervisor catches it and re-routes the dead rank's work instead of
    aborting the launch (see :mod:`repro.parallel.vmpi.runtime`).
    """


class RankHangError(CommunicatorError):
    """An injected rank *hang* (chaos testing of failure detection).

    Unlike :class:`RankCrashError` — which the victim reports to the
    supervisor before exiting — a hang models a network partition or a
    wedged host: the rank silently stops participating while its TCP
    connection stays open.  Only a backend with a heartbeat failure
    detector (the socket backend; see
    :mod:`repro.parallel.vmpi.membership`) can recover from it.
    """


class RankLostError(CommunicatorError):
    """A rank was declared *permanently* lost by the supervisor.

    Raised by ``run_spmd(..., elastic=True)`` when a rank dies (crash
    with the respawn budget exhausted, or a heartbeat-confirmed hang)
    and log-replay respawn is no longer an option.  Carries everything
    the caller needs to repartition the lost rank's work onto the
    survivors:

    * ``rank`` — the world rank that was lost;
    * ``epoch`` — the membership epoch *after* the loss was confirmed
      (messages from earlier epochs are stale and must be rejected);
    * ``checkpoints`` — ``{world_rank: payload}`` of the most recent
      per-rank checkpoint posted via ``Communicator.checkpoint`` by the
      *surviving* ranks (the dead rank's checkpoint is discarded: its
      host is gone);
    * ``stats`` — the aborted launch's :class:`CommStats`.
    """

    def __init__(
        self,
        message: str,
        *,
        rank: int,
        epoch: int = 0,
        checkpoints: dict | None = None,
        stats=None,
    ) -> None:
        super().__init__(message)
        self.rank = rank
        self.epoch = epoch
        self.checkpoints = checkpoints if checkpoints is not None else {}
        self.stats = stats


class ServeUnavailableError(ReproError, ConnectionError):
    """The serve daemon stayed unreachable after the retry budget.

    Raised by :class:`repro.serve.ServeClient` once capped
    exponential backoff (mirroring the fabric's
    :class:`repro.parallel.vmpi.RetryPolicy`) has been exhausted on
    transient connect/read failures.  Distinct from
    :class:`OverloadedError`: the daemon never answered at all, so the
    caller should fail over to another replica rather than retry the
    same one.
    """


class DeadlineExceededError(ReproError, TimeoutError):
    """A cooperative cancellation point found the deadline expired.

    Raised by :class:`repro.resilience.Deadline.check` between tree
    nodes / factorization levels / solver iterations.  With degradation
    enabled (the default when a deadline is configured) the facade
    catches this and steps down the degradation ladder instead of
    letting it escape (see docs/ROBUSTNESS.md).
    """


class BudgetExhaustedError(DeadlineExceededError):
    """A :class:`repro.resilience.WorkBudget` ran out of work units.

    Subclasses :class:`DeadlineExceededError` so one handler covers
    both forms of "out of budget" — wall-clock and work-unit.
    """


class CheckpointError(ReproError, RuntimeError):
    """A checkpoint could not be written, or refused to load.

    Raised on schema/config-fingerprint mismatches, payload checksum
    failures, and truncated or missing payload files — loading never
    silently produces a solver built from the wrong state.
    """


class OverloadedError(ReproError, RuntimeError):
    """The serving layer shed this request to protect resident work.

    Raised by :class:`repro.serve.SolverService` admission control when
    the pending-request queue is full (or a model will not fit the
    registry budget).  Distinct from :class:`DeadlineExceededError`:
    the request was refused *before* any work was spent on it, so the
    client can safely retry against another replica or after backoff.
    The CLI/daemon map it to exit/status code
    :data:`repro.cli.EXIT_OVERLOADED`.
    """


class ResidentEvictedError(ReproError, KeyError):
    """A resident model vanished between lookup and use.

    Raised by :meth:`repro.serve.ModelRegistry.peek` when the
    fingerprint was resident at dispatch time but was evicted — or
    invalidated by an in-place :meth:`~repro.serve.ModelRegistry.update_resident`
    — before the solve pinned it.  Subclasses :class:`KeyError` so
    callers treating "not resident" generically keep working; the
    daemon maps it to status ``"evicted"`` so clients can distinguish
    "reload and retry" from a plain unknown-model usage error.
    """


class RecoveryExhaustedError(StabilityError):
    """Every rung of the numerical recovery ladder failed.

    Raised only when recovery is enabled and the λ-bump, frontier
    fallback, and iterative fallback stages all failed to produce a
    usable solve (see :mod:`repro.solvers.recovery`).
    """
