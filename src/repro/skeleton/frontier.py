"""Skeletonization frontier (paper section II-C, Figure 2).

The frontier ``A`` is the antichain of *deepest-skeletonized* nodes:
skeletonized nodes whose parent is not skeletonized.  Everything at or
below the frontier can be factorized directly; everything above it is
coalesced into the ``W``/``V`` factors of the reduced system.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.tree.node import Node

if TYPE_CHECKING:  # pragma: no cover
    from repro.skeleton.skeletonize import SkeletonSet

__all__ = ["compute_frontier"]


def compute_frontier(sset: "SkeletonSet") -> list[Node]:
    """Frontier nodes, left to right.

    Properties guaranteed (and tested): the frontier is an antichain
    whose point ranges partition ``[0, N)``; every frontier node is
    skeletonized; no ancestor of a frontier node is skeletonized.

    For a single-leaf tree (nothing skeletonized) the frontier is the
    root itself — the "reduced system" is then empty and the solver is
    a plain dense LU.
    """
    tree = sset.tree
    if tree.depth == 0 or not sset.skeletons:
        return [tree.root]

    frontier: list[Node] = []

    def descend(node: Node) -> None:
        if sset.is_skeletonized(node.id):
            frontier.append(node)
            return
        if tree.is_leaf(node):
            raise AssertionError(
                f"leaf {node.id} unskeletonized — skeletonize() always "
                "covers leaves"
            )
        left, right = tree.children(node)
        descend(left)
        descend(right)

    descend(tree.root)
    return frontier
