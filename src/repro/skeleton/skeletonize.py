"""Bottom-up skeletonization of the ball tree (Algorithm II.1).

Leaves are skeletonized from their own points; an internal node's
candidate columns are the concatenation of its children's skeletons
``[l~ r~]``, so skeletons *nest* and the projection chain telescopes.
The root is never skeletonized (it has no off-diagonal rows).

Level restriction ``L`` and the adaptive stopping rule
(``alpha~ = l~ u r~`` means no compression happened) both leave nodes
unskeletonized; the *frontier* of deepest skeletonized nodes is what
the hybrid solver factorizes up to (section II-C).

All indices here are tree-permuted positions into ``tree.points``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.config import SkeletonConfig
from repro.exceptions import NotSkeletonizedError
from repro.kernels.base import Kernel
from repro.sampling.importance import RowSampler
from repro.sampling.neighbors import NeighborTable, approximate_knn
from repro.skeleton.id import interpolative_decomposition
from repro.tree.balltree import BallTree
from repro.tree.node import Node
from repro.util.random import as_generator

__all__ = ["NodeSkeleton", "SkeletonSet", "skeletonize"]


@dataclass
class NodeSkeleton:
    """Skeleton data of one node.

    Attributes
    ----------
    node_id:
        Heap id of the node.
    skeleton:
        Tree positions of the skeleton points ``alpha~``, shape (s,).
    candidates:
        Tree positions of the candidate columns the ID chose from: the
        node's own points (leaf) or ``[l~ r~]`` (internal).
    proj:
        ``P_{alpha~, candidates}``, shape (s, |candidates|), such that
        ``K_{S cand} ~= K_{S alpha~} @ proj``.
    achieved_tol:
        First discarded R-diagonal ratio from the ID.
    """

    node_id: int
    skeleton: np.ndarray
    candidates: np.ndarray
    proj: np.ndarray
    achieved_tol: float

    @property
    def rank(self) -> int:
        return len(self.skeleton)


@dataclass
class SkeletonSet:
    """All node skeletons of a tree plus the restriction bookkeeping."""

    tree: BallTree
    config: SkeletonConfig
    skeletons: dict[int, NodeSkeleton] = field(default_factory=dict)
    #: effective restriction level actually used (min(L, depth), >= 1
    #: unless the tree is a single leaf).
    effective_level: int = 1
    #: degradation rungs taken under deadline pressure (rung 1,
    #: "coarsen"): dicts with stage/level/tau/pressure keys.
    degradation_events: list[dict] = field(default_factory=list)

    def is_skeletonized(self, node_id: int) -> bool:
        return node_id in self.skeletons

    def __getitem__(self, node_id: int) -> NodeSkeleton:
        try:
            return self.skeletons[node_id]
        except KeyError:
            raise NotSkeletonizedError(
                f"node {node_id} has no skeleton (level restriction or "
                "adaptive stop); use the hybrid solver"
            ) from None

    def rank_of(self, node_id: int) -> int:
        return self[node_id].rank

    def frontier(self) -> list[Node]:
        """Deepest skeletonized antichain (the paper's frontier ``A``).

        Nodes that are skeletonized but whose parent is not (children of
        the root count, since the root is never skeletonized).  The
        frontier partitions the point set.
        """
        from repro.skeleton.frontier import compute_frontier

        return compute_frontier(self)

    def total_frontier_rank(self) -> int:
        """Size of the coalesced reduced system ``sum_{f in A} s_f``."""
        return sum(self[f.id].rank for f in self.frontier())

    def telescoped_basis(self, node: Node) -> np.ndarray:
        """Explicit ``P_{alpha alpha~}`` (|alpha| x s), points-to-skeleton.

        Built by telescoping the per-level projections down to the
        leaves (eq. 9's right factor chain).  Used by the dense
        assembly, the O(N log^2 N) baseline, and tests; the O(N log N)
        factorization never forms it.
        """
        sk = self[node.id]
        if self.tree.is_leaf(node):
            return sk.proj.T.copy()
        left, right = self.tree.children(node)
        sl = self[left.id].rank
        Pl = self.telescoped_basis(left)
        Pr = self.telescoped_basis(right)
        top = Pl @ sk.proj[:, :sl].T
        bot = Pr @ sk.proj[:, sl:].T
        return np.vstack([top, bot])


def prepare_sampling(
    tree: BallTree,
    config: SkeletonConfig,
    neighbors: NeighborTable | None = None,
) -> tuple[RowSampler, NeighborTable | None]:
    """Derive the neighbor table and row sampler from ``config.seed``.

    Factored out so the serial and distributed skeletonizations draw
    the *same* seeds (and hence build identical skeletons).
    """
    rng = as_generator(config.seed)
    if neighbors is None and config.num_neighbors > 0 and tree.n_points > 2:
        neighbors = approximate_knn(
            tree.points,
            min(config.num_neighbors, tree.n_points - 1),
            seed=int(rng.integers(2**31)),
        )
    elif config.num_neighbors > 0 and tree.n_points > 2:
        rng.integers(2**31)  # keep the seed stream aligned
    sampler = RowSampler(
        tree.n_points,
        neighbors,
        config.num_samples,
        seed=int(rng.integers(2**31)),
    )
    return sampler, neighbors


def effective_level_stop(tree: BallTree, config: SkeletonConfig) -> int:
    """Shallowest level that gets skeletonized (clamped restriction)."""
    if tree.depth == 0:
        return 0
    if config.level_restriction == 0:
        return 1
    return max(1, min(config.level_restriction, tree.depth))


def skeletonize_node(
    tree: BallTree,
    kernel: Kernel,
    config: SkeletonConfig,
    sampler: RowSampler,
    node: Node,
    candidates: np.ndarray,
    norms: np.ndarray | None = None,
    rows: np.ndarray | None = None,
    sample_block: np.ndarray | None = None,
) -> NodeSkeleton | None:
    """Skeletonize one node given its candidate columns.

    Returns ``None`` when ``adaptive_stop`` triggers (no compression on
    an internal node).  Deterministic per ``(sampler seed, node id)``.
    ``norms`` are optional precomputed squared norms of ``tree.points``
    (one tree-wide table shared by every node's sample block).
    ``rows``/``sample_block`` let the level-batched driver pass a
    pre-drawn row sample and its pre-evaluated (bitwise-identical)
    sample matrix ``K_{S' cand}``; both default to computing here.
    """
    if rows is None:
        rows = sampler.sample(node)
    X = tree.points
    if sample_block is not None:
        G = sample_block
    else:
        G = (
            kernel(
                X[rows],
                X[candidates],
                norms_a=None if norms is None else norms[rows],
                norms_b=None if norms is None else norms[candidates],
            )
            if len(rows)
            else np.zeros((0, len(candidates)))
        )
    result = interpolative_decomposition(
        G,
        tau=config.tau,
        max_rank=config.max_rank,
        fixed_rank=(
            min(config.rank, len(candidates)) if config.rank is not None else None
        ),
    )
    if config.adaptive_stop and not tree.is_leaf(node) and not result.compressed:
        return None
    return NodeSkeleton(
        node_id=node.id,
        skeleton=candidates[result.skeleton],
        candidates=candidates,
        proj=result.proj,
        achieved_tol=result.achieved_tol,
    )


def _stacked_sample_blocks(
    worklist: list[tuple[Node, np.ndarray, np.ndarray]],
    kernel: Kernel,
    X: np.ndarray,
    norms: np.ndarray | None,
    policy,
) -> dict[int, np.ndarray]:
    """Batch-evaluate same-shaped sample matrices ``K_{S' cand}``.

    ``worklist`` holds one ``(node, candidates, rows)`` entry per node of
    the level; returns ``{worklist index: block}`` for the groups worth
    stacking (each slice bitwise identical to the per-node evaluation —
    see :func:`repro.perf.levelbatch.stacked_kernel_blocks`).  The ID
    itself stays per node: pivoted QR has no batched form.
    """
    from repro.perf import levelbatch

    out: dict[int, np.ndarray] = {}
    groups = levelbatch.group_by_key(
        range(len(worklist)),
        lambda i: (len(worklist[i][2]), len(worklist[i][1])),
    )
    for (r, c), idxs in groups.items():
        if r == 0 or not policy.worth(len(idxs), r * c, calls_saved=4):
            continue
        rows = np.stack([worklist[i][2] for i in idxs])
        cands = np.stack([worklist[i][1] for i in idxs])
        na = nb = None
        if norms is not None:
            na = norms[rows]
            nb = norms[cands]
        blocks = levelbatch.stacked_kernel_blocks(kernel, X[rows], X[cands], na, nb)
        for pos, i in enumerate(idxs):
            out[i] = blocks[pos]
    return out


def skeletonize(
    tree: BallTree,
    kernel: Kernel,
    config: SkeletonConfig | None = None,
    *,
    neighbors: NeighborTable | None = None,
    deadline=None,
    coarsen=None,
    level_batch: bool = True,
) -> SkeletonSet:
    """Run Algorithm II.1 bottom-up over the whole tree.

    Parameters
    ----------
    tree:
        Built :class:`BallTree`.
    kernel:
        Kernel function used for the sample blocks.
    config:
        :class:`SkeletonConfig`; defaults are adaptive rank with
        ``tau = 1e-5``.
    neighbors:
        Optional precomputed neighbor table in *tree-permuted*
        coordinates.  When ``None`` and ``config.num_neighbors > 0``, an
        approximate table is computed here.
    deadline:
        Optional :class:`repro.resilience.Deadline`; defaults to the
        one installed by :func:`repro.resilience.deadline_scope`.
    coarsen:
        Optional :class:`repro.resilience.CoarsenPolicy`.  When given,
        deadline pressure *coarsens* ``tau`` at level boundaries (rung 1
        of the degradation ladder) instead of raising — skeletonization
        always completes, because every later rung needs skeletons to
        exist.  Without it, an installed deadline raises
        :class:`~repro.exceptions.DeadlineExceededError` between nodes.
    level_batch:
        Stack a level's same-shaped sample matrices into one batched
        kernel evaluation (bitwise identical to per-node evaluation;
        ``REPRO_LEVEL_BATCH=0`` also disables it).  The interpolative
        decompositions always run per node.

    Returns
    -------
    SkeletonSet
    """
    from repro.resilience.deadline import current_deadline

    config = config or SkeletonConfig()
    if deadline is None:
        deadline = current_deadline()
    sampler, neighbors = prepare_sampling(tree, config, neighbors)

    sset = SkeletonSet(tree=tree, config=config)
    if tree.depth == 0:
        # single-leaf tree: nothing to compress; the solver LU-factorizes
        # the one dense block.
        sset.effective_level = 0
        return sset

    level_stop = effective_level_stop(tree, config)
    sset.effective_level = level_stop
    norms = kernel.prepare_norms(tree.points)

    eff = config
    thresholds = list(coarsen.thresholds()) if coarsen is not None else []

    policy = None
    if level_batch:
        from repro.perf import levelbatch

        if levelbatch.batching_enabled():
            policy = levelbatch.BatchPolicy.current()

    for level in range(tree.depth, level_stop - 1, -1):
        if deadline is not None:
            if coarsen is not None:
                while thresholds and deadline.fraction_used() >= thresholds[0]:
                    thresholds.pop(0)
                    new_tau = min(eff.tau * coarsen.tau_factor, 0.5)
                    if new_tau <= eff.tau:
                        continue
                    sset.degradation_events.append(
                        {
                            "stage": "coarsen",
                            "level": level,
                            "tau": new_tau,
                            "pressure": round(deadline.fraction_used(), 4),
                        }
                    )
                    eff = replace(eff, tau=new_tau)
                    from repro.obs import registry

                    registry().counter("resilience.degradation", rung="coarsen").inc()
            else:
                deadline.check(f"skeletonize.level({level})")
        # pass 1: candidates and (order-independent, per-node-keyed) row
        # samples for the whole level, in node order — so the batched
        # kernel evaluation below changes nothing observable.
        worklist: list[tuple[Node, np.ndarray, np.ndarray]] = []
        for node in tree.level_nodes(level):
            if deadline is not None and coarsen is None:
                deadline.charge(1, f"skeletonize.node({node.id})")
            if tree.is_leaf(node):
                candidates = np.arange(node.lo, node.hi, dtype=np.intp)
            else:
                left, right = tree.children(node)
                if not (
                    sset.is_skeletonized(left.id) and sset.is_skeletonized(right.id)
                ):
                    continue  # adaptive stop propagated upward
                candidates = np.concatenate(
                    [sset[left.id].skeleton, sset[right.id].skeleton]
                )
            worklist.append((node, candidates, sampler.sample(node)))
        blocks: dict[int, np.ndarray] = {}
        if policy is not None:
            blocks = _stacked_sample_blocks(
                worklist, kernel, tree.points, norms, policy
            )
        for i, (node, candidates, rows) in enumerate(worklist):
            node_skel = skeletonize_node(
                tree,
                kernel,
                eff,
                sampler,
                node,
                candidates,
                norms,
                rows=rows,
                sample_block=blocks.get(i),
            )
            if node_skel is None:
                # alpha~ == l~ u r~: no compression; stop here and let the
                # frontier sit at the children (paper, "Level restriction").
                continue
            sset.skeletons[node.id] = node_skel
    return sset
