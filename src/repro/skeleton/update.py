"""Local skeleton repair for incremental updates (docs/UPDATES.md).

Two repair modes, both reusing as much of the existing
:class:`~repro.skeleton.skeletonize.SkeletonSet` as is still valid:

* :func:`update_skeletons` — after a point insertion/deletion
  (:mod:`repro.tree.update`), *clean* nodes (no touched leaf in their
  subtree) keep their projections verbatim and only have their index
  arrays re-mapped through the position map; *dirty* nodes — the
  touched leaves and their root paths, since an internal node's
  candidates are its children's skeletons — are re-skeletonized
  bottom-up with fresh row samples.  This is the locality argument of
  Ryan–Damle (arXiv:2001.11619) applied to the ASKIT construction.

* :func:`refresh_projections` — for a kernel-parameter sweep
  (e.g. Gaussian bandwidth) on *unchanged* geometry: the skeleton
  *structure* (which points are skeletons, which columns are
  candidates) is frozen and only the projection matrices are refit
  against the new kernel by least squares on the same per-node row
  sample.  This skips the tree build, the neighbor search, and the
  pivoted-QR column selection — the cheap GP model-selection path.
"""

from __future__ import annotations

import numpy as np

from repro.config import SkeletonConfig
from repro.kernels.base import Kernel
from repro.skeleton.skeletonize import (
    NodeSkeleton,
    SkeletonSet,
    prepare_sampling,
    skeletonize_node,
)
from repro.tree.balltree import BallTree

__all__ = ["update_skeletons", "refresh_projections", "dirty_node_ids"]


def dirty_node_ids(dirty_leaves: list[int]) -> set[int]:
    """The dirty leaves plus every ancestor up to the root.

    A changed leaf invalidates its own skeleton and — because internal
    candidates are the concatenation of children's skeletons — every
    skeleton on its root path.
    """
    dirty: set[int] = set()
    for lid in dirty_leaves:
        nid = int(lid)
        while nid >= 1 and nid not in dirty:
            dirty.add(nid)
            nid //= 2
    return dirty


def update_skeletons(
    old: SkeletonSet,
    tree: BallTree,
    kernel: Kernel,
    config: SkeletonConfig,
    pos_map: np.ndarray,
    dirty: set[int],
) -> SkeletonSet:
    """Skeletons for the updated ``tree``, recomputing only ``dirty`` nodes.

    Clean nodes' skeleton/candidate index arrays are re-mapped through
    ``pos_map`` (their projections are untouched — the underlying
    points did not move, only their tree positions shifted).  Dirty
    nodes are re-skeletonized bottom-up; the adaptive stopping rule
    applies as in a fresh build, so the frontier may deepen where an
    update degraded compressibility — the factorization's hybrid
    fallback handles that exactly as it does at build time.
    """
    sset = SkeletonSet(
        tree=tree,
        config=config,
        effective_level=old.effective_level,
        degradation_events=list(old.degradation_events),
    )
    for nid, sk in old.skeletons.items():
        if nid in dirty:
            continue
        sset.skeletons[nid] = NodeSkeleton(
            node_id=nid,
            skeleton=pos_map[sk.skeleton],
            candidates=pos_map[sk.candidates],
            proj=sk.proj,
            achieved_tol=sk.achieved_tol,
        )
    if tree.depth == 0:
        return sset

    sampler, _ = prepare_sampling(tree, config)
    norms = kernel.prepare_norms(tree.points)
    level_stop = max(old.effective_level, 1)
    for level in range(tree.depth, level_stop - 1, -1):
        for node in tree.level_nodes(level):
            if node.id not in dirty:
                continue
            sset.skeletons.pop(node.id, None)
            if tree.is_leaf(node):
                candidates = np.arange(node.lo, node.hi, dtype=np.intp)
            else:
                left, right = tree.children(node)
                if not (
                    sset.is_skeletonized(left.id)
                    and sset.is_skeletonized(right.id)
                ):
                    continue  # adaptive stop propagated upward
                candidates = np.concatenate(
                    [sset[left.id].skeleton, sset[right.id].skeleton]
                )
            node_skel = skeletonize_node(
                tree, kernel, config, sampler, node, candidates, norms
            )
            if node_skel is None:
                continue
            sset.skeletons[node.id] = node_skel
    return sset


def refresh_projections(
    old: SkeletonSet,
    tree: BallTree,
    kernel: Kernel,
    config: SkeletonConfig,
) -> SkeletonSet:
    """Refit every projection against a new kernel, structure frozen.

    For each skeletonized node with sample rows ``S'`` (re-drawn
    deterministically — geometry is unchanged, so the draw matches the
    original build), candidates ``C`` and skeleton ``S ⊂ C``, solves

        ``min_P || K_new(S', S) P - K_new(S', C) ||_F``

    so the telescoping identity ``K_{S' C} ≈ K_{S' S} P`` the
    factorization relies on holds under the new kernel.  The achieved
    tolerance is re-estimated from the least-squares residual.
    """
    sset = SkeletonSet(
        tree=tree,
        config=config,
        effective_level=old.effective_level,
        degradation_events=list(old.degradation_events),
    )
    sampler, _ = prepare_sampling(tree, config)
    norms = kernel.prepare_norms(tree.points)
    X = tree.points
    for nid, sk in old.skeletons.items():
        node = tree.node(nid)
        rows = sampler.sample(node)
        cand = sk.candidates
        if len(rows) == 0:
            sset.skeletons[nid] = NodeSkeleton(
                node_id=nid,
                skeleton=sk.skeleton,
                candidates=cand,
                proj=sk.proj,
                achieved_tol=sk.achieved_tol,
            )
            continue
        G = kernel(
            X[rows], X[cand], norms_a=norms[rows], norms_b=norms[cand]
        )
        # local columns of the frozen skeleton inside the candidate list
        # (candidate positions are unique: a leaf's own points, or the
        # disjoint union of two children's skeletons).
        lookup = {int(c): i for i, c in enumerate(cand)}
        local = np.asarray([lookup[int(s)] for s in sk.skeleton], dtype=np.intp)
        Gs = G[:, local]
        proj, *_ = np.linalg.lstsq(Gs, G, rcond=None)
        denom = float(np.linalg.norm(G))
        resid = float(np.linalg.norm(G - Gs @ proj))
        sset.skeletons[nid] = NodeSkeleton(
            node_id=nid,
            skeleton=sk.skeleton,
            candidates=cand,
            proj=proj,
            achieved_tol=resid / denom if denom > 0 else 0.0,
        )
    return sset
