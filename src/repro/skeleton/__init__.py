"""Skeletonization: interpolative decomposition + Algorithm II.1.

A node's *skeleton* is a subset of its columns that spans (to tolerance
``tau``) the off-diagonal rows ``K_{S alpha}``; the interpolative
decomposition also yields the projection ``P`` with
``K_{S alpha} ~= K_{S alpha~} P``.  Skeletons nest: an internal node's
skeleton is chosen from the union of its children's skeletons, which is
what makes the telescoping factorization possible.
"""

from repro.skeleton.id import IDResult, interpolative_decomposition
from repro.skeleton.skeletonize import (
    NodeSkeleton,
    SkeletonSet,
    skeletonize,
    skeletonize_node,
    prepare_sampling,
    effective_level_stop,
)
from repro.skeleton.frontier import compute_frontier

__all__ = [
    "IDResult",
    "interpolative_decomposition",
    "NodeSkeleton",
    "SkeletonSet",
    "skeletonize",
    "skeletonize_node",
    "prepare_sampling",
    "effective_level_stop",
    "compute_frontier",
]
