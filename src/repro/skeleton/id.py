"""Interpolative decomposition via pivoted rank-revealing QR (eq. 4).

Given a sample block ``G = K_{S' alpha}`` (rows: sampled outside
points, columns: the node's candidate points), find ``s`` columns
(the skeleton) and a projection ``P`` with ``G ~= G[:, skel] @ P`` and
``P[:, skel] = I``.  The rank is revealed by the decay of ``|R_kk|``
from the pivoted QR, exactly the sigma estimates the paper uses for
its ``sigma_{s+1}/sigma_1 < tau`` criterion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util import lapack
from repro.util.flops import count_flops

__all__ = ["IDResult", "interpolative_decomposition"]


@dataclass
class IDResult:
    """Result of an interpolative decomposition.

    Attributes
    ----------
    skeleton:
        Local column indices of the skeleton, shape (s,), in pivot order.
    proj:
        Projection ``P`` with ``G ~= G[:, skeleton] @ P``; shape (s, n)
        with ``proj[:, skeleton] == I_s``.
    rdiag:
        Absolute values of the R diagonal (the singular-value estimates).
    achieved_tol:
        ``rdiag[s] / rdiag[0]`` — the first *discarded* ratio (0.0 when
        nothing was discarded).  Compare against ``tau``.
    compressed:
        True when s < n (the ID actually reduced the column count).
    """

    skeleton: np.ndarray
    proj: np.ndarray
    rdiag: np.ndarray
    achieved_tol: float
    compressed: bool

    @property
    def rank(self) -> int:
        return len(self.skeleton)


def _select_rank(
    rdiag: np.ndarray, tau: float, max_rank: int, fixed_rank: int | None
) -> int:
    """Rank from the R-diagonal decay (or a fixed request), always >= 1."""
    kmax = len(rdiag)
    if kmax == 0:
        return 0
    if fixed_rank is not None:
        return max(1, min(fixed_rank, kmax))
    scale = rdiag[0]
    if scale <= 0.0:
        return 1
    below = np.nonzero(rdiag < tau * scale)[0]
    rank = int(below[0]) if len(below) else kmax
    return max(1, min(rank, max_rank, kmax))


def interpolative_decomposition(
    G: np.ndarray,
    *,
    tau: float = 1e-5,
    max_rank: int = 256,
    fixed_rank: int | None = None,
) -> IDResult:
    """Column ID of ``G`` with adaptive (or fixed) rank.

    Parameters
    ----------
    G:
        Sample block, shape (n_samples, n_candidates).
    tau:
        Relative tolerance on the R-diagonal decay (adaptive mode).
    max_rank:
        ``smax`` cap on the adaptive rank.
    fixed_rank:
        If given, use exactly this rank (clipped to ``min(G.shape)``).

    Notes
    -----
    The projection is computed from the triangular factor:
    with ``G P_cols = Q R = Q [R11 R12]``, the interpolation is
    ``T = R11^{-1} R12`` and ``P[:, piv] = [I T]``.  Singular leading
    blocks (exactly rank-deficient G) are handled by truncating to the
    numerical rank before the triangular solve.
    """
    G = np.ascontiguousarray(G, dtype=np.float64)
    if G.ndim != 2:
        raise ValueError(f"G must be 2-D; got shape {G.shape}")
    nsamp, ncols = G.shape
    if ncols == 0:
        raise ValueError("G must have at least one column")

    count_flops(4 * nsamp * ncols * min(nsamp, ncols), label="id_qr")
    # scipy's pivoted QR is LAPACK dgeqp3 — the paper's rank-revealing QR.
    _q, R, piv = lapack.qr(G, pivoting=True)
    rdiag = np.abs(np.diag(R))

    rank = _select_rank(rdiag, tau, max_rank, fixed_rank)
    if rank == 0:  # empty sample set: degenerate, keep one column.
        rank = min(1, ncols)
        piv = np.arange(ncols)
        rdiag = np.zeros(min(1, ncols))

    # Truncate to numerical rank for the triangular solve; any requested
    # rank beyond it adds columns whose coefficients we set to zero.
    eps_rank = rdiag[0] * max(nsamp, ncols) * np.finfo(np.float64).eps if len(rdiag) else 0.0
    solve_rank = int(np.count_nonzero(rdiag > eps_rank))
    solve_rank = min(solve_rank, rank)

    T = np.zeros((rank, ncols - rank))
    if solve_rank > 0 and ncols > rank:
        T[:solve_rank] = lapack.solve_triangular(
            R[:solve_rank, :solve_rank], R[:solve_rank, rank:], lower=False
        )
        count_flops(solve_rank * solve_rank * (ncols - rank), label="id_trsm")

    proj = np.zeros((rank, ncols))
    proj[:, piv[:rank]] = np.eye(rank)
    proj[:, piv[rank:]] = T

    if rank < len(rdiag) and rdiag[0] > 0:
        achieved = float(rdiag[rank] / rdiag[0])
    else:
        achieved = 0.0
    return IDResult(
        skeleton=np.asarray(piv[:rank], dtype=np.intp),
        proj=proj,
        rdiag=rdiag,
        achieved_tol=achieved,
        compressed=rank < ncols,
    )
