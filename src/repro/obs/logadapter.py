"""Rate-limited warning/logging adapter for solver convergence chatter.

The iterative solvers used to ``warnings.warn`` on every unconverged or
broken-down solve — a cross-validation sweep over a near-singular
operator produced hundreds of identical lines.  :func:`emit_warning` is
now the single outlet for solver diagnostics in ``repro.solvers`` (CI
lints for bare ``warnings.warn`` there):

* it bumps the ``warnings.emitted{key=...}`` counter in the metrics
  registry — the count is always exact even when output is throttled;
* it logs through the ``repro`` :mod:`logging` hierarchy, rate-limited
  per key (at most :data:`DEFAULT_BURST` records per key per
  :data:`DEFAULT_WINDOW_S` seconds; overflow bumps
  ``warnings.suppressed_logs{key=...}`` instead of printing);
* it still issues a real :func:`warnings.warn` with the caller's
  category, so ``pytest.warns`` / ``warnings.simplefilter`` contracts
  (and user filters) keep working unchanged.
"""

from __future__ import annotations

import logging
import threading
import time
import warnings

from repro.obs.metrics import MetricsRegistry, registry

__all__ = ["emit_warning", "get_logger", "RateLimiter"]

#: per-key log budget within one window.
DEFAULT_BURST = 5
#: rate-limit window in seconds.
DEFAULT_WINDOW_S = 60.0


def get_logger(name: str = "repro") -> logging.Logger:
    """The library logger (``repro`` hierarchy, no handlers imposed)."""
    return logging.getLogger(name)


class RateLimiter:
    """Fixed-window per-key limiter: ``allow(key)`` is True at most
    ``burst`` times per ``window_s`` seconds for each key."""

    def __init__(self, burst: int = DEFAULT_BURST, window_s: float = DEFAULT_WINDOW_S):
        self.burst = burst
        self.window_s = window_s
        self._lock = threading.Lock()
        self._windows: dict[str, tuple[float, int]] = {}

    def allow(self, key: str, now: float | None = None) -> bool:
        now = time.monotonic() if now is None else now
        with self._lock:
            start, count = self._windows.get(key, (now, 0))
            if now - start >= self.window_s:
                start, count = now, 0
            allowed = count < self.burst
            self._windows[key] = (start, count + 1 if allowed else count)
            return allowed


_limiter = RateLimiter()


def emit_warning(
    key: str,
    message: str,
    category: type[Warning] = UserWarning,
    *,
    stacklevel: int = 2,
    metrics: MetricsRegistry | None = None,
) -> None:
    """Route one solver warning through metrics + logging + ``warnings``.

    Parameters
    ----------
    key:
        Stable series key (e.g. ``"gmres.breakdown"``) — the metric
        label and the rate-limit bucket.
    message:
        Human-readable text, already formatted.
    category:
        The :mod:`warnings` category to raise (preserves
        ``pytest.warns`` and user filter behavior).
    stacklevel:
        As for :func:`warnings.warn`, counted from the *caller* of this
        function (the adapter frame is compensated for).
    metrics:
        Registry override (default: the process-wide one).
    """
    reg = metrics if metrics is not None else registry()
    reg.counter("warnings.emitted", key=key).inc()
    if _limiter.allow(key):
        get_logger("repro." + key.split(".")[0]).warning("%s: %s", key, message)
    else:
        reg.counter("warnings.suppressed_logs", key=key).inc()
    warnings.warn(message, category, stacklevel=stacklevel + 1)
