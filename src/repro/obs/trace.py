"""Lightweight span tracer: nested wall-clock spans for the pipeline.

The paper's headline claims are stage-level *measured* claims (ASKIT
build time, ``Tf``, ``Ts``); the tracer records those stages — and
anything nested inside them, down to sampled per-tile GSKS spans — as a
tree of :class:`Span` objects that exports to JSON and renders as an
ASCII tree (``repro trace``).

Design points:

* **thread-local nesting** — each thread keeps its own span stack, so
  concurrent solves nest correctly;
* **fallback parent** — stage spans opened with ``fallback=True``
  (factorize, solve) register as the parent for spans started on
  *worker* threads whose local stack is empty, which is how per-node
  work from the task-parallel executor lands under its stage;
* **counter deltas** — spans opened with ``counters=True`` snapshot the
  registry's counter totals on entry and store the delta on exit, so
  the trace shows e.g. how many cache misses each stage caused;
* **sampling knob** — spans marked ``sampled=True`` (per-tile GSKS
  spans) are recorded once every ``sample_every`` starts (0 disables
  them entirely, the default; ``REPRO_TRACE_TILES`` overrides);
* **bounded memory** — at most ``max_spans`` spans are retained;
  further spans still run (and time nothing) but are counted in
  ``dropped_spans``.
"""

from __future__ import annotations

import os
import threading
import time

from repro.obs.metrics import MetricsRegistry, registry

__all__ = ["Span", "Tracer", "tracer", "set_tracer", "span"]

#: retained-span cap; a runaway per-tile loop must not hold the heap.
DEFAULT_MAX_SPANS = 20_000


class Span:
    """One timed node of the trace tree."""

    __slots__ = (
        "name",
        "attrs",
        "children",
        "duration",
        "counter_delta",
        "_t0",
    )

    def __init__(self, name: str, attrs: dict | None = None) -> None:
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.children: list[Span] = []
        self.duration: float | None = None  # None while still open
        self.counter_delta: dict[str, int | float] | None = None
        self._t0 = time.perf_counter()

    def to_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "duration_s": self.duration,
        }
        if self.attrs:
            out["attrs"] = dict(self.attrs)
        if self.counter_delta:
            out["counters"] = dict(self.counter_delta)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


class _SpanHandle:
    """Context manager for one span (returned by :meth:`Tracer.span`)."""

    __slots__ = ("_tracer", "span", "_counters_before", "_track_counters", "_fallback")

    def __init__(self, tracer: "Tracer", sp: Span, track_counters: bool, fallback: bool):
        self._tracer = tracer
        self.span = sp
        self._track_counters = track_counters
        self._counters_before: dict | None = None
        self._fallback = fallback

    def __enter__(self) -> Span:
        self._tracer._enter(self.span, fallback=self._fallback)
        if self._track_counters:
            self._counters_before = self._tracer._registry().counter_totals()
        return self.span

    def __exit__(self, *exc) -> None:
        sp = self.span
        sp.duration = time.perf_counter() - sp._t0
        if self._counters_before is not None:
            after = self._tracer._registry().counter_totals()
            delta = {
                name: after[name] - self._counters_before.get(name, 0)
                for name in after
                if after[name] != self._counters_before.get(name, 0)
            }
            if delta:
                sp.counter_delta = delta
        self._tracer._exit(sp, fallback=self._fallback)


class _NoopHandle:
    """Shared do-nothing stand-in for sampled-out / dropped spans."""

    span = None

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> None:
        return None


_NOOP = _NoopHandle()


class Tracer:
    """Process-wide span collector; see module docstring."""

    def __init__(
        self,
        *,
        max_spans: int = DEFAULT_MAX_SPANS,
        sample_every: int | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if sample_every is None:
            raw = os.environ.get("REPRO_TRACE_TILES", "").strip()
            try:
                sample_every = int(raw) if raw else 0
            except ValueError:
                # a typo'd env knob must not take the tracer (and with it
                # the whole solve) down; fall back to the documented
                # default (0 = per-tile spans disabled).
                from repro.obs.logadapter import emit_warning

                emit_warning(
                    "env.REPRO_TRACE_TILES",
                    f"ignoring malformed REPRO_TRACE_TILES={raw!r} "
                    "(not an integer); per-tile span sampling disabled",
                    metrics=metrics,
                )
                sample_every = 0
        self.max_spans = max_spans
        self.sample_every = max(0, int(sample_every))
        self._metrics = metrics
        self._lock = threading.Lock()
        self._roots: list[Span] = []
        self._tls = threading.local()
        self._fallback_stack: list[Span] = []
        self._n_spans = 0
        self.dropped_spans = 0
        self._sample_counts: dict[str, int] = {}

    def _registry(self) -> MetricsRegistry:
        return self._metrics if self._metrics is not None else registry()

    # -- span lifecycle --------------------------------------------------
    def span(
        self,
        name: str,
        *,
        attrs: dict | None = None,
        counters: bool = False,
        fallback: bool = False,
        sampled: bool = False,
    ):
        """Open a span context.  See the module docstring for the knobs."""
        if sampled and not self._sample(name):
            return _NOOP
        with self._lock:
            if self._n_spans >= self.max_spans:
                self.dropped_spans += 1
                return _NOOP
            self._n_spans += 1
        return _SpanHandle(self, Span(name, attrs), counters, fallback)

    def _sample(self, name: str) -> bool:
        if self.sample_every <= 0:
            return False
        with self._lock:
            count = self._sample_counts.get(name, 0)
            self._sample_counts[name] = count + 1
        return count % self.sample_every == 0

    def _stack(self) -> list[Span]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _enter(self, sp: Span, *, fallback: bool) -> None:
        stack = self._stack()
        with self._lock:
            if stack:
                stack[-1].children.append(sp)
            elif self._fallback_stack:
                self._fallback_stack[-1].children.append(sp)
            else:
                self._roots.append(sp)
            if fallback:
                self._fallback_stack.append(sp)
        stack.append(sp)

    def _exit(self, sp: Span, *, fallback: bool) -> None:
        stack = self._stack()
        if stack and stack[-1] is sp:
            stack.pop()
        if fallback:
            with self._lock:
                if self._fallback_stack and self._fallback_stack[-1] is sp:
                    self._fallback_stack.pop()

    # -- export ----------------------------------------------------------
    def tree(self) -> list[dict]:
        """JSON-ready list of completed root spans (open spans included
        with ``duration_s: null``)."""
        with self._lock:
            roots = list(self._roots)
        return [r.to_dict() for r in roots]

    def render(self, *, min_duration: float = 0.0) -> str:
        """ASCII tree: one line per span with timing, attrs, deltas."""
        lines: list[str] = []

        def visit(sp: Span, depth: int) -> None:
            if sp.duration is not None and sp.duration < min_duration:
                return
            dur = f"{sp.duration * 1e3:10.2f} ms" if sp.duration is not None else "      open"
            attrs = "".join(f"  {k}={v}" for k, v in sp.attrs.items())
            lines.append(f"{dur}  {'  ' * depth}{sp.name}{attrs}")
            if sp.counter_delta:
                deltas = "  ".join(
                    f"{k}: +{v:g}" for k, v in sorted(sp.counter_delta.items())
                )
                lines.append(f"{'':14}{'  ' * (depth + 1)}[{deltas}]")
            for child in sp.children:
                visit(child, depth + 1)

        with self._lock:
            roots = list(self._roots)
        for root in roots:
            visit(root, 0)
        if self.dropped_spans:
            lines.append(f"({self.dropped_spans} spans dropped past the "
                         f"{self.max_spans}-span cap)")
        return "\n".join(lines) if lines else "(no spans recorded)"

    def reset(self) -> None:
        with self._lock:
            self._roots.clear()
            self._fallback_stack.clear()
            self._n_spans = 0
            self.dropped_spans = 0
            self._sample_counts.clear()
        self._tls = threading.local()


# -- process-wide default -------------------------------------------------
_default_lock = threading.Lock()
_default: Tracer | None = None


def tracer() -> Tracer:
    """The process-wide tracer used by the pipeline stages."""
    global _default
    with _default_lock:
        if _default is None:
            _default = Tracer()
        return _default


def set_tracer(tr: Tracer) -> Tracer:
    """Replace the process-wide tracer; returns the previous one."""
    global _default
    if not isinstance(tr, Tracer):
        raise TypeError("set_tracer expects a Tracer")
    with _default_lock:
        previous = _default
        _default = tr
    return previous if previous is not None else tr


def span(name: str, **kwargs):
    """Shorthand for ``tracer().span(name, ...)``."""
    return tracer().span(name, **kwargs)
