"""Telemetry export: one JSON blob (and an ASCII rendering) per process.

:func:`telemetry_snapshot` is the single "what did this solve actually
do?" call: the completed span tree plus every metric series.  Before
snapshotting it asks the process-default :class:`~repro.perf.BlockCache`
to publish its counters, so the blob is self-contained even for code
paths that never touched the registry explicitly.

The blob's shape (``schema: repro.telemetry/v1``) is documented in
``docs/OBSERVABILITY.md``; ``report.py`` embeds it under a
``"telemetry"`` key and ``benchmarks/bench_perf.py`` appends it to
``BENCH_perf.json``.
"""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, registry
from repro.obs.trace import Tracer, tracer

__all__ = ["telemetry_snapshot", "render_trace", "reset_telemetry"]

SCHEMA = "repro.telemetry/v1"


def _publish_default_cache(reg: MetricsRegistry) -> None:
    # deferred import: repro.perf must stay importable without obs and
    # vice versa (blockcache imports us only inside methods).
    from repro.perf.blockcache import _default as default_cache_instance

    if default_cache_instance is not None:
        default_cache_instance.publish(reg)


def telemetry_snapshot(
    *,
    metrics: MetricsRegistry | None = None,
    trace: Tracer | None = None,
    scope: dict[str, str] | None = None,
) -> dict:
    """The process's telemetry as one JSON-serializable dict.

    ``scope`` restricts the metric series per
    :meth:`MetricsRegistry.snapshot` — e.g. ``{"solver": fp}`` keeps
    one resident solver's attributed series plus the shared unlabeled
    ones.  Spans stay process-wide (the span tree has no per-series
    labels); a scoped blob records its scope under ``"scope"``.
    """
    reg = metrics if metrics is not None else registry()
    tr = trace if trace is not None else tracer()
    _publish_default_cache(reg)
    blob = {
        "schema": SCHEMA,
        "spans": tr.tree(),
        "metrics": reg.snapshot(scope=scope),
    }
    if scope:
        blob["scope"] = dict(scope)
    return blob


def render_trace(
    *,
    metrics: MetricsRegistry | None = None,
    trace: Tracer | None = None,
    min_duration: float = 0.0,
) -> str:
    """Human rendering: span tree with timings, then the counter table."""
    reg = metrics if metrics is not None else registry()
    tr = trace if trace is not None else tracer()
    _publish_default_cache(reg)
    lines = ["== span tree " + "=" * 47, tr.render(min_duration=min_duration)]
    snap = reg.snapshot()
    for kind in ("counters", "gauges"):
        series = snap[kind]
        if not series:
            continue
        lines.append(f"== {kind} " + "=" * (56 - len(kind)))
        for name, entries in series.items():
            for entry in entries:
                labels = entry.get("labels")
                label_txt = (
                    "{" + ", ".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
                    if labels
                    else ""
                )
                lines.append(f"  {name}{label_txt} = {entry['value']:g}")
    hists = snap["histograms"]
    if hists:
        lines.append("== histograms " + "=" * 46)
        for name, entries in hists.items():
            for entry in entries:
                s = entry["value"]
                if s["count"] == 0:
                    continue
                lines.append(
                    f"  {name}: n={s['count']} mean={s['mean']:.3g} "
                    f"min={s['min']:.3g} max={s['max']:.3g}"
                )
    return "\n".join(lines)


def reset_telemetry() -> None:
    """Clear the process-wide registry and tracer (tests, benchmarks)."""
    registry().reset()
    tracer().reset()
