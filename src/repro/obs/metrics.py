"""Process-wide metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` instance per process answers "what did
this solve actually do?" — every telemetry island of the library
(:class:`~repro.perf.BlockCache`, the virtual-MPI fabric, the recovery
ladder, GMRES/CG) publishes into it instead of keeping private
counters.  Series are identified by a metric name plus a small set of
string labels (``fabric.faults{kind=drops, rank=2}``), mirroring the
Prometheus data model without any of its machinery.

Handles (:class:`Counter`, :class:`Gauge`, :class:`Histogram`) are
memoized per ``(name, labels)`` and each carries its own lock, so
hot-path increments never contend on the registry lock.
"""

from __future__ import annotations

import contextlib
import contextvars
import os
import threading
import weakref
from typing import Iterable

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_label_scope",
    "label_scope",
    "registry",
    "set_registry",
]


def _label_key(labels: dict[str, str]) -> tuple[tuple[str, str], ...]:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


# ------------------------------------------------------------------
# label scoping: attribute series to the entity doing the work
# ------------------------------------------------------------------
# A long-lived process serving several resident solvers emits the same
# metric names (gmres.iterations, recovery.events, ...) on behalf of
# different models; without attribution the series interleave and the
# per-model health endpoint cannot tell them apart.  label_scope()
# installs extra labels for the current (thread's) context; the handle
# factories below fold them into every series created inside the scope.
# Explicit labels at the call site win over scope labels of the same
# name.  Scopes nest (inner scope wins per key) and, like the deadline
# ContextVar, do not cross thread spawns — executors re-install.
_scope: contextvars.ContextVar[tuple[tuple[str, str], ...]] = contextvars.ContextVar(
    "repro_metric_labels", default=()
)


def current_label_scope() -> dict[str, str]:
    """The labels installed by the innermost :func:`label_scope`."""
    return dict(_scope.get())


@contextlib.contextmanager
def label_scope(**labels: str):
    """Attach ``labels`` to every metric series created in the block.

    ``label_scope()`` with no labels (or all-None values) installs
    nothing, so call sites can scope unconditionally.
    """
    labels = {str(k): str(v) for k, v in labels.items() if v is not None}
    if not labels:
        yield
        return
    merged = dict(_scope.get())
    merged.update(labels)
    token = _scope.set(tuple(sorted(merged.items())))
    try:
        yield
    finally:
        _scope.reset(token)


def _apply_scope(labels: dict[str, str]) -> dict[str, str]:
    scope = _scope.get()
    if not scope:
        return labels
    merged = dict(scope)
    merged.update(labels)
    return merged


def _scope_match(labels: dict[str, str], scope: dict[str, str]) -> bool:
    """True when ``labels`` is compatible with a snapshot ``scope``:
    for every scope key the series either matches or is unattributed."""
    for key, value in scope.items():
        theirs = labels.get(key)
        if theirs is not None and theirs != str(value):
            return False
    return True


class _Series:
    """Base: one labeled series with its own lock."""

    __slots__ = ("name", "labels", "_lock")

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        self.name = name
        self.labels = {str(k): str(v) for k, v in labels.items()}
        self._lock = threading.Lock()


class Counter(_Series):
    """Monotonically increasing count (events, iterations, bytes)."""

    __slots__ = ("_value",)

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        super().__init__(name, labels)
        self._value = 0

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up; got {n}")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value


class Gauge(_Series):
    """Point-in-time value (cache words, hit rate, queue depth)."""

    __slots__ = ("_value",)

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self._value -= n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram(_Series):
    """Streaming summary of observations (count/sum/min/max/mean).

    Keeps O(1) state — no buckets, no reservoir — which is all the
    trace renderer and the JSON export need.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self, name: str, labels: dict[str, str]) -> None:
        super().__init__(name, labels)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    def summary(self) -> dict:
        with self._lock:
            if self.count == 0:
                return {"count": 0, "sum": 0.0}
            return {
                "count": self.count,
                "sum": self.total,
                "min": self.min,
                "max": self.max,
                "mean": self.total / self.count,
            }

    def merge_summary(self, summary: dict) -> None:
        """Fold another histogram's :meth:`summary` into this series
        (exact for count/sum/min/max/mean — the O(1) state is closed
        under merging, which is what lets per-rank registries combine)."""
        count = int(summary.get("count", 0))
        if count == 0:
            return
        with self._lock:
            self.count += count
            self.total += float(summary["sum"])
            self.min = min(self.min, float(summary.get("min", self.min)))
            self.max = max(self.max, float(summary.get("max", self.max)))


class MetricsRegistry:
    """Thread-safe home for every labeled metric series in the process."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}
        _instances.add(self)

    # -- handle factories (memoized per name+labels) ---------------------
    # each factory folds in the ambient label_scope(), so deep emit
    # sites need no knowledge of who (which resident solver) they are
    # working for.
    def counter(self, name: str, **labels: str) -> Counter:
        labels = _apply_scope(labels)
        key = (name, _label_key(labels))
        with self._lock:
            handle = self._counters.get(key)
            if handle is None:
                handle = self._counters[key] = Counter(name, labels)
            return handle

    def gauge(self, name: str, **labels: str) -> Gauge:
        labels = _apply_scope(labels)
        key = (name, _label_key(labels))
        with self._lock:
            handle = self._gauges.get(key)
            if handle is None:
                handle = self._gauges[key] = Gauge(name, labels)
            return handle

    def histogram(self, name: str, **labels: str) -> Histogram:
        labels = _apply_scope(labels)
        key = (name, _label_key(labels))
        with self._lock:
            handle = self._histograms.get(key)
            if handle is None:
                handle = self._histograms[key] = Histogram(name, labels)
            return handle

    # -- queries ---------------------------------------------------------
    def value(self, name: str, **labels: str) -> int | float:
        """Current value of a counter or gauge series (0 if absent).

        The ambient :func:`label_scope` applies here too, so code reads
        back exactly the series it would have written.
        """
        key = (name, _label_key(_apply_scope(labels)))
        with self._lock:
            handle = self._counters.get(key) or self._gauges.get(key)
        return handle.value if handle is not None else 0

    def total(self, name: str) -> int | float:
        """Sum of a counter's value across all label sets."""
        with self._lock:
            handles = [c for (n, _), c in self._counters.items() if n == name]
        return sum(h.value for h in handles)

    def counter_totals(self) -> dict[str, int | float]:
        """``{name: sum over labels}`` for every counter — the snapshot
        the span tracer diffs to attach counter deltas to stage spans."""
        with self._lock:
            handles = list(self._counters.items())
        totals: dict[str, int | float] = {}
        for (name, _), handle in handles:
            totals[name] = totals.get(name, 0) + handle.value
        return totals

    def _grouped(self, handles: Iterable[tuple[tuple, _Series]], value_of, scope):
        out: dict[str, list[dict]] = {}
        for (name, _), handle in sorted(handles, key=lambda kv: kv[0]):
            if scope and not _scope_match(handle.labels, scope):
                continue
            entry: dict = {"value": value_of(handle)}
            if handle.labels:
                entry["labels"] = dict(handle.labels)
            out.setdefault(name, []).append(entry)
        return out

    def snapshot(self, *, scope: dict[str, str] | None = None) -> dict:
        """JSON-ready dump of every series, grouped by metric name.

        ``scope`` restricts the dump per label key: a series is kept
        when, for every ``key: value`` in ``scope``, it either carries
        ``key=value`` or does not carry ``key`` at all.  That is the
        per-solver telemetry contract — ``scope={"solver": fp}`` keeps
        that solver's attributed series plus the shared process-global
        ones, and drops series attributed to *other* solvers.
        """
        with self._lock:
            counters = list(self._counters.items())
            gauges = list(self._gauges.items())
            histograms = list(self._histograms.items())
        return {
            "counters": self._grouped(counters, lambda h: h.value, scope),
            "gauges": self._grouped(gauges, lambda h: h.value, scope),
            "histograms": self._grouped(histograms, lambda h: h.summary(), scope),
        }

    def merge_snapshot(self, snap: dict, **extra_labels: str) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        The process-backed SPMD launcher ships each rank's registry
        snapshot back at join and merges it here with an extra ``rank``
        label, so per-rank series stay distinguishable while
        :meth:`total` still reports launch-wide sums (the thread
        backend's single shared registry semantics).  Counters add,
        gauges overwrite (point-in-time), histograms merge exactly.
        """
        for name, entries in snap.get("counters", {}).items():
            for entry in entries:
                labels = dict(entry.get("labels", {}))
                labels.update(extra_labels)
                self.counter(name, **labels).inc(entry["value"])
        for name, entries in snap.get("gauges", {}).items():
            for entry in entries:
                labels = dict(entry.get("labels", {}))
                labels.update(extra_labels)
                self.gauge(name, **labels).set(entry["value"])
        for name, entries in snap.get("histograms", {}).items():
            for entry in entries:
                labels = dict(entry.get("labels", {}))
                labels.update(extra_labels)
                self.histogram(name, **labels).merge_summary(entry["value"])

    def reset(self) -> None:
        """Drop every series (tests and fresh benchmark variants)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def _reinit_after_fork(self) -> None:
        """Fork-safety: fresh locks + empty per-process series.

        A fork can land while another thread holds ``_lock`` (or any
        series lock), leaving the child's copy locked forever; and the
        inherited series would double-count once the child's snapshot
        is merged back at join.  Children start clean.
        """
        self._lock = threading.Lock()
        self._counters = {}
        self._gauges = {}
        self._histograms = {}


# -- process-wide default -------------------------------------------------
_default_lock = threading.Lock()
_default: MetricsRegistry | None = None
_instances: "weakref.WeakSet[MetricsRegistry]" = weakref.WeakSet()


def _after_fork_in_child() -> None:  # pragma: no cover - exercised via mp
    global _default_lock
    _default_lock = threading.Lock()
    for reg in list(_instances):
        reg._reinit_after_fork()


if hasattr(os, "register_at_fork"):  # POSIX only
    os.register_at_fork(after_in_child=_after_fork_in_child)


def registry() -> MetricsRegistry:
    """The process-wide registry every library component publishes to."""
    global _default
    with _default_lock:
        if _default is None:
            _default = MetricsRegistry()
        return _default


def set_registry(reg: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-wide registry; returns the previous one."""
    global _default
    if not isinstance(reg, MetricsRegistry):
        raise TypeError("set_registry expects a MetricsRegistry")
    with _default_lock:
        previous = _default
        _default = reg
    return previous if previous is not None else reg
