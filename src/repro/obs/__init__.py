"""Observability layer: metrics registry, span tracer, telemetry export.

The paper's claims are *measured* claims — Tf/Ts stage breakdowns,
storage-vs-recompute trade-offs, per-level communication — and before
this package the reproduction's measurements were scattered across
four ad-hoc surfaces (``StageTimes``, ``CacheStats``, the fabric's
fault counters, ``SolverHealth``) plus ``warnings.warn`` chatter.
Everything now publishes into one process-wide pair:

* :func:`registry` — labeled counters/gauges/histograms
  (:mod:`repro.obs.metrics`);
* :func:`tracer` — nested wall-clock spans for tree build →
  skeletonize → factorize → solve, per-level factorization, and
  (sampled) per-tile GSKS work (:mod:`repro.obs.trace`).

Exports: :func:`telemetry_snapshot` (JSON blob, embedded by
``report.py`` and ``benchmarks/bench_perf.py``) and
:func:`render_trace` (the ``repro trace`` CLI).  Solver warnings go
through :func:`emit_warning` — rate-limited logging plus metric counts
plus a real :func:`warnings.warn`.  See ``docs/OBSERVABILITY.md``.
"""

from repro.obs.export import render_trace, reset_telemetry, telemetry_snapshot
from repro.obs.logadapter import RateLimiter, emit_warning, get_logger
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_label_scope,
    label_scope,
    registry,
    set_registry,
)
from repro.obs.trace import Span, Tracer, set_tracer, span, tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RateLimiter",
    "Span",
    "Tracer",
    "current_label_scope",
    "emit_warning",
    "label_scope",
    "get_logger",
    "registry",
    "render_trace",
    "reset_telemetry",
    "set_registry",
    "set_tracer",
    "span",
    "telemetry_snapshot",
    "tracer",
]
