"""Holdout cross-validation over (h, lambda) — paper section IV.

"The parameters h and lambda used in the Gaussian kernel were selected
using cross-validation."  The factorization must be redone per lambda
(and the whole ASKIT construction per h); the grid search below shares
skeletons across the lambda sweep exactly as the paper's pipeline
does, which is why a fast factorization matters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.kernels.gaussian import GaussianKernel
from repro.learning.ridge import KernelRidgeClassifier
from repro.util.validation import check_points, check_vector

__all__ = ["CrossValResult", "holdout_cross_validation"]


@dataclass
class CrossValResult:
    """Grid-search outcome.

    ``table`` rows are ``(h, lam, holdout_accuracy, train_residual)``;
    ``best_h``/``best_lam`` maximize holdout accuracy (ties: smaller
    residual).
    """

    best_h: float
    best_lam: float
    best_accuracy: float
    table: list[tuple[float, float, float, float]] = field(default_factory=list)


def holdout_cross_validation(
    X: np.ndarray,
    y: np.ndarray,
    bandwidths: Sequence[float],
    lambdas: Sequence[float],
    *,
    holdout_fraction: float = 0.2,
    seed: int | None = 0,
    tree_config: TreeConfig | None = None,
    skeleton_config: SkeletonConfig | None = None,
    solver_config: SolverConfig | None = None,
) -> CrossValResult:
    """Grid-search (h, lambda) for the Gaussian-kernel classifier.

    For each bandwidth, the tree/skeletonization is built once and the
    lambda sweep reuses it (only re-factorizing) — the workload the
    paper's fast factorization accelerates.
    """
    X = check_points(X)
    y = check_vector(y, X.shape[0], "y")
    if not bandwidths or not lambdas:
        raise ValueError("bandwidths and lambdas must be non-empty")
    if not (0.0 < holdout_fraction < 1.0):
        raise ValueError("holdout_fraction must be in (0, 1)")

    rng = np.random.default_rng(seed)
    n = X.shape[0]
    order = rng.permutation(n)
    n_hold = max(1, int(round(holdout_fraction * n)))
    hold, train = order[:n_hold], order[n_hold:]
    X_tr, y_tr = X[train], y[train]
    X_ho, y_ho = X[hold], y[hold]

    table: list[tuple[float, float, float, float]] = []
    best = (-1.0, np.inf)  # (accuracy, residual) to maximize/minimize
    best_h = float(bandwidths[0])
    best_lam = float(lambdas[0])

    for h in bandwidths:
        model = KernelRidgeClassifier(
            GaussianKernel(bandwidth=float(h)),
            lam=float(lambdas[0]),
            tree_config=tree_config,
            skeleton_config=skeleton_config,
            solver_config=solver_config,
        )
        fitted = False
        for lam in lambdas:
            if not fitted:
                model.lam = float(lam)
                model.fit(X_tr, y_tr)
                fitted = True
            else:
                model.refit(y_tr, lam=float(lam))
            acc = model.score(X_ho, y_ho)
            res = float(model.train_residual)
            table.append((float(h), float(lam), acc, res))
            if (acc, -res) > (best[0], -best[1]):
                best = (acc, res)
                best_h, best_lam = float(h), float(lam)

    return CrossValResult(
        best_h=best_h,
        best_lam=best_lam,
        best_accuracy=best[0],
        table=table,
    )
