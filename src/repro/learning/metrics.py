"""Evaluation metrics used by the paper's experiments."""

from __future__ import annotations

import numpy as np

__all__ = ["accuracy", "relative_residual"]


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct sign predictions (Table II's "Acc")."""
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: {y_true.shape} vs {y_pred.shape}"
        )
    if len(y_true) == 0:
        raise ValueError("empty label arrays")
    return float(np.mean(np.sign(y_true) == np.sign(y_pred)))


def relative_residual(
    u: np.ndarray, applied: np.ndarray
) -> float:
    """``||u - applied|| / ||u||`` — eq. (15) with ``applied = (lamI+K~)w``."""
    u = np.asarray(u, dtype=np.float64)
    r = float(np.linalg.norm(u - np.asarray(applied, dtype=np.float64)))
    un = float(np.linalg.norm(u))
    return r / un if un > 0 else r
