"""Bandwidth heuristics for Gaussian-kernel problems.

Cross-validating ``h`` from scratch is expensive; the *median
heuristic* — the median pairwise distance of a subsample — lands in the
regime where the kernel matrix is neither near-identity nor
near-rank-one (the regime the paper targets), and makes a good grid
center for the cross-validation sweep.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.distances import pairwise_sq_dists
from repro.util.random import as_generator
from repro.util.validation import check_points

__all__ = ["median_heuristic", "bandwidth_grid"]


def median_heuristic(
    X: np.ndarray,
    *,
    sample_size: int = 1024,
    seed: int | np.random.Generator | None = 0,
) -> float:
    """Median pairwise distance of a random subsample of ``X``.

    Cost O(sample_size^2 d), independent of N.
    """
    X = check_points(X)
    rng = as_generator(seed)
    n = X.shape[0]
    if n < 2:
        raise ValueError("need at least 2 points")
    if n > sample_size:
        idx = rng.choice(n, size=sample_size, replace=False)
        X = X[idx]
    D2 = pairwise_sq_dists(X, X)
    iu = np.triu_indices(len(X), k=1)
    med = float(np.median(np.sqrt(D2[iu])))
    if med == 0.0:
        raise ValueError("all sampled points coincide; bandwidth undefined")
    return med


def bandwidth_grid(
    X: np.ndarray,
    *,
    n_values: int = 5,
    decades: float = 1.0,
    sample_size: int = 1024,
    seed: int | np.random.Generator | None = 0,
) -> list[float]:
    """Log-spaced bandwidth grid centered on the median heuristic.

    ``decades`` controls the half-width of the sweep in log10 space;
    the default covers one decade either side of the median — the
    bandwidth range the paper's Figure 5 rows explore.
    """
    if n_values < 1:
        raise ValueError("n_values must be >= 1")
    center = median_heuristic(X, sample_size=sample_size, seed=seed)
    if n_values == 1:
        return [center]
    exps = np.linspace(-decades, decades, n_values)
    return [float(center * 10.0**e) for e in exps]
