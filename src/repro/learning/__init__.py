"""Kernel ridge regression / binary classification (paper section IV).

The paper's learning task: train ``w = (lambda I + K~)^{-1} u`` on the
labels ``u``, predict ``sign(K(x, X) w)`` for unseen points, and pick
``h``/``lambda`` by holdout cross-validation.
"""

from repro.learning.ridge import KernelRidgeClassifier, KernelRidgeRegressor
from repro.learning.crossval import CrossValResult, holdout_cross_validation
from repro.learning.gp import GaussianProcessRegressor, GPResult
from repro.learning.bandwidth import median_heuristic, bandwidth_grid
from repro.learning.multiclass import OneVsAllClassifier
from repro.learning.metrics import accuracy, relative_residual

__all__ = [
    "KernelRidgeClassifier",
    "KernelRidgeRegressor",
    "GaussianProcessRegressor",
    "GPResult",
    "median_heuristic",
    "bandwidth_grid",
    "OneVsAllClassifier",
    "CrossValResult",
    "holdout_cross_validation",
    "accuracy",
    "relative_residual",
]
