"""Kernel ridge regression on top of the fast direct solver.

Training solves ``(lambda I + K~) w = u`` with the hierarchical
factorization; prediction evaluates ``K(X_new, X_train) w`` with the
matrix-free GSKS summation.  The classifier is the paper's binary
setup: labels in {-1, +1}, prediction is the sign (section IV).
"""

from __future__ import annotations

import numpy as np

from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.core.solver import FastKernelSolver
from repro.exceptions import NotFactorizedError
from repro.kernels.base import Kernel
from repro.learning.metrics import accuracy
from repro.util.validation import check_points, check_vector

__all__ = ["KernelRidgeRegressor", "KernelRidgeClassifier"]


class KernelRidgeRegressor:
    """Kernel ridge regression: ``f(x) = K(x, X) (lambda I + K~)^{-1} u``.

    Parameters
    ----------
    kernel:
        Kernel function (the paper uses the Gaussian kernel with
        cross-validated bandwidth).
    lam:
        Regularization ``lambda``.
    tree_config / skeleton_config / solver_config:
        Forwarded to :class:`FastKernelSolver`.
    """

    def __init__(
        self,
        kernel: Kernel,
        lam: float = 1.0,
        *,
        tree_config: TreeConfig | None = None,
        skeleton_config: SkeletonConfig | None = None,
        solver_config: SolverConfig | None = None,
    ) -> None:
        self.kernel = kernel
        self.lam = float(lam)
        self.solver = FastKernelSolver(
            kernel,
            tree_config=tree_config,
            skeleton_config=skeleton_config,
            solver_config=solver_config,
        )
        self.weights: np.ndarray | None = None
        self.train_residual: float | None = None

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KernelRidgeRegressor":
        """Solve the training system; stores weights and the residual.

        ``y`` may be ``(N,)`` or ``(N, k)``: multiple targets are solved
        in one multi-RHS factorized solve and predicted with one GSKS
        panel product per query block.
        """
        X = check_points(X)
        y = check_vector(y, X.shape[0], "y")
        self.solver.fit(X)
        self.solver.factorize(self.lam)
        self.weights, info = self.solver.solve_with_info(y)
        self.train_residual = info.residual
        return self

    def refit(self, y: np.ndarray, lam: float | None = None) -> "KernelRidgeRegressor":
        """Re-train on new labels and/or lambda, reusing the skeletons.

        This is the paper's cross-validation fast path: the ASKIT
        construction is shared across lambda values, and the
        factorization is shared too when ``lam`` is unchanged — going
        through :meth:`FastKernelSolver.update` guarantees the solve
        never runs against factors telescoped at a *different* lambda
        (a changed ``lam`` always refactorizes, an unchanged one never
        does), instead of trusting callers to keep them in sync.
        """
        if self.solver.hmatrix is None:
            raise NotFactorizedError("call fit(X, y) before refit")
        if lam is not None:
            self.lam = float(lam)
        y = check_vector(y, self.solver.n_points, "y")
        self.solver.update(lam=self.lam)
        self.weights, info = self.solver.solve_with_info(y)
        self.train_residual = info.residual
        return self

    def predict(self, X_new: np.ndarray) -> np.ndarray:
        """Evaluate the regression function at new points."""
        if self.weights is None:
            raise NotFactorizedError("call fit(X, y) first")
        return self.solver.predict_matvec(X_new, self.weights)


class KernelRidgeClassifier(KernelRidgeRegressor):
    """Binary classifier: ``sign(K(x, X) w)`` on labels in {-1, +1}."""

    def fit(self, X: np.ndarray, y: np.ndarray) -> "KernelRidgeClassifier":
        y = np.asarray(y, dtype=np.float64)
        uniq = np.unique(np.sign(y[y != 0]))
        if len(uniq) < 1:
            raise ValueError("labels must contain at least one nonzero class")
        super().fit(X, y)
        return self

    def predict(self, X_new: np.ndarray) -> np.ndarray:
        """Class labels in {-1, +1} (zeros map to +1)."""
        scores = super().predict(X_new)
        labels = np.sign(scores)
        labels[labels == 0] = 1.0
        return labels

    def decision_function(self, X_new: np.ndarray) -> np.ndarray:
        """Raw scores ``K(X_new, X_train) w``."""
        return super().predict(X_new)

    def score(self, X_new: np.ndarray, y_true: np.ndarray) -> float:
        """Classification accuracy on held-out data."""
        return accuracy(y_true, self.predict(X_new))
