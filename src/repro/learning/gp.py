"""Gaussian-process regression on the fast direct solver.

Kernel matrices are "the" computational bottleneck of GP regression
(paper section I cites Rasmussen & Williams); with the hierarchical
factorization every expensive piece becomes log-linear:

* posterior mean:       ``m(X*) = K(X*, X) (K + sigma^2 I)^{-1} y``
  — one O(N log N) solve + matrix-free cross-kernel products;
* posterior variance:   ``k(x*, x*) - k*^T (K + sigma^2 I)^{-1} k*``
  — a multi-RHS hierarchical solve (one RHS per test point);
* log marginal likelihood:
  ``-1/2 y^T alpha - 1/2 log det(K + sigma^2 I) - N/2 log 2 pi``
  — the log-determinant telescopes out of the factorization's LU
  blocks (:meth:`HierarchicalFactorization.slogdet`), which is what
  makes hyperparameter selection by maximum likelihood tractable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.core.solver import FastKernelSolver
from repro.exceptions import NotFactorizedError
from repro.kernels.base import Kernel
from repro.util.validation import check_points, check_vector

__all__ = ["GPResult", "GaussianProcessRegressor"]


@dataclass
class GPResult:
    """Posterior at the query points."""

    mean: np.ndarray
    variance: np.ndarray | None


class GaussianProcessRegressor:
    """GP regression with an O(N log N) training solve.

    Parameters
    ----------
    kernel:
        Covariance function (any :class:`repro.kernels.Kernel`).
    noise:
        Observation noise standard deviation ``sigma`` (the
        regularization is ``sigma^2``).
    tree_config / skeleton_config / solver_config:
        Forwarded to the solver.  ``solver_config.method`` must be a
        direct method if :meth:`log_marginal_likelihood` is used (the
        hybrid never factorizes the frontier system, so it has no
        determinant).
    """

    def __init__(
        self,
        kernel: Kernel,
        noise: float = 0.1,
        *,
        tree_config: TreeConfig | None = None,
        skeleton_config: SkeletonConfig | None = None,
        solver_config: SolverConfig | None = None,
    ) -> None:
        if noise <= 0:
            raise ValueError(f"noise must be positive; got {noise}")
        self.kernel = kernel
        self.noise = float(noise)
        self.solver = FastKernelSolver(
            kernel,
            tree_config=tree_config,
            skeleton_config=skeleton_config,
            solver_config=solver_config,
        )
        self._X: np.ndarray | None = None
        self._y: np.ndarray | None = None
        self.alpha: np.ndarray | None = None

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GaussianProcessRegressor":
        """Factorize ``K + sigma^2 I`` and solve for the dual weights.

        ``y`` may be ``(N,)`` or ``(N, k)`` for ``k`` independent output
        channels sharing the covariance; the dual weights are obtained
        in one multi-RHS solve (BLAS-3 throughout).
        """
        X = check_points(X)
        y = check_vector(y, X.shape[0], "y")
        self._X, self._y = X, y
        self.solver.fit(X)
        self.solver.factorize(self.noise**2)
        self.alpha = self.solver.solve(y)
        return self

    def _require_fitted(self) -> None:
        if self.alpha is None:
            raise NotFactorizedError("call fit(X, y) first")

    # ------------------------------------------------------------------
    def predict(
        self, X_new: np.ndarray, *, return_variance: bool = False
    ) -> GPResult:
        """Posterior mean (and optionally variance) at ``X_new``.

        The variance path solves one hierarchical system per query
        point (batched as a multi-RHS solve), so prefer modest query
        batches when variances are needed.
        """
        self._require_fitted()
        X_new = check_points(X_new, "X_new")
        mean = self.solver.predict_matvec(X_new, self.alpha)
        variance = None
        if return_variance:
            # cross-covariance block K(X, X*) as the RHS batch.
            Kxs = self.kernel(
                self._X, X_new, norms_a=self.solver._X_norms
            )  # (N, n_new)
            V = self.solver.solve(Kxs)
            prior = self.kernel.diag_value()
            variance = prior - np.einsum("ij,ij->j", Kxs, V)
            # clamp tiny negative values from the K~ approximation.
            np.maximum(variance, 0.0, out=variance)
        return GPResult(mean=mean, variance=variance)

    def log_marginal_likelihood(self) -> float:
        """``log p(y | X)`` via the factorization's telescoping slogdet.

        For multi-output ``y`` the channels are independent given the
        shared covariance, so the value is the sum over channels.
        """
        self._require_fitted()
        n = self._y.shape[0]
        k_out = 1 if self._y.ndim == 1 else self._y.shape[1]
        sign, logdet = self.solver.factorization.slogdet()
        if sign <= 0:
            raise ArithmeticError(
                "covariance factorization is not positive definite "
                "(increase noise or tighten the skeleton tolerance)"
            )
        fit_term = -0.5 * float(np.sum(self._y * self.alpha))
        return fit_term - 0.5 * k_out * (logdet + n * np.log(2.0 * np.pi))

    def select_noise(self, candidates) -> float:
        """Pick the noise level maximizing the marginal likelihood.

        Re-factorizes per candidate but reuses the skeletonization —
        the same shared-construction trick as the paper's lambda
        cross-validation.
        """
        self._require_fitted()
        best, best_lml = self.noise, -np.inf
        for sigma in candidates:
            if sigma <= 0:
                raise ValueError("noise candidates must be positive")
            self.noise = float(sigma)
            self.solver.factorize(self.noise**2)
            self.alpha = self.solver.solve(self._y)
            lml = self.log_marginal_likelihood()
            if lml > best_lml:
                best, best_lml = self.noise, lml
        self.noise = best
        self.solver.factorize(best**2)
        self.alpha = self.solver.solve(self._y)
        return best
