"""One-vs-all multiclass classification (paper section IV, MNIST setup).

The paper performs "one-vs-all binary classification for the digit 3";
this generalizes to all classes at once: one factorization of
``lambda I + K~`` serves every class, because the per-class trainings
are just different right-hand sides — a multi-RHS hierarchical solve.
Training C classes therefore costs one factorization plus an
O(C N log N) solve instead of C full trainings.
"""

from __future__ import annotations

import numpy as np

from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.core.solver import FastKernelSolver
from repro.exceptions import NotFactorizedError
from repro.kernels.base import Kernel
from repro.util.validation import check_points

__all__ = ["OneVsAllClassifier"]


class OneVsAllClassifier:
    """Kernel ridge one-vs-all classifier over integer class labels.

    Parameters
    ----------
    kernel, lam:
        Gaussian (or other) kernel and ridge regularization.
    tree_config / skeleton_config / solver_config:
        Forwarded to :class:`FastKernelSolver`.
    """

    def __init__(
        self,
        kernel: Kernel,
        lam: float = 1.0,
        *,
        tree_config: TreeConfig | None = None,
        skeleton_config: SkeletonConfig | None = None,
        solver_config: SolverConfig | None = None,
    ) -> None:
        self.kernel = kernel
        self.lam = float(lam)
        self.solver = FastKernelSolver(
            kernel,
            tree_config=tree_config,
            skeleton_config=skeleton_config,
            solver_config=solver_config,
        )
        self.classes_: np.ndarray | None = None
        self.weights: np.ndarray | None = None  # (N, C)

    def fit(self, X: np.ndarray, y: np.ndarray) -> "OneVsAllClassifier":
        """One factorization, C simultaneous one-vs-all trainings."""
        X = check_points(X)
        y = np.asarray(y)
        if y.ndim != 1 or len(y) != len(X):
            raise ValueError(f"y must be (N,); got {y.shape} for N={len(X)}")
        self.classes_ = np.unique(y)
        if len(self.classes_) < 2:
            raise ValueError("need at least two classes")
        # +-1 target matrix, one column per class.
        Y = np.where(y[:, None] == self.classes_[None, :], 1.0, -1.0)
        self.solver.fit(X)
        self.solver.factorize(self.lam)
        self.weights = self.solver.solve(Y)
        return self

    def _require_fitted(self) -> None:
        if self.weights is None:
            raise NotFactorizedError("call fit(X, y) first")

    def decision_function(self, X_new: np.ndarray) -> np.ndarray:
        """Per-class scores ``K(X_new, X) W``, shape (n_new, C)."""
        self._require_fitted()
        return self.solver.predict_matvec(X_new, self.weights)

    def predict(self, X_new: np.ndarray) -> np.ndarray:
        """Class label with the largest one-vs-all score."""
        scores = self.decision_function(X_new)
        return self.classes_[np.argmax(scores, axis=1)]

    def score(self, X_new: np.ndarray, y_true: np.ndarray) -> float:
        """Multiclass accuracy."""
        pred = self.predict(X_new)
        y_true = np.asarray(y_true)
        if y_true.shape != pred.shape:
            raise ValueError("label shape mismatch")
        return float(np.mean(pred == y_true))
