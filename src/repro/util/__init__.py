"""Shared utilities: instrumentation, RNG handling, validation."""

from repro.util.flops import FlopCounter, current_counter, count_flops, count_mops
from repro.util.timing import Timer, StageTimes
from repro.util.random import as_generator
from repro.util.validation import (
    check_points,
    check_vector,
    check_positive,
    check_nonnegative,
    check_in,
)

__all__ = [
    "FlopCounter",
    "current_counter",
    "count_flops",
    "count_mops",
    "Timer",
    "StageTimes",
    "as_generator",
    "check_points",
    "check_vector",
    "check_positive",
    "check_nonnegative",
    "check_in",
]
