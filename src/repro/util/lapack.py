"""Serialized LAPACK entry points.

The factorization and the virtual-MPI/task-parallel executors call
LAPACK from multiple Python threads.  Some OpenBLAS builds (including
the scipy-openblas wheels) are not thread-safe for the LAPACK solve
wrappers even with ``OPENBLAS_NUM_THREADS=1`` — concurrent ``getrs``
calls occasionally return corrupted results (observed directly in this
environment; upstream OpenBLAS needs ``USE_LOCKING=1`` for this).

Every LAPACK call that can run on a worker thread therefore goes
through this module, which serializes them behind one process-wide
lock.  GEMM-class operations (``@`` / ``np.matmul``) are unaffected and
stay lock-free, so the heavy arithmetic still overlaps; only the small
factor/solve calls serialize.
"""

from __future__ import annotations

import threading

import numpy as np
import scipy.linalg

__all__ = [
    "lu_factor",
    "lu_solve",
    "qr",
    "solve_triangular",
    "gecon",
    "gecon_batched",
    "lu_factor_batched",
    "lu_factor_solve_batched",
    "lu_solve_batched",
]

_LOCK = threading.Lock()


def lu_factor(A: np.ndarray):
    """Locked ``scipy.linalg.lu_factor`` (check_finite disabled)."""
    with _LOCK:
        return scipy.linalg.lu_factor(A, check_finite=False)


def lu_solve(lu_piv, b: np.ndarray) -> np.ndarray:
    """Locked ``scipy.linalg.lu_solve`` (check_finite disabled)."""
    with _LOCK:
        return scipy.linalg.lu_solve(lu_piv, b, check_finite=False)


def lu_factor_batched(
    A: np.ndarray, *, overwrite_a: bool = False
) -> tuple[np.ndarray, np.ndarray]:
    """Locked LU of a ``(b, n, n)`` stack under one lock acquisition.

    Returns ``(lu, piv)`` with shapes ``(b, n, n)`` / ``(b, n)``,
    bitwise identical to per-slice :func:`lu_factor` calls: ``dgetrf``
    is the exact routine ``scipy.linalg.lu_factor`` dispatches to (same
    input bytes, same output bytes), invoked here without the per-call
    Python wrapper overhead — scipy's own N-D path (>= 1.17) loops per
    slice through that wrapper and is ~2x slower for small matrices.

    The returned ``lu`` stack has Fortran-contiguous slices (one bulk
    strided copy up front) so every ``dgetrf`` factors its slice in
    place — no per-slice f2py copy in, no output allocation — and so
    downstream ``dgetrs``/``dgecon`` calls take the copy-free path too.
    ``overwrite_a`` factors ``A`` itself when its slices are already
    Fortran-contiguous (the caller loses ``A``'s values), skipping the
    upfront copy entirely.
    """
    b, n = A.shape[0], A.shape[-1]
    piv = np.empty((b, n), dtype=np.int32)
    if overwrite_a and A.dtype == np.float64 and (n == 0 or A[0].flags.f_contiguous):
        lu = A
    else:
        lu = np.empty((b, n, n), dtype=np.float64).transpose(0, 2, 1)
        if n:
            np.copyto(lu, A)
    if n == 0:
        return lu, piv
    getrf = scipy.linalg.lapack.dgetrf
    with _LOCK:
        for i in range(b):
            _, piv[i], _ = getrf(lu[i], overwrite_a=1)
    return lu, piv


def lu_solve_batched(lu_piv, B: np.ndarray, *, overwrite_b: bool = False) -> np.ndarray:
    """Locked solve of a factored ``(b, n, n)`` stack against ``(b, n, k)``.

    Bitwise identical to per-slice :func:`lu_solve` calls (``dgetrs``
    is the routine ``scipy.linalg.lu_solve`` dispatches to).  The
    output slices are Fortran-strided on purpose: per-node
    ``lu_solve`` returns F-ordered solutions, and ``np.matmul`` picks
    layout-dependent GEMM paths whose results differ in the last bit —
    a C-ordered stack here would silently break bitwise parity with
    the per-node path two levels downstream.  ``overwrite_b`` solves in
    place when ``B``'s slices are already Fortran-contiguous float64.
    """
    lu, piv = lu_piv
    b, n, k = B.shape
    if (
        overwrite_b
        and B.dtype == np.float64
        and (n == 0 or k == 0 or B[0].flags.f_contiguous)
    ):
        out = B
        if n == 0 or k == 0:
            return out
    else:
        out = np.empty((b, k, n), dtype=np.float64).transpose(0, 2, 1)
        if n == 0 or k == 0:
            return out
        np.copyto(out, B)
    getrs = scipy.linalg.lapack.dgetrs
    with _LOCK:
        for i in range(b):
            getrs(lu[i], piv[i], out[i], overwrite_b=1)
    return out


def lu_factor_solve_batched(
    A: np.ndarray,
    B: np.ndarray,
    *,
    overwrite_a: bool = False,
    overwrite_b: bool = False,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fused LU-factor-and-solve of a stack: one ``dgesv`` per slice.

    Returns ``(lu, piv, x)`` bitwise identical to
    :func:`lu_factor_batched` followed by :func:`lu_solve_batched`
    (``dgesv`` runs the same ``dgetrf`` + ``dgetrs`` internally) with
    half the wrapper dispatches.  Layout and overwrite semantics match
    the unfused pair.
    """
    b, n = A.shape[0], A.shape[-1]
    k = B.shape[-1]
    piv = np.empty((b, n), dtype=np.int32)
    if overwrite_a and A.dtype == np.float64 and (n == 0 or A[0].flags.f_contiguous):
        lu = A
    else:
        lu = np.empty((b, n, n), dtype=np.float64).transpose(0, 2, 1)
        if n:
            np.copyto(lu, A)
    if (
        overwrite_b
        and B.dtype == np.float64
        and (n == 0 or k == 0 or B[0].flags.f_contiguous)
    ):
        x = B
    else:
        x = np.empty((b, k, n), dtype=np.float64).transpose(0, 2, 1)
        if n and k:
            np.copyto(x, B)
    if n == 0:
        return lu, piv, x
    if k == 0:
        getrf = scipy.linalg.lapack.dgetrf
        with _LOCK:
            for i in range(b):
                _, piv[i], _ = getrf(lu[i], overwrite_a=1)
        return lu, piv, x
    gesv = scipy.linalg.lapack.dgesv
    with _LOCK:
        for i in range(b):
            _, piv[i], _, _ = gesv(lu[i], x[i], overwrite_a=1, overwrite_b=1)
    return lu, piv, x


def qr(A: np.ndarray, *, pivoting: bool = True):
    """Locked economy QR (``dgeqp3`` when pivoting)."""
    with _LOCK:
        return scipy.linalg.qr(A, mode="economic", pivoting=pivoting)


def solve_triangular(R: np.ndarray, B: np.ndarray, *, lower: bool = False):
    """Locked triangular solve."""
    with _LOCK:
        return scipy.linalg.solve_triangular(R, B, lower=lower)


def gecon(lu: np.ndarray, anorm: float):
    """Locked LAPACK ``dgecon`` reciprocal-condition estimate."""
    with _LOCK:
        return scipy.linalg.lapack.dgecon(lu, anorm, norm="1")


def gecon_batched(lu: np.ndarray, anorms: np.ndarray) -> np.ndarray:
    """``dgecon`` over a factored ``(b, n, n)`` stack, one lock, one pass.

    Returns the ``(b,)`` rcond estimates, each bitwise equal to a
    per-slice :func:`gecon` call.  Negative ``info`` (argument error)
    raises ``ValueError`` like scipy's wrapper would.
    """
    b = lu.shape[0]
    rconds = np.empty(b)
    if b == 0 or lu.shape[-1] == 0:
        rconds.fill(1.0)
        return rconds
    dgecon = scipy.linalg.lapack.dgecon
    with _LOCK:
        for i in range(b):
            rconds[i], info = dgecon(lu[i], anorms[i], norm="1")
            if info < 0:  # pragma: no cover - lapack argument error
                raise ValueError(f"dgecon failed with info={info}")
    return rconds
