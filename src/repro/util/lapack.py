"""Serialized LAPACK entry points.

The factorization and the virtual-MPI/task-parallel executors call
LAPACK from multiple Python threads.  Some OpenBLAS builds (including
the scipy-openblas wheels) are not thread-safe for the LAPACK solve
wrappers even with ``OPENBLAS_NUM_THREADS=1`` — concurrent ``getrs``
calls occasionally return corrupted results (observed directly in this
environment; upstream OpenBLAS needs ``USE_LOCKING=1`` for this).

Every LAPACK call that can run on a worker thread therefore goes
through this module, which serializes them behind one process-wide
lock.  GEMM-class operations (``@`` / ``np.matmul``) are unaffected and
stay lock-free, so the heavy arithmetic still overlaps; only the small
factor/solve calls serialize.
"""

from __future__ import annotations

import threading

import numpy as np
import scipy.linalg

__all__ = ["lu_factor", "lu_solve", "qr", "solve_triangular", "gecon"]

_LOCK = threading.Lock()


def lu_factor(A: np.ndarray):
    """Locked ``scipy.linalg.lu_factor`` (check_finite disabled)."""
    with _LOCK:
        return scipy.linalg.lu_factor(A, check_finite=False)


def lu_solve(lu_piv, b: np.ndarray) -> np.ndarray:
    """Locked ``scipy.linalg.lu_solve`` (check_finite disabled)."""
    with _LOCK:
        return scipy.linalg.lu_solve(lu_piv, b, check_finite=False)


def qr(A: np.ndarray, *, pivoting: bool = True):
    """Locked economy QR (``dgeqp3`` when pivoting)."""
    with _LOCK:
        return scipy.linalg.qr(A, mode="economic", pivoting=pivoting)


def solve_triangular(R: np.ndarray, B: np.ndarray, *, lower: bool = False):
    """Locked triangular solve."""
    with _LOCK:
        return scipy.linalg.solve_triangular(R, B, lower=lower)


def gecon(lu: np.ndarray, anorm: float):
    """Locked LAPACK ``dgecon`` reciprocal-condition estimate."""
    with _LOCK:
        return scipy.linalg.lapack.dgecon(lu, anorm, norm="1")
