"""Wall-clock timing helpers for the benchmark harnesses."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

__all__ = ["Timer", "StageTimes"]


class Timer:
    """Context-manager stopwatch.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None


@dataclass
class StageTimes:
    """Named stage timings (tree build, skeletonize, factorize, solve).

    Mirrors the columns the paper reports: ASKIT build time, ``Tf``
    (factorization time) and ``Ts`` (solve time).
    """

    stages: dict[str, float] = field(default_factory=dict)

    def add(self, name: str, seconds: float) -> None:
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def time(self, name: str):
        """Return a context manager that accumulates into stage ``name``."""
        outer = self

        class _Stage:
            def __enter__(self_inner):
                self_inner._t = time.perf_counter()
                return self_inner

            def __exit__(self_inner, *exc):
                outer.add(name, time.perf_counter() - self_inner._t)

        return _Stage()

    def __getitem__(self, name: str) -> float:
        return self.stages.get(name, 0.0)

    @property
    def total(self) -> float:
        return sum(self.stages.values())
