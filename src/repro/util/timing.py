"""Wall-clock timing helpers for the benchmark harnesses.

:class:`StageTimes` is a thin view over the observability layer's
spans: :meth:`StageTimes.time` opens a :mod:`repro.obs` span (with
counter deltas attached), so stage timings show up both in the paper's
ASKIT/Tf/Ts accounting *and* in the ``repro trace`` span tree from one
call site.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

__all__ = ["Timer", "StageTimes"]


class Timer:
    """Context-manager stopwatch (re-usable).

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        if self._start is None:
            raise RuntimeError(
                "Timer.__exit__ called without a matching __enter__ "
                "(the timer was never started, or was already stopped)"
            )
        self.elapsed = time.perf_counter() - self._start
        self._start = None


@dataclass
class StageTimes:
    """Named stage timings (tree build, skeletonize, factorize, solve).

    Mirrors the columns the paper reports: ASKIT build time, ``Tf``
    (factorization time) and ``Ts`` (solve time).  Accumulation is
    thread-safe — the task-parallel executor and concurrent solves may
    add to the same stage.
    """

    stages: dict[str, float] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def add(self, name: str, seconds: float) -> None:
        with self._lock:
            self.stages[name] = self.stages.get(name, 0.0) + seconds

    def time(self, name: str):
        """Context manager: an obs span named ``name`` whose duration
        accumulates into stage ``name`` on exit."""
        outer = self
        # deferred import: repro.obs must not be required just to
        # construct a StageTimes (and it avoids an import cycle).
        from repro.obs import tracer

        class _Stage:
            def __enter__(self_inner):
                self_inner._handle = tracer().span(
                    name, counters=True, fallback=True
                )
                self_inner._t = time.perf_counter()
                self_inner._handle.__enter__()
                return self_inner

            def __exit__(self_inner, *exc):
                self_inner._handle.__exit__(*exc)
                outer.add(name, time.perf_counter() - self_inner._t)

        return _Stage()

    # -- pickling: locks are not picklable; recreate on load -------------
    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_lock"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def __getitem__(self, name: str) -> float:
        with self._lock:
            return self.stages.get(name, 0.0)

    @property
    def total(self) -> float:
        with self._lock:
            return sum(self.stages.values())
