"""Argument validation helpers shared across the library."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "check_points",
    "check_vector",
    "check_positive",
    "check_nonnegative",
    "check_in",
]


def check_points(X, name: str = "X") -> np.ndarray:
    """Validate an (N, d) float64 point matrix, converting if needed.

    Coerces dtype *and* memory layout exactly once at the library
    boundary: every downstream consumer (ball tree, kernels, the
    checkpoint ``config_fingerprint`` which hashes these bytes) then
    sees the same float64 C-contiguous array regardless of what the
    caller passed (float32, Fortran order, lists).
    """
    X = np.ascontiguousarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ConfigurationError(f"{name} must be 2-D (N, d); got shape {X.shape}")
    if X.shape[0] == 0 or X.shape[1] == 0:
        raise ConfigurationError(f"{name} must be non-empty; got shape {X.shape}")
    if not np.all(np.isfinite(X)):
        raise ConfigurationError(f"{name} contains non-finite values")
    return X


def check_vector(u, n: int | None = None, name: str = "u") -> np.ndarray:
    """Validate a vector or (N, k) right-hand-side block of length ``n``.

    Returns a float64 array with the original dimensionality preserved.
    """
    u = np.asarray(u, dtype=np.float64)
    if u.ndim not in (1, 2):
        raise ConfigurationError(f"{name} must be 1-D or 2-D; got ndim={u.ndim}")
    if u.shape[0] == 0:
        raise ConfigurationError(f"{name} must be non-empty; got shape {u.shape}")
    if u.ndim == 2 and u.shape[1] == 0:
        raise ConfigurationError(
            f"{name} must have at least one column; got shape {u.shape}"
        )
    if n is not None and u.shape[0] != n:
        raise ConfigurationError(
            f"{name} has leading dimension {u.shape[0]}, expected {n}"
        )
    if not np.all(np.isfinite(u)):
        raise ConfigurationError(f"{name} contains non-finite values")
    return u


def check_positive(value, name: str):
    if not value > 0:
        raise ConfigurationError(f"{name} must be positive; got {value!r}")
    return value


def check_nonnegative(value, name: str):
    if not value >= 0:
        raise ConfigurationError(f"{name} must be non-negative; got {value!r}")
    return value


def check_in(value, options, name: str):
    if value not in options:
        raise ConfigurationError(f"{name} must be one of {sorted(options)}; got {value!r}")
    return value
