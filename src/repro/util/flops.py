"""FLOP and memory-operation accounting.

The paper's performance story (Tables I and IV, Figure 4) is told in
GFLOPS and memory traffic.  Since this reproduction runs as pure
numpy on one core, we *count* floating-point operations and memory
operations at the algorithmic level and convert them to modeled node
times with :mod:`repro.perfmodel`.  Counters are cheap (integer adds),
thread-safe, and nestable.

Usage::

    with FlopCounter() as fc:
        run_something()
    print(fc.flops, fc.mops)

Library code reports work through :func:`count_flops` /
:func:`count_mops`, which charge every *active* counter on the current
thread (counters nest).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["FlopCounter", "current_counter", "count_flops", "count_mops"]

_local = threading.local()


def _stack() -> list["FlopCounter"]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


@dataclass
class FlopCounter:
    """Accumulates floating-point and memory-operation counts.

    Attributes
    ----------
    flops:
        Floating point operations (multiply-add counted as 2).
    mops:
        Memory operations, in units of 8-byte words moved to/from the
        (modeled) slow memory.  Used by the GSKS roofline model.
    kernel_evals:
        Number of kernel entries K(x, y) evaluated.
    by_label:
        Per-label breakdown of flops for profiling tables.
    """

    flops: int = 0
    mops: int = 0
    kernel_evals: int = 0
    by_label: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def add_flops(self, n: int, label: str | None = None) -> None:
        with self._lock:
            self.flops += int(n)
            if label is not None:
                self.by_label[label] = self.by_label.get(label, 0) + int(n)

    def add_mops(self, n: int) -> None:
        with self._lock:
            self.mops += int(n)

    def add_kernel_evals(self, n: int) -> None:
        with self._lock:
            self.kernel_evals += int(n)

    def reset(self) -> None:
        with self._lock:
            self.flops = 0
            self.mops = 0
            self.kernel_evals = 0
            self.by_label.clear()

    # -- context manager -------------------------------------------------
    def __enter__(self) -> "FlopCounter":
        _stack().append(self)
        return self

    def __exit__(self, *exc) -> None:
        stack = _stack()
        # Remove the most recent occurrence of *this* counter; counters
        # may be shared across threads so the top of the stack is not
        # guaranteed to be ``self`` after unbalanced use.
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] is self:
                del stack[i]
                break

    # -- cross-thread attachment -----------------------------------------
    def attach(self) -> None:
        """Attach this counter to the *current* thread's stack.

        Virtual-MPI rank threads call this so work done on worker
        threads is charged to the launching context's counter.
        """
        _stack().append(self)

    def detach(self) -> None:
        self.__exit__(None, None, None)


def current_counter() -> FlopCounter | None:
    """Return the innermost active counter on this thread, or ``None``."""
    stack = _stack()
    return stack[-1] if stack else None


def count_flops(n: int, label: str | None = None) -> None:
    """Charge ``n`` flops to every active counter on this thread."""
    for counter in _stack():
        counter.add_flops(n, label)


def count_mops(n: int) -> None:
    """Charge ``n`` memory operations (8-byte words) to active counters."""
    for counter in _stack():
        counter.add_mops(n)


def count_kernel_evals(n: int) -> None:
    """Charge ``n`` kernel-entry evaluations to active counters."""
    for counter in _stack():
        counter.add_kernel_evals(n)
