"""Seeded random-number handling.

Every stochastic component (tree splits, skeleton sampling, dataset
generators) takes a ``seed`` argument that may be ``None``, an int, or
an existing :class:`numpy.random.Generator`; :func:`as_generator`
normalizes it.  All randomness flows through generators so runs are
reproducible end to end.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_generator"]


def as_generator(
    seed: int | list[int] | np.random.Generator | None,
) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts anything :func:`numpy.random.default_rng` accepts — ints,
    ``None``, int sequences (used for order-independent per-node child
    seeds), or an existing generator (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
