"""Tree-wide precomputed squared-norm table for GSKS call sites.

The rank-d distance update ``||a - b||^2 = ||a||^2 - 2 a.b + ||b||^2``
needs the squared norms of both point sets.  The seed recomputed them
with an einsum on nearly every :func:`~repro.kernels.gsks.gsks_matvec`
call — during skeletonization, matvecs, and factorization — even though
the points never change after the tree is built.  :class:`NormTable`
computes them once, in tree order, and hands out views/gathers to every
call site.

For inner-product kernels (``kernel.uses_distances`` False) the table
is empty and every accessor returns None, which the kernel paths
already treat as "no precomputed norms".
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import Kernel
from repro.kernels.distances import sq_norms

__all__ = ["NormTable"]


class NormTable:
    """Squared norms of one point set, computed once and shared.

    Parameters
    ----------
    points:
        (N, d) array in tree order (rows addressed by the same ``lo:hi``
        ranges and index arrays the tree uses).
    kernel:
        The kernel the norms serve; inner-product kernels need none and
        get an empty (disabled) table.
    """

    def __init__(self, points: np.ndarray, kernel: Kernel | None = None) -> None:
        points = np.asarray(points, dtype=np.float64)
        self.n_points = points.shape[0]
        if kernel is not None and not kernel.uses_distances:
            self._norms: np.ndarray | None = None
        else:
            self._norms = sq_norms(points)

    @property
    def enabled(self) -> bool:
        return self._norms is not None

    def all(self) -> np.ndarray | None:
        """Norms of the whole point set (or None when disabled)."""
        return self._norms

    def range(self, lo: int, hi: int) -> np.ndarray | None:
        """View of the norms for the contiguous slice ``lo:hi``."""
        if self._norms is None:
            return None
        return self._norms[lo:hi]

    def node(self, node) -> np.ndarray | None:
        """Norms of a tree node's points (any object with ``lo``/``hi``)."""
        return self.range(node.lo, node.hi)

    def gather(self, idx: np.ndarray) -> np.ndarray | None:
        """Norms of an arbitrary index set (skeleton rows, samples)."""
        if self._norms is None:
            return None
        return self._norms[np.asarray(idx)]

    def storage_words(self) -> int:
        """Persistent float64 words held by the table."""
        return 0 if self._norms is None else int(self._norms.size)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = f"n={self.n_points}" if self.enabled else "disabled"
        return f"NormTable({state})"
