"""Cross-cutting performance layer: block caching and norm tables.

The paper's single-node study (Table IV) shows that the dominant
time/storage trade-off is whether kernel blocks are *stored* (GEMV per
product, O(m n) words) or *recomputed* (GSKS tiles, O(1) words).  The
seed reproduction made that choice statically per block kind; this
package makes it adaptive and central:

* :class:`BlockCache` — a process-wide, budgeted, LRU block store with
  striped per-key fill locks and a perfmodel-driven store-vs-recompute
  policy.  All dense kernel blocks of :class:`~repro.hmatrix.HMatrix`
  (leaf diagonal blocks, sibling V-blocks, frontier rows, reduced-system
  pair blocks) live here.
* :class:`NormTable` — tree-wide precomputed squared norms, threaded
  through every GSKS call site so the rank-d distance update never
  recomputes ``||x||^2`` rows.
* :mod:`~repro.perf.levelbatch` — level-synchronous shape-batched
  numerics: stacked kernel evaluation, batched LU/solve, and the
  roofline-derived batching threshold (see docs/PERFORMANCE.md).
"""

from repro.perf.blockcache import (
    BlockCache,
    BlockInfo,
    CacheStats,
    configure_default_cache,
    default_cache,
    set_default_cache,
)
from repro.perf.levelbatch import BatchPolicy, batching_enabled
from repro.perf.norms import NormTable

__all__ = [
    "BatchPolicy",
    "BlockCache",
    "BlockInfo",
    "CacheStats",
    "NormTable",
    "batching_enabled",
    "configure_default_cache",
    "default_cache",
    "set_default_cache",
]
