"""Level-synchronous shape-batched numerics.

The factorization, skeletonization, and frontier-assembly loops visit
thousands of small same-shaped nodes; below the leaf-size crossover the
cost is Python/LAPACK *dispatch*, not flops.  INV-ASKIT gets its
single-node throughput by stacking a whole tree level's same-shaped
per-node updates into one level-wide BLAS call — this module is that
idea for the numpy reproduction:

* :func:`group_by_key` — bucket a level's nodes by operand shape,
  preserving node order inside each bucket;
* :func:`stacked_kernel_blocks` — one batched kernel evaluation for a
  ``(b, m, d) x (b, n, d)`` stack of point blocks, replicating the
  per-node evaluation's exact op sequence (bitwise-identical slices);
* :func:`materialize_summations` — dense payloads for a same-shaped
  group of PRECOMPUTED :class:`~repro.kernels.summation.KernelSummation`
  blocks, batch-evaluating the cache misses while honoring the cache's
  admission policy (a declined block returns ``None`` and the caller
  falls back to the per-node matrix-free path);
* :class:`BatchPolicy` — the roofline-derived "is this group worth
  stacking" threshold, fed by the probed
  :class:`~repro.perfmodel.MachineSpec` instead of fixed constants.

Batched LU/solve goes through
:func:`repro.util.lapack.lu_factor_batched` /
:func:`~repro.util.lapack.lu_solve_batched`, which are bitwise
identical to the per-node calls — so the level-batched factorization
produces bit-for-bit the same factors as the per-node path, and the
flag (``SolverConfig.level_batch`` / ``REPRO_LEVEL_BATCH=0``) is purely
an execution-strategy switch.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Hashable, Sequence

import numpy as np

from repro.util.flops import count_flops, count_kernel_evals

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.kernels.base import Kernel
    from repro.kernels.summation import KernelSummation

__all__ = [
    "BatchPolicy",
    "batching_enabled",
    "group_by_key",
    "partition_resume",
    "stacked_kernel_blocks",
    "one_norms_stacked",
    "materialize_summations",
]


def batching_enabled() -> bool:
    """Process-wide kill switch: ``REPRO_LEVEL_BATCH=0`` disables batching."""
    return os.environ.get("REPRO_LEVEL_BATCH", "1").strip().lower() not in (
        "0",
        "false",
        "off",
    )


@dataclass(frozen=True)
class BatchPolicy:
    """When is stacking a shape group worth it on this machine?

    Batching a group of ``count`` same-shaped blocks saves
    ``(count - 1) * calls_saved`` per-call dispatch overheads but pays
    roughly one extra gather + scatter stream of the stacked operands.
    The break-even point therefore depends on the measured dispatch
    overhead and stream bandwidth — :meth:`current` reads both from the
    probed :class:`~repro.perfmodel.MachineSpec`.

    ``min_batch`` is a hard floor on the group size
    (``REPRO_LEVEL_BATCH_MIN`` overrides it).
    """

    dispatch_us: float
    stream_bw_gbs: float
    min_batch: int = 2

    @classmethod
    def current(cls) -> "BatchPolicy":
        from repro.perfmodel.machine import probed_machine

        spec = probed_machine()
        min_batch = 2
        env = os.environ.get("REPRO_LEVEL_BATCH_MIN")
        if env:
            try:
                min_batch = max(int(env), 1)
            except ValueError:
                pass
        return cls(
            dispatch_us=spec.dispatch_us,
            stream_bw_gbs=spec.stream_bw_gbs,
            min_batch=min_batch,
        )

    def worth(self, count: int, item_words: int, calls_saved: int = 6) -> bool:
        """True when stacking ``count`` items of ``item_words`` f64 words
        each (with ``calls_saved`` dispatches amortized per item) wins."""
        if count < max(self.min_batch, 2):
            return False
        saved = (count - 1) * calls_saved * self.dispatch_us * 1e-6
        extra = 2.0 * count * item_words * 8.0 / (self.stream_bw_gbs * 1e9)
        return saved > extra


def group_by_key(
    items: Sequence, key: Callable[[object], Hashable]
) -> dict[Hashable, list[int]]:
    """Bucket indices of ``items`` by ``key(item)``, preserving order."""
    groups: dict[Hashable, list[int]] = {}
    for i, item in enumerate(items):
        groups.setdefault(key(item), []).append(i)
    return groups


def partition_resume(nodes: Sequence, resume: dict) -> tuple[list, list]:
    """Split a level's nodes into ``(compute, restore)`` lists.

    Dirty-level restacking for incremental updates: nodes present in
    the ``resume`` payload map re-enter the factorization as standalone
    transplanted arrays, so they are excluded from the level's
    shape-group stacking — only the recomputed remainder is batched —
    and the parent level's P^ gather falls back to its
    layout-preserving copy path for them automatically (they hold no
    stack slot).  Node order is preserved inside both lists.
    """
    compute = [n for n in nodes if n.id not in resume]
    restore = [n for n in nodes if n.id in resume]
    return compute, restore


def stacked_kernel_blocks(
    kernel: "Kernel",
    XA: np.ndarray,
    XB: np.ndarray,
    norms_a: np.ndarray | None = None,
    norms_b: np.ndarray | None = None,
) -> np.ndarray:
    """Batched dense kernel blocks ``K(XA[i], XB[i])`` for a shape group.

    ``XA``/``XB`` are ``(b, m, d)`` / ``(b, n, d)`` stacks and
    ``norms_a``/``norms_b`` the matching ``(b, m)`` / ``(b, n)`` squared
    norms (required for distance kernels — callers always have a
    :class:`~repro.perf.NormTable`).  Replicates the exact op sequence
    of :meth:`Kernel.__call__` per slice, so every slice is bitwise
    identical to the per-node evaluation; flops and kernel-evaluation
    counters are charged with the per-node labels and totals.
    """
    b, m, d = XA.shape
    n = XB.shape[1]
    if kernel.uses_distances:
        if norms_a is None or norms_b is None:
            raise ValueError("stacked distance kernels need precomputed norms")
        block = np.matmul(XA, XB.transpose(0, 2, 1))
        block *= -2.0
        count_flops(b * (2 * m * n * d + 3 * m * n), label="pairwise_sq_dists")
        block += norms_a[:, :, None]
        block += norms_b[:, None, :]
        np.maximum(block, 0.0, out=block)
    else:
        block = np.matmul(XA, XB.transpose(0, 2, 1))
        count_flops(b * 2 * m * n * d, label="kernel_gemm")
    block = kernel._apply(block)
    count_flops(kernel.flops_per_entry * b * m * n, label="kernel_elementwise")
    count_kernel_evals(b * m * n)
    return block


def one_norms_stacked(A: np.ndarray) -> np.ndarray:
    """1-norms of a ``(b, n, n)`` stack, bitwise equal to per-slice
    ``np.linalg.norm(A[i], 1)`` (same pairwise-summation order)."""
    if A.shape[0] == 0 or A.shape[1] == 0:
        return np.zeros(A.shape[0])
    return np.abs(A).sum(axis=1).max(axis=1)


def materialize_summations(
    summs: Sequence["KernelSummation"],
) -> list[np.ndarray | None]:
    """Dense blocks for a *same-shaped* group of summations, or ``None``
    where the per-node path would also go matrix-free.

    Mirrors ``KernelSummation._stored()`` exactly — eager blocks are
    returned as-is, cache-backed blocks go through the cache's
    ``offer`` (same hit/miss/rejection accounting as a per-node
    product) — except that all cache *misses* in the group are
    evaluated in one stacked kernel call instead of one call each.
    Entries whose method is not PRECOMPUTED, or whose block the cache
    declines, come back ``None``: the caller must fall back to the
    per-node ``matvec`` for those (its GSKS path is tiled and not
    bitwise-comparable to a dense product, so the choice must match the
    per-node path's).
    """
    from repro.kernels.summation import SummationMethod

    out: list[np.ndarray | None] = [None] * len(summs)
    pending: list[int] = []
    for i, summ in enumerate(summs):
        if summ.method is not SummationMethod.PRECOMPUTED:
            continue
        if summ._matrix is not None:
            out[i] = summ._matrix
        elif summ._cache is not None:
            pending.append(i)

    if not pending:
        return out

    # the store-vs-recompute policy depends only on the block dimensions
    # and the machine model, and every summation in the group has the
    # same shape — evaluate it once per (cache, shape), not per block.
    infos = {i: summs[i]._block_info() for i in pending}
    verdicts: dict[int, bool] = {}
    for i in pending:
        ck = id(summs[i]._cache)
        if ck not in verdicts:
            verdicts[ck] = summs[i]._cache.should_store(infos[i])

    # one stacked evaluation for the group's actual cache misses (blocks
    # the policy would store); already-cached and policy-declined blocks
    # are excluded so flop charges match the per-node path exactly.
    need = [
        i
        for i in pending
        if verdicts[id(summs[i]._cache)]
        and not summs[i]._cache.contains(summs[i]._cache_key)
    ]
    slices: dict[int, np.ndarray] = {}
    if need:
        kernel = summs[need[0]].kernel
        XA = np.stack([summs[i].XA for i in need])
        XB = np.stack([summs[i].XB for i in need])
        if kernel.uses_distances:
            na = np.stack([summs[i]._norms_a for i in need])
            nb = np.stack([summs[i]._norms_b for i in need])
        else:
            na = nb = None
        blocks = stacked_kernel_blocks(kernel, XA, XB, na, nb)
        for pos, i in enumerate(need):
            # copy: a slice view would pin the whole stack in the cache.
            slices[i] = blocks[pos].copy()

    for i in pending:
        summ = summs[i]
        pre = slices.get(i)
        factory = (lambda s=pre: s) if pre is not None else summ._evaluate
        out[i] = summ._cache.offer(
            summ._cache_key,
            factory,
            infos[i],
            decided=verdicts[id(summ._cache)],
        )
    return out
