"""Budgeted LRU cache for dense kernel blocks (paper Table IV, adaptive).

The paper's single-node experiments frame storage as a budget: storing
every skeleton-row block is fastest per solve but costs O(s N log N)
words; recomputing everything (GSKS) costs O(1) words but pays kernel
evaluations per product.  :class:`BlockCache` turns that all-or-nothing
choice into a per-block decision:

* a **word budget** caps persistent float64 storage; least-recently-used
  blocks are evicted when a new block needs the space, and callers fall
  back to their matrix-free (GSKS) path for blocks the cache declines;
* the **store-vs-recompute policy** consults the
  :mod:`repro.perfmodel` roofline: a block is only worth storing when
  re-reading ``m n`` words from memory is modeled faster than
  recomputing the block with the fused summation;
* **striped per-key fill locks** let concurrent misses on *different*
  keys compute in parallel (the task-parallel factorization executor
  previously serialized on one H-matrix cache lock) while concurrent
  misses on the *same* key compute the block exactly once;
* hit/miss/eviction/rejection counters and a peak-storage high-water
  mark feed the benchmark suite (``benchmarks/bench_perf.py``).

Keys are tuples whose first element is a namespace token (one per
H-matrix); :meth:`BlockCache.drop_prefix` releases a namespace when its
owner is garbage collected.
"""

from __future__ import annotations

import itertools
import os
import threading
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable

import numpy as np

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.perfmodel.machine import MachineSpec

__all__ = [
    "BlockInfo",
    "CacheStats",
    "BlockCache",
    "default_cache",
    "set_default_cache",
    "configure_default_cache",
]

_WORD_BYTES = 8

#: namespace tokens for cache owners (H-matrices, orphaned summations).
_NAMESPACES = itertools.count(1)


def next_namespace() -> int:
    """A fresh namespace token for a new cache owner."""
    return next(_NAMESPACES)


@dataclass(frozen=True)
class BlockInfo:
    """Cost hint for one ``m x n`` kernel block over ``d``-dim points.

    Drives the store-vs-recompute policy: ``flops_per_entry`` is the
    kernel's modeled elementwise cost (see
    :attr:`repro.kernels.base.Kernel.flops_per_entry`).
    """

    m: int
    n: int
    d: int
    flops_per_entry: int = 1

    @property
    def words(self) -> int:
        return self.m * self.n


@dataclass(frozen=True)
class CacheStats:
    """Counter snapshot of a :class:`BlockCache`.

    ``lookups`` counts cache consultations (one per :meth:`fetch` /
    :meth:`BlockCache.get_or_compute` call and one per admitted
    :meth:`BlockCache.offer` probe); the accounting invariant
    ``hits + misses == lookups`` holds even under concurrent fills.
    """

    hits: int
    misses: int
    lookups: int
    evictions: int
    rejections: int
    entries: int
    words: int
    peak_words: int
    budget_words: int | None

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BlockCache:
    """Process-wide budgeted LRU store for dense kernel blocks.

    Parameters
    ----------
    budget_words:
        Maximum persistent float64 words held at any time; ``None``
        means unbounded (the seed's store-everything behavior).  The
        budget is a hard invariant — enforced even under concurrent
        fills (eviction happens under the structure lock, before
        insertion).
    n_stripes:
        Number of per-key fill locks; fills of keys mapping to
        different stripes proceed concurrently.
    machine:
        :class:`~repro.perfmodel.MachineSpec` used by the
        store-vs-recompute policy.  Defaults to the runtime-probed spec
        of this host (:func:`~repro.perfmodel.machine.probed_machine`;
        falls back to :data:`~repro.perfmodel.machine.PYTHON_NODE` when
        ``REPRO_MACHINE_PROBE=0``).  On any plausible host, recomputing
        kernel entries through tiled numpy is far slower than streaming
        stored blocks, so storing wins whenever the budget allows — the
        paper's Table IV conclusion for blocks that fit.
    """

    def __init__(
        self,
        budget_words: int | None = None,
        *,
        n_stripes: int = 64,
        machine: MachineSpec | None = None,
    ) -> None:
        if budget_words is not None and budget_words < 0:
            raise ValueError(f"budget_words must be >= 0 or None; got {budget_words}")
        if n_stripes < 1:
            raise ValueError("n_stripes must be >= 1")
        # deferred import: repro.perfmodel's package __init__ reaches the
        # parallel solvers, which import the H-matrix, which imports us.
        from repro.perfmodel.machine import probed_machine

        self.budget_words = budget_words
        self.machine = machine or probed_machine()
        self._entries: OrderedDict[Hashable, np.ndarray] = OrderedDict()
        self._words = 0
        self._lock = threading.Lock()
        self._stripes = [threading.Lock() for _ in range(n_stripes)]
        self._hits = 0
        self._misses = 0
        self._lookups = 0
        self._evictions = 0
        self._rejections = 0
        self._peak_words = 0
        _instances.add(self)

    # -- spawn/fork safety ------------------------------------------------
    def __getstate__(self):
        """Spawn-safety: a cache travels as *configuration*, not contents.

        Locks are not picklable, cached blocks are pure recomputable
        data, and per-process stats must start at zero in a child — so
        pickling a cache ships only ``budget_words`` / striping /
        machine spec; the receiver starts empty.
        """
        return {
            "budget_words": self.budget_words,
            "machine": self.machine,
            "n_stripes": len(self._stripes),
        }

    def __setstate__(self, state):
        self.__init__(
            state["budget_words"],
            n_stripes=state["n_stripes"],
            machine=state["machine"],
        )

    def _reinit_after_fork(self) -> None:
        """Fork-safety: fresh locks + zeroed per-process stats.

        A fork can land while another thread holds ``_lock`` or a
        stripe lock (the child's copy would stay locked forever), and
        inherited hit/miss counters would double-count once a child's
        telemetry is merged at join.  Entries are kept: they are valid
        copy-on-write data the child can keep serving.
        """
        self._lock = threading.Lock()
        self._stripes = [threading.Lock() for _ in self._stripes]
        self._hits = self._misses = self._lookups = 0
        self._evictions = self._rejections = 0
        self._peak_words = self._words

    # -- striping --------------------------------------------------------
    def key_lock(self, key: Hashable) -> threading.Lock:
        """The stripe lock guarding fills of ``key``.

        Also usable by callers to guard their own lazy per-key
        initialization (e.g. building a summation object exactly once)
        without a global lock.
        """
        return self._stripes[hash(key) % len(self._stripes)]

    # -- policy ----------------------------------------------------------
    def should_store(self, info: BlockInfo | None) -> bool:
        """Store-vs-recompute decision for a block (budget aside).

        Models the Table IV trade: storing pays one stream of ``m n``
        words per product; recomputing pays a fused GSKS evaluation.
        With no cost hint the block is assumed worth storing.
        """
        if info is None:
            return True
        if self.budget_words is not None and info.words > self.budget_words:
            return False
        from repro.perfmodel.summation_model import model_gsks_summation

        recompute_s = model_gsks_summation(
            self.machine, info.m, info.n, max(info.d, 1)
        ).seconds
        reread_s = (info.words * _WORD_BYTES) / (self.machine.stream_bw_gbs * 1e9)
        return recompute_s > reread_s

    # -- core operations -------------------------------------------------
    def fetch(self, key: Hashable) -> np.ndarray | None:
        """Return the cached block for ``key`` or None, counting hit/miss."""
        with self._lock:
            self._lookups += 1
            block = self._entries.get(key)
            if block is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return block

    def get_or_compute(
        self,
        key: Hashable,
        factory: Callable[[], np.ndarray],
        info: BlockInfo | None = None,
    ) -> np.ndarray:
        """The block for ``key``, computing (once per concurrent miss) if
        absent.  Always returns the block; stores it only when the policy
        and budget allow."""
        block = self.fetch(key)
        if block is not None:
            return block
        with self.key_lock(key):
            with self._lock:
                block = self._entries.get(key)
                if block is not None:
                    # a racing thread filled the block between our fetch
                    # and taking the stripe lock: this call is served from
                    # the cache, so reclassify the fetch's miss as a hit
                    # (keeps hits + misses == lookups and stops hit_rate
                    # skewing low exactly under concurrent fills).
                    self._entries.move_to_end(key)
                    self._hits += 1
                    self._misses -= 1
                    return block
            block = np.asarray(factory())
            if self.should_store(info):
                self._admit(key, block)
            else:
                with self._lock:
                    self._rejections += 1
            return block

    def offer(
        self,
        key: Hashable,
        factory: Callable[[], np.ndarray],
        info: BlockInfo | None = None,
        *,
        decided: bool | None = None,
    ) -> np.ndarray | None:
        """Like :meth:`get_or_compute`, but returns None *without
        computing* when the policy or budget declines the block — the
        caller then uses its cheaper matrix-free path instead.

        ``decided`` short-circuits the :meth:`should_store` evaluation
        with a verdict the caller already computed for this ``info`` —
        the policy is deterministic in the block dimensions, so callers
        offering a same-shaped batch need only evaluate it once.  The
        hit/miss/rejection accounting is identical either way.
        """
        if not (self.should_store(info) if decided is None else decided):
            with self._lock:
                self._rejections += 1
            return None
        with self.key_lock(key):
            with self._lock:
                self._lookups += 1
                block = self._entries.get(key)
                if block is not None:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    return block
                self._misses += 1
            block = np.asarray(factory())
            self._admit(key, block)
            return block

    def put(self, key: Hashable, block: np.ndarray) -> bool:
        """Force-store a block (subject to the budget); True if stored."""
        return self._admit(key, np.asarray(block))

    def _admit(self, key: Hashable, block: np.ndarray) -> bool:
        words = int(block.size)
        with self._lock:
            if self.budget_words is not None and words > self.budget_words:
                # reject *before* touching any existing entry for the
                # key: a failed re-admit must not silently drop the old
                # cached block.
                self._rejections += 1
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self._words -= old.size
            if self.budget_words is not None:
                while self._words + words > self.budget_words and self._entries:
                    _, evicted = self._entries.popitem(last=False)
                    self._words -= evicted.size
                    self._evictions += 1
            self._entries[key] = block
            self._words += words
            self._peak_words = max(self._peak_words, self._words)
            return True

    # -- queries and lifecycle -------------------------------------------
    def contains(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries

    @property
    def words(self) -> int:
        with self._lock:
            return self._words

    def words_of_prefix(self, prefix) -> int:
        """Persistent words held under namespace ``prefix`` (``key[0]``)."""
        with self._lock:
            return sum(
                b.size
                for k, b in self._entries.items()
                if isinstance(k, tuple) and k and k[0] == prefix
            )

    def drop(self, key: Hashable) -> None:
        with self._lock:
            block = self._entries.pop(key, None)
            if block is not None:
                self._words -= block.size

    def drop_prefix(self, prefix) -> None:
        """Release every entry under namespace ``prefix``."""
        with self._lock:
            doomed = [
                k
                for k in self._entries
                if isinstance(k, tuple) and k and k[0] == prefix
            ]
            for k in doomed:
                self._words -= self._entries.pop(k).size

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._words = 0

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                lookups=self._lookups,
                evictions=self._evictions,
                rejections=self._rejections,
                entries=len(self._entries),
                words=self._words,
                peak_words=self._peak_words,
                budget_words=self.budget_words,
            )

    def publish(self, metrics=None) -> None:
        """Publish this cache's counters into the metrics registry.

        Called automatically for the process-default cache by
        :func:`repro.obs.telemetry_snapshot`; other caches publish
        explicitly.  Counters are exported as gauges because a cache's
        internal counters can be reset (:meth:`reset_stats`).
        """
        from repro.obs.metrics import registry

        reg = metrics if metrics is not None else registry()
        s = self.stats()
        reg.gauge("blockcache.hits").set(s.hits)
        reg.gauge("blockcache.misses").set(s.misses)
        reg.gauge("blockcache.lookups").set(s.lookups)
        reg.gauge("blockcache.evictions").set(s.evictions)
        reg.gauge("blockcache.rejections").set(s.rejections)
        reg.gauge("blockcache.entries").set(s.entries)
        reg.gauge("blockcache.words").set(s.words)
        reg.gauge("blockcache.peak_words").set(s.peak_words)
        reg.gauge("blockcache.hit_rate").set(s.hit_rate)

    def reset_stats(self) -> None:
        with self._lock:
            self._hits = self._misses = self._lookups = 0
            self._evictions = self._rejections = 0
            self._peak_words = self._words

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"BlockCache(entries={s.entries}, words={s.words}, "
            f"budget={s.budget_words}, hit_rate={s.hit_rate:.2f})"
        )


# -- process-wide default ------------------------------------------------
_default_lock = threading.Lock()
_default: BlockCache | None = None
_instances: "weakref.WeakSet[BlockCache]" = weakref.WeakSet()


def _after_fork_in_child() -> None:  # pragma: no cover - exercised via mp
    global _default_lock
    _default_lock = threading.Lock()
    for cache in list(_instances):
        cache._reinit_after_fork()


if hasattr(os, "register_at_fork"):  # POSIX only
    os.register_at_fork(after_in_child=_after_fork_in_child)


def default_cache() -> BlockCache:
    """The process-wide cache used when no explicit cache is passed."""
    global _default
    with _default_lock:
        if _default is None:
            _default = BlockCache()
        return _default


def set_default_cache(cache: BlockCache) -> BlockCache:
    """Replace the process-wide default cache; returns the previous one."""
    global _default
    if not isinstance(cache, BlockCache):
        raise TypeError("set_default_cache expects a BlockCache")
    with _default_lock:
        previous = _default
        _default = cache
    return previous if previous is not None else cache


def configure_default_cache(
    budget_words: int | None = None,
    *,
    n_stripes: int = 64,
    machine: MachineSpec | None = None,
) -> BlockCache:
    """Install a fresh default cache with the given budget and return it.

    The storage-budget knob of the whole library: H-matrices built
    afterwards adopt the new cache (existing ones keep the cache they
    were built with).
    """
    cache = BlockCache(budget_words, n_stripes=n_stripes, machine=machine)
    set_default_cache(cache)
    return cache
