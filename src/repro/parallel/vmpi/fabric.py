"""Message fabric: mailboxes + traffic accounting.

One :class:`Fabric` is shared by every rank of a :func:`run_spmd`
launch.  Mailboxes are keyed by ``(comm_key, src, dst, tag)`` so
messages on different (sub-)communicators never collide; within one
key, delivery is FIFO — matching MPI's non-overtaking guarantee.
"""

from __future__ import annotations

import pickle
import threading
from collections import defaultdict, deque
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DeadlockError

__all__ = ["Fabric", "CommStats"]

#: default receive timeout; virtual ranks share one process, so a
#: missing message means a bug, not a slow network.
DEFAULT_TIMEOUT = 120.0


def payload_bytes(obj) -> int:
    """Modeled wire size of a message payload."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (tuple, list)):
        return sum(payload_bytes(o) for o in obj)
    if obj is None:
        return 0
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # pragma: no cover - unpicklable diagnostics object
        return 64


@dataclass
class CommStats:
    """Aggregate traffic counters for one SPMD launch.

    ``messages``/``bytes`` count point-to-point sends (collectives are
    built from sends, so their cost is included automatically).
    """

    messages: int = 0
    bytes: int = 0
    by_pair: dict[tuple[int, int], int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record(self, src_world: int, dst_world: int, nbytes: int) -> None:
        with self._lock:
            self.messages += 1
            self.bytes += nbytes
            key = (src_world, dst_world)
            self.by_pair[key] = self.by_pair.get(key, 0) + nbytes


class Fabric:
    """Shared mailbox router for one SPMD launch."""

    def __init__(self, n_ranks: int, timeout: float = DEFAULT_TIMEOUT) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        self.n_ranks = n_ranks
        self.timeout = timeout
        self.stats = CommStats()
        self._boxes: dict[tuple, deque] = defaultdict(deque)
        self._cond = threading.Condition()
        self._aborted: BaseException | None = None

    # ------------------------------------------------------------------
    def post(
        self,
        comm_key: str,
        src: int,
        dst: int,
        tag: int,
        payload,
        *,
        src_world: int,
        dst_world: int,
    ) -> None:
        """Deliver a message (called by the sending rank)."""
        self.stats.record(src_world, dst_world, payload_bytes(payload))
        with self._cond:
            self._boxes[(comm_key, src, dst, tag)].append(payload)
            self._cond.notify_all()

    def wait(self, comm_key: str, src: int, dst: int, tag: int):
        """Block until a matching message arrives; FIFO per key."""
        key = (comm_key, src, dst, tag)
        with self._cond:
            ok = self._cond.wait_for(
                lambda: self._aborted is not None or bool(self._boxes[key]),
                timeout=self.timeout,
            )
            if self._aborted is not None:
                raise DeadlockError(
                    f"peer rank failed: {self._aborted!r}"
                ) from self._aborted
            if not ok:
                raise DeadlockError(
                    f"recv timed out after {self.timeout}s waiting for "
                    f"(comm={comm_key!r}, src={src}, dst={dst}, tag={tag})"
                )
            return self._boxes[key].popleft()

    def abort(self, exc: BaseException) -> None:
        """Wake all waiting ranks after a rank died (deadlock prevention)."""
        with self._cond:
            if self._aborted is None:
                self._aborted = exc
            self._cond.notify_all()
