"""Message fabric: logged mailboxes + traffic/fault accounting.

One :class:`Fabric` is shared by every rank of a :func:`run_spmd`
launch.  Mailboxes are keyed by ``(comm_key, src, dst, tag)`` so
messages on different (sub-)communicators never collide; within one
key, delivery is FIFO — matching MPI's non-overtaking guarantee.

The fabric is a *message-logging* fabric (the classic pessimistic
message-logging recovery protocol): every post is appended to a
per-key log and consumption advances a cursor instead of destroying
the message.  That buys two things:

* **transient faults** — a delivery attempt classified DROP or CORRUPT
  by the :class:`~repro.parallel.vmpi.faults.FaultPlan` leaves the
  message in the log; the receiver's retry (with backoff) re-attempts
  the *same* payload, modeling retransmission;
* **rank crash recovery** — :meth:`begin_replay` rewinds a dead rank's
  receive cursors to zero and arms sender-side deduplication, so a
  respawned replacement re-executes the rank's deterministic program
  against the logged history: messages it already sent are suppressed
  as duplicates, messages it already consumed are replayed from the
  log, and the protocol resumes exactly where the victim died.
"""

from __future__ import annotations

import pickle
import threading
import time
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import DeadlockError
from repro.parallel.vmpi.faults import (
    FaultAction,
    FaultPlan,
    MessageCorrupted,
    MessageDropped,
    RetryPolicy,
)

__all__ = ["Fabric", "CommStats"]

#: default receive timeout; virtual ranks share one process, so a
#: missing message means a bug, not a slow network.
DEFAULT_TIMEOUT = 120.0


def payload_bytes(obj) -> int:
    """Modeled wire size of a message payload."""
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, (tuple, list)):
        return sum(payload_bytes(o) for o in obj)
    if obj is None:
        return 0
    try:
        return len(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))
    except Exception:  # pragma: no cover - unpicklable diagnostics object
        return 64


@dataclass
class CommStats:
    """Aggregate traffic and fault counters for one SPMD launch.

    ``messages``/``bytes`` count point-to-point sends (collectives are
    built from sends, so their cost is included automatically).  The
    fault counters record every chaos event observed and every recovery
    action taken — :class:`~repro.solvers.recovery.SolverHealth`
    ingests them so distributed results carry their fault history.
    """

    messages: int = 0
    bytes: int = 0
    by_pair: dict[tuple[int, int], int] = field(default_factory=dict)
    #: delivery attempts dropped by the fault plan.
    drops: int = 0
    #: delivery attempts corrupted (failed the integrity check).
    corruptions: int = 0
    #: delivery attempts delayed.
    delays: int = 0
    #: receiver retransmission attempts (drops + corruptions retried).
    retries: int = 0
    #: injected rank crashes observed.
    crashes: int = 0
    #: rank respawns performed by the supervisor.
    respawns: int = 0
    #: re-sent messages suppressed by dedup during replay.
    duplicates_suppressed: int = 0
    #: heartbeats received by the supervisor (socket backend).
    heartbeats: int = 0
    #: heartbeat-detector alive -> suspected transitions.
    suspicions: int = 0
    #: ranks declared permanently dead by the failure detector (or by a
    #: crash with the respawn budget exhausted under elastic mode).
    confirmed_losses: int = 0
    #: frames from a dead rank's membership epoch rejected at the router.
    stale_rejected: int = 0
    #: elastic repartitions of subtree ownership onto survivors.
    repartitions: int = 0
    #: one dict per crash recovery performed by the supervisor.
    rank_recoveries: list[dict] = field(default_factory=list)
    #: per-world-rank fault counters, ``{rank: {kind: count}}`` — the
    #: rank *charged* with the fault (the receiver for transport faults,
    #: the victim for crashes/respawns, the replayer for dedup hits).
    by_rank_faults: dict[int, dict[str, int]] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    # -- pickling: rank processes ship their stats back at join --------
    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    def merge(self, other: "CommStats") -> None:
        """Fold another launch-segment's counters into this one.

        Used by the process backend: each rank counts the faults *it*
        observed in a rank-local ``CommStats`` (the fabric proxy), and
        the supervisor merges them into the router's traffic stats at
        join so the launch total matches the thread backend's single
        shared instance.
        """
        with self._lock:
            self.messages += other.messages
            self.bytes += other.bytes
            for pair, nbytes in other.by_pair.items():
                self.by_pair[pair] = self.by_pair.get(pair, 0) + nbytes
            self.drops += other.drops
            self.corruptions += other.corruptions
            self.delays += other.delays
            self.retries += other.retries
            self.crashes += other.crashes
            self.respawns += other.respawns
            self.duplicates_suppressed += other.duplicates_suppressed
            self.heartbeats += other.heartbeats
            self.suspicions += other.suspicions
            self.confirmed_losses += other.confirmed_losses
            self.stale_rejected += other.stale_rejected
            self.repartitions += other.repartitions
            self.rank_recoveries.extend(other.rank_recoveries)
            for rank, per in other.by_rank_faults.items():
                mine = self.by_rank_faults.setdefault(rank, {})
                for kind, n in per.items():
                    mine[kind] = mine.get(kind, 0) + n

    def record(self, src_world: int, dst_world: int, nbytes: int) -> None:
        with self._lock:
            self.messages += 1
            self.bytes += nbytes
            key = (src_world, dst_world)
            self.by_pair[key] = self.by_pair.get(key, 0) + nbytes

    def record_fault(self, kind: str, n: int = 1, rank: int | None = None) -> None:
        """Bump one of the fault counters (kind = attribute name).

        With ``rank``, the fault is additionally attributed to that
        world rank in :attr:`by_rank_faults`, so the supervisor can
        publish per-rank series at join time.
        """
        with self._lock:
            setattr(self, kind, getattr(self, kind) + n)
            if rank is not None:
                per = self.by_rank_faults.setdefault(rank, {})
                per[kind] = per.get(kind, 0) + n

    def publish(self, metrics=None) -> None:
        """Mirror this launch's counters into the metrics registry.

        Called by :func:`~repro.parallel.vmpi.runtime.run_spmd` at
        supervisor join — counters accumulate across launches, labeled
        fault series carry ``kind`` and (when attributed) ``rank``.
        """
        from repro.obs.metrics import registry

        reg = metrics if metrics is not None else registry()
        with self._lock:
            reg.counter("fabric.messages").inc(self.messages)
            reg.counter("fabric.bytes").inc(self.bytes)
            if self.heartbeats:
                reg.counter("fabric.heartbeats").inc(self.heartbeats)
            unattributed = {
                "drops": self.drops,
                "corruptions": self.corruptions,
                "delays": self.delays,
                "retries": self.retries,
                "crashes": self.crashes,
                "respawns": self.respawns,
                "duplicates_suppressed": self.duplicates_suppressed,
                "suspicions": self.suspicions,
                "confirmed_losses": self.confirmed_losses,
                "stale_rejected": self.stale_rejected,
                "repartitions": self.repartitions,
            }
            for rank, per in self.by_rank_faults.items():
                for kind, n in per.items():
                    reg.counter("fabric.faults", kind=kind, rank=rank).inc(n)
                    unattributed[kind] -= n
            for kind, n in unattributed.items():
                if n > 0:
                    reg.counter("fabric.faults", kind=kind, rank="?").inc(n)

    @property
    def faults(self) -> dict[str, int]:
        """The fault counters as a plain dict (for health reports)."""
        return {
            "drops": self.drops,
            "corruptions": self.corruptions,
            "delays": self.delays,
            "retries": self.retries,
            "crashes": self.crashes,
            "respawns": self.respawns,
            "duplicates_suppressed": self.duplicates_suppressed,
            "suspicions": self.suspicions,
            "confirmed_losses": self.confirmed_losses,
            "stale_rejected": self.stale_rejected,
            "repartitions": self.repartitions,
        }

    @property
    def total_faults(self) -> int:
        return self.drops + self.corruptions + self.delays + self.crashes


class Fabric:
    """Shared logged-mailbox router for one SPMD launch."""

    def __init__(
        self,
        n_ranks: int,
        timeout: float = DEFAULT_TIMEOUT,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if n_ranks < 1:
            raise ValueError("n_ranks must be >= 1")
        self.n_ranks = n_ranks
        self.timeout = timeout
        self.fault_plan = fault_plan
        self.stats = CommStats()
        # per-key message log + cursors (see module docstring).
        self._logs: dict[tuple, list] = defaultdict(list)
        self._consumed: dict[tuple, int] = defaultdict(int)
        #: per-key failed attempts on the current head message.
        self._attempts: dict[tuple, int] = defaultdict(int)
        #: world (src, dst) of each key — each key has exactly one
        #: sender and one receiver, which is what makes replay local.
        self._key_world: dict[tuple, tuple[int, int]] = {}
        #: replay dedup: posts remaining to suppress per key.
        self._suppress: dict[tuple, int] = defaultdict(int)
        self._dead: set[int] = set()
        #: latest control-plane checkpoint per world rank (elastic
        #: repartitioning resumes from these instead of the log).
        self._checkpoints: dict[int, tuple[int, object]] = {}
        self._cond = threading.Condition()
        self._aborted: BaseException | None = None

    @property
    def retry_policy(self) -> RetryPolicy:
        if self.fault_plan is not None:
            return self.fault_plan.retry
        return RetryPolicy()

    # ------------------------------------------------------------------
    def post(
        self,
        comm_key: str,
        src: int,
        dst: int,
        tag: int,
        payload,
        *,
        src_world: int,
        dst_world: int,
    ) -> None:
        """Append a message to its key's log (called by the sender)."""
        key = (comm_key, src, dst, tag)
        with self._cond:
            self._key_world.setdefault(key, (src_world, dst_world))
            if self._suppress[key] > 0:
                # replaying rank re-sent a message its predecessor
                # already delivered: suppress (receivers saw it).
                self._suppress[key] -= 1
                self.stats.record_fault("duplicates_suppressed", rank=src_world)
                return
            self._logs[key].append(payload)
            self._cond.notify_all()
        self.stats.record(src_world, dst_world, payload_bytes(payload))

    def wait(self, comm_key: str, src: int, dst: int, tag: int):
        """One delivery *attempt* for the next message on the key.

        Blocks until a message is available (FIFO per key), then asks
        the fault plan to classify the attempt:

        * DELIVER — consume and return the payload;
        * DELAY — sleep ``delay_seconds`` then deliver;
        * DROP — raise :class:`MessageDropped` (transient; the caller
          retries with backoff and the message stays logged);
        * CORRUPT — raise :class:`MessageCorrupted` (the payload failed
          its integrity check; retransmission re-reads the log).
        """
        key = (comm_key, src, dst, tag)
        delay = 0.0
        with self._cond:
            ok = self._cond.wait_for(
                lambda: self._aborted is not None
                or self._consumed[key] < len(self._logs[key]),
                timeout=self.timeout,
            )
            if self._aborted is not None:
                raise DeadlockError(
                    f"peer rank failed: {self._aborted!r}"
                ) from self._aborted
            if not ok:
                raise DeadlockError(
                    f"recv timed out after {self.timeout}s waiting for "
                    f"(comm={comm_key!r}, src={src}, dst={dst}, tag={tag})"
                )
            seq = self._consumed[key]
            payload = self._logs[key][seq]
            if self.fault_plan is not None:
                dst_w = self._key_world.get(key, (None, None))[1]
                action = self.fault_plan.decide(key, seq, self._attempts[key])
                if action == FaultAction.DROP:
                    self._attempts[key] += 1
                    self.stats.record_fault("drops", rank=dst_w)
                    raise MessageDropped(f"dropped {key} seq {seq}")
                if action == FaultAction.CORRUPT:
                    self._attempts[key] += 1
                    self.stats.record_fault("corruptions", rank=dst_w)
                    raise MessageCorrupted(f"corrupted {key} seq {seq}")
                if action == FaultAction.DELAY:
                    self.stats.record_fault("delays", rank=dst_w)
                    delay = self.fault_plan.delay_seconds
            self._consumed[key] = seq + 1
            self._attempts[key] = 0
        if delay > 0.0:
            time.sleep(delay)
        return payload

    # ------------------------------------------------------------------
    # control plane: per-rank checkpoints (elastic repartitioning)
    # ------------------------------------------------------------------
    def post_checkpoint(self, world_rank: int, tag: int, payload) -> None:
        """Record ``world_rank``'s latest checkpoint (control plane).

        Checkpoints are *not* messages: they are never counted in the
        traffic stats, never replayed, and never delivered to peers.
        The supervisor hands the most recent one per surviving rank to
        the caller when a rank is permanently lost
        (:class:`~repro.exceptions.RankLostError`), so elastic
        repartitioning resumes from checkpointed state instead of
        replaying the whole message log.
        """
        with self._cond:
            self._checkpoints[world_rank] = (tag, payload)

    def collect_checkpoints(self) -> dict[int, object]:
        """Latest checkpoint payload per rank (supervisor side)."""
        with self._cond:
            return {rank: payload for rank, (_tag, payload) in self._checkpoints.items()}

    # ------------------------------------------------------------------
    # failure detection and recovery
    # ------------------------------------------------------------------
    def mark_dead(self, world_rank: int) -> None:
        """Failure detector input: ``world_rank``'s thread has died."""
        with self._cond:
            self._dead.add(world_rank)
            self._cond.notify_all()
        self.stats.record_fault("crashes", rank=world_rank)

    def is_dead(self, world_rank: int) -> bool:
        with self._cond:
            return world_rank in self._dead

    def begin_replay(self, world_rank: int) -> None:
        """Arm deterministic replay for a respawned ``world_rank``.

        Rewinds the dead rank's receive cursors to the start of every
        log it consumes from, and arms sender-side dedup so the posts
        its replacement re-issues (up to the predecessor's progress) are
        suppressed rather than duplicated.  Peers are untouched: they
        keep their cursors and simply resume receiving once the
        replacement advances past the crash point.
        """
        with self._cond:
            self._dead.discard(world_rank)
            for key, (src_w, dst_w) in self._key_world.items():
                if dst_w == world_rank:
                    self._consumed[key] = 0
                    self._attempts[key] = 0
                if src_w == world_rank:
                    self._suppress[key] = len(self._logs[key])
            self._cond.notify_all()
        self.stats.record_fault("respawns", rank=world_rank)

    def abort(self, exc: BaseException) -> None:
        """Wake all waiting ranks after a rank died (deadlock prevention)."""
        with self._cond:
            if self._aborted is None:
                self._aborted = exc
            self._cond.notify_all()
