"""SPMD launcher: run the same function on p virtual ranks (threads).

``run_spmd(fn, p)`` is the moral equivalent of ``mpiexec -n p``.  Each
rank thread gets a :class:`Communicator` for the world group; the
caller gets every rank's return value plus the fabric's traffic
statistics.  A rank that raises aborts the whole launch (waking any
rank blocked in ``recv``) and re-raises in the caller.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.parallel.vmpi.communicator import Communicator
from repro.parallel.vmpi.fabric import CommStats, Fabric
from repro.util.flops import current_counter

__all__ = ["run_spmd"]


def run_spmd(
    fn: Callable[..., Any],
    n_ranks: int,
    *args,
    timeout: float = 120.0,
    **kwargs,
) -> tuple[list[Any], CommStats]:
    """Execute ``fn(comm, *args, **kwargs)`` on ``n_ranks`` virtual ranks.

    Parameters
    ----------
    fn:
        SPMD function; its first argument is the world
        :class:`Communicator`.
    n_ranks:
        Number of virtual ranks (threads).
    timeout:
        Per-receive deadlock timeout in seconds.

    Returns
    -------
    (results, stats):
        ``results[r]`` is rank r's return value; ``stats`` holds the
        fabric's message/byte counters for the whole launch.
    """
    fabric = Fabric(n_ranks, timeout=timeout)
    results: list[Any] = [None] * n_ranks
    errors: list[tuple[int, BaseException]] = []
    counter = current_counter()  # charge rank work to the caller's counter

    def worker(rank: int) -> None:
        comm = Communicator(fabric, "world", rank, list(range(n_ranks)))
        if counter is not None:
            counter.attach()
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - must abort peers
            errors.append((rank, exc))
            fabric.abort(exc)
        finally:
            if counter is not None:
                counter.detach()

    threads = [
        threading.Thread(target=worker, args=(r,), name=f"vmpi-rank-{r}")
        for r in range(n_ranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    if errors:
        rank, exc = min(errors, key=lambda e: e[0])
        raise RuntimeError(f"virtual rank {rank} failed: {exc!r}") from exc
    return results, fabric.stats
