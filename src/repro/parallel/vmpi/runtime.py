"""SPMD launcher: run the same function on p virtual ranks.

``run_spmd(fn, p)`` is the moral equivalent of ``mpiexec -n p``.  Each
rank gets a :class:`Communicator` for the world group; the caller gets
every rank's return value plus the fabric's traffic statistics.  A
rank that raises aborts the whole launch (waking any rank blocked in
``recv``) and re-raises in the caller.

Three backends share this entry point (docs/PARALLELISM.md):

* ``backend="thread"`` (default) — ranks are threads over the shared
  logged-mailbox :class:`~repro.parallel.vmpi.fabric.Fabric`.
  Zero-copy, single-process, fully debuggable; but the GIL serializes
  everything that is not inside BLAS.
* ``backend="process"`` — ranks are ``multiprocessing`` workers over a
  queue-routed fabric with shared-memory payload transport
  (:mod:`repro.parallel.vmpi.process`): true multi-core execution with
  bitwise-identical results.  Requires ``fn`` and its arguments to be
  picklable.
* ``backend="socket"`` — ranks are spawned workers speaking TCP frames
  to a supervisor router (:mod:`repro.parallel.vmpi.sockets`): the
  same pickle-5 envelopes (shared memory for co-hosted ranks, inline
  over the wire for remote ones), plus heartbeat failure detection and
  elastic membership — the only backend that can recover a *hang*.

``backend=None`` resolves from the ``REPRO_VMPI_BACKEND`` environment
variable, defaulting to ``thread``.

**Fault tolerance.**  With a :class:`~repro.parallel.vmpi.faults.FaultPlan`
(passed explicitly or installed from the ``REPRO_FAULT_RATE``
environment by the CI chaos job), the launcher becomes a supervisor:

* message drops/corruptions/delays are absorbed by the communicator's
  retransmission loop — nothing to do here;
* an injected **rank crash** (:class:`~repro.exceptions.RankCrashError`)
  is detected when the victim's thread exits.  Instead of aborting, the
  supervisor re-routes the dead subtree owner's work to its *sibling
  host* (rank ``r ^ 1``'s side of the tree): a replacement worker for
  rank ``r`` is spawned against the fabric's message log
  (:meth:`~repro.parallel.vmpi.fabric.Fabric.begin_replay`).  Because
  skeletons and kernel blocks are checkpointed in the shared
  :class:`~repro.hmatrix.hmatrix.HMatrix`, the replacement re-derives
  the dead rank's factors without re-skeletonizing, replays the
  messages its predecessor consumed, and its duplicate re-sends are
  suppressed — so peers blocked mid-collective simply resume.

Recovery events are recorded in ``stats.rank_recoveries`` so
:class:`~repro.solvers.recovery.SolverHealth` can enumerate them.
"""

from __future__ import annotations

import os
import queue
import threading
from typing import Any, Callable

from repro.exceptions import ConfigurationError, RankCrashError, RankLostError
from repro.parallel.vmpi.communicator import Communicator
from repro.parallel.vmpi.fabric import CommStats, Fabric
from repro.parallel.vmpi.faults import FaultPlan, plan_from_env
from repro.util.flops import current_counter

__all__ = ["run_spmd", "resolve_backend", "BACKENDS"]

#: execution backends for :func:`run_spmd`.
BACKENDS = ("thread", "process", "socket")

#: environment override for the default backend.
ENV_BACKEND = "REPRO_VMPI_BACKEND"


def resolve_backend(backend: str | None = None) -> str:
    """Resolve the execution backend.

    Explicit ``backend`` wins (an unknown value is a
    :class:`~repro.exceptions.ConfigurationError`); ``None`` consults
    ``REPRO_VMPI_BACKEND`` — where an unknown value only warns (an env
    typo must not take a solve down) and falls back to ``thread``.
    """
    if backend is None:
        raw = os.environ.get(ENV_BACKEND, "").strip()
        if not raw:
            return "thread"
        if raw not in BACKENDS:
            from repro.obs.logadapter import emit_warning

            emit_warning(
                f"env.{ENV_BACKEND}",
                f"ignoring unknown {ENV_BACKEND}={raw!r} "
                f"(expected one of {BACKENDS}); using 'thread'",
            )
            return "thread"
        return raw
    if backend not in BACKENDS:
        raise ConfigurationError(
            f"backend must be one of {BACKENDS}; got {backend!r}"
        )
    return backend


def run_spmd(
    fn: Callable[..., Any],
    n_ranks: int,
    *args,
    timeout: float = 120.0,
    fault_plan: FaultPlan | None = None,
    max_respawns: int = 2,
    backend: str | None = None,
    elastic: bool = False,
    hosts: list[str] | None = None,
    heartbeat=None,
    **kwargs,
) -> tuple[list[Any], CommStats]:
    """Execute ``fn(comm, *args, **kwargs)`` on ``n_ranks`` virtual ranks.

    Parameters
    ----------
    fn:
        SPMD function; its first argument is the world
        :class:`Communicator`.
    n_ranks:
        Number of virtual ranks.
    timeout:
        Per-receive deadlock timeout in seconds.
    fault_plan:
        Chaos schedule (drop/corrupt/delay/crash).  ``None`` checks the
        ``REPRO_FAULT_RATE`` environment (the CI chaos job) and runs
        fault-free if that is unset too.
    max_respawns:
        Per-rank budget of crash recoveries before the launch aborts.
    backend:
        ``"thread"`` (default), ``"process"``, ``"socket"``, or ``None``
        to consult ``REPRO_VMPI_BACKEND``.  All backends produce
        bitwise-identical results; process and socket additionally
        require ``fn`` and its arguments to be picklable (module-level
        functions).
    elastic:
        When True, a rank that is *permanently* lost (crash with the
        respawn budget exhausted, or — socket backend — a
        heartbeat-confirmed hang) raises
        :class:`~repro.exceptions.RankLostError` carrying the
        survivors' latest ``Communicator.checkpoint`` payloads, so the
        caller can repartition the lost work instead of failing.
    hosts / heartbeat:
        Socket-backend only: round-robin rank→host assignment and
        failure-detector timing (see
        :mod:`repro.parallel.vmpi.membership`).  Ignored by the other
        backends.

    Returns
    -------
    (results, stats):
        ``results[r]`` is rank r's return value; ``stats`` holds the
        fabric's message/byte/fault counters for the whole launch, plus
        ``stats.rank_recoveries`` — one dict per crash recovery.
    """
    from repro.resilience.deadline import current_deadline, deadline_scope

    if fault_plan is None:
        fault_plan = plan_from_env()
    resolved = resolve_backend(backend)
    if resolved == "process":
        from repro.parallel.vmpi.process import run_spmd_processes

        return run_spmd_processes(
            fn,
            n_ranks,
            *args,
            timeout=timeout,
            fault_plan=fault_plan,
            max_respawns=max_respawns,
            elastic=elastic,
            **kwargs,
        )
    if resolved == "socket":
        from repro.parallel.vmpi.sockets import run_spmd_sockets

        return run_spmd_sockets(
            fn,
            n_ranks,
            *args,
            timeout=timeout,
            fault_plan=fault_plan,
            max_respawns=max_respawns,
            elastic=elastic,
            hosts=hosts,
            heartbeat=heartbeat,
            **kwargs,
        )
    dl = current_deadline()  # contextvars do not cross thread spawns
    if dl is not None and dl.seconds is not None:
        # a hung receive should not outlive the caller's deadline
        timeout = min(timeout, dl.remaining() + 5.0)
    fabric = Fabric(n_ranks, timeout=timeout, fault_plan=fault_plan)
    results: list[Any] = [None] * n_ranks
    errors: list[tuple[int, BaseException]] = []
    counter = current_counter()  # charge rank work to the caller's counter
    done: "queue.Queue[tuple[int, str, BaseException | None]]" = queue.Queue()

    def worker(rank: int) -> None:
        comm = Communicator(fabric, "world", rank, list(range(n_ranks)))
        if counter is not None:
            counter.attach()
        try:
            with deadline_scope(dl):
                results[rank] = fn(comm, *args, **kwargs)
        except RankCrashError as exc:
            # injected crash: report to the supervisor, do NOT abort —
            # peers stay blocked until the replacement catches up.
            done.put((rank, "crashed", exc))
            return
        except BaseException as exc:  # noqa: BLE001 - must abort peers
            errors.append((rank, exc))
            fabric.abort(exc)
            done.put((rank, "failed", exc))
            return
        finally:
            if counter is not None:
                counter.detach()
        done.put((rank, "ok", None))

    def spawn(rank: int, generation: int) -> threading.Thread:
        name = (
            f"vmpi-rank-{rank}"
            if generation == 0
            else f"vmpi-rank-{rank}-adopted-by-{rank ^ 1}-gen{generation}"
        )
        t = threading.Thread(target=worker, args=(rank,), name=name)
        t.start()
        return t

    respawn_counts = [0] * n_ranks
    recoveries: list[dict] = []
    lost_rank: int | None = None
    for r in range(n_ranks):
        spawn(r, 0)

    finished = 0
    while finished < n_ranks:
        rank, outcome, exc = done.get()
        if outcome == "crashed":
            fabric.mark_dead(rank)
            if respawn_counts[rank] < max_respawns:
                respawn_counts[rank] += 1
                sibling = rank ^ 1 if n_ranks > 1 else rank
                recoveries.append(
                    {
                        "stage": "rank_respawn",
                        "rank": rank,
                        "adopted_by": sibling,
                        "generation": respawn_counts[rank],
                        "error": repr(exc),
                    }
                )
                fabric.begin_replay(rank)
                spawn(rank, respawn_counts[rank])
                continue
            # budget exhausted: permanent loss (elastic) or fatal.
            if elastic and lost_rank is None:
                lost_rank = rank
                fabric.stats.record_fault("confirmed_losses", rank=rank)
                recoveries.append(
                    {
                        "stage": "rank_lost",
                        "rank": rank,
                        "epoch": 1,
                        "error": repr(exc),
                    }
                )
            else:
                errors.append((rank, exc))
            fabric.abort(exc)
        finished += 1

    stats = fabric.stats
    stats.rank_recoveries.extend(recoveries)
    stats.publish()
    if lost_rank is not None:
        checkpoints = {
            r: p
            for r, p in fabric.collect_checkpoints().items()
            if r != lost_rank
        }
        raise RankLostError(
            f"virtual rank {lost_rank} permanently lost; "
            f"{len(checkpoints)} survivor checkpoint(s) available for "
            "repartitioning",
            rank=lost_rank,
            epoch=1,
            checkpoints=checkpoints,
            stats=stats,
        )
    if errors:
        rank, exc = min(errors, key=lambda e: e[0])
        raise RuntimeError(f"virtual rank {rank} failed: {exc!r}") from exc
    return results, stats
