"""Socket-transport SPMD execution: ranks over TCP with heartbeats.

Third fabric backend (after threads and ``multiprocessing`` queues):
each virtual rank is still a spawned worker process, but every frame —
posts, checkpoints, heartbeats, status reports — travels over one TCP
connection per rank to a supervisor-side router.  The payloads are the
same pickle-5 envelopes the process backend ships
(:mod:`repro.parallel.vmpi.shm`): buffers ride shared memory when the
rank shares the supervisor's host and go inline over the wire when its
assigned host is remote, so a single code path covers both the
multi-core-one-box and the multi-box deployment shapes.

Topology::

    rank process --TCP frames--> supervisor
        ("hello", rank, generation)     registration / replay trigger
        ("post", key..., envelope)      data plane (logged + routed)
        ("ckpt", rank, tag, payload)    control plane (latest kept)
        ("hb", rank)                    heartbeat
        ("status", rank, ...)           terminal report
    supervisor --TCP frames--> rank process
        ("msg", key, envelope)          routed delivery
        ("abort", err)                  peer failed; unwind

The supervisor keeps the same pessimistic message log as the other two
backends (append every post, forward to the destination's connection,
sender-side dedup on replay), so the seeded
:class:`~repro.parallel.vmpi.faults.FaultPlan` classifies identical
``(key, seq, attempt)`` tuples and chaos schedules are *identical*
across thread/process/socket — the backend-parity suite asserts
bitwise-equal results, faults included.

What sockets add over the process backend is an **elastic membership
layer** (:mod:`repro.parallel.vmpi.membership`):

* every rank heartbeats; a supervisor-side failure detector promotes
  silence to *suspected* and then *confirmed dead* — catching hangs
  and partitions that never report a crash (the process backend can
  only see exit codes);
* a confirmed death first tries the usual log-replay respawn; when the
  respawn budget is exhausted and the launch is *elastic*, the rank is
  declared permanently lost: the membership epoch is bumped, frames
  from the dead generation are rejected as stale (zombie protection),
  survivors are unwound, and :class:`~repro.exceptions.RankLostError`
  carries the survivors' latest control-plane checkpoints out to the
  caller — which repartitions the lost subtree onto the survivors and
  resumes from checkpointed state instead of replaying the world
  (see ``distributed_factorize(elastic=True)``).

TCP ordering is load-bearing: one connection per rank means a rank's
status frame is ordered after every post it made, so replay arming
needs no sync sentinel, and a survivor's checkpoint is always routed
before its terminal status.

Remote hosts: ``hosts=[...]`` (or ``REPRO_VMPI_HOSTS``) assigns ranks
round-robin.  Workers are always *spawned* locally — this repo has no
launcher agent — but a rank assigned a non-local host honestly uses
the remote transport shape: all-inline envelopes, nothing through
shared memory.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import queue
import socket
import struct
import threading
import time
from collections import defaultdict, deque

from repro.exceptions import ConfigurationError, DeadlockError, RankLostError
from repro.parallel.vmpi import shm
from repro.parallel.vmpi.communicator import Communicator
from repro.parallel.vmpi.fabric import CommStats, payload_bytes
from repro.parallel.vmpi.faults import (
    FaultAction,
    FaultPlan,
    MessageCorrupted,
    MessageDropped,
    RetryPolicy,
)
from repro.parallel.vmpi.membership import (
    DEAD,
    SUSPECTED,
    FailureDetector,
    HeartbeatConfig,
    Membership,
    heartbeat_config_from_env,
    hosts_from_env,
    port_from_env,
)
from repro.parallel.vmpi.process import (
    _ABORT_GRACE,
    _DEATH_GRACE,
    _resolve_start_method,
)

__all__ = ["SocketRankFabric", "run_spmd_sockets"]

_HDR = struct.Struct("!Q")

#: threshold that forces every envelope buffer inline (remote hosts
#: cannot attach the supervisor's shared-memory segments).
_INLINE = 1 << 62

#: how long the supervisor lingers after an elastic hang-loss for the
#: zombie's stale frames (exercises epoch rejection deterministically).
_ZOMBIE_LINGER = 3.0

#: hostnames that resolve to the supervisor's own machine.
_LOCAL_HOSTS = frozenset({"localhost", "127.0.0.1", "::1"})


def _is_local_host(host: str) -> bool:
    return host in _LOCAL_HOSTS or host == socket.gethostname()


def _send_frame(sock: socket.socket, lock: threading.Lock, frame) -> None:
    data = pickle.dumps(frame, protocol=pickle.HIGHEST_PROTOCOL)
    with lock:
        sock.sendall(_HDR.pack(len(data)) + data)


class _FrameReader:
    """Buffered length-prefixed frame reads off one socket."""

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._buf = bytearray()

    def read(self, timeout: float | None):
        """Next frame; ``None`` on timeout; ConnectionError on EOF."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if len(self._buf) >= _HDR.size:
                (n,) = _HDR.unpack(bytes(self._buf[: _HDR.size]))
                if len(self._buf) >= _HDR.size + n:
                    data = bytes(self._buf[_HDR.size : _HDR.size + n])
                    del self._buf[: _HDR.size + n]
                    return pickle.loads(data)
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
            try:
                self._sock.settimeout(remaining)
                chunk = self._sock.recv(1 << 20)
            except socket.timeout:
                return None
            except OSError as exc:
                raise ConnectionError(f"socket read failed: {exc!r}") from exc
            if not chunk:
                raise ConnectionError("peer closed the connection")
            self._buf.extend(chunk)


class SocketRankFabric:
    """Rank-process side of the fabric over one TCP connection.

    The socket twin of
    :class:`~repro.parallel.vmpi.process.ProcessRankFabric`: posts are
    frames written to the supervisor, receives drain routed ``msg``
    frames off the same socket, and cursors / attempt counters / fault
    classification are rank-local — ``FaultPlan.decide`` is a pure
    hash, so the chaos schedule matches the other backends exactly.
    """

    def __init__(
        self,
        world_rank: int,
        sock: socket.socket,
        write_lock: threading.Lock,
        timeout: float,
        fault_plan: FaultPlan | None,
        inline_only: bool = False,
    ) -> None:
        self.fault_plan = fault_plan
        self.timeout = timeout
        self.stats = CommStats()
        self._rank = world_rank
        self._sock = sock
        self._wlock = write_lock
        self._reader = _FrameReader(sock)
        self._threshold = _INLINE if inline_only else None
        self._pending: dict[tuple, deque] = defaultdict(deque)
        self._consumed: dict[tuple, int] = defaultdict(int)
        self._attempts: dict[tuple, int] = defaultdict(int)
        self._aborted = None

    @property
    def retry_policy(self) -> RetryPolicy:
        if self.fault_plan is not None:
            return self.fault_plan.retry
        return RetryPolicy()

    def _pack(self, payload):
        if self._threshold is None:
            return shm.pack(payload)
        return shm.pack(payload, threshold=self._threshold)

    def post(
        self,
        comm_key: str,
        src: int,
        dst: int,
        tag: int,
        payload,
        *,
        src_world: int,
        dst_world: int,
    ) -> None:
        env = self._pack(payload)
        _send_frame(
            self._sock,
            self._wlock,
            (
                "post",
                comm_key,
                src,
                dst,
                tag,
                src_world,
                dst_world,
                env,
                payload_bytes(payload),
            ),
        )

    def post_checkpoint(self, world_rank: int, tag: int, payload) -> None:
        """Control plane: latest-wins checkpoint, held by the supervisor.

        Always inline (never shared memory): a checkpoint must outlive
        the rank that posted it.  Uncounted and unlogged, like the
        thread fabric's — cannot perturb chaos schedules or parity.
        """
        _send_frame(self._sock, self._wlock, ("ckpt", world_rank, tag, payload))

    def wait(self, comm_key: str, src: int, dst: int, tag: int):
        """One delivery attempt — the mirror of ``Fabric.wait``."""
        key = (comm_key, src, dst, tag)
        pending = self._pending[key]
        deadline = time.monotonic() + self.timeout
        while not pending:
            if self._aborted is not None:
                raise DeadlockError(f"peer rank failed: {self._aborted}")
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlockError(
                    f"recv timed out after {self.timeout}s waiting for "
                    f"(comm={comm_key!r}, src={src}, dst={dst}, tag={tag})"
                )
            try:
                frame = self._reader.read(min(remaining, 0.5))
            except ConnectionError as exc:
                raise DeadlockError(f"lost the supervisor link: {exc}") from exc
            if frame is None:
                continue
            if frame[0] == "abort":
                self._aborted = frame[1]
                continue
            _, mkey, env = frame
            self._pending[mkey].append(env)
        seq = self._consumed[key]
        delay = 0.0
        if self.fault_plan is not None:
            action = self.fault_plan.decide(key, seq, self._attempts[key])
            if action == FaultAction.DROP:
                self._attempts[key] += 1
                self.stats.record_fault("drops", rank=self._rank)
                raise MessageDropped(f"dropped {key} seq {seq}")
            if action == FaultAction.CORRUPT:
                self._attempts[key] += 1
                self.stats.record_fault("corruptions", rank=self._rank)
                raise MessageCorrupted(f"corrupted {key} seq {seq}")
            if action == FaultAction.DELAY:
                self.stats.record_fault("delays", rank=self._rank)
                delay = self.fault_plan.delay_seconds
        env = pending.popleft()
        self._consumed[key] = seq + 1
        self._attempts[key] = 0
        if delay > 0.0:
            time.sleep(delay)
        # no unlink: the supervisor's log owns any shm segments.
        return shm.unpack(env)


def _socket_worker_main(
    world_rank: int,
    generation: int,
    n_ranks: int,
    addr: tuple,
    prog_env: dict,
    timeout: float,
    fault_plan: FaultPlan | None,
    disarm_crash: bool,
    deadline_s: float | None,
    hb_interval: float,
    inline_only: bool,
) -> None:
    """Rank-process entry point (module-level: spawn must pickle it)."""
    from repro.exceptions import RankCrashError, RankHangError
    from repro.obs.metrics import registry
    from repro.resilience.deadline import Deadline, deadline_scope
    from repro.util.flops import FlopCounter

    if fault_plan is not None and disarm_crash:
        fault_plan.disarm_crash()
    sock = socket.create_connection(addr, timeout=30.0)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    wlock = threading.Lock()
    _send_frame(sock, wlock, ("hello", world_rank, generation))

    hb_stop = threading.Event()

    def _beat() -> None:
        while not hb_stop.wait(hb_interval):
            try:
                _send_frame(sock, wlock, ("hb", world_rank))
            except OSError:
                return

    hb_thread = threading.Thread(
        target=_beat, name=f"vmpi-hb-{world_rank}", daemon=True
    )
    hb_thread.start()

    fabric = SocketRankFabric(
        world_rank, sock, wlock, timeout, fault_plan, inline_only=inline_only
    )
    counter = FlopCounter()
    status, err, result_env, hung = "ok", None, None, False
    try:
        fn, args, kwargs = shm.unpack(prog_env)
        comm = Communicator(fabric, "world", world_rank, list(range(n_ranks)))
        dl = Deadline(deadline_s) if deadline_s is not None else None
        counter.attach()
        try:
            with deadline_scope(dl):
                result = fn(comm, *args, **kwargs)
        finally:
            counter.detach()
        result_env = fabric._pack(result)
    except RankCrashError as exc:
        status, err = "crashed", repr(exc)
    except RankHangError as exc:
        # A hang is reported to NOBODY: stop beating, go silent, and
        # (if the plan says so) wake up later as a zombie whose frames
        # the supervisor must reject as stale.
        hung = True
        status, err = "failed", repr(exc)
    except BaseException as exc:  # noqa: BLE001 - reported to supervisor
        status, err = "failed", repr(exc)
    telemetry = {
        "stats": fabric.stats,
        "metrics": registry().snapshot(),
        "flops": {
            "flops": counter.flops,
            "mops": counter.mops,
            "kernel_evals": counter.kernel_evals,
            "by_label": dict(counter.by_label),
        },
    }
    if hung:
        hb_stop.set()
        wedge = fault_plan.hang_seconds if fault_plan is not None else 3600.0
        time.sleep(wedge)
        try:
            # the zombie probe: by now the supervisor has (or should
            # have) retired this generation — these must be rejected.
            _send_frame(sock, wlock, ("hb", world_rank))
            _send_frame(
                sock,
                wlock,
                ("status", world_rank, status, err, None, telemetry),
            )
        except OSError:
            pass
        return
    hb_stop.set()
    # same-connection FIFO orders this after every post we made, so the
    # supervisor needs no sync sentinel before arming replay.
    try:
        _send_frame(
            sock,
            wlock,
            ("status", world_rank, status, err, result_env, telemetry),
        )
    except OSError:
        if result_env is not None:
            shm.free(result_env)


class _Conn:
    """One registered rank connection: writer queue + reader thread."""

    def __init__(
        self, sock: socket.socket, reader: _FrameReader, rank: int, gen: int
    ) -> None:
        self.sock = sock
        self.reader = reader
        self.rank = rank
        self.gen = gen
        self.outbox: "queue.Queue" = queue.Queue()
        self._writer = threading.Thread(
            target=self._write_loop, name=f"vmpi-sock-tx-{rank}", daemon=True
        )
        self._wlock = threading.Lock()
        self._writer.start()

    def _write_loop(self) -> None:
        while True:
            frame = self.outbox.get()
            if frame is None:
                try:
                    self.sock.close()
                except OSError:  # pragma: no cover - already closed
                    pass
                return
            try:
                _send_frame(self.sock, self._wlock, frame)
            except OSError:
                return

    def send(self, frame) -> None:
        self.outbox.put(frame)

    def close(self) -> None:
        self.outbox.put(None)


def run_spmd_sockets(
    fn,
    n_ranks: int,
    *args,
    timeout: float = 120.0,
    fault_plan: FaultPlan | None = None,
    max_respawns: int = 2,
    elastic: bool = False,
    hosts: list[str] | None = None,
    heartbeat: HeartbeatConfig | None = None,
    start_method: str | None = None,
    **kwargs,
):
    """Socket-backend twin of :func:`repro.parallel.vmpi.run_spmd`.

    Same contract as the other backends — returns ``(results, stats)``,
    raises ``RuntimeError("virtual rank r failed: ...")`` on rank
    failure, recovers injected crashes by respawn-with-replay — plus
    the elastic extras:

    * ``elastic=True``: a rank that is permanently lost (crash with the
      respawn budget exhausted, or a heartbeat-confirmed hang) raises
      :class:`~repro.exceptions.RankLostError` carrying the survivors'
      latest checkpoints, instead of a bare RuntimeError;
    * ``hosts``: round-robin rank→host assignment (default: the
      ``REPRO_VMPI_HOSTS`` environment, else all-local).  Non-local
      ranks use all-inline envelopes (the remote transport shape);
    * ``heartbeat``: failure-detector timing (default: the
      ``REPRO_VMPI_HB_*`` environment knobs).
    """
    from repro.obs.metrics import registry
    from repro.resilience.deadline import current_deadline
    from repro.util.flops import current_counter

    ctx = mp.get_context(_resolve_start_method(start_method))
    hb = heartbeat if heartbeat is not None else heartbeat_config_from_env()
    if hosts is None:
        hosts = hosts_from_env()
    dl = current_deadline()
    deadline_s = None
    if dl is not None and dl.seconds is not None:
        deadline_s = dl.remaining()
        timeout = min(timeout, deadline_s + 5.0)

    def host_of(rank: int) -> str | None:
        if not hosts:
            return None
        return hosts[rank % len(hosts)]

    def is_remote(rank: int) -> bool:
        h = host_of(rank)
        return h is not None and not _is_local_host(h)

    any_remote = any(is_remote(r) for r in range(n_ranks))
    try:
        prog_env = shm.pack((fn, args, kwargs))
        prog_env_inline = (
            shm.pack((fn, args, kwargs), threshold=_INLINE) if any_remote else None
        )
    except Exception as exc:
        raise ConfigurationError(
            "the socket backend must pickle the SPMD function and its "
            "arguments for spawned ranks; use a module-level function "
            f"(closures/lambdas cannot cross processes): {exc!r}"
        ) from exc

    # the supervisor binds loopback: workers are spawned locally even
    # when assigned a remote host (no launcher agent in this repo) —
    # remote assignment changes the transport shape, not the placement.
    lsock = socket.create_server(("127.0.0.1", port_from_env()), backlog=2 * n_ranks)
    addr = lsock.getsockname()

    # -- supervisor-side router state ---------------------------------
    router_lock = threading.Lock()
    logs: dict[tuple, list] = defaultdict(list)
    key_world: dict[tuple, tuple[int, int]] = {}
    suppress: dict[tuple, int] = defaultdict(int)
    checkpoints: dict[int, object] = {}
    conns: dict[int, _Conn] = {}
    stats = CommStats()
    membership = Membership(list(range(n_ranks)))
    detector = FailureDetector(hb, [])
    detector_lock = threading.Lock()
    events: "queue.Queue" = queue.Queue()
    accept_stop = threading.Event()

    procs: list = [None] * n_ranks
    finished = [False] * n_ranks
    results: list = [None] * n_ranks
    errors: list[tuple[int, str]] = []
    respawn_counts = [0] * n_ranks
    recoveries: list[dict] = []
    telemetries: list[tuple[int, dict]] = []
    suspect_since: dict[int, float] = {}
    abort_deadline: float | None = None
    lost_rank: int | None = None
    lost_epoch = 0

    def _route(frame) -> None:
        _, comm_key, src, dst, tag, sw, dw, env, nbytes = frame
        key = (comm_key, src, dst, tag)
        with router_lock:
            key_world.setdefault(key, (sw, dw))
            if suppress[key] > 0:
                suppress[key] -= 1
                stats.record_fault("duplicates_suppressed", rank=sw)
                shm.free(env)
                return
            logs[key].append(env)
            stats.record(sw, dw, nbytes)
            conn = conns.get(dw)
            if conn is not None:
                conn.send(("msg", key, env))
            # conn is None while a respawn is pending: the message is
            # logged, and hello-time replay will deliver it in order.

    def _read_loop(conn: _Conn) -> None:
        while True:
            try:
                frame = conn.reader.read(None)
            except ConnectionError:
                with router_lock:
                    if conns.get(conn.rank) is conn:
                        conns.pop(conn.rank, None)
                events.put(("conn_lost", conn.rank, conn.gen))
                return
            kind = frame[0]
            with router_lock:
                stale = membership.is_stale(conn.rank, conn.gen)
            if stale:
                stats.record_fault("stale_rejected", rank=conn.rank)
                if kind == "post":
                    shm.free(frame[7])
                continue
            # any frame from a live generation proves liveness.
            with detector_lock:
                detector.beat(conn.rank)
            if kind == "hb":
                stats.record_fault("heartbeats")
            elif kind == "post":
                _route(frame)
            elif kind == "ckpt":
                _, rank, _tag, payload = frame
                with router_lock:
                    checkpoints[rank] = payload
            elif kind == "status":
                events.put(("status",) + tuple(frame[1:]))

    def _accept_loop() -> None:
        lsock.settimeout(0.2)
        while not accept_stop.is_set():
            try:
                s, _peer = lsock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            s.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            reader = _FrameReader(s)
            try:
                hello = reader.read(10.0)
            except ConnectionError:
                s.close()
                continue
            if not hello or hello[0] != "hello":
                s.close()
                continue
            _, rank, gen = hello
            conn = _Conn(s, reader, rank, gen)
            with router_lock:
                if membership.is_stale(rank, gen) or gen != membership.generation(rank):
                    # a zombie reconnect from a retired generation.
                    stats.record_fault("stale_rejected", rank=rank)
                    conn.close()
                    continue
                conns[rank] = conn
                if gen > 0:
                    # replay the rank's full receive history, in log
                    # order, before any new forwards (same lock).
                    for key, (_sw, dw) in key_world.items():
                        if dw == rank:
                            for env in logs[key]:
                                conn.send(("msg", key, env))
            with detector_lock:
                detector.resurrect(rank)
            threading.Thread(
                target=_read_loop,
                args=(conn,),
                name=f"vmpi-sock-rx-{rank}",
                daemon=True,
            ).start()

    def spawn(rank: int, generation: int) -> None:
        name = (
            f"vmpi-sock-rank-{rank}"
            if generation == 0
            else f"vmpi-sock-rank-{rank}-adopted-by-{rank ^ 1}-gen{generation}"
        )
        env = prog_env_inline if is_remote(rank) else prog_env
        p = ctx.Process(
            target=_socket_worker_main,
            args=(
                rank,
                generation,
                n_ranks,
                addr,
                env,
                timeout,
                fault_plan,
                generation > 0,
                deadline_s,
                hb.interval,
                is_remote(rank),
            ),
            name=name,
            daemon=True,
        )
        p.start()
        procs[rank] = p

    def broadcast_abort(err: str) -> None:
        nonlocal abort_deadline
        with router_lock:
            live = [conns.get(r) for r in range(n_ranks) if not finished[r]]
        for conn in live:
            if conn is not None:
                conn.send(("abort", err))
        if abort_deadline is None:
            abort_deadline = time.monotonic() + _ABORT_GRACE

    def handle_loss(rank: int, err: str) -> bool:
        """Crash/hang recovery; True when the rank is finished.

        Respawn-with-replay while the budget lasts; past it, either a
        fatal abort (classic) or a permanent loss carrying checkpoints
        out via RankLostError (elastic).
        """
        nonlocal lost_rank, lost_epoch
        stats.record_fault("crashes", rank=rank)
        if respawn_counts[rank] < max_respawns:
            respawn_counts[rank] += 1
            sibling = rank ^ 1 if n_ranks > 1 else rank
            recoveries.append(
                {
                    "stage": "rank_respawn",
                    "rank": rank,
                    "adopted_by": sibling,
                    "generation": respawn_counts[rank],
                    "error": err,
                }
            )
            with router_lock:
                old = conns.pop(rank, None)
                for key, (sw, _dw) in key_world.items():
                    if sw == rank:
                        suppress[key] = len(logs[key])
                gen = membership.respawn(rank)
            stats.record_fault("respawns", rank=rank)
            if old is not None:
                old.close()
            p = procs[rank]
            if p is not None and p.is_alive():
                p.terminate()  # a hung worker must not shadow its replacement
            spawn(rank, gen)
            return False
        with router_lock:
            epoch = membership.confirm_dead(rank)
            conns.pop(rank, None)
        stats.record_fault("confirmed_losses", rank=rank)
        if elastic:
            lost_rank, lost_epoch = rank, epoch
            recoveries.append(
                {
                    "stage": "rank_lost",
                    "rank": rank,
                    "epoch": epoch,
                    "error": err,
                }
            )
            broadcast_abort(f"rank {rank} permanently lost: {err}")
            return True
        errors.append((rank, err))
        broadcast_abort(err)
        return True

    accept_thread = threading.Thread(
        target=_accept_loop, name="vmpi-sock-accept", daemon=True
    )
    accept_thread.start()

    try:
        for r in range(n_ranks):
            spawn(r, 0)

        n_finished = 0
        while n_finished < n_ranks:
            with detector_lock:
                transitions = detector.poll()
            for rank, state in transitions:
                if finished[rank]:
                    continue
                if state == SUSPECTED:
                    stats.record_fault("suspicions", rank=rank)
                elif state == DEAD:
                    err = (
                        f"heartbeat failure: rank {rank} silent for more "
                        f"than {hb.confirm_after}s"
                    )
                    if handle_loss(rank, err):
                        finished[rank] = True
                        n_finished += 1
            try:
                ev = events.get(timeout=0.2)
            except queue.Empty:
                now = time.monotonic()
                for r in range(n_ranks):
                    p = procs[r]
                    if finished[r] or p is None or p.exitcode is None:
                        continue
                    # process gone; its status frame may still be in
                    # our reader's hands — grace window first.
                    first = suspect_since.setdefault(r, now)
                    if now - first < _DEATH_GRACE:
                        continue
                    suspect_since.pop(r, None)
                    err = f"rank process died (exitcode {p.exitcode})"
                    if handle_loss(r, err):
                        finished[r] = True
                        n_finished += 1
                if abort_deadline is not None and now > abort_deadline:
                    for r in range(n_ranks):
                        if not finished[r]:
                            if procs[r] is not None and procs[r].is_alive():
                                procs[r].terminate()
                            finished[r] = True
                            n_finished += 1
                continue
            if ev[0] == "conn_lost":
                # beats stop with the connection; the heartbeat detector
                # (or the exitcode poll) owns the verdict.
                continue
            _, rank, status, err, result_env, telemetry = ev
            if finished[rank]:  # pragma: no cover - late duplicate status
                continue
            suspect_since.pop(rank, None)
            telemetries.append((rank, telemetry))
            if status == "crashed":
                if not handle_loss(rank, err):
                    continue
            elif status == "failed":
                if lost_rank is None:
                    errors.append((rank, err))
                    broadcast_abort(err)
            else:
                results[rank] = shm.unpack(result_env, unlink=True)
            finished[rank] = True
            n_finished += 1
            with detector_lock:
                detector.mark_dead(rank)  # done ranks stop beating

        if lost_rank is not None:
            p = procs[lost_rank]
            plan = fault_plan
            if (
                p is not None
                and p.is_alive()
                and plan is not None
                and plan.hang_rank == lost_rank
                and plan.hang_seconds <= _ZOMBIE_LINGER
            ):
                # deterministic zombie-rejection coverage: the wedged
                # worker wakes shortly; wait (bounded) for its stale
                # frames to hit the router before tearing down.
                linger_until = time.monotonic() + _ZOMBIE_LINGER
                while (
                    stats.stale_rejected == 0
                    and p.is_alive()
                    and time.monotonic() < linger_until
                ):
                    time.sleep(0.05)
    finally:
        accept_stop.set()
        try:
            lsock.close()
        except OSError:  # pragma: no cover - teardown race
            pass
        with router_lock:
            live = list(conns.values())
            conns.clear()
        for conn in live:
            conn.close()
        # drain unread statuses so their result envelopes are freed.
        while True:
            try:
                ev = events.get_nowait()
            except queue.Empty:
                break
            if ev[0] == "status" and ev[4] is not None:
                shm.free(ev[4])
        with router_lock:
            for envs in logs.values():
                for env in envs:
                    shm.free(env)
            logs.clear()
        shm.free(prog_env)
        if prog_env_inline is not None:
            shm.free(prog_env_inline)
        for p in procs:
            if p is not None and p.is_alive():
                p.terminate()

    for _rank, telemetry in telemetries:
        stats.merge(telemetry["stats"])
    stats.rank_recoveries.extend(recoveries)
    stats.publish()

    reg = registry()
    counter = current_counter()
    for rank, telemetry in telemetries:
        reg.merge_snapshot(telemetry["metrics"], rank=str(rank))
        if counter is not None:
            f = telemetry["flops"]
            labeled = 0
            for label, n in f["by_label"].items():
                counter.add_flops(n, label)
                labeled += n
            counter.add_flops(f["flops"] - labeled)
            counter.add_mops(f["mops"])
            counter.add_kernel_evals(f["kernel_evals"])

    if lost_rank is not None:
        survivors = {
            r: p for r, p in checkpoints.items() if r != lost_rank
        }
        raise RankLostError(
            f"virtual rank {lost_rank} permanently lost "
            f"(epoch {lost_epoch}); {len(survivors)} survivor "
            "checkpoint(s) available for repartitioning",
            rank=lost_rank,
            epoch=lost_epoch,
            checkpoints=survivors,
            stats=stats,
        )
    if errors:
        rank, err = min(errors, key=lambda e: e[0])
        raise RuntimeError(f"virtual rank {rank} failed: {err}")
    return results, stats
