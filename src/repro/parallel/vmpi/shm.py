"""Shared-memory pickle envelopes for the process-backed vMPI fabric.

The process backend moves point coordinates, message payloads, and
factor payloads between rank processes.  Shipping a multi-megabyte
``ndarray`` through a ``multiprocessing.Queue`` pays a pickle of the
*data* through a pipe (a copy into the feeder thread, a copy through
the kernel, a copy out).  Instead we use pickle protocol 5's
out-of-band buffers: :func:`pack` pickles only the object *structure*
and diverts every large contiguous buffer (numpy array data, ``bytes``)
into a named ``multiprocessing.shared_memory`` segment, producing a
small **envelope** — the metadata pickle plus an ordered list of buffer
slots::

    {"data": <pickle-5 bytes>,
     "slots": [("shm", name, nbytes) | ("inline", bytes), ...]}

Buffers smaller than ``threshold`` stay inline (a shared-memory segment
costs a file descriptor and a syscall; tiny headers are cheaper in the
pipe).  :func:`unpack` re-attaches each segment, copies the bytes out,
and closes it immediately — receivers never hold segment handles, so
lifetime management stays with whoever calls :func:`free` (or passes
``unlink=True`` for single-consumer transfers).

Resource-tracker note: on the Pythons this repo supports (< 3.13,
no ``track=False``), *both* creating and attaching a segment registers
it with the ``multiprocessing.resource_tracker``, which unlinks
registered segments when the registering process exits.  A worker that
creates a result segment and exits before the supervisor reads it would
therefore have its segment reaped under the reader.  Worse, with the
spawn start method every rank shares the supervisor's tracker daemon,
so a child-create + supervisor-attach pair registers the *same* name
twice into the tracker's per-type set — and the second unregister makes
the daemon print a KeyError traceback.  We therefore suppress tracker
registration entirely (construction under :func:`_untracked`) and
manage segment lifetime explicitly: the router log owns message
segments, results/task payloads are unlinked by their single consumer,
and :func:`free` handles the rest.
"""

from __future__ import annotations

import pickle
import threading
from contextlib import contextmanager
from multiprocessing import resource_tracker, shared_memory

__all__ = ["pack", "unpack", "free", "segment_names", "DEFAULT_THRESHOLD"]

#: buffers at or above this many bytes go to shared memory (below: inline).
DEFAULT_THRESHOLD = 1 << 14

# SharedMemory construction must not reach the resource tracker (see
# module docstring); the patch is process-global, so serialize it across
# the supervisor's main and router threads.
_tracker_lock = threading.Lock()


@contextmanager
def _untracked():
    """Suppress resource-tracker traffic for SharedMemory calls.

    Covers both ``register`` (SharedMemory construction) and
    ``unregister`` (``SharedMemory.unlink`` calls it internally — an
    unregister for a name we never registered makes the tracker daemon
    print a KeyError traceback).

    Only the ``"shared_memory"`` resource type is suppressed: the patch
    is process-global, and a queue's SemLock finalizer running on
    another thread during this window must still reach the tracker —
    a swallowed semaphore ``unregister`` resurfaces at interpreter
    shutdown as a spurious "leaked semaphore objects" warning.
    """
    with _tracker_lock:
        orig_reg = resource_tracker.register
        orig_unreg = resource_tracker.unregister

        def reg(name, rtype):
            if rtype != "shared_memory":
                orig_reg(name, rtype)

        def unreg(name, rtype):
            if rtype != "shared_memory":
                orig_unreg(name, rtype)

        resource_tracker.register = reg
        resource_tracker.unregister = unreg
        try:
            yield
        finally:
            resource_tracker.register = orig_reg
            resource_tracker.unregister = orig_unreg


def pack(obj, threshold: int = DEFAULT_THRESHOLD) -> dict:
    """Serialize ``obj`` into a shared-memory envelope.

    Every pickle-5 out-of-band buffer of at least ``threshold`` bytes is
    copied into its own shared-memory segment; the envelope itself stays
    small enough to travel through a queue.  The caller owns the
    segments: pass the envelope to :func:`unpack` (``unlink=True`` for
    the last consumer) or :func:`free` it.
    """
    buffers: list[pickle.PickleBuffer] = []
    data = pickle.dumps(obj, protocol=5, buffer_callback=buffers.append)
    slots: list[tuple] = []
    try:
        for pb in buffers:
            mv = pb.raw()
            if mv.nbytes >= threshold and mv.nbytes > 0:
                with _untracked():
                    seg = shared_memory.SharedMemory(create=True, size=mv.nbytes)
                seg.buf[: mv.nbytes] = mv
                slots.append(("shm", seg.name, mv.nbytes))
                seg.close()
            else:
                slots.append(("inline", bytes(mv)))
    except BaseException:
        free({"data": b"", "slots": slots})
        raise
    return {"data": data, "slots": slots}


def unpack(env: dict, *, unlink: bool = False):
    """Rebuild the object from an envelope.

    Segment contents are copied out and the segments closed, so the
    returned object has no live dependency on shared memory.  With
    ``unlink=True`` (single-consumer transfers: results, executor task
    payloads) each segment is also removed from the system.
    """
    buffers: list[bytes] = []
    for slot in env["slots"]:
        if slot[0] == "inline":
            buffers.append(slot[1])
            continue
        _, name, nbytes = slot
        with _untracked():
            seg = shared_memory.SharedMemory(name=name)
        try:
            buffers.append(bytes(seg.buf[:nbytes]))
        finally:
            seg.close()
            if unlink:
                try:
                    with _untracked():
                        seg.unlink()
                except FileNotFoundError:  # pragma: no cover - already freed
                    pass
    return pickle.loads(env["data"], buffers=buffers)


def free(env: dict) -> None:
    """Unlink every segment of an envelope (idempotent)."""
    for slot in env["slots"]:
        if slot[0] != "shm":
            continue
        name = slot[1]
        try:
            with _untracked():
                seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        seg.close()
        try:
            with _untracked():
                seg.unlink()
        except FileNotFoundError:  # pragma: no cover - concurrent free
            pass


def segment_names(env: dict) -> list[str]:
    """Names of the shared-memory segments an envelope references."""
    return [slot[1] for slot in env["slots"] if slot[0] == "shm"]
