"""Process-backed SPMD execution: ranks as ``multiprocessing`` workers.

The thread backend (:mod:`repro.parallel.vmpi.runtime`) is the
debuggable default, but Python threads share the GIL, so the paper's
*parallel* factorization never uses more than one core there.  This
module runs each virtual rank as a real OS process (spawn-safe) while
preserving the thread fabric's semantics exactly — same message
ordering, same seeded fault classification, same logging/replay crash
recovery — so the two backends produce bitwise-identical factors and
solutions (the backend-parity suite asserts this, chaos included).

Topology::

    rank process --post--> [router_in mp.Queue] --> router thread
                                                     (supervisor)
    router thread --("msg", key, env)--> [per-rank inbox mp.Queue]

* **Router** (a supervisor-side thread) owns the *message log*: every
  post is appended to its key's log before being forwarded to the
  destination rank's inbox, and sender-side dedup (``suppress``) lives
  here too — the exact pessimistic message-logging protocol of
  :class:`~repro.parallel.vmpi.fabric.Fabric`, with the mailbox
  condition variable replaced by queues.
* **Rank proxy** (:class:`ProcessRankFabric`) implements the fabric
  interface (``post`` / ``wait`` / ``retry_policy`` / ``fault_plan`` /
  ``stats``) inside each rank process, so the unmodified
  :class:`~repro.parallel.vmpi.communicator.Communicator` runs over it.
  Receive cursors, attempt counters, and fault classification are
  receiver-local — ``FaultPlan.decide(key, seq, attempt)`` is a pure
  hash, so cross-process classification is identical to the shared-plan
  thread backend.
* **Payloads** travel as shared-memory envelopes
  (:mod:`repro.parallel.vmpi.shm`): pickle-5 metadata through the
  queue, large buffers (point coordinates, ``P^`` factors) through
  ``multiprocessing.shared_memory`` segments.  The SPMD program and its
  arguments are packed *once*; every rank attaches the same segments,
  so ``p`` ranks share one copy of the tree's point coordinates.

**Crash recovery.**  A rank that suffers an injected
:class:`~repro.exceptions.RankCrashError` flushes its queue feeder
(so every post it made is in the router's pipe), reports ``crashed``,
and exits.  The supervisor then pushes a **sync sentinel** through
``router_in`` — queue delivery is pipe-FIFO, so once the router has
seen the sentinel it has logged every message the victim sent — arms
sender dedup, swaps in a fresh inbox, **redelivers** the victim's
logged receive history into it, and spawns a replacement with a
crash-disarmed copy of the plan.  A process that dies without
reporting (hard kill) is treated the same way: a dead process can have
no posts still in flight behind the sentinel.  Per-rank telemetry
(fabric fault counters, metrics snapshots, flop totals) rides back on
the status queue and is merged at join.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import os
import queue
import threading
import time
from collections import defaultdict, deque

from repro.exceptions import ConfigurationError, DeadlockError
from repro.parallel.vmpi import shm
from repro.parallel.vmpi.communicator import Communicator
from repro.parallel.vmpi.fabric import CommStats, payload_bytes
from repro.parallel.vmpi.faults import (
    FaultAction,
    FaultPlan,
    MessageCorrupted,
    MessageDropped,
    RetryPolicy,
)

__all__ = ["ProcessRankFabric", "run_spmd_processes"]

_sync_tokens = itertools.count(1)

#: grace period between noticing a silently-dead process and declaring
#: it crashed (its final status message may still be in the pipe).
_DEATH_GRACE = 1.0

#: how long ranks get to notice an abort before being terminated.
_ABORT_GRACE = 15.0


class ProcessRankFabric:
    """Rank-process side of the fabric: queue transport + local cursors.

    Implements the interface :class:`Communicator` needs.  All mutable
    state is rank-local (one instance per rank process, used by one
    thread), which is what makes respawn recovery work with no cursor
    rewind: a replacement process starts with zeroed cursors and the
    router redelivers its full receive history.
    """

    def __init__(
        self,
        world_rank: int,
        router_in,
        inbox,
        timeout: float,
        fault_plan: FaultPlan | None,
    ) -> None:
        self.fault_plan = fault_plan
        self.timeout = timeout
        self.stats = CommStats()
        self._rank = world_rank
        self._router_in = router_in
        self._inbox = inbox
        self._pending: dict[tuple, deque] = defaultdict(deque)
        self._consumed: dict[tuple, int] = defaultdict(int)
        self._attempts: dict[tuple, int] = defaultdict(int)
        self._aborted = None

    @property
    def retry_policy(self) -> RetryPolicy:
        if self.fault_plan is not None:
            return self.fault_plan.retry
        return RetryPolicy()

    def post(
        self,
        comm_key: str,
        src: int,
        dst: int,
        tag: int,
        payload,
        *,
        src_world: int,
        dst_world: int,
    ) -> None:
        env = shm.pack(payload)
        self._router_in.put(
            (
                "post",
                comm_key,
                src,
                dst,
                tag,
                src_world,
                dst_world,
                env,
                payload_bytes(payload),
            )
        )

    def post_checkpoint(self, world_rank: int, tag: int, payload) -> None:
        """Control plane: latest-wins checkpoint, held by the router.

        Uncounted and unlogged (like the thread fabric's), so it cannot
        perturb chaos schedules or cross-backend traffic parity.  The
        payload travels pickled through the queue — a checkpoint must
        outlive the rank that posted it, so no shared memory.
        """
        self._router_in.put(("ckpt", world_rank, tag, payload))

    def wait(self, comm_key: str, src: int, dst: int, tag: int):
        """One delivery attempt — the mirror of ``Fabric.wait``.

        Drains the inbox (filing messages per key) until the requested
        key has a pending message, then classifies the attempt with the
        same ``(key, seq, attempt)`` hash the thread fabric uses.
        """
        key = (comm_key, src, dst, tag)
        pending = self._pending[key]
        deadline = time.monotonic() + self.timeout
        while not pending:
            if self._aborted is not None:
                raise DeadlockError(f"peer rank failed: {self._aborted}")
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise DeadlockError(
                    f"recv timed out after {self.timeout}s waiting for "
                    f"(comm={comm_key!r}, src={src}, dst={dst}, tag={tag})"
                )
            try:
                item = self._inbox.get(timeout=remaining)
            except queue.Empty:
                continue
            if item[0] == "abort":
                self._aborted = item[1]
                continue
            _, mkey, env = item
            self._pending[mkey].append(env)
        seq = self._consumed[key]
        delay = 0.0
        if self.fault_plan is not None:
            action = self.fault_plan.decide(key, seq, self._attempts[key])
            if action == FaultAction.DROP:
                self._attempts[key] += 1
                self.stats.record_fault("drops", rank=self._rank)
                raise MessageDropped(f"dropped {key} seq {seq}")
            if action == FaultAction.CORRUPT:
                self._attempts[key] += 1
                self.stats.record_fault("corruptions", rank=self._rank)
                raise MessageCorrupted(f"corrupted {key} seq {seq}")
            if action == FaultAction.DELAY:
                self.stats.record_fault("delays", rank=self._rank)
                delay = self.fault_plan.delay_seconds
        env = pending.popleft()
        self._consumed[key] = seq + 1
        self._attempts[key] = 0
        if delay > 0.0:
            time.sleep(delay)
        # no unlink: the router's log owns the segments (replay may
        # re-deliver them); the supervisor frees everything at join.
        return shm.unpack(env)


class _Router:
    """Supervisor-side message log + forwarding thread."""

    def __init__(self, n_ranks: int, ctx) -> None:
        self.n_ranks = n_ranks
        self.stats = CommStats()
        self.logs: dict[tuple, list] = defaultdict(list)
        self.key_world: dict[tuple, tuple[int, int]] = {}
        self.suppress: dict[tuple, int] = defaultdict(int)
        #: latest control-plane checkpoint payload per world rank.
        self.checkpoints: dict[int, object] = {}
        self.inboxes = [ctx.Queue() for _ in range(n_ranks)]
        self.sync_events: dict[int, threading.Event] = {}
        self._ctx = ctx
        self._lock = threading.Lock()
        self._thread: threading.Thread | None = None

    def start(self, router_in) -> None:
        self._thread = threading.Thread(
            target=self._run, args=(router_in,), name="vmpi-router", daemon=True
        )
        self._thread.start()

    def _run(self, router_in) -> None:
        while True:
            item = router_in.get()
            kind = item[0]
            if kind == "stop":
                return
            if kind == "sync":
                ev = self.sync_events.pop(item[1], None)
                if ev is not None:
                    ev.set()
                continue
            if kind == "ckpt":
                _, rank, _tag, payload = item
                with self._lock:
                    self.checkpoints[rank] = payload
                continue
            _, comm_key, src, dst, tag, sw, dw, env, nbytes = item
            key = (comm_key, src, dst, tag)
            with self._lock:
                self.key_world.setdefault(key, (sw, dw))
                if self.suppress[key] > 0:
                    # replaying rank re-sent a message its predecessor
                    # already delivered: receivers saw it, so drop the
                    # duplicate (and its fresh segments).
                    self.suppress[key] -= 1
                    self.stats.record_fault("duplicates_suppressed", rank=sw)
                    shm.free(env)
                    continue
                self.logs[key].append(env)
                self.stats.record(sw, dw, nbytes)
                if 0 <= dw < self.n_ranks:
                    self.inboxes[dw].put(("msg", key, env))

    def sync(self, router_in, timeout: float = 10.0) -> None:
        """Barrier: returns once the router has processed every item
        enqueued before this call (single pipe => FIFO)."""
        token = next(_sync_tokens)
        ev = threading.Event()
        self.sync_events[token] = ev
        router_in.put(("sync", token))
        ev.wait(timeout)

    def respawn(self, world_rank: int):
        """Arm replay for a respawned rank; returns its fresh inbox.

        Under the router lock so forwarding of new posts to the victim
        cannot interleave with the redelivery of its logged history
        (per-key FIFO must survive the swap).
        """
        new_inbox = self._ctx.Queue()
        with self._lock:
            old = self.inboxes[world_rank]
            self.inboxes[world_rank] = new_inbox
            for key, (sw, dw) in self.key_world.items():
                if sw == world_rank:
                    self.suppress[key] = len(self.logs[key])
            for key, (sw, dw) in self.key_world.items():
                if dw == world_rank:
                    for env in self.logs[key]:
                        new_inbox.put(("msg", key, env))
            self.stats.record_fault("respawns", rank=world_rank)
        # the dead rank never drains its old inbox; don't let its feeder
        # block supervisor exit.
        old.cancel_join_thread()
        old.close()
        return new_inbox

    def stop(self, router_in, timeout: float = 10.0) -> None:
        router_in.put(("stop",))
        if self._thread is not None:
            self._thread.join(timeout)

    def free_envelopes(self) -> None:
        with self._lock:
            for envs in self.logs.values():
                for env in envs:
                    shm.free(env)
            self.logs.clear()


def _worker_main(
    world_rank: int,
    n_ranks: int,
    prog_env: dict,
    inbox,
    router_in,
    done_q,
    timeout: float,
    fault_plan: FaultPlan | None,
    disarm_crash: bool,
    deadline_s: float | None,
) -> None:
    """Rank-process entry point (module-level: spawn must pickle it)."""
    from repro.exceptions import RankCrashError
    from repro.obs.metrics import registry
    from repro.resilience.deadline import Deadline, deadline_scope
    from repro.util.flops import FlopCounter

    if fault_plan is not None and disarm_crash:
        fault_plan.disarm_crash()
    fabric = ProcessRankFabric(world_rank, router_in, inbox, timeout, fault_plan)
    counter = FlopCounter()
    status, err, result_env = "ok", None, None
    try:
        fn, args, kwargs = shm.unpack(prog_env)
        comm = Communicator(fabric, "world", world_rank, list(range(n_ranks)))
        dl = Deadline(deadline_s) if deadline_s is not None else None
        counter.attach()
        try:
            with deadline_scope(dl):
                result = fn(comm, *args, **kwargs)
        finally:
            counter.detach()
        result_env = shm.pack(result)
    except RankCrashError as exc:
        status, err = "crashed", repr(exc)
    except BaseException as exc:  # noqa: BLE001 - reported to supervisor
        status, err = "failed", repr(exc)
    telemetry = {
        "stats": fabric.stats,
        "metrics": registry().snapshot(),
        "flops": {
            "flops": counter.flops,
            "mops": counter.mops,
            "kernel_evals": counter.kernel_evals,
            "by_label": dict(counter.by_label),
        },
    }
    # Flush our posts into the router pipe *before* reporting: the
    # supervisor's sync sentinel (same pipe) is then ordered after every
    # message we sent, which is what makes replay arming race-free.
    router_in.close()
    router_in.join_thread()
    done_q.put((world_rank, status, err, result_env, telemetry))


def _resolve_start_method(start_method: str | None) -> str:
    if start_method is None:
        raw = os.environ.get("REPRO_MP_START", "").strip()
        if not raw:
            return "spawn"
        if raw not in mp.get_all_start_methods():
            from repro.obs.logadapter import emit_warning

            emit_warning(
                "env.REPRO_MP_START",
                f"ignoring unknown REPRO_MP_START={raw!r}; using 'spawn'",
            )
            return "spawn"
        return raw
    if start_method not in mp.get_all_start_methods():
        raise ConfigurationError(
            f"unknown multiprocessing start method {start_method!r}; "
            f"available: {mp.get_all_start_methods()}"
        )
    return start_method


def run_spmd_processes(
    fn,
    n_ranks: int,
    *args,
    timeout: float = 120.0,
    fault_plan: FaultPlan | None = None,
    max_respawns: int = 2,
    elastic: bool = False,
    start_method: str | None = None,
    **kwargs,
):
    """Process-backend twin of :func:`repro.parallel.vmpi.run_spmd`.

    Same contract: returns ``(results, stats)``, raises
    ``RuntimeError("virtual rank r failed: ...")`` on rank failure,
    recovers injected rank crashes by respawn-with-replay.  ``fn`` must
    be picklable (a module-level function — spawn cannot ship closures).
    With ``elastic=True`` a crash past the respawn budget raises
    :class:`~repro.exceptions.RankLostError` carrying the survivors'
    latest checkpoints instead of a bare RuntimeError.
    """
    from repro.exceptions import RankLostError
    from repro.obs.metrics import registry
    from repro.resilience.deadline import current_deadline
    from repro.util.flops import current_counter

    ctx = mp.get_context(_resolve_start_method(start_method))
    dl = current_deadline()
    deadline_s = None
    if dl is not None and dl.seconds is not None:
        deadline_s = dl.remaining()
        timeout = min(timeout, deadline_s + 5.0)

    try:
        prog_env = shm.pack((fn, args, kwargs))
    except Exception as exc:
        raise ConfigurationError(
            "the process backend must pickle the SPMD function and its "
            "arguments for spawned ranks; use a module-level function "
            f"(closures/lambdas cannot cross processes): {exc!r}"
        ) from exc

    router_in = ctx.Queue()
    done_q = ctx.Queue()
    router = _Router(n_ranks, ctx)
    router.start(router_in)

    procs: list = [None] * n_ranks
    finished = [False] * n_ranks
    results: list = [None] * n_ranks
    errors: list[tuple[int, str]] = []
    respawn_counts = [0] * n_ranks
    recoveries: list[dict] = []
    telemetries: list[tuple[int, dict]] = []
    suspect_since: dict[int, float] = {}
    abort_deadline: float | None = None
    lost_rank: int | None = None

    def spawn(rank: int, generation: int) -> None:
        name = (
            f"vmpi-rank-{rank}"
            if generation == 0
            else f"vmpi-rank-{rank}-adopted-by-{rank ^ 1}-gen{generation}"
        )
        p = ctx.Process(
            target=_worker_main,
            args=(
                rank,
                n_ranks,
                prog_env,
                router.inboxes[rank],
                router_in,
                done_q,
                timeout,
                fault_plan,
                generation > 0,
                deadline_s,
            ),
            name=name,
            daemon=True,
        )
        p.start()
        procs[rank] = p

    def broadcast_abort(err: str) -> None:
        nonlocal abort_deadline
        for r in range(n_ranks):
            if not finished[r]:
                try:
                    router.inboxes[r].put(("abort", err))
                except Exception:  # pragma: no cover - teardown race
                    pass
        if abort_deadline is None:
            abort_deadline = time.monotonic() + _ABORT_GRACE

    def handle_crash(rank: int, err: str) -> bool:
        """Respawn if budget allows; returns True when the rank is
        finished (budget exhausted -> fatal, or elastic loss)."""
        nonlocal lost_rank
        router.stats.record_fault("crashes", rank=rank)
        if respawn_counts[rank] < max_respawns:
            respawn_counts[rank] += 1
            sibling = rank ^ 1 if n_ranks > 1 else rank
            recoveries.append(
                {
                    "stage": "rank_respawn",
                    "rank": rank,
                    "adopted_by": sibling,
                    "generation": respawn_counts[rank],
                    "error": err,
                }
            )
            # barrier: every post the victim flushed before reporting is
            # in the router log once the sentinel returns.
            router.sync(router_in)
            router.respawn(rank)
            spawn(rank, respawn_counts[rank])
            return False
        if elastic and lost_rank is None:
            lost_rank = rank
            router.stats.record_fault("confirmed_losses", rank=rank)
            recoveries.append(
                {"stage": "rank_lost", "rank": rank, "epoch": 1, "error": err}
            )
            broadcast_abort(f"rank {rank} permanently lost: {err}")
            return True
        errors.append((rank, err))
        broadcast_abort(err)
        return True

    try:
        for r in range(n_ranks):
            spawn(r, 0)

        n_finished = 0
        while n_finished < n_ranks:
            try:
                msg = done_q.get(timeout=0.2)
            except queue.Empty:
                now = time.monotonic()
                for r in range(n_ranks):
                    p = procs[r]
                    if finished[r] or p is None or p.exitcode is None:
                        continue
                    # the process is gone; its status may still be in
                    # the pipe (normal exits flush it), so give it a
                    # grace window before declaring a hard death.
                    first = suspect_since.setdefault(r, now)
                    if now - first < _DEATH_GRACE:
                        continue
                    suspect_since.pop(r, None)
                    err = f"rank process died (exitcode {p.exitcode})"
                    if handle_crash(r, err):
                        finished[r] = True
                        n_finished += 1
                if abort_deadline is not None and now > abort_deadline:
                    # ranks that never noticed the abort (stuck in
                    # compute): stop waiting.
                    for r in range(n_ranks):
                        if not finished[r]:
                            if procs[r] is not None and procs[r].is_alive():
                                procs[r].terminate()
                            finished[r] = True
                            n_finished += 1
                continue
            rank, status, err, result_env, telemetry = msg
            if finished[rank]:  # pragma: no cover - late duplicate status
                continue
            suspect_since.pop(rank, None)
            telemetries.append((rank, telemetry))
            if status == "crashed":
                if not handle_crash(rank, err):
                    continue
            elif status == "failed":
                errors.append((rank, err))
                broadcast_abort(err)
            else:
                results[rank] = shm.unpack(result_env, unlink=True)
            finished[rank] = True
            n_finished += 1
    finally:
        router.stop(router_in)
        # drain any unread statuses so their result envelopes are freed.
        while True:
            try:
                _r, _s, _e, env, _t = done_q.get_nowait()
            except (queue.Empty, OSError, ValueError):
                break
            if env is not None:
                shm.free(env)
        router.free_envelopes()
        shm.free(prog_env)
        for p in procs:
            if p is not None and p.is_alive():
                p.terminate()

    stats = router.stats
    for _rank, telemetry in telemetries:
        stats.merge(telemetry["stats"])
    stats.rank_recoveries.extend(recoveries)
    stats.publish()

    reg = registry()
    counter = current_counter()
    for rank, telemetry in telemetries:
        reg.merge_snapshot(telemetry["metrics"], rank=str(rank))
        if counter is not None:
            f = telemetry["flops"]
            labeled = 0
            for label, n in f["by_label"].items():
                counter.add_flops(n, label)
                labeled += n
            counter.add_flops(f["flops"] - labeled)
            counter.add_mops(f["mops"])
            counter.add_kernel_evals(f["kernel_evals"])

    if lost_rank is not None:
        # the router thread has drained its pipe (stop() joined it), so
        # every survivor checkpoint flushed before a status is in.
        checkpoints = {
            r: p for r, p in router.checkpoints.items() if r != lost_rank
        }
        raise RankLostError(
            f"virtual rank {lost_rank} permanently lost; "
            f"{len(checkpoints)} survivor checkpoint(s) available for "
            "repartitioning",
            rank=lost_rank,
            epoch=1,
            checkpoints=checkpoints,
            stats=stats,
        )
    if errors:
        rank, err = min(errors, key=lambda e: e[0])
        raise RuntimeError(f"virtual rank {rank} failed: {err}")
    return results, stats
