"""Virtual MPI: a deterministic message-passing runtime.

Ranks execute the same SPMD function on one of three backends — threads
over a shared logged-mailbox fabric (default, debuggable), real
``multiprocessing`` workers with shared-memory payload transport
(``run_spmd(..., backend="process")``, true multi-core), or spawned
workers over TCP with heartbeat failure detection and elastic
membership (``backend="socket"``; see docs/PARALLELISM.md).  The
fabric routes tagged messages between (communicator, source, dest)
mailboxes.
Collectives (bcast/reduce/allreduce/gather/allgather/barrier) are
implemented as binomial trees over point-to-point messages, so the
fabric's message and byte counters reflect the O(log p) per-collective
cost structure of a real MPI implementation — which is what lets the
test suite verify the paper's communication-complexity claims.

The runtime is chaos-capable: a seeded
:class:`~repro.parallel.vmpi.faults.FaultPlan` injects deterministic
message drops, corruptions, delays, and rank crashes; receives
retransmit with exponential backoff, and crashed ranks are respawned
against the fabric's message log (see :mod:`repro.parallel.vmpi.faults`
and docs/ROBUSTNESS.md).
"""

from repro.parallel.vmpi.fabric import Fabric, CommStats
from repro.parallel.vmpi.communicator import Communicator
from repro.parallel.vmpi.faults import FaultPlan, RetryPolicy, plan_from_env
from repro.parallel.vmpi.membership import (
    FailureDetector,
    HeartbeatConfig,
    Membership,
)
from repro.parallel.vmpi.runtime import BACKENDS, resolve_backend, run_spmd

__all__ = [
    "Fabric",
    "CommStats",
    "Communicator",
    "FaultPlan",
    "RetryPolicy",
    "plan_from_env",
    "run_spmd",
    "resolve_backend",
    "BACKENDS",
    "HeartbeatConfig",
    "FailureDetector",
    "Membership",
]
