"""Elastic membership for the socket-backed vMPI fabric.

A real MPI cluster can lose a rank *for good* — the host dies, the
network partitions, the process is OOM-killed.  The thread and process
backends never face this (every rank shares the supervisor's machine
and lifetime), so their only recovery is log-replay respawn.  The
socket backend (:mod:`repro.parallel.vmpi.sockets`) spans machines, and
this module gives its supervisor the two pieces real clusters need:

* a **heartbeat failure detector** (:class:`FailureDetector`): every
  rank beats at ``HeartbeatConfig.interval``; a rank whose last beat is
  older than ``suspect_after`` becomes *suspected* (a phi-style
  suspicion level grows with silence), and older than ``confirm_after``
  is *confirmed dead*.  The two thresholds separate the transient
  hiccups the retry/backoff loop already absorbs from the permanent
  losses that need repartitioning;
* a **membership epoch** (:class:`Membership`): confirming a death
  bumps the epoch and retires the dead rank's connection generation, so
  frames from a zombie — a host that was wrongly declared dead and
  wakes up later — are rejected as *stale* instead of corrupting the
  new epoch's protocol state.

Environment knobs (all parsed defensively — a malformed value warns
and falls back to the default, it never takes a launch down, matching
the ``REPRO_FAULT_RATE`` pattern):

* ``REPRO_VMPI_HB_INTERVAL`` — heartbeat period in seconds;
* ``REPRO_VMPI_HB_SUSPECT`` — silence before suspicion, in seconds;
* ``REPRO_VMPI_HB_CONFIRM`` — silence before confirmed death, in
  seconds;
* ``REPRO_VMPI_HOSTS`` — comma-separated host list for the socket
  backend (ranks are assigned round-robin; see ``sockets.py``);
* ``REPRO_VMPI_PORT`` — fixed supervisor port (default 0: ephemeral).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

from repro.exceptions import ConfigurationError
from repro.parallel.vmpi.faults import _env_float, _env_int

__all__ = [
    "HeartbeatConfig",
    "FailureDetector",
    "Membership",
    "heartbeat_config_from_env",
    "hosts_from_env",
    "port_from_env",
    "ENV_HB_INTERVAL",
    "ENV_HB_SUSPECT",
    "ENV_HB_CONFIRM",
    "ENV_HOSTS",
    "ENV_PORT",
]

ENV_HB_INTERVAL = "REPRO_VMPI_HB_INTERVAL"
ENV_HB_SUSPECT = "REPRO_VMPI_HB_SUSPECT"
ENV_HB_CONFIRM = "REPRO_VMPI_HB_CONFIRM"
ENV_HOSTS = "REPRO_VMPI_HOSTS"
ENV_PORT = "REPRO_VMPI_PORT"

#: rank state as seen by the failure detector.
ALIVE = "alive"
SUSPECTED = "suspected"
DEAD = "dead"


@dataclass(frozen=True)
class HeartbeatConfig:
    """Failure-detector timing (seconds).

    ``interval`` is how often ranks beat; ``suspect_after`` and
    ``confirm_after`` are silence thresholds.  The defaults are sized
    for localhost CI (a beat every 0.5 s, suspicion after 4 missed
    beats, confirmed death after 12) — cross-machine deployments should
    widen them via the environment knobs.
    """

    interval: float = 0.5
    suspect_after: float = 2.0
    confirm_after: float = 6.0

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigurationError(
                f"heartbeat interval must be > 0; got {self.interval}"
            )
        if self.suspect_after < self.interval:
            raise ConfigurationError(
                "suspect_after must be >= the heartbeat interval; got "
                f"{self.suspect_after} < {self.interval}"
            )
        if self.confirm_after < self.suspect_after:
            raise ConfigurationError(
                "confirm_after must be >= suspect_after; got "
                f"{self.confirm_after} < {self.suspect_after}"
            )


def heartbeat_config_from_env() -> HeartbeatConfig:
    """Heartbeat timing from the environment (defensive: warn + default).

    Values that are malformed *or* mutually inconsistent (e.g. a
    confirm threshold below the suspect threshold) fall back to the
    defaults with a rate-limited warning — an env typo must not turn
    the failure detector into a rank-killer.
    """
    interval = _env_float(ENV_HB_INTERVAL, 0.5)
    suspect = _env_float(ENV_HB_SUSPECT, 2.0)
    confirm = _env_float(ENV_HB_CONFIRM, 6.0)
    try:
        return HeartbeatConfig(
            interval=interval, suspect_after=suspect, confirm_after=confirm
        )
    except ConfigurationError as exc:
        from repro.obs.logadapter import emit_warning

        emit_warning(
            f"env.{ENV_HB_INTERVAL}",
            f"ignoring inconsistent heartbeat knobs ({exc}); using defaults",
        )
        return HeartbeatConfig()


def hosts_from_env() -> list[str] | None:
    """``REPRO_VMPI_HOSTS`` as a host list, or ``None`` when unset.

    Empty entries (``"a,,b"``) are dropped with a warning; a value that
    reduces to nothing is treated as unset.
    """
    raw = os.environ.get(ENV_HOSTS, "").strip()
    if not raw:
        return None
    hosts = [h.strip() for h in raw.split(",")]
    cleaned = [h for h in hosts if h]
    if len(cleaned) != len(hosts):
        from repro.obs.logadapter import emit_warning

        emit_warning(
            f"env.{ENV_HOSTS}",
            f"dropping empty entries in {ENV_HOSTS}={raw!r}",
        )
    if not cleaned:
        from repro.obs.logadapter import emit_warning

        emit_warning(
            f"env.{ENV_HOSTS}",
            f"ignoring {ENV_HOSTS}={raw!r} (no usable hosts); "
            "running on localhost",
        )
        return None
    return cleaned


def port_from_env() -> int:
    """``REPRO_VMPI_PORT`` as a TCP port (default 0: ephemeral)."""
    port = _env_int(ENV_PORT, 0)
    if not (0 <= port <= 65535):
        from repro.obs.logadapter import emit_warning

        emit_warning(
            f"env.{ENV_PORT}",
            f"ignoring out-of-range {ENV_PORT}={port!r}; using an "
            "ephemeral port",
        )
        return 0
    return port


@dataclass
class _RankLiveness:
    last_beat: float
    state: str = ALIVE


class FailureDetector:
    """Heartbeat bookkeeping with a phi-style suspicion level.

    Single-threaded by design: the supervisor's monitor loop owns it
    and serializes ``beat``/``poll`` calls.  ``suspicion(rank)`` is the
    silence measured in heartbeat intervals — the discrete cousin of
    the phi-accrual detector's ``phi``: 0 while beating, crossing
    ``suspect_after/interval`` marks suspicion, ``confirm_after/
    interval`` marks confirmed death.
    """

    def __init__(self, config: HeartbeatConfig, ranks: list[int]) -> None:
        self.config = config
        now = time.monotonic()
        self._ranks: dict[int, _RankLiveness] = {
            r: _RankLiveness(last_beat=now) for r in ranks
        }

    def beat(self, rank: int, now: float | None = None) -> None:
        """Record a heartbeat (ignored for ranks already confirmed dead)."""
        liveness = self._ranks.get(rank)
        if liveness is None or liveness.state == DEAD:
            return
        liveness.last_beat = time.monotonic() if now is None else now
        liveness.state = ALIVE

    def suspicion(self, rank: int, now: float | None = None) -> float:
        """Silence in units of the heartbeat interval (0 = just beat)."""
        liveness = self._ranks[rank]
        now = time.monotonic() if now is None else now
        return max(0.0, now - liveness.last_beat) / self.config.interval

    def state(self, rank: int) -> str:
        return self._ranks[rank].state

    def poll(self, now: float | None = None) -> list[tuple[int, str]]:
        """Advance every rank's state; return the transitions.

        Each returned tuple is ``(rank, new_state)`` with ``new_state``
        in {``"suspected"``, ``"dead"``}.  A suspected rank that beats
        again returns to alive silently (that is the transient case the
        retry loop absorbs — not an event worth surfacing).
        """
        now = time.monotonic() if now is None else now
        cfg = self.config
        transitions: list[tuple[int, str]] = []
        for rank, liveness in self._ranks.items():
            if liveness.state == DEAD:
                continue
            silence = now - liveness.last_beat
            if silence > cfg.confirm_after:
                liveness.state = DEAD
                transitions.append((rank, DEAD))
            elif silence > cfg.suspect_after and liveness.state == ALIVE:
                liveness.state = SUSPECTED
                transitions.append((rank, SUSPECTED))
        return transitions

    def mark_dead(self, rank: int) -> None:
        """External death evidence (connection reset, waitpid)."""
        liveness = self._ranks.get(rank)
        if liveness is not None:
            liveness.state = DEAD

    def resurrect(self, rank: int) -> None:
        """A respawned replacement took over the rank: start fresh."""
        self._ranks[rank] = _RankLiveness(last_beat=time.monotonic())


class Membership:
    """Epoch-stamped rank membership for one SPMD launch.

    Every rank connection carries a *generation* (0 for the original
    worker, bumped per respawn).  Confirming a permanent death bumps
    the launch *epoch* and freezes the dead rank's generation; frames
    arriving later from a connection at or below that generation are
    stale — the sender is a zombie from a previous epoch — and must be
    dropped at the router, never logged or delivered.
    """

    def __init__(self, ranks: list[int]) -> None:
        self.epoch = 0
        self._alive = set(ranks)
        self._generation = {r: 0 for r in ranks}
        #: rank -> generation at which the rank was declared dead.
        self._retired: dict[int, int] = {}

    @property
    def alive(self) -> set[int]:
        return set(self._alive)

    def generation(self, rank: int) -> int:
        return self._generation[rank]

    def respawn(self, rank: int) -> int:
        """Bump and return the rank's generation for its replacement."""
        self._generation[rank] += 1
        return self._generation[rank]

    def confirm_dead(self, rank: int) -> int:
        """Declare ``rank`` permanently lost; returns the new epoch."""
        if rank in self._alive:
            self._alive.discard(rank)
            self._retired[rank] = self._generation[rank]
            self.epoch += 1
        return self.epoch

    def is_stale(self, rank: int, generation: int) -> bool:
        """True when a frame from ``(rank, generation)`` is from a dead
        epoch and must be rejected."""
        retired_gen = self._retired.get(rank)
        if retired_gen is None:
            return generation < self._generation.get(rank, 0)
        return generation <= retired_gen

    def summary(self) -> dict:
        return {
            "epoch": self.epoch,
            "alive": sorted(self._alive),
            "lost": sorted(self._retired),
        }
