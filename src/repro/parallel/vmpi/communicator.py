"""Communicator: mpi4py-shaped API over the virtual fabric.

Point-to-point: :meth:`Communicator.send` / :meth:`recv` /
:meth:`sendrecv`.  Collectives are binomial trees built from
point-to-point messages — ``O(log p)`` rounds each — so the fabric's
counters expose the same asymptotic traffic a real MPI run would.
:meth:`split` creates sub-communicators (the paper's per-treenode
communicators in Figure 1) without any central coordination beyond an
allgather on the parent.

Fault semantics: when the fabric carries a
:class:`~repro.parallel.vmpi.faults.FaultPlan`, every delivery attempt
may be dropped, corrupted, or delayed.  :meth:`recv` owns the recovery
loop — retransmission with exponential backoff up to the plan's
:class:`~repro.parallel.vmpi.faults.RetryPolicy` budget — and because
the collectives are built from ``send``/``recv``, ``bcast``/``reduce``
/``allreduce``/``gather`` inherit retry/timeout/backoff for free.
Injected rank crashes fire from the per-operation hook at the top of
``send`` and ``recv``.
"""

from __future__ import annotations

import time
from typing import Any, Callable

import numpy as np

from repro.exceptions import CommunicatorError, FaultInjectionError
from repro.parallel.vmpi.fabric import Fabric
from repro.parallel.vmpi.faults import MessageCorrupted, MessageDropped

__all__ = ["Communicator"]


class Communicator:
    """A group of virtual ranks with p2p and collective operations.

    Do not construct directly — use :func:`repro.parallel.vmpi.run_spmd`
    (which hands each rank the world communicator) and :meth:`split`.
    """

    def __init__(
        self,
        fabric: Fabric,
        key: str,
        rank: int,
        world_ranks: list[int],
    ) -> None:
        self._fabric = fabric
        self._key = key
        self._rank = rank
        self._world_ranks = world_ranks
        self._split_epoch = 0

    # ------------------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._rank

    @property
    def size(self) -> int:
        return len(self._world_ranks)

    def world_rank(self, rank: int | None = None) -> int:
        """Global rank id of ``rank`` (default: self) in this group."""
        return self._world_ranks[self._rank if rank is None else rank]

    def _op_hook(self) -> None:
        """Per-operation fault hook (injected rank crashes)."""
        plan = self._fabric.fault_plan
        if plan is not None:
            plan.on_op(self.world_rank())

    # -- point to point ----------------------------------------------------
    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        if not (0 <= dest < self.size):
            raise CommunicatorError(f"dest {dest} out of range (size {self.size})")
        self._op_hook()
        self._fabric.post(
            self._key,
            self._rank,
            dest,
            tag,
            obj,
            src_world=self.world_rank(),
            dst_world=self._world_ranks[dest],
        )

    def recv(self, source: int, tag: int = 0) -> Any:
        """Receive with retransmission: retry dropped/corrupted delivery
        attempts with exponential backoff up to the plan's budget."""
        if not (0 <= source < self.size):
            raise CommunicatorError(f"source {source} out of range (size {self.size})")
        self._op_hook()
        policy = self._fabric.retry_policy
        attempt = 0
        while True:
            try:
                return self._fabric.wait(self._key, source, self._rank, tag)
            except (MessageDropped, MessageCorrupted) as fault:
                attempt += 1
                if attempt > policy.max_retries:
                    raise FaultInjectionError(
                        f"recv from {source} (tag {tag}) failed after "
                        f"{attempt} attempts: {fault}"
                    ) from fault
                self._fabric.stats.record_fault("retries", rank=self.world_rank())
                time.sleep(policy.delay(attempt - 1))

    def sendrecv(self, obj: Any, dest: int, source: int, tag: int = 0) -> Any:
        """Simultaneous exchange (no deadlock: mailboxes are buffered)."""
        self.send(obj, dest, tag)
        return self.recv(source, tag)

    def checkpoint(self, payload: Any, tag: int = 0) -> None:
        """Post a control-plane checkpoint of this rank's state.

        The supervisor keeps the *latest* checkpoint per rank; when a
        rank is permanently lost under elastic mode, the survivors'
        checkpoints ride back on the
        :class:`~repro.exceptions.RankLostError` so the caller can
        repartition without replaying the message log.  Checkpoints are
        not messages: they are uncounted, unlogged, and undeliverable —
        and therefore cannot perturb chaos schedules or traffic parity.
        """
        self._fabric.post_checkpoint(self.world_rank(), tag, payload)

    # -- collectives -------------------------------------------------------
    def bcast(self, obj: Any, root: int = 0) -> Any:
        """Binomial-tree broadcast; returns the object on every rank."""
        size, rank = self.size, self._rank
        if size == 1:
            return obj
        # rotate so the root is virtual rank 0.
        vrank = (rank - root) % size
        mask = 1
        while mask < size:
            if vrank < mask:
                peer = vrank + mask
                if peer < size:
                    self.send(obj, (peer + root) % size, tag=-1)
            elif vrank < 2 * mask:
                obj = self.recv(((vrank - mask) + root) % size, tag=-1)
            mask <<= 1
        return obj

    def reduce(
        self,
        value: Any,
        root: int = 0,
        op: Callable[[Any, Any], Any] | None = None,
    ) -> Any:
        """Binomial-tree reduction to ``root`` (default op: ndarray sum).

        Returns the reduced value on ``root`` and ``None`` elsewhere.
        """
        if op is None:
            op = _add
        size, rank = self.size, self._rank
        vrank = (rank - root) % size
        acc = value
        mask = 1
        while mask < size:
            if vrank & mask:
                self.send(acc, ((vrank - mask) + root) % size, tag=-2)
                return None
            peer = vrank + mask
            if peer < size:
                other = self.recv((peer + root) % size, tag=-2)
                acc = op(acc, other)
            mask <<= 1
        return acc

    def allreduce(
        self, value: Any, op: Callable[[Any, Any], Any] | None = None
    ) -> Any:
        """Reduce to rank 0 then broadcast (2 log p rounds)."""
        acc = self.reduce(value, root=0, op=op)
        return self.bcast(acc, root=0)

    def gather(self, obj: Any, root: int = 0) -> list[Any] | None:
        """Gather one object per rank into a list at ``root``."""
        contributions = self.reduce({self._rank: obj}, root=root, op=_merge)
        if contributions is None:
            return None
        return [contributions[r] for r in range(self.size)]

    def allgather(self, obj: Any) -> list[Any]:
        return self.bcast(self.gather(obj, root=0), root=0)

    def barrier(self) -> None:
        self.allreduce(0, op=lambda a, b: 0)

    # -- sub-communicators ---------------------------------------------------
    def split(self, color: int, key: int | None = None) -> "Communicator":
        """Partition the group by ``color`` (collective over all ranks).

        Ranks with equal ``color`` form a new communicator, ordered by
        ``(key, old rank)``.  The new communicator's fabric key is
        derived deterministically from the parent's, so no global
        coordination is needed beyond one allgather.
        """
        if key is None:
            key = self._rank
        members = self.allgather((color, key, self._rank))
        epoch = self._split_epoch
        self._split_epoch += 1
        group = sorted(
            (k, r) for (c, k, r) in members if c == color
        )
        ranks_in_group = [r for (_k, r) in group]
        new_rank = ranks_in_group.index(self._rank)
        new_key = f"{self._key}/{epoch}:{color}"
        return Communicator(
            self._fabric,
            new_key,
            new_rank,
            [self._world_ranks[r] for r in ranks_in_group],
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Communicator(key={self._key!r}, rank={self._rank}, "
            f"size={self.size})"
        )


def _add(a, b):
    if isinstance(a, np.ndarray):
        return a + b
    return a + b


def _merge(a: dict, b: dict) -> dict:
    out = dict(a)
    out.update(b)
    return out
