"""Deterministic fault injection for the virtual MPI fabric.

A :class:`FaultPlan` is a *seeded, repeatable* chaos schedule: every
delivery attempt of every message is classified (deliver / drop /
corrupt / delay) by hashing ``(seed, mailbox key, message seq,
attempt)`` — so two runs with the same plan observe exactly the same
fault sequence regardless of thread interleaving, and a replayed
(respawned) rank re-experiences the same faults its predecessor did.

Faults are *transient by construction*: the hash includes the attempt
counter, so a retransmission of a dropped or corrupted message is an
independent Bernoulli trial and delivery succeeds with probability one
in the limit.  The retry/backoff loop lives in
:meth:`repro.parallel.vmpi.communicator.Communicator.recv` (collectives
are built from sends and recvs, so ``bcast``/``reduce``/... inherit the
semantics for free); :class:`RetryPolicy` bounds it.

Rank crashes are scheduled by *operation index* — "world rank ``r``
dies on its ``k``-th communicator operation" — which is deterministic
because a rank's own operation sequence depends only on its program,
not on scheduling.  A crash fires exactly once per plan; the respawned
replacement sails past the crash point.
"""

from __future__ import annotations

import hashlib
import os
import struct
import threading
from dataclasses import dataclass, field

from repro.exceptions import RankCrashError, RankHangError

__all__ = [
    "FaultAction",
    "FaultPlan",
    "RetryPolicy",
    "MessageDropped",
    "MessageCorrupted",
    "plan_from_env",
]

#: environment knobs honoured by :func:`plan_from_env` (the CI chaos job
#: sets these so the whole tier-1 suite runs under injected faults).
ENV_RATE = "REPRO_FAULT_RATE"
ENV_SEED = "REPRO_FAULT_SEED"


class FaultAction:
    """Classification of one delivery attempt."""

    DELIVER = "deliver"
    DROP = "drop"
    CORRUPT = "corrupt"
    DELAY = "delay"


class MessageDropped(Exception):
    """Transient: this delivery attempt was dropped (retransmit)."""


class MessageCorrupted(Exception):
    """Transient: payload failed its integrity check (retransmit)."""


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retransmission bounds.

    ``delay(attempt) = min(base_delay * 2**attempt, max_delay)``; after
    ``max_retries`` failed attempts the receive raises
    :class:`~repro.exceptions.FaultInjectionError` (the link is treated
    as down, not slow).
    """

    max_retries: int = 16
    base_delay: float = 1e-4
    max_delay: float = 2e-2

    def delay(self, attempt: int) -> float:
        return min(self.base_delay * (2.0**attempt), self.max_delay)


@dataclass
class FaultPlan:
    """Seeded chaos schedule for one (or more) SPMD launches.

    Attributes
    ----------
    seed:
        Root of the deterministic per-attempt hash.
    drop_rate, corrupt_rate, delay_rate:
        Per-delivery-attempt probabilities (disjoint: a single uniform
        draw is partitioned, so ``drop + corrupt + delay <= 1`` must
        hold).
    delay_seconds:
        Injected latency for DELAY attempts.
    crash_rank:
        World rank to kill, or ``None``.
    crash_op:
        The victim dies when it executes its ``crash_op``-th
        communicator operation (sends and receives both count).  Fires
        once per plan.
    hang_rank / hang_op:
        World rank to *hang* (silently stop participating — the model
        of a partitioned or wedged host) on its ``hang_op``-th
        communicator operation.  A hang is reported to nobody; only the
        socket backend's heartbeat failure detector
        (:mod:`repro.parallel.vmpi.membership`) can recover from it.
        On the thread/process backends a hang degenerates into a recv
        timeout on the peers (documented; do not use it there).
    hang_seconds:
        How long a hung rank stays wedged before waking up as a
        *zombie* and attempting to resume — exercising the supervisor's
        stale-epoch rejection.  The default is effectively forever (the
        supervisor terminates hung workers at teardown).
    retry:
        Retransmission policy applied by receivers under this plan.
    """

    seed: int = 0
    drop_rate: float = 0.0
    corrupt_rate: float = 0.0
    delay_rate: float = 0.0
    delay_seconds: float = 1e-3
    crash_rank: int | None = None
    crash_op: int = 4
    hang_rank: int | None = None
    hang_op: int = 4
    hang_seconds: float = 3600.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _op_counts: dict[int, int] = field(default_factory=dict, repr=False)
    _crash_fired: bool = field(default=False, repr=False)
    _hang_fired: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        total = self.drop_rate + self.corrupt_rate + self.delay_rate
        if not (0.0 <= total <= 1.0):
            raise ValueError(
                f"drop+corrupt+delay rates must lie in [0, 1]; got {total}"
            )

    # ------------------------------------------------------------------
    def decide(self, key: tuple, seq: int, attempt: int) -> str:
        """Classify one delivery attempt; pure function of the inputs."""
        if self.drop_rate == 0.0 and self.corrupt_rate == 0.0 and self.delay_rate == 0.0:
            return FaultAction.DELIVER
        u = self._uniform(key, seq, attempt)
        if u < self.drop_rate:
            return FaultAction.DROP
        if u < self.drop_rate + self.corrupt_rate:
            return FaultAction.CORRUPT
        if u < self.drop_rate + self.corrupt_rate + self.delay_rate:
            return FaultAction.DELAY
        return FaultAction.DELIVER

    def _uniform(self, key: tuple, seq: int, attempt: int) -> float:
        h = hashlib.blake2b(digest_size=8)
        h.update(repr((self.seed, key, seq, attempt)).encode())
        (v,) = struct.unpack("<Q", h.digest())
        return v / 2.0**64

    # ------------------------------------------------------------------
    def on_op(self, world_rank: int) -> None:
        """Count one communicator operation; raise the scheduled fault.

        Called by :class:`Communicator` send/recv.  Thread-safe; the
        crash (and the hang) each fire at most once per plan instance,
        so a respawned rank replays straight through the old crash
        point.
        """
        if self.crash_rank is None and self.hang_rank is None:
            return
        with self._lock:
            count = self._op_counts.get(world_rank, 0) + 1
            self._op_counts[world_rank] = count
            fire_crash = (
                not self._crash_fired
                and world_rank == self.crash_rank
                and count >= self.crash_op
            )
            if fire_crash:
                self._crash_fired = True
            fire_hang = (
                not fire_crash
                and not self._hang_fired
                and world_rank == self.hang_rank
                and count >= self.hang_op
            )
            if fire_hang:
                self._hang_fired = True
        if fire_crash:
            raise RankCrashError(
                f"injected crash: world rank {world_rank} at op {count}"
            )
        if fire_hang:
            raise RankHangError(
                f"injected hang: world rank {world_rank} at op {count}"
            )

    @property
    def crash_pending(self) -> bool:
        return self.crash_rank is not None and not self._crash_fired

    def disarm_crash(self) -> None:
        """Mark the scheduled crash (and hang) as already fired.

        The process backend ships each rank a *copy* of the plan, so a
        respawned replacement would re-fire the crash its predecessor
        already suffered; the supervisor disarms the replacement's copy
        (the thread backend gets this for free from the shared
        ``_crash_fired`` flag).
        """
        with self._lock:
            self._crash_fired = True
            self._hang_fired = True

    # -- pickling: the process backend ships the plan to every rank ----
    def __getstate__(self):
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()


#: the largest rate ``plan_from_env`` accepts: the single uniform draw
#: is partitioned into drop (r) + corrupt (r/2) + delay (r/4) = 1.75 r.
_MAX_ENV_RATE = 1.0 / 1.75


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        from repro.obs.logadapter import emit_warning

        emit_warning(
            f"env.{name}",
            f"ignoring malformed {name}={raw!r} (not a number); "
            f"using default {default!r}",
        )
        return default


def _env_int(name: str, default: int) -> int:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return int(raw)
    except ValueError:
        from repro.obs.logadapter import emit_warning

        emit_warning(
            f"env.{name}",
            f"ignoring malformed {name}={raw!r} (not an integer); "
            f"using default {default!r}",
        )
        return default


def plan_from_env() -> FaultPlan | None:
    """Default chaos plan from the environment (CI's chaos job).

    ``REPRO_FAULT_RATE=r`` enables message faults at drop rate ``r``,
    corruption rate ``r/2`` and delay rate ``r/4`` (seed from
    ``REPRO_FAULT_SEED``, default 0).  Returns ``None`` when unset so
    production launches pay nothing.

    Malformed values (``"0.05x"``) and out-of-range rates are not worth
    crashing a solve over: they fall back to the documented defaults
    (no faults; seed 0; rates clamped so the partitioned probabilities
    stay in [0, 1]) with one rate-limited warning via
    :func:`repro.obs.logadapter.emit_warning`.
    """
    rate = _env_float(ENV_RATE, 0.0)
    if rate <= 0.0:
        return None
    if rate > _MAX_ENV_RATE:
        from repro.obs.logadapter import emit_warning

        emit_warning(
            f"env.{ENV_RATE}",
            f"{ENV_RATE}={rate!r} exceeds the maximum partitionable rate "
            f"{_MAX_ENV_RATE:.4f} (drop + corrupt + delay = 1.75r must "
            "stay <= 1); clamping",
        )
        rate = _MAX_ENV_RATE
    seed = _env_int(ENV_SEED, 0)
    return FaultPlan(
        seed=seed,
        drop_rate=rate,
        corrupt_rate=rate / 2.0,
        delay_rate=rate / 4.0,
        delay_seconds=1e-4,
    )
