"""Distributed skeletonization (the parallel ASKIT construction phase).

The paper builds on ASKIT's parallel tree construction and
skeletonization (its "ASKIT" timing column in Table V); this module
runs Algorithm II.1 under the same ownership model as DistFactorize:

* each of the ``p = 2^q`` ranks skeletonizes the subtree rooted at its
  level-``log p`` node entirely locally (bottom-up, identical to the
  serial code);
* for a *distributed* node, the two child skeletons live on rank {0}
  and rank {q/2} of the node's communicator; they are exchanged with a
  SendRecv (skeleton positions travel — coordinates are replicated,
  see DESIGN.md's substitution table), rank {0} computes the node's
  interpolative decomposition, and the result is broadcast within the
  communicator so every rank can later build its ``K_{sib~, x}``
  blocks.

Because row sampling is keyed by ``(seed, node id)`` rather than
traversal order, the distributed construction produces *bit-identical*
skeletons to the serial :func:`repro.skeleton.skeletonize` — asserted
in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.config import SkeletonConfig
from repro.exceptions import ConfigurationError
from repro.kernels.base import Kernel
from repro.parallel.vmpi import CommStats, Communicator, run_spmd
from repro.sampling.neighbors import NeighborTable
from repro.skeleton.skeletonize import (
    NodeSkeleton,
    SkeletonSet,
    effective_level_stop,
    prepare_sampling,
    skeletonize_node,
)
from repro.tree.balltree import BallTree

__all__ = ["distributed_skeletonize"]


def _skeletonize_worker(
    comm: Communicator,
    tree: BallTree,
    kernel: Kernel,
    config: SkeletonConfig,
    neighbors: NeighborTable | None,
) -> dict[int, NodeSkeleton]:
    n_levels = int(np.log2(comm.size))
    subtree_root = tree.node((1 << n_levels) + comm.rank)
    level_stop = effective_level_stop(tree, config)
    sampler, _ = prepare_sampling(tree, config, neighbors)
    norms = kernel.prepare_norms(tree.points)

    local: dict[int, NodeSkeleton] = {}

    # ---- local phase: my subtree, bottom-up ---------------------------
    for level in range(tree.depth, max(level_stop, n_levels) - 1, -1):
        span = level - n_levels
        first = subtree_root.id << span
        for nid in range(first, first + (1 << span)):
            node = tree.node(nid)
            if tree.is_leaf(node):
                candidates = np.arange(node.lo, node.hi, dtype=np.intp)
            else:
                left_id, right_id = 2 * nid, 2 * nid + 1
                if left_id not in local or right_id not in local:
                    continue  # adaptive stop propagated
                candidates = np.concatenate(
                    [local[left_id].skeleton, local[right_id].skeleton]
                )
            sk = skeletonize_node(
                tree, kernel, config, sampler, node, candidates, norms
            )
            if sk is not None:
                local[nid] = sk

    # ---- distributed phase: my ancestors, levels log p - 1 .. stop ----
    comms = [comm]
    for l in range(1, n_levels + 1):
        bit = (comm.rank >> (n_levels - l)) & 1
        comms.append(comms[-1].split(color=bit))

    stopped = False
    for level in range(n_levels - 1, level_stop - 1, -1):
        node_comm = comms[level]
        q = node_comm.size
        node = tree.node(subtree_root.id >> (subtree_root.level - level))
        left_id, right_id = 2 * node.id, 2 * node.id + 1

        # child-skeleton exchange between the communicator's local roots.
        payload = None
        if node_comm.rank == 0:
            own = local.get(left_id)
            own_pack = None if own is None else own.skeleton
            sib_pack = node_comm.sendrecv(
                own_pack, dest=q // 2, source=q // 2, tag=50 + level
            )
            payload = (own_pack, sib_pack)
        elif node_comm.rank == q // 2:
            own = local.get(right_id)
            own_pack = None if own is None else own.skeleton
            node_comm.sendrecv(own_pack, dest=0, source=0, tag=50 + level)

        # rank {0} computes the node's ID (or declares a stop) and
        # broadcasts the result to the whole communicator.
        result: NodeSkeleton | None = None
        if node_comm.rank == 0 and not stopped:
            left_skel, right_skel = payload
            if left_skel is None or right_skel is None:
                result = None  # a child stopped: propagate upward
            else:
                candidates = np.concatenate([left_skel, right_skel])
                result = skeletonize_node(
                    tree, kernel, config, sampler, node, candidates, norms
                )
        result = node_comm.bcast(result, root=0)
        if result is None:
            stopped = True
        else:
            local[node.id] = result

    return local


def distributed_skeletonize(
    tree: BallTree,
    kernel: Kernel,
    config: SkeletonConfig | None = None,
    n_ranks: int = 2,
    *,
    neighbors: NeighborTable | None = None,
    backend: str | None = None,
) -> tuple[SkeletonSet, CommStats]:
    """Run Algorithm II.1 over ``n_ranks`` virtual MPI ranks.

    Returns the merged :class:`SkeletonSet` (identical to the serial
    one) and the fabric's communication statistics.  The neighbor table
    for sampling, if enabled, is computed once up front and replicated
    (ASKIT distributes it with its local essential tree; see DESIGN.md).
    ``backend`` selects the vMPI execution backend (docs/PARALLELISM.md).
    """
    config = config or SkeletonConfig()
    if n_ranks < 1 or (n_ranks & (n_ranks - 1)) != 0:
        raise ConfigurationError(f"n_ranks must be a power of two; got {n_ranks}")
    if n_ranks > (1 << tree.depth):
        raise ConfigurationError(
            f"n_ranks={n_ranks} exceeds the number of level-log2(p) subtrees"
        )
    if neighbors is None and config.num_neighbors > 0 and tree.n_points > 2:
        # replicate the neighbor table (drawn with the same seed stream
        # as the serial path so results match exactly).
        _sampler, neighbors = prepare_sampling(tree, config, None)

    results, stats = run_spmd(
        _skeletonize_worker, n_ranks, tree, kernel, config, neighbors,
        backend=backend,
    )
    merged: dict[int, NodeSkeleton] = {}
    for part in results:
        merged.update(part)

    sset = SkeletonSet(tree=tree, config=config)
    sset.skeletons = merged
    sset.effective_level = effective_level_stop(tree, config)
    return sset, stats
