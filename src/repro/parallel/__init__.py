"""Distributed-memory parallelization (paper section II-B, Figure 1).

The paper runs on MPI; this environment has no MPI, so
:mod:`repro.parallel.vmpi` provides a deterministic in-process
message-passing runtime with the mpi4py API surface (ranks are threads,
messages are tagged mailbox entries, collectives are binomial trees
over point-to-point sends so message *counts* match a real MPI tree
implementation).  :mod:`repro.parallel.dist_solver` implements
Algorithms II.4 (DistFactorize) and II.5 (DistSolve) verbatim against
that API, and the fabric's byte/message counters verify the paper's
O(s^2 log^2 p) communication bound.
"""

from repro.parallel.vmpi import Communicator, CommStats, run_spmd
from repro.parallel.dist_solver import (
    DistributedFactorization,
    distributed_factorize,
    distributed_solve,
)
from repro.parallel.dist_hybrid import (
    DistributedHybrid,
    distributed_hybrid_factorize,
    distributed_hybrid_solve,
)
from repro.parallel.dist_skeletonize import distributed_skeletonize
from repro.parallel.taskdag import (
    TaskDAG,
    build_factor_dag,
    simulate_schedule,
    execute_factorization,
)

__all__ = [
    "Communicator",
    "CommStats",
    "run_spmd",
    "DistributedFactorization",
    "distributed_factorize",
    "distributed_solve",
    "DistributedHybrid",
    "distributed_hybrid_factorize",
    "distributed_hybrid_solve",
    "distributed_skeletonize",
    "TaskDAG",
    "build_factor_dag",
    "simulate_schedule",
    "execute_factorization",
]
