"""Distributed factorization and solve (Algorithms II.4 and II.5).

Ownership follows the paper's Figure 1: with ``p = 2^q`` ranks, rank
``i`` owns the subtree rooted at the i-th node of level ``log p`` and
factorizes it with the *serial* Algorithm II.2.  Distributed nodes
(levels above ``log p``) are processed with the recursive communicator
scheme: the node's communicator splits into halves (the children's
communicators); rank {0} owns the left child's skeleton and the node's
reduced system ``Z``; rank {q/2} owns the right child's skeleton.
Skeletons are exchanged with a SendRecv between {0} and {q/2} and then
broadcast within each half; the ``V W`` Gram blocks and the solve-phase
reductions are computed locally on each rank's point slice and reduced
up the halves — exactly the message pattern of Algorithms II.4/II.5,
which is what the communication-counter tests measure.

The factorization produced is bit-for-bit the serial one (the tests
assert agreement with :func:`repro.solvers.factorize` to roundoff).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import SolverConfig
from repro.exceptions import ConfigurationError, NotFactorizedError
from repro.hmatrix.hmatrix import HMatrix
from repro.kernels.summation import KernelSummation, SummationMethod
from repro.parallel.vmpi import CommStats, Communicator, FaultPlan, run_spmd
from repro.solvers.factorization import HierarchicalFactorization
from repro.solvers.recovery import SolverHealth
from repro.util import lapack
from repro.util.flops import count_flops

__all__ = [
    "DistributedFactorization",
    "distributed_factorize",
    "distributed_solve",
]


@dataclass
class _LevelState:
    """Per-rank data for one distributed ancestor node."""

    node_id: int
    #: summation block K_{sib~, x_i}: sibling-child skeleton rows vs my points.
    ksib: KernelSummation
    #: my child's skeleton size (s_l on left-half ranks, s_r on right).
    s_mine: int
    #: LU of the node's Z — held only on comm rank {0} of this node.
    z_lu: tuple[np.ndarray, np.ndarray] | None = None
    s_l: int = 0
    s_r: int = 0


@dataclass
class _RankState:
    """Everything one virtual rank retains after DistFactorize."""

    rank: int
    subtree_root_id: int
    lo: int
    hi: int
    local: HierarchicalFactorization
    #: levels[l] for distributed levels l = log p - 1 .. 0.
    levels: dict[int, _LevelState] = field(default_factory=dict)
    #: phat_chain[l] = my rows of P^ of my ancestor's child at level l
    #: (phat_chain[log p] is the local subtree root's P^).
    phat_chain: dict[int, np.ndarray] = field(default_factory=dict)
    #: flops this rank spent during factorization (strong-scaling model).
    factor_flops: int = 0


@dataclass
class DistributedFactorization:
    """Result of :func:`distributed_factorize`.

    Holds per-rank states; :func:`distributed_solve` re-launches the
    SPMD ranks against them.  ``factor_stats`` records the fabric
    traffic of the factorization (paper: O(s^2 log^2 p) total).
    """

    hmatrix: HMatrix
    lam: float
    n_ranks: int
    config: SolverConfig
    states: list[_RankState]
    factor_stats: CommStats
    #: fault/recovery history of the launch (chaos runs; always present).
    health: SolverHealth = field(default_factory=SolverHealth)
    #: execution backend the factorization ran on; :func:`distributed_solve`
    #: reuses it unless overridden.
    backend: str = "thread"

    @property
    def n_levels(self) -> int:
        return int(np.log2(self.n_ranks))


def _build_comm_chain(world: Communicator, n_levels: int) -> list[Communicator]:
    """comms[l] = communicator of my distributed ancestor at level l."""
    comms = [world]
    comm = world
    for l in range(1, n_levels + 1):
        bit = (world.rank >> (n_levels - l)) & 1
        comm = comm.split(color=bit)
        comms.append(comm)
    return comms


def _skeleton_points(h: HMatrix, node_id: int) -> tuple[np.ndarray, int]:
    sk = h.skeletons[node_id]
    return h.tree.points[sk.skeleton], sk.rank


def _factor_worker(
    comm: Communicator,
    h: HMatrix,
    lam: float,
    config: SolverConfig,
    checkpoint: bool = False,
    resume: dict | None = None,
) -> _RankState:
    from repro.util.flops import FlopCounter

    with FlopCounter() as rank_counter:
        state = _factor_worker_body(
            comm, h, lam, config, checkpoint=checkpoint, resume=resume
        )
    state.factor_flops = rank_counter.flops
    return state


def _factor_worker_body(
    comm: Communicator,
    h: HMatrix,
    lam: float,
    config: SolverConfig,
    checkpoint: bool = False,
    resume: dict | None = None,
) -> _RankState:
    tree = h.tree
    p = comm.size
    n_levels = int(np.log2(p))
    subtree_root = tree.node((1 << n_levels) + comm.rank)

    # ---- local phase: serial Algorithm II.2 on the owned subtree ------
    # ``resume`` carries checkpointed node factors from a previous,
    # wider launch that lost a rank: nodes a survivor already factored
    # are restored (idempotent, keyed by node id) and only the lost
    # subtree — plus the newly-merged roots no old rank owned — is
    # factorized fresh.
    local = HierarchicalFactorization(h, lam, config)
    stack = [subtree_root]
    order = []
    while stack:
        node = stack.pop()
        order.append(node)
        if not tree.is_leaf(node):
            left, right = tree.children(node)
            stack.extend((left, right))
    for node in sorted(order, key=lambda n: -n.level):
        payload = resume.get(node.id) if resume else None
        if payload is not None:
            local.restore_node_payload(payload)
        elif tree.is_leaf(node):
            local._factor_leaf(node)
        else:
            local._factor_internal(node)
    local._factored = True

    state = _RankState(
        rank=comm.rank,
        subtree_root_id=subtree_root.id,
        lo=subtree_root.lo,
        hi=subtree_root.hi,
        local=local,
    )
    if checkpoint:
        # control-plane checkpoint at the local/distributed boundary:
        # if a rank is permanently lost during the distributed phase,
        # the supervisor hands these payloads to the repartitioned
        # relaunch, which resumes from here instead of replaying logs.
        comm.checkpoint(
            {
                "subtree_root_id": subtree_root.id,
                "nodes": [local.export_node_payload(n.id) for n in order],
            }
        )
    if n_levels == 0:
        # p = 1: the "subtree" is the whole tree; build the root reduced
        # system locally through the serial path.
        local._build_reduced()
        return state

    if tree.is_leaf(subtree_root):
        phat_prev = local.leaf_factors[subtree_root.id].phat
    else:
        phat_prev = local.node_factors[subtree_root.id].phat
    if phat_prev is None:
        raise ConfigurationError(
            "distributed factorization requires every node above level "
            f"log2(p)={n_levels} to be skeletonized (no level restriction)"
        )
    state.phat_chain[n_levels] = phat_prev
    my_points = tree.points[subtree_root.lo : subtree_root.hi]
    method = SummationMethod(config.summation)
    comms = _build_comm_chain(comm, n_levels)

    # ---- distributed phase: Algorithm II.4, levels log p - 1 .. 0 -----
    for l in range(n_levels - 1, -1, -1):
        node_comm = comms[l]
        q = node_comm.size
        half_comm = comms[l + 1]
        node = tree.node(subtree_root.id >> (subtree_root.level - l))
        left_id, right_id = 2 * node.id, 2 * node.id + 1
        i_am_left = node_comm.rank < q // 2

        # skeleton exchange between {0} and {q/2}, then Bcast in halves.
        if node_comm.rank == 0:
            own = _skeleton_points(h, left_id)
            sib = node_comm.sendrecv(own, dest=q // 2, source=q // 2, tag=10 + l)
        elif node_comm.rank == q // 2:
            own = _skeleton_points(h, right_id)
            sib = node_comm.sendrecv(own, dest=0, source=0, tag=10 + l)
        else:
            sib = None
        sib_pts, s_sib = half_comm.bcast(sib, root=0)
        s_mine = h.skeletons[left_id if i_am_left else right_id].rank

        ksib = KernelSummation(
            h.kernel,
            sib_pts,
            my_points,
            method,
            norms_b=h.norms.range(subtree_root.lo, subtree_root.hi),
        )
        lstate = _LevelState(node_id=node.id, ksib=ksib, s_mine=s_mine)
        state.levels[l] = lstate

        # Gram blocks of Z: each rank contributes K_{sib~, x_i} P^_{x_i c~}.
        B_i = ksib.matvec(phat_prev)  # (s_sib, s_mine)
        B = half_comm.reduce(B_i, root=0)
        if node_comm.rank == q // 2:
            node_comm.send(B, 0, tag=20 + l)  # B = K_{l~ r} P^_{r r~}
        z_parts = None
        if node_comm.rank == 0:
            B_lr = node_comm.recv(q // 2, tag=20 + l)
            B_rl = B
            s_l = B_rl.shape[1]
            s_r = B_lr.shape[1]
            Z = np.eye(s_l + s_r)
            Z[:s_l, s_l:] += B_lr
            Z[s_l:, :s_l] += B_rl
            lstate.z_lu = lapack.lu_factor(Z)
            count_flops(2 * (s_l + s_r) ** 3 // 3, label="dist_z_lu")
            lstate.s_l, lstate.s_r = s_l, s_r
            z_parts = (s_l, s_r)

        if l == 0:
            break  # the root has no skeleton: nothing to telescope.

        # telescope P^_{x alpha~} (eq. 10 / DistSolve with no recursion).
        # {0} owns the node's projection P_{[l~ r~] alpha~}; broadcast it.
        proj_info = None
        if node_comm.rank == 0:
            proj_info = (h.skeletons[node.id].proj, z_parts[0])
        proj, s_l = node_comm.bcast(proj_info, root=0)
        my_cols = proj[:, :s_l] if i_am_left else proj[:, s_l:]
        G_i = phat_prev @ my_cols.T  # (|x_i|, s_alpha)
        count_flops(2 * phat_prev.size * proj.shape[0], label="dist_telescope")

        y_mine = _reduced_solve_dist(
            node_comm, half_comm, lstate, ksib.matvec(G_i), i_am_left, l
        )
        phat_prev = G_i - phat_prev @ y_mine
        count_flops(2 * phat_prev.size * y_mine.shape[0], label="dist_telescope")
        state.phat_chain[l] = phat_prev

    return state


def _reduced_solve_dist(
    node_comm: Communicator,
    half_comm: Communicator,
    lstate: _LevelState,
    t_i: np.ndarray,
    i_am_left: bool,
    l: int,
) -> np.ndarray:
    """Shared tail of Algorithms II.4/II.5 at one distributed node.

    Reduces each half's ``V``-contribution ``t_i`` (rows: *sibling*
    skeleton), solves ``Z y = t`` on {0}, and returns each rank's slice
    of ``y`` for its own child's skeleton.
    """
    q = node_comm.size
    t_half = half_comm.reduce(t_i, root=0)
    if node_comm.rank == q // 2:
        # right half computed rows l~ (its sibling): send t_l to {0}.
        node_comm.send(t_half, 0, tag=30 + l)
    y_half = None
    if node_comm.rank == 0:
        t_l = node_comm.recv(q // 2, tag=30 + l)
        t_r = t_half
        t = np.concatenate([t_l, t_r], axis=0)
        y = lapack.lu_solve(lstate.z_lu, t)
        k = 1 if t.ndim == 1 else t.shape[1]
        count_flops(2 * t.shape[0] ** 2 * k, label="dist_z_solve")
        node_comm.send(y[lstate.s_l :], q // 2, tag=40 + l)
        y_half = y[: lstate.s_l]
    elif node_comm.rank == q // 2:
        y_half = node_comm.recv(0, tag=40 + l)
    return half_comm.bcast(y_half, root=0)


def _solve_worker(
    comm: Communicator,
    dist: DistributedFactorization,
    u: np.ndarray,
) -> np.ndarray:
    """Algorithm II.5 (recursion unrolled bottom-up over levels)."""
    state = dist.states[comm.rank]
    tree = dist.hmatrix.tree
    n_levels = dist.n_levels
    if n_levels == 0:
        return state.local.solve(u)

    comms = _build_comm_chain(comm, n_levels)
    subtree_root = tree.node(state.subtree_root_id)
    w = state.local.solve_subtree(subtree_root, u[state.lo : state.hi])

    for l in range(n_levels - 1, -1, -1):
        node_comm = comms[l]
        half_comm = comms[l + 1]
        lstate = state.levels[l]
        i_am_left = node_comm.rank < node_comm.size // 2
        y_mine = _reduced_solve_dist(
            node_comm, half_comm, lstate, lstate.ksib.matvec(w), i_am_left, l
        )
        phat = state.phat_chain[l + 1]
        w = w - phat @ y_mine
        k = 1 if w.ndim == 1 else w.shape[1]
        count_flops(2 * phat.size * k, label="dist_correct")
    return w


def distributed_factorize(
    hmatrix: HMatrix,
    lam: float = 0.0,
    n_ranks: int = 2,
    config: SolverConfig | None = None,
    fault_plan: FaultPlan | None = None,
    backend: str | None = None,
    elastic: bool = False,
    hosts: list[str] | None = None,
    heartbeat=None,
    max_respawns: int = 2,
) -> DistributedFactorization:
    """DistFactorize (Algorithm II.4) over ``n_ranks`` virtual ranks.

    ``n_ranks`` must be a power of two and at most ``2^depth``.  Level
    restriction is not supported in the distributed path (the paper's
    distributed runs in Table III / Figure 4 are unrestricted); use the
    serial :func:`repro.solvers.factorize` for hybrid/restricted runs.

    ``fault_plan`` arms chaos injection (docs/ROBUSTNESS.md): message
    drops/corruptions/delays are retried transparently and injected rank
    crashes are recovered by respawn-with-replay; everything observed is
    recorded in the returned factorization's ``health``.

    ``backend`` selects the vMPI execution backend (``"thread"``,
    ``"process"``, ``"socket"``, or ``None`` for ``config.backend``,
    which itself defaults to the ``REPRO_VMPI_BACKEND`` environment).
    All produce bitwise-identical factors; see docs/PARALLELISM.md.

    ``elastic=True`` arms **repartitioning**: every rank checkpoints its
    subtree factors at the local/distributed boundary, and when a rank
    is *permanently* lost (crash past the respawn budget, or a
    heartbeat-confirmed hang on the socket backend) the factorization
    relaunches on ``n_ranks / 2`` ranks — each new rank owns the parent
    of two old subtrees — restoring the survivors' checkpointed nodes
    and refactorizing only the lost subtree plus the merged roots.  The
    repartition is recorded in the returned ``health`` and in the
    fabric's ``repartitions`` counter.  ``hosts``/``heartbeat`` are
    socket-backend knobs (see :func:`repro.parallel.vmpi.run_spmd`).
    """
    from repro.exceptions import RankLostError
    from repro.parallel.vmpi import resolve_backend
    config = config or SolverConfig()
    backend = resolve_backend(backend if backend is not None else config.backend)
    if config.method not in ("nlogn", "direct"):
        raise ConfigurationError(
            "distributed factorization supports the telescoping method "
            f"only; got method={config.method!r}"
        )
    if n_ranks < 1 or (n_ranks & (n_ranks - 1)) != 0:
        raise ConfigurationError(f"n_ranks must be a power of two; got {n_ranks}")
    if n_ranks > (1 << hmatrix.tree.depth):
        raise ConfigurationError(
            f"n_ranks={n_ranks} exceeds the number of level-log2(p) "
            f"subtrees (depth {hmatrix.tree.depth})"
        )

    health = SolverHealth(final_path="distributed")
    resume: dict | None = None
    lost_stats: list[CommStats] = []
    repartition_events: list[dict] = []
    while True:
        try:
            states, stats = run_spmd(
                _factor_worker,
                n_ranks,
                hmatrix,
                lam,
                config,
                fault_plan=fault_plan,
                backend=backend,
                elastic=elastic,
                hosts=hosts,
                heartbeat=heartbeat,
                max_respawns=max_respawns,
                checkpoint=elastic,
                resume=resume,
            )
            break
        except RankLostError as exc:
            if not elastic or n_ranks < 2:
                raise
            # Repartition: halve the rank count so every new rank owns
            # the parent of two old subtree roots.  Survivor checkpoints
            # seed the resume map; the dead rank's subtree (its host is
            # gone, checkpoint discarded) and the merged roots are
            # refactorized fresh.  The distributed phase re-runs
            # entirely — it is the cheap O(s^2 log^2 p) part.
            resume = dict(resume or {})
            for ckpt in exc.checkpoints.values():
                for payload in ckpt["nodes"]:
                    resume[payload["node_id"]] = payload
            if exc.stats is not None:
                lost_stats.append(exc.stats)
            event = {
                "lost_rank": exc.rank,
                "epoch": exc.epoch,
                "from_ranks": n_ranks,
                "to_ranks": n_ranks // 2,
                "restored_nodes": len(resume),
            }
            repartition_events.append(event)
            health.record("repartition", **event)
            n_ranks //= 2
            if fault_plan is not None:
                # the supervisor's own copy of the plan may not have
                # seen the victim fire (process/socket ship copies).
                fault_plan.disarm_crash()

    for lost in lost_stats:
        stats.merge(lost)
    if repartition_events:
        from repro.obs.metrics import registry

        for event in repartition_events:
            stats.record_fault("repartitions", rank=event["lost_rank"])
            # each launch already published its own counters at join;
            # the repartition itself is supervisor-side, so mirror it
            # into the registry here.
            registry().counter(
                "fabric.faults", kind="repartitions", rank=event["lost_rank"]
            ).inc(1)
    if backend in ("process", "socket"):
        # Rank states come back as unpickled copies, each dragging its
        # own HMatrix copy.  Rebind them all to the caller's instance:
        # one HMatrix in memory, and a later pickle of the whole
        # DistributedFactorization memoizes it into a single envelope.
        for state in states:
            state.local.hmatrix = hmatrix
    health.ingest_comm(stats)
    return DistributedFactorization(
        hmatrix=hmatrix,
        lam=lam,
        n_ranks=n_ranks,
        config=config,
        states=list(states),
        factor_stats=stats,
        health=health,
        backend=backend,
    )


def distributed_solve(
    dist: DistributedFactorization,
    u: np.ndarray,
    fault_plan: FaultPlan | None = None,
    backend: str | None = None,
) -> tuple[np.ndarray, CommStats]:
    """DistSolve (Algorithm II.5): ``w = (lambda I + K~)^{-1} u``.

    ``u`` is in tree order; returns ``(w, comm_stats)`` where the stats
    cover this solve's traffic only (paper: O(s log^2 p) per RHS).
    Faults observed under a ``fault_plan`` are also appended to
    ``dist.health``.  ``backend=None`` reuses the backend the
    factorization ran on (``dist.backend``).
    """
    if not dist.states:
        raise NotFactorizedError("distributed factorization has no rank states")
    u = np.asarray(u, dtype=np.float64)
    pieces, stats = run_spmd(
        _solve_worker,
        dist.n_ranks,
        dist,
        u,
        fault_plan=fault_plan,
        backend=backend if backend is not None else dist.backend,
    )
    dist.health.ingest_comm(stats)
    return np.concatenate(pieces, axis=0), stats
