"""Distributed hybrid solver (Algorithms II.6-II.8).

The paper's hybrid method for level-restricted problems, distributed:
each rank owns the subtree at level ``log p`` containing its point
slice and factorizes it up to the skeletonization frontier (which must
lie at or below level ``log p``); the coalesced reduced system
``(I + V W^)`` is solved by GMRES with *matrix-free distributed*
operators:

* ``MatVecW`` (Algorithm II.7) is embarrassingly local — every frontier
  node lives inside one rank's subtree, so ``W^ y`` touches only local
  ``P^`` blocks;
* ``MatVecV`` (Algorithm II.8) partitions by *columns*: each rank
  multiplies every frontier skeleton-row block against its own point
  slice and the results are AllReduce-summed, exactly the reduction the
  paper describes ("an AllReduce is required at the end such that all
  MPI ranks get the same output").

GMRES itself runs redundantly on every rank (identical deterministic
arithmetic on identical reduced vectors), the standard practice for
small reduced systems.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import GMRESConfig, SolverConfig
from repro.exceptions import ConfigurationError
from repro.hmatrix.hmatrix import HMatrix
from repro.kernels.summation import KernelSummation, SummationMethod
from repro.parallel.vmpi import CommStats, Communicator, FaultPlan, run_spmd
from repro.solvers.factorization import HierarchicalFactorization
from repro.solvers.gmres import gmres
from repro.solvers.recovery import SolverHealth
from repro.tree.node import Node

__all__ = ["DistributedHybrid", "distributed_hybrid_factorize", "distributed_hybrid_solve"]


@dataclass
class _HybridRankState:
    """Per-rank retained state for the distributed hybrid method."""

    rank: int
    subtree_root_id: int
    lo: int
    hi: int
    local: HierarchicalFactorization
    #: frontier nodes inside my subtree, left to right.
    my_frontier: list[Node]
    #: all frontier nodes (metadata shared via allgather).
    slices: dict[int, slice] = field(default_factory=dict)
    reduced_size: int = 0
    #: K_{S_all, x_mine}: every frontier skeleton row vs my point slice.
    vcols: KernelSummation | None = None
    #: K_{f~, f ^ mine}: own-block corrections for my frontier nodes.
    own_blocks: dict[int, KernelSummation] = field(default_factory=dict)


@dataclass
class DistributedHybrid:
    """Handle returned by :func:`distributed_hybrid_factorize`."""

    hmatrix: HMatrix
    lam: float
    n_ranks: int
    config: SolverConfig
    states: list[_HybridRankState]
    factor_stats: CommStats
    #: fault/recovery history of the launch (chaos runs; always present).
    health: SolverHealth = field(default_factory=SolverHealth)
    #: execution backend the factorization ran on; the solve reuses it.
    backend: str = "thread"


def _hybrid_factor_worker(
    comm: Communicator, h: HMatrix, lam: float, config: SolverConfig
) -> _HybridRankState:
    tree = h.tree
    n_levels = int(np.log2(comm.size))
    subtree_root = tree.node((1 << n_levels) + comm.rank)

    my_frontier = [
        f for f in h.frontier if subtree_root.lo <= f.lo and f.hi <= subtree_root.hi
    ]
    covered = sum(f.size for f in my_frontier)
    if covered != subtree_root.size:
        raise ConfigurationError(
            "distributed hybrid requires the skeletonization frontier at "
            f"or below level log2(p) = {n_levels}; rank {comm.rank}'s "
            "subtree is not fully covered by frontier nodes"
        )

    # local partial factorization: frontier subtrees inside my slice.
    local = HierarchicalFactorization(h, lam, config)
    order = []
    stack = list(my_frontier)
    while stack:
        node = stack.pop()
        order.append(node)
        if not tree.is_leaf(node):
            stack.extend(tree.children(node))
    for node in sorted(order, key=lambda n: -n.level):
        if tree.is_leaf(node):
            local._factor_leaf(node)
        else:
            local._factor_internal(node)
    local._factored = True

    state = _HybridRankState(
        rank=comm.rank,
        subtree_root_id=subtree_root.id,
        lo=subtree_root.lo,
        hi=subtree_root.hi,
        local=local,
        my_frontier=my_frontier,
    )

    # share frontier skeletons: (node_id, skeleton point coords, rank s).
    mine = [
        (f.id, h.tree.points[h.skeletons[f.id].skeleton], h.skeletons[f.id].rank)
        for f in my_frontier
    ]
    everyone = comm.allgather(mine)
    flat: list[tuple[int, np.ndarray, int]] = [
        item for group in everyone for item in group
    ]
    flat.sort(key=lambda item: h.tree.node(item[0]).lo)

    offset = 0
    skel_stacks = []
    for nid, coords, s in flat:
        state.slices[nid] = slice(offset, offset + s)
        skel_stacks.append(coords)
        offset += s
    state.reduced_size = offset

    my_points = tree.points[subtree_root.lo : subtree_root.hi]
    method = SummationMethod(config.summation)
    state.vcols = KernelSummation(
        h.kernel,
        np.vstack(skel_stacks),
        my_points,
        method,
        norms_b=h.norms.range(subtree_root.lo, subtree_root.hi),
    )
    for f in my_frontier:
        sk = h.skeletons[f.id]
        state.own_blocks[f.id] = KernelSummation(
            h.kernel,
            h.tree.points[sk.skeleton],
            h.tree.node_points(f),
            method,
            norms_a=h.norms.gather(sk.skeleton),
            norms_b=h.norms.node(f),
        )
    return state


def _apply_v_dist(
    comm: Communicator, state: _HybridRankState, x_mine: np.ndarray
) -> np.ndarray:
    """Algorithm II.8: V x with column-partitioned blocks + AllReduce."""
    t_local = state.vcols.matvec(x_mine)
    # remove the diagonal (own-node) contributions for my frontier nodes.
    for f in state.my_frontier:
        t_local[state.slices[f.id]] -= state.own_blocks[f.id].matvec(
            x_mine[f.lo - state.lo : f.hi - state.lo]
        )
    return comm.allreduce(t_local)


def _apply_what_local(state: _HybridRankState, y: np.ndarray) -> np.ndarray:
    """Algorithm II.7: W^ y restricted to my point slice (purely local)."""
    w = np.zeros(state.hi - state.lo)
    for f in state.my_frontier:
        phat = state.local._phat(f)
        w[f.lo - state.lo : f.hi - state.lo] = phat @ y[state.slices[f.id]]
    return w


def _hybrid_solve_worker(
    comm: Communicator, dist: DistributedHybrid, u: np.ndarray
) -> np.ndarray:
    state = dist.states[comm.rank]
    tree = dist.hmatrix.tree
    u_mine = u[state.lo : state.hi]

    # D^{-1} u on my frontier subtrees (DistSolve's local case).
    x0 = np.empty_like(u_mine)
    for f in state.my_frontier:
        x0[f.lo - state.lo : f.hi - state.lo] = state.local.solve_subtree(
            f, u_mine[f.lo - state.lo : f.hi - state.lo]
        )

    t = _apply_v_dist(comm, state, x0)

    # redundant GMRES on the reduced system; the operator's only
    # communication is the AllReduce inside MatVecV, entered in lockstep
    # by every rank.
    def reduced_matvec(y: np.ndarray) -> np.ndarray:
        w_mine = _apply_what_local(state, y)
        return y + _apply_v_dist(comm, state, w_mine)

    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        res = gmres(reduced_matvec, t, dist.config.gmres)

    return x0 - _apply_what_local(state, res.x)


def distributed_hybrid_factorize(
    hmatrix: HMatrix,
    lam: float = 0.0,
    n_ranks: int = 2,
    config: SolverConfig | None = None,
    fault_plan: FaultPlan | None = None,
    backend: str | None = None,
    hosts: list[str] | None = None,
    heartbeat=None,
) -> DistributedHybrid:
    """Distributed partial factorization up to the frontier.

    Requires ``n_ranks`` a power of two with ``log2(n_ranks)`` at or
    above... strictly: the frontier must sit at or below level
    ``log2(n_ranks)`` so every frontier subtree is rank-local (the
    paper's Figure 2 layout).

    ``backend`` selects the vMPI execution backend (``None`` defers to
    ``config.backend`` and the ``REPRO_VMPI_BACKEND`` environment);
    ``hosts``/``heartbeat`` are socket-backend knobs (see
    :func:`repro.parallel.vmpi.run_spmd`).  Elastic repartitioning is
    a full-telescoping feature — the hybrid's frontier ownership does
    not halve cleanly — so permanent rank loss here stays fatal.
    """
    from repro.parallel.vmpi import resolve_backend

    config = config or SolverConfig(method="hybrid")
    backend = resolve_backend(backend if backend is not None else config.backend)
    if config.method != "hybrid":
        raise ConfigurationError(
            f"distributed hybrid requires method='hybrid'; got {config.method!r}"
        )
    if n_ranks < 1 or (n_ranks & (n_ranks - 1)) != 0:
        raise ConfigurationError(f"n_ranks must be a power of two; got {n_ranks}")
    if n_ranks > (1 << hmatrix.tree.depth):
        raise ConfigurationError("n_ranks exceeds the number of subtrees")
    states, stats = run_spmd(
        _hybrid_factor_worker,
        n_ranks,
        hmatrix,
        lam,
        config,
        fault_plan=fault_plan,
        backend=backend,
        hosts=hosts,
        heartbeat=heartbeat,
    )
    if backend in ("process", "socket"):
        # rebind the unpickled per-rank HMatrix copies to the caller's
        # instance (see distributed_factorize).
        for state in states:
            state.local.hmatrix = hmatrix
    health = SolverHealth(final_path="distributed-hybrid")
    health.ingest_comm(stats)
    return DistributedHybrid(
        hmatrix=hmatrix,
        lam=lam,
        n_ranks=n_ranks,
        config=config,
        states=list(states),
        factor_stats=stats,
        health=health,
        backend=backend,
    )


def distributed_hybrid_solve(
    dist: DistributedHybrid,
    u: np.ndarray,
    fault_plan: FaultPlan | None = None,
    backend: str | None = None,
) -> tuple[np.ndarray, CommStats]:
    """HybridSolve (Algorithm II.6) across the virtual ranks.

    ``backend=None`` reuses the backend the factorization ran on.
    """
    u = np.asarray(u, dtype=np.float64)
    if u.ndim != 1:
        raise ValueError("distributed hybrid solve expects a single RHS")
    pieces, stats = run_spmd(
        _hybrid_solve_worker,
        dist.n_ranks,
        dist,
        u,
        fault_plan=fault_plan,
        backend=backend if backend is not None else dist.backend,
    )
    dist.health.ingest_comm(stats)
    return np.concatenate(pieces), stats
