"""Task-parallel tree traversal (the paper's stated future work).

From the conclusions: *"we would like to introduce task parallelism in
the tree traversal to address the load balancing issue.  While adaptive
ranks ... are used, each treenode may have different workload.  In this
case, scheduling is important to avoid the critical path."*

This module implements that:

* :func:`build_factor_dag` — the factorization as a task DAG: one task
  per node at/below the frontier (child tasks precede the parent, which
  matches the data dependencies of Algorithm II.2: a node needs its
  children's ``P^``), plus one coalescing task for the frontier system.
  Task costs are the flop estimates implied by the actual skeleton
  ranks, so adaptive-rank imbalance is visible in the DAG.
* :func:`simulate_schedule` — event-driven simulation of ``p`` workers
  under two policies: ``"level"`` (the paper's current implementation:
  level-by-level traversal with a barrier per level) and ``"task"``
  (list scheduling by critical-path priority, no barriers).  Returns
  makespan and utilization, quantifying what task parallelism buys.
* :func:`execute_factorization` — a real executor: runs the node tasks
  of :func:`repro.solvers.factorize` on a thread pool respecting the
  DAG, producing a factorization identical to the serial one.
"""

from __future__ import annotations

import heapq
import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

import numpy as np

from repro.config import SolverConfig
from repro.exceptions import (
    ConfigurationError,
    DeadlineExceededError,
    DeadlockError,
)
from repro.hmatrix.hmatrix import HMatrix
from repro.solvers.factorization import HierarchicalFactorization

__all__ = [
    "FactorTask",
    "TaskDAG",
    "ScheduleResult",
    "build_factor_dag",
    "simulate_schedule",
    "execute_factorization",
]

#: task id of the coalesced frontier stage (tree node ids start at 1,
#: and 0 is never a node).
REDUCED_TASK = 0


@dataclass
class FactorTask:
    """One schedulable unit of the factorization.

    ``cost`` is in flops (modeled from the node's size and the actual
    skeleton ranks); ``deps`` are task ids that must complete first.
    """

    task_id: int
    level: int
    cost: float
    deps: tuple[int, ...]


@dataclass
class TaskDAG:
    """The factorization DAG plus derived scheduling metadata."""

    tasks: dict[int, FactorTask]

    def successors(self) -> dict[int, list[int]]:
        succ: dict[int, list[int]] = {tid: [] for tid in self.tasks}
        for task in self.tasks.values():
            for dep in task.deps:
                succ[dep].append(task.task_id)
        return succ

    def critical_path_priority(self) -> dict[int, float]:
        """Bottom-level (task cost + longest downstream chain) per task."""
        succ = self.successors()
        priority: dict[int, float] = {}
        # reverse topological order: lower level = later in the DAG
        # (parents above, reduced task at level -1 last), so ascending
        # level order visits consumers before their producers.
        for task in sorted(self.tasks.values(), key=lambda t: t.level):
            downstream = [priority[s] for s in succ[task.task_id] if s in priority]
            priority[task.task_id] = task.cost + (max(downstream) if downstream else 0.0)
        return priority

    @property
    def total_cost(self) -> float:
        return sum(t.cost for t in self.tasks.values())

    @property
    def critical_path_cost(self) -> float:
        return max(self.critical_path_priority().values())


@dataclass
class ScheduleResult:
    """Outcome of a schedule simulation."""

    policy: str
    n_workers: int
    makespan: float
    total_cost: float
    #: per-worker busy time / makespan.
    utilization: list[float] = field(default_factory=list)

    @property
    def speedup_vs_serial(self) -> float:
        return self.total_cost / self.makespan if self.makespan > 0 else 1.0

    @property
    def efficiency(self) -> float:
        return self.speedup_vs_serial / self.n_workers


def _node_cost(h: HMatrix, node) -> float:
    """Modeled flops of factoring one node (Algorithm II.2 step)."""
    tree = h.tree
    sset = h.skeletons
    if tree.is_leaf(node):
        m = node.size
        s = sset[node.id].rank if sset.is_skeletonized(node.id) else 0
        return (2.0 / 3.0) * m**3 + 2.0 * m * m * s
    left, right = tree.children(node)
    s_l = sset[left.id].rank
    s_r = sset[right.id].rank
    s2 = s_l + s_r
    cost = 2.0 * s_l * s_r * (left.size + right.size)  # V W Gram blocks
    cost += (2.0 / 3.0) * s2**3  # Z LU
    if sset.is_skeletonized(node.id):
        s_a = sset[node.id].rank
        cost += 4.0 * s_a * node.size * max(s_l, s_r)  # telescoping (eq. 10)
    return cost


def build_factor_dag(h: HMatrix) -> TaskDAG:
    """Task DAG of the factorization over ``h`` (adaptive ranks included)."""
    tasks: dict[int, FactorTask] = {}
    tree = h.tree
    for node in h._nodes_at_or_below_frontier():
        deps: tuple[int, ...] = ()
        if not tree.is_leaf(node):
            deps = (node.left_id, node.right_id)
        tasks[node.id] = FactorTask(
            task_id=node.id, level=node.level, cost=_node_cost(h, node), deps=deps
        )
    # the coalesced frontier system waits for every frontier node.
    m_total = h.skeletons.total_frontier_rank() if h.skeletons.skeletons else 0
    reduced_cost = (2.0 / 3.0) * m_total**3 + sum(
        2.0 * m_total * f.size * h.skeletons[f.id].rank for f in h.frontier
    ) if m_total else 0.0
    tasks[REDUCED_TASK] = FactorTask(
        task_id=REDUCED_TASK,
        level=-1,
        cost=reduced_cost,
        deps=tuple(f.id for f in h.frontier),
    )
    return TaskDAG(tasks=tasks)


def simulate_schedule(
    dag: TaskDAG, n_workers: int, policy: str = "task"
) -> ScheduleResult:
    """Event-driven simulation of the DAG on ``n_workers`` workers.

    ``policy="level"`` — the paper's current scheme: levels are
    processed deepest-first with a barrier between levels; within a
    level, ready tasks go to the earliest-free worker, longest first.

    ``policy="task"`` — dependency-driven list scheduling: whenever a
    worker frees up it takes the ready task with the largest
    critical-path (bottom-level) priority.  No barriers, so a cheap
    subtree can race ahead into its ancestors while an expensive
    sibling subtree is still being processed.
    """
    if n_workers < 1:
        raise ConfigurationError("n_workers must be >= 1")
    if policy not in ("task", "level"):
        raise ConfigurationError(f"unknown policy {policy!r}")

    busy = [0.0] * n_workers

    if policy == "level":
        makespan = 0.0
        levels = sorted({t.level for t in dag.tasks.values()}, reverse=True)
        for level in levels:
            group = sorted(
                (t for t in dag.tasks.values() if t.level == level),
                key=lambda t: -t.cost,
            )
            finish = [0.0] * n_workers  # within-level worker clocks
            for task in group:
                w = int(np.argmin(finish))
                finish[w] += task.cost
                busy[w] += task.cost
            makespan += max(finish)  # barrier: wait for the whole level
        util = [b / makespan if makespan else 0.0 for b in busy]
        return ScheduleResult(
            policy=policy,
            n_workers=n_workers,
            makespan=makespan,
            total_cost=dag.total_cost,
            utilization=util,
        )

    # --- dependency-driven list scheduling ------------------------------
    priority = dag.critical_path_priority()
    succ = dag.successors()
    pending = {tid: len(t.deps) for tid, t in dag.tasks.items()}
    ready = [
        (-priority[tid], tid) for tid, cnt in pending.items() if cnt == 0
    ]
    heapq.heapify(ready)
    # (free_time, worker_id) heap.
    workers = [(0.0, w) for w in range(n_workers)]
    heapq.heapify(workers)
    # tasks finishing in the future: (finish_time, task_id).
    in_flight: list[tuple[float, int]] = []
    makespan = 0.0

    while ready or in_flight:
        if ready:
            free_at, w = heapq.heappop(workers)
            _neg, tid = heapq.heappop(ready)
            # the task may not be startable before its deps finished;
            # deps are resolved through the in_flight retirement below,
            # so anything in `ready` is dependency-free already.
            start = free_at
            finish = start + dag.tasks[tid].cost
            busy[w] += dag.tasks[tid].cost
            heapq.heappush(workers, (finish, w))
            heapq.heappush(in_flight, (finish, tid))
            makespan = max(makespan, finish)
        else:
            # no ready task: retire the earliest in-flight one.
            finish, tid = heapq.heappop(in_flight)
            for s in succ[tid]:
                pending[s] -= 1
                if pending[s] == 0:
                    heapq.heappush(ready, (-priority[s], s))
            # workers idle until `finish` if they freed earlier.
            new_workers = []
            while workers:
                t_free, w = heapq.heappop(workers)
                new_workers.append((max(t_free, finish), w))
            for item in new_workers:
                heapq.heappush(workers, item)
            continue
        # retire any tasks that finished before the next dispatch point.
        while in_flight and in_flight[0][0] <= workers[0][0]:
            _t, tid_done = heapq.heappop(in_flight)
            for s in succ[tid_done]:
                pending[s] -= 1
                if pending[s] == 0:
                    heapq.heappush(ready, (-priority[s], s))

    util = [b / makespan if makespan else 0.0 for b in busy]
    return ScheduleResult(
        policy="task",
        n_workers=n_workers,
        makespan=makespan,
        total_cost=dag.total_cost,
        utilization=util,
    )


def execute_factorization(
    hmatrix: HMatrix,
    lam: float = 0.0,
    config: SolverConfig | None = None,
    *,
    n_workers: int = 4,
    timeout: float = 600.0,
    backend: str | None = None,
) -> HierarchicalFactorization:
    """Run the factorization with real dependency-driven task parallelism.

    Produces a :class:`HierarchicalFactorization` identical (to roundoff)
    to the serial :func:`repro.solvers.factorize`; node tasks execute as
    soon as their children finish.

    Two backends (``backend=None`` defers to ``config.backend`` and the
    ``REPRO_VMPI_BACKEND`` environment; docs/PARALLELISM.md):

    * ``"thread"`` — a thread pool over the shared factorization
      (numpy/LAPACK release the GIL, so heavy nodes genuinely overlap).
    * ``"process"`` — a spawn-based process pool: each worker holds its
      own :class:`HierarchicalFactorization` built from one
      shared-memory copy of the problem; node tasks ship child factors
      in and finished factors out as shared-memory payload envelopes
      (:mod:`repro.parallel.vmpi.shm`), and the parent re-assembles the
      full factorization plus the workers' stability records and flop
      counts.  The numerical recovery ladder
      (``config.recovery.enabled``) is thread-backend-only: its lambda
      bumps mutate cross-node state that cannot be shared between
      worker processes.

    ``timeout`` is the deadlock watchdog: if the DAG fails to complete
    within it (a lost wakeup, a dependency cycle from a corrupted DAG),
    a :class:`~repro.exceptions.DeadlockError` is raised instead of
    silently proceeding with a half-built factorization.  An installed
    :func:`repro.resilience.deadline_scope` deadline is propagated into
    every worker (contextvars do not cross thread spawns on their own),
    checked at task start, and additionally clamps the watchdog.
    """
    from repro.parallel.vmpi import resolve_backend
    from repro.resilience.deadline import current_deadline, deadline_scope

    config = config or SolverConfig()
    backend = resolve_backend(backend if backend is not None else config.backend)
    if timeout <= 0:
        raise ConfigurationError(f"timeout must be > 0; got {timeout}")
    dl = current_deadline()
    if config.method == "nlog2n":
        raise ConfigurationError(
            "task-parallel execution supports the telescoping methods "
            "(the [36] recursion re-enters whole subtrees)"
        )
    fact = HierarchicalFactorization(hmatrix, lam, config)
    tree = hmatrix.tree
    if tree.depth == 0:
        fact._factor_leaf(tree.root)
        fact._factored = True
        return fact

    if backend in ("process", "socket"):
        # the task DAG has no message fabric — "socket" degrades to the
        # process pool (same workers, same shm envelopes); the socket
        # transport only matters for SPMD rank programs.
        return _execute_factorization_processes(
            fact, hmatrix, lam, config, n_workers=n_workers, timeout=timeout
        )

    dag = build_factor_dag(hmatrix)
    succ = dag.successors()
    pending = {tid: len(t.deps) for tid, t in dag.tasks.items()}
    lock = threading.Lock()
    done = threading.Event()
    errors: list[BaseException] = []

    def run_task(tid: int) -> None:
        try:
            with deadline_scope(dl):
                if dl is not None:
                    dl.check(f"taskdag.task({tid})")
                if tid == REDUCED_TASK:
                    fact._build_reduced()
                else:
                    node = tree.node(tid)
                    if tree.is_leaf(node):
                        fact._factor_leaf(node)
                    else:
                        fact._factor_internal(node)
        except BaseException as exc:  # noqa: BLE001 - propagate to caller
            errors.append(exc)
            done.set()
            return
        newly_ready = []
        with lock:
            for s in succ[tid]:
                pending[s] -= 1
                if pending[s] == 0:
                    newly_ready.append(s)
            remaining = sum(pending.values())
        for s in newly_ready:
            pool.submit(run_task, s)
        if remaining == 0 and not newly_ready and tid == REDUCED_TASK:
            done.set()

    effective = timeout
    if dl is not None and dl.remaining() != float("inf"):
        # no point watching longer than the budget itself allows.
        effective = min(timeout, dl.remaining() + 5.0)

    # no `with` block: the executor's __exit__ joins worker threads, so
    # a genuinely hung DAG would block there forever and the watchdog
    # below could never fire.
    ok = False
    pool = ThreadPoolExecutor(max_workers=max(1, n_workers))
    try:
        for tid, cnt in pending.items():
            if cnt == 0:
                pool.submit(run_task, tid)
        ok = done.wait(timeout=effective)
    finally:
        pool.shutdown(wait=ok, cancel_futures=not ok)
    if errors:
        raise errors[0]
    if not ok:
        if dl is not None and dl.expired:
            raise DeadlineExceededError(
                f"task-parallel factorization exceeded its deadline "
                f"(watchdog after {effective:.1f}s)"
            )
        raise DeadlockError(
            f"task-parallel factorization stalled: {sum(pending.values())} "
            f"unresolved dependencies after {effective:.1f}s (lost wakeup "
            "or cyclic DAG); refusing to proceed with a partial factorization"
        )

    fact._factored = True
    fact.stability.warn_if_unstable()
    return fact


# ----------------------------------------------------------------------
# process backend: spawn-based pool with shared-memory payload transport
# ----------------------------------------------------------------------

#: per-worker-process state installed by :func:`_dag_worker_init`.
_DAG_STATE: dict = {}


def _dag_worker_init(prog_env: dict, deadline_s: float | None) -> None:
    """Pool initializer: build this worker's factorization context.

    ``prog_env`` is one shared-memory envelope of ``(hmatrix, lam,
    config)`` packed once by the parent — every worker attaches the same
    segments instead of receiving its own pickled copy of the point
    coordinates and kernel blocks through a pipe.
    """
    from repro.parallel.vmpi import shm
    from repro.resilience.deadline import Deadline

    hmatrix, lam, config = shm.unpack(prog_env)
    _DAG_STATE["fact"] = HierarchicalFactorization(hmatrix, lam, config)
    _DAG_STATE["deadline"] = (
        Deadline(deadline_s) if deadline_s is not None else None
    )


def _dag_run_node(tid: int, child_envs: list) -> dict:
    """Factor one node in a worker process; returns a payload envelope.

    ``child_envs`` carry the children's factors (this worker may not
    have factored them); restore is idempotent, so a worker that *did*
    factor a child locally just unlinks the shipped copy.
    """
    from repro.parallel.vmpi import shm
    from repro.util.flops import FlopCounter

    fact = _DAG_STATE["fact"]
    dl = _DAG_STATE["deadline"]
    if dl is not None:
        dl.check(f"taskdag.task({tid})")
    for env in child_envs:
        fact.restore_node_payload(shm.unpack(env, unlink=True))
    tree = fact.hmatrix.tree
    node = tree.node(tid)
    with FlopCounter() as counter:
        if tree.is_leaf(node):
            fact._factor_leaf(node)
        else:
            fact._factor_internal(node)
    payload = fact.export_node_payload(tid)
    payload["flops"] = counter.flops
    payload["by_label"] = dict(counter.by_label)
    return shm.pack(payload)


def _execute_factorization_processes(
    fact: HierarchicalFactorization,
    hmatrix: HMatrix,
    lam: float,
    config: SolverConfig,
    *,
    n_workers: int,
    timeout: float,
) -> HierarchicalFactorization:
    """DAG execution on a spawn-based process pool (true multi-core).

    The parent is the scheduler: it submits node tasks as their
    children complete, transplants each finished payload into its own
    factorization, forwards the payload envelope to the node's parent
    task (single downstream consumer — the tree parent — unlinks it),
    and runs the coalesced frontier stage itself.
    """
    import multiprocessing as mp
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

    from repro.parallel.vmpi import shm
    from repro.resilience.deadline import current_deadline
    from repro.util.flops import current_counter

    if config.recovery.enabled:
        raise ConfigurationError(
            "the numerical recovery ladder is not supported on the "
            "process backend (lambda bumps mutate cross-node state); "
            "use backend='thread' with recovery, or disable recovery"
        )
    dl = current_deadline()
    effective = timeout
    deadline_s: float | None = None
    if dl is not None and dl.remaining() != float("inf"):
        deadline_s = dl.remaining()
        effective = min(timeout, deadline_s + 5.0)

    tree = hmatrix.tree
    dag = build_factor_dag(hmatrix)
    succ = dag.successors()
    pending = {tid: len(t.deps) for tid, t in dag.tasks.items()}
    n_node_tasks = len(dag.tasks) - 1  # REDUCED_TASK runs in the parent
    counter = current_counter()

    prog_env = shm.pack((hmatrix, lam, config))
    envs: dict[int, dict] = {}  # finished node -> its payload envelope
    ctx = mp.get_context("spawn")
    pool = ProcessPoolExecutor(
        max_workers=max(1, n_workers),
        mp_context=ctx,
        initializer=_dag_worker_init,
        initargs=(prog_env, deadline_s),
    )
    # future -> (task id, the child envelopes handed to that task) —
    # kept so an aborted launch can free envelopes whose consuming task
    # was cancelled before it ran (free is idempotent for the rest).
    futures: dict = {}

    def submit(tid: int) -> None:
        node = tree.node(tid)
        child_envs = []
        if not tree.is_leaf(node):
            child_envs = [envs.pop(cid) for cid in (node.left_id, node.right_id)]
        futures[pool.submit(_dag_run_node, tid, child_envs)] = (tid, child_envs)

    completed = 0
    ok = False
    try:
        for tid, cnt in pending.items():
            if cnt == 0 and tid != REDUCED_TASK:
                submit(tid)
        while completed < n_node_tasks:
            done_set, _ = wait(
                futures, timeout=effective, return_when=FIRST_COMPLETED
            )
            if not done_set:
                if dl is not None and dl.expired:
                    raise DeadlineExceededError(
                        f"task-parallel factorization exceeded its deadline "
                        f"(watchdog after {effective:.1f}s)"
                    )
                raise DeadlockError(
                    f"task-parallel factorization stalled: "
                    f"{n_node_tasks - completed} node tasks unfinished "
                    f"after {effective:.1f}s; refusing to proceed with a "
                    "partial factorization"
                )
            for fut in done_set:
                tid, _consumed = futures.pop(fut)
                env = fut.result()  # re-raises worker-side exceptions
                payload = shm.unpack(env)
                if counter is not None:
                    labeled = 0
                    for label, n in payload["by_label"].items():
                        counter.add_flops(n, label)
                        labeled += n
                    counter.add_flops(payload["flops"] - labeled)
                fact.restore_node_payload(payload)
                envs[tid] = env
                completed += 1
                for s in succ[tid]:
                    pending[s] -= 1
                    if pending[s] == 0 and s != REDUCED_TASK:
                        submit(s)
        # the coalesced frontier system is built in the parent (it needs
        # the H-matrix's cached sibling blocks, which live here anyway).
        fact._build_reduced()
        ok = True
    finally:
        # success: wait for workers so nobody is still attached to the
        # program envelope; failure: cancel what never started and free
        # the envelopes its tasks would have consumed.
        pool.shutdown(wait=ok, cancel_futures=not ok)
        shm.free(prog_env)
        for env in envs.values():
            shm.free(env)
        if not ok:
            for _tid, child_envs in futures.values():
                for env in child_envs:
                    shm.free(env)

    fact._factored = True
    fact.stability.warn_if_unstable()
    return fact
