"""Configuration dataclasses for the tree, skeletonization, and solver.

The parameter names mirror the paper's notation:

* ``m`` — leaf node size (``leaf_size``)
* ``s`` / ``smax`` — (maximum) skeleton size (``rank`` / ``max_rank``)
* ``tau`` — relative tolerance for adaptive rank selection
* ``kappa`` — number of nearest neighbors used for skeletonization
  sampling (``num_neighbors``)
* ``L`` — level restriction (``level_restriction``)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConfigurationError

__all__ = [
    "TreeConfig",
    "SkeletonConfig",
    "SolverConfig",
    "GMRESConfig",
    "RecoveryConfig",
    "ResilienceConfig",
]


@dataclass(frozen=True)
class TreeConfig:
    """Ball-tree construction parameters (paper section II-A).

    Attributes
    ----------
    leaf_size:
        ``m``: recursion stops when a node holds at most this many
        points.  All leaves end up at the same level because splits are
        median (equal-size) splits.
    seed:
        Seed for the randomized choice of splitting directions.
    """

    leaf_size: int = 64
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.leaf_size < 1:
            raise ConfigurationError(f"leaf_size must be >= 1; got {self.leaf_size}")


@dataclass(frozen=True)
class SkeletonConfig:
    """Skeletonization (ASKIT) parameters (paper section II-A).

    Attributes
    ----------
    rank:
        Fixed skeleton size ``s``.  If ``None``, the rank is chosen
        adaptively per node from ``tau`` (capped at ``max_rank``).
    max_rank:
        ``smax``: hard cap on the skeleton size.
    tau:
        Adaptive-rank tolerance: the rank is the smallest ``s`` with
        ``sigma_{s+1}/sigma_1 < tau`` estimated from the pivoted-QR
        diagonal.
    num_neighbors:
        ``kappa``: per-point near neighbors blended into the row sample
        used by the interpolative decomposition.
    num_samples:
        Total size of the sampled row set ``S'`` (neighbors + uniform).
    level_restriction:
        ``L``: nodes at tree level < L are never skeletonized; the
        skeletonization frontier sits at level L (or deeper, if adaptive
        stopping also triggers).  ``0`` disables restriction: everything
        but the root is skeletonized.
    adaptive_stop:
        If True, stop skeletonizing a node when the ID achieves no
        compression (``alpha~ = l~ u r~``), pushing the frontier down
        adaptively as described in the paper's "level restriction" notes.
    seed:
        Seed for sampling.
    """

    rank: int | None = None
    max_rank: int = 256
    tau: float = 1e-5
    num_neighbors: int = 32
    num_samples: int = 512
    level_restriction: int = 0
    adaptive_stop: bool = False
    seed: int | None = 0

    def __post_init__(self) -> None:
        if self.rank is not None and self.rank < 1:
            raise ConfigurationError(f"rank must be >= 1; got {self.rank}")
        if self.max_rank < 1:
            raise ConfigurationError(f"max_rank must be >= 1; got {self.max_rank}")
        if not (0.0 < self.tau < 1.0):
            raise ConfigurationError(f"tau must be in (0, 1); got {self.tau}")
        if self.num_neighbors < 0:
            raise ConfigurationError("num_neighbors must be >= 0")
        if self.num_samples < 1:
            raise ConfigurationError("num_samples must be >= 1")
        if self.level_restriction < 0:
            raise ConfigurationError("level_restriction must be >= 0")

    @property
    def effective_rank_cap(self) -> int:
        return self.rank if self.rank is not None else self.max_rank


@dataclass(frozen=True)
class GMRESConfig:
    """Krylov parameters for the hybrid solver and iterative baselines."""

    tol: float = 1e-10
    max_iters: int = 200
    restart: int | None = None
    reorthogonalize: bool = True

    def __post_init__(self) -> None:
        if not (0.0 < self.tol < 1.0):
            raise ConfigurationError(f"tol must be in (0, 1); got {self.tol}")
        if self.max_iters < 1:
            raise ConfigurationError("max_iters must be >= 1")
        if self.restart is not None and self.restart < 1:
            raise ConfigurationError("restart must be >= 1 or None")


@dataclass(frozen=True)
class RecoveryConfig:
    """Numerical recovery ladder (docs/ROBUSTNESS.md).

    When ``enabled``, blocks whose reciprocal condition estimate falls
    below ``rcond_breakdown`` during factorization trigger escalation
    instead of a warning: first a per-subtree lambda bump
    (re-factorizing just the offending subtree), then — via
    :func:`repro.solvers.recovery.robust_factorize` — a hybrid
    factorization with the frontier moved one level down, then plain
    preconditioned GMRES on ``lambda I + K~``.  Every rung taken is
    recorded in a :class:`repro.solvers.recovery.SolverHealth` report.

    Attributes
    ----------
    enabled:
        Off by default: plain :func:`repro.solvers.factorize` keeps its
        detect-and-warn behavior (paper section III) unless recovery is
        requested.
    rcond_breakdown:
        rcond below this is a *breakdown*, not merely ill-conditioning
        (the warn threshold ``cond_threshold`` is separate and softer).
    max_lambda_bumps:
        Ladder-rung-1 budget: attempts at bumping lambda on the
        offending diagonal blocks before escalating.
    lambda_bump0:
        First bump, relative to the 1-norm of the leaf block; each
        further attempt multiplies it by ``lambda_bump_factor``.
    allow_frontier_fallback / allow_iterative_fallback:
        Gate rungs 2 and 3.  With both off, exhaustion raises
        :class:`~repro.exceptions.RecoveryExhaustedError`.
    solve_residual_limit:
        :func:`repro.solvers.recovery.robust_solve` escalates to the
        iterative rung when the verified relative residual of a solve
        exceeds this.
    """

    enabled: bool = False
    rcond_breakdown: float = 1e-13
    max_lambda_bumps: int = 3
    lambda_bump0: float = 1e-12
    lambda_bump_factor: float = 100.0
    allow_frontier_fallback: bool = True
    allow_iterative_fallback: bool = True
    solve_residual_limit: float = 1e-6

    def __post_init__(self) -> None:
        if not (0.0 < self.rcond_breakdown < 1.0):
            raise ConfigurationError(
                f"rcond_breakdown must be in (0, 1); got {self.rcond_breakdown}"
            )
        if self.max_lambda_bumps < 1:
            raise ConfigurationError("max_lambda_bumps must be >= 1")
        if self.lambda_bump0 <= 0.0:
            raise ConfigurationError("lambda_bump0 must be > 0")
        if self.lambda_bump_factor < 1.0:
            raise ConfigurationError("lambda_bump_factor must be >= 1")
        if self.solve_residual_limit <= 0.0:
            raise ConfigurationError("solve_residual_limit must be > 0")


@dataclass(frozen=True)
class ResilienceConfig:
    """Deadline-aware execution and checkpoint/restart (docs/ROBUSTNESS.md).

    When ``deadline_seconds`` (wall-clock, monotonic) or ``work_budget``
    (abstract units: one per node skeletonization / node factorization /
    Krylov iteration) is set, the facade installs a
    :class:`repro.resilience.Deadline` around ``fit``/``factorize``/
    ``solve``.  Cooperative checks at tree-node, factorization-level,
    and solver-iteration granularity then bound how far past the budget
    a run can go.

    With ``degrade`` on (the default), running out of budget steps down
    a ladder instead of raising:

    1. **coarsen** — skeletonization multiplies ``tau`` by
       ``coarsen_tau_factor`` each time deadline pressure crosses a
       threshold (first at ``coarsen_pressure``);
    2. **freeze-frontier** — factorization stops at the last completed
       level and the solve finishes with the hybrid GMRES path on the
       frozen frontier;
    3. **iterative** — preconditioned GMRES on ``lambda I + K~``.

    With ``degrade`` off, budget exhaustion raises
    :class:`~repro.exceptions.DeadlineExceededError`.

    ``checkpoint_dir`` enables the versioned on-disk ``repro.checkpoint/v1``
    format: a snapshot after skeletonization and after each completed
    factorization level, so a killed run resumes from the last completed
    level via :meth:`FastKernelSolver.resume`.

    Attributes
    ----------
    deadline_seconds:
        Wall-clock budget for the whole fit+factorize+solve pipeline
        (``None`` = unlimited).
    work_budget:
        Deterministic work-unit budget (``None`` = unlimited).
    checkpoint_dir:
        Directory for ``repro.checkpoint/v1`` snapshots (``None`` = off).
    degrade:
        Step down the degradation ladder under budget pressure instead
        of raising.
    coarsen_pressure:
        Fraction of the budget at which skeletonization starts
        coarsening ``tau`` (rung 1).
    coarsen_tau_factor:
        Multiplier applied to ``tau`` per coarsening step.
    freeze_frontier_cap:
        Rung 2 refuses to freeze a frontier shallower than this level
        (too-shallow frontiers make the reduced system as big as the
        problem); below the cap it escalates straight to rung 3.
    """

    deadline_seconds: float | None = None
    work_budget: int | None = None
    checkpoint_dir: str | None = None
    degrade: bool = True
    coarsen_pressure: float = 0.5
    coarsen_tau_factor: float = 10.0
    freeze_frontier_cap: int = 1

    def __post_init__(self) -> None:
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigurationError(
                f"deadline_seconds must be > 0; got {self.deadline_seconds}"
            )
        if self.work_budget is not None and self.work_budget < 1:
            raise ConfigurationError(
                f"work_budget must be >= 1; got {self.work_budget}"
            )
        if not (0.0 < self.coarsen_pressure < 1.0):
            raise ConfigurationError(
                f"coarsen_pressure must be in (0, 1); got {self.coarsen_pressure}"
            )
        if self.coarsen_tau_factor <= 1.0:
            raise ConfigurationError(
                f"coarsen_tau_factor must be > 1; got {self.coarsen_tau_factor}"
            )
        if self.freeze_frontier_cap < 1:
            raise ConfigurationError("freeze_frontier_cap must be >= 1")

    @property
    def active(self) -> bool:
        """True when any resilience feature is switched on."""
        return (
            self.deadline_seconds is not None
            or self.work_budget is not None
            or self.checkpoint_dir is not None
        )


@dataclass(frozen=True)
class SolverConfig:
    """Factorization/solve strategy selection.

    Attributes
    ----------
    method:
        * ``"nlogn"`` — Algorithm II.2, the paper's O(N log N)
          telescoping factorization (default).
        * ``"nlog2n"`` — the INV-ASKIT [36] baseline with recursive
          subtree solves, O(N log^2 N).
        * ``"direct"`` — level-restricted direct factorization: dense LU
          of the coalesced reduced system (paper section II-C; equals
          "nlogn" when the frontier is the root's children).
        * ``"hybrid"`` — partial factorization below the frontier +
          matrix-free GMRES on ``(I + V W)`` (Algorithm II.6).
    summation:
        Kernel-summation strategy for off-diagonal blocks during solves
        ("precomputed" / "reevaluate" / "fused"), Table IV.
    gmres:
        Krylov parameters for the hybrid reduced solve.
    check_stability:
        Monitor condition numbers of leaf blocks and reduced systems and
        warn (paper section III).
    cond_threshold:
        1/rcond above which a :class:`~repro.exceptions.StabilityWarning`
        is emitted.
    """

    method: str = "nlogn"
    summation: str = "precomputed"
    gmres: GMRESConfig = field(default_factory=GMRESConfig)
    check_stability: bool = True
    cond_threshold: float = 1e12
    #: "full" stores every P^ block (O(sN log N) memory, fastest solves);
    #: "low" keeps only leaf and frontier P^ (O(sN)) and re-telescopes the
    #: internal ones per solve via eq. (10) — the paper's section III
    #: memory-reduction scheme (O((d + s^2) N log N) work per solve,
    #: still O(N log N)).
    storage: str = "full"

    #: process multi-RHS solves as one (N, k) panel: the hybrid reduced
    #: solve runs a lockstep block GMRES (one BLAS-3 matvec per
    #: iteration instead of k GEMVs).  ``False`` reproduces the original
    #: column-by-column path.
    batch_rhs: bool = True

    #: level-synchronous shape-batched numerics: group each tree level's
    #: same-shaped nodes and issue one stacked GEMM / batched LAPACK call
    #: per group instead of one call per node (repro.perf.levelbatch).
    #: Produces bitwise-identical factors; ``REPRO_LEVEL_BATCH=0`` is the
    #: environment kill switch.  Ignored by the "nlog2n" baseline (its
    #: recursive solves are node-at-a-time by construction).
    level_batch: bool = True

    #: vMPI execution backend for the distributed paths: "thread"
    #: (shared-memory mailboxes, debuggable), "process" (true multi-core
    #: via multiprocessing + shared-memory transport), or None to defer
    #: to the REPRO_VMPI_BACKEND environment (docs/PARALLELISM.md).
    backend: str | None = None

    #: incremental updates (docs/UPDATES.md): when a point
    #: insertion/deletion dirties more than this fraction of the point
    #: set (touched leaves + their subtree populations), ``update()``
    #: falls back to a full rebuild — past that point the local repair
    #: does most of the rebuild's work anyway while the frozen-topology
    #: tree keeps drifting from balance.
    update_rebuild_threshold: float = 0.25

    #: numerical recovery ladder (off by default; see RecoveryConfig).
    recovery: RecoveryConfig = field(default_factory=RecoveryConfig)

    #: deadlines, work budgets, checkpoint/restart, degradation ladder
    #: (all off by default; see ResilienceConfig).
    resilience: ResilienceConfig = field(default_factory=ResilienceConfig)

    _METHODS = ("nlogn", "nlog2n", "direct", "hybrid")

    #: fields that select *how* to execute, not *what* to compute — both
    #: backends and both batching modes produce bitwise-identical
    #: factors, so checkpoint fingerprints ignore them (see
    #: resilience/checkpoint.py).
    _FINGERPRINT_EXCLUDE = frozenset(
        {"backend", "level_batch", "update_rebuild_threshold"}
    )

    def __post_init__(self) -> None:
        if self.method not in self._METHODS:
            raise ConfigurationError(
                f"method must be one of {self._METHODS}; got {self.method!r}"
            )
        if self.summation not in ("precomputed", "reevaluate", "fused"):
            raise ConfigurationError(
                f"summation must be precomputed|reevaluate|fused; got {self.summation!r}"
            )
        if self.cond_threshold <= 1:
            raise ConfigurationError("cond_threshold must be > 1")
        if self.storage not in ("full", "low"):
            raise ConfigurationError(
                f"storage must be 'full' or 'low'; got {self.storage!r}"
            )
        if self.backend is not None and self.backend not in (
            "thread",
            "process",
            "socket",
        ):
            raise ConfigurationError(
                "backend must be 'thread', 'process', 'socket', or None; "
                f"got {self.backend!r}"
            )
        if not 0.0 < self.update_rebuild_threshold <= 1.0:
            raise ConfigurationError(
                "update_rebuild_threshold must be in (0, 1]; "
                f"got {self.update_rebuild_threshold!r}"
            )
        if self.storage == "low" and self.method == "nlog2n":
            raise ConfigurationError(
                "low-storage mode requires the telescoping methods "
                "(the [36] recursion cannot re-derive P^ cheaply)"
            )
