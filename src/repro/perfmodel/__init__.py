"""Performance models for the paper's hardware (section IV).

The paper reports GFLOPS and wall-clock on Haswell (998 GFLOPS/node)
and Knights Landing (3,046 GFLOPS/node) nodes.  This reproduction runs
pure numpy on one core, so absolute times are meaningless; instead the
library *counts* floating-point and memory operations and these models
convert counts into modeled node seconds via a roofline (compute rate
vs. memory bandwidth).  The benchmarks report both the measured
laptop-scale wall-clock and the modeled node numbers — the paper
comparisons (GSKS vs MKL+VML, GEMV vs GEMM vs GSKS, scaling
efficiency) are all *ratios*, which the counters capture exactly.
"""

from repro.perfmodel.machine import (
    MachineSpec,
    HASWELL_NODE,
    KNL_NODE,
    PYTHON_NODE,
    probe_machine,
    probed_machine,
    probing_enabled,
)
from repro.perfmodel.summation_model import (
    SummationTimings,
    model_reference_summation,
    model_gsks_summation,
)
from repro.perfmodel.scaling_model import ScalingModel, ScalingPoint

__all__ = [
    "MachineSpec",
    "HASWELL_NODE",
    "KNL_NODE",
    "PYTHON_NODE",
    "probe_machine",
    "probed_machine",
    "probing_enabled",
    "SummationTimings",
    "model_reference_summation",
    "model_gsks_summation",
    "ScalingModel",
    "ScalingPoint",
]
