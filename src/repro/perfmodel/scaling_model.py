"""Strong-scaling model (paper Figure 4, right panel).

Converts per-rank work counters and fabric traffic from a virtual-MPI
run into modeled wall-clock on a real cluster:

``T(p) = max_rank_flops / node_rate  +  n_messages * latency
         +  bytes_on_critical_path / network_bw``

Efficiency is ``T(1) / (p * T(p))`` scaled so p = 1 is 100%, exactly
the green-line comparison of Figure 4.  The model charges the *maximum*
per-rank compute (load imbalance shows up the way the paper describes
for adaptive ranks) and the aggregate message count over the log p
levels (latency-dominated collectives).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.parallel.vmpi.fabric import CommStats
from repro.perfmodel.machine import MachineSpec

__all__ = ["ScalingPoint", "ScalingModel"]


@dataclass(frozen=True)
class ScalingPoint:
    """One (p, modeled time) sample of a strong-scaling sweep."""

    n_ranks: int
    compute_seconds: float
    comm_seconds: float

    @property
    def seconds(self) -> float:
        return self.compute_seconds + self.comm_seconds


@dataclass(frozen=True)
class ScalingModel:
    """Cluster parameters for converting counters to modeled time.

    Attributes
    ----------
    machine:
        Node model (compute rate per rank's share of a node).
    ranks_per_node:
        MPI ranks mapped to one node (paper: 1-4).
    latency_s:
        Per-message latency (InfiniBand class: ~2 microseconds).
    network_gbs:
        Point-to-point network bandwidth in GB/s.
    efficiency:
        Fraction of the node's GEMM rate the factorization sustains
        (Table IV: ~62% on Haswell).
    """

    machine: MachineSpec
    ranks_per_node: int = 1
    latency_s: float = 2e-6
    network_gbs: float = 10.0
    efficiency: float = 0.6

    def rank_gflops(self) -> float:
        return self.machine.peak_gflops * self.efficiency / self.ranks_per_node

    def point(
        self, n_ranks: int, max_rank_flops: float, stats: CommStats
    ) -> ScalingPoint:
        """Model one run from its counters."""
        compute = max_rank_flops / (self.rank_gflops() * 1e9)
        # messages serialize along the recursive levels; bytes ride the
        # network at full rate.  Charge the aggregate conservatively
        # divided by the ranks that send concurrently.
        conc = max(1, n_ranks // 2)
        comm = (
            stats.messages / conc * self.latency_s
            + stats.bytes / conc / (self.network_gbs * 1e9)
        )
        return ScalingPoint(
            n_ranks=n_ranks, compute_seconds=compute, comm_seconds=comm
        )

    @staticmethod
    def efficiency_series(points: list[ScalingPoint]) -> list[float]:
        """Parallel efficiency vs. the smallest-p point (1.0 = ideal)."""
        if not points:
            return []
        base = points[0]
        out = []
        for pt in points:
            ideal = base.seconds * base.n_ranks / pt.n_ranks
            out.append(ideal / pt.seconds if pt.seconds > 0 else 0.0)
        return out
