"""Machine node models for Haswell and Knights Landing.

Peak numbers follow the paper's section IV footnote:

* Haswell node: 2 x 12 cores x 2.6 GHz x 16 DP flops/cycle = 998 GFLOPS,
  MKL GEMM reaches 87% of peak.
* KNL node: 68 cores x 1.4 GHz x 32 DP flops/cycle = 3,046 GFLOPS,
  MKL GEMM reaches 69% of peak (clock throttling under full FMA issue).

Bandwidths and the transcendental-function rates are representative
published STREAM / VML figures for the two parts; they control the
memory-bound regimes of the summation model.
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass

__all__ = [
    "MachineSpec",
    "HASWELL_NODE",
    "KNL_NODE",
    "PYTHON_NODE",
    "probe_machine",
    "probed_machine",
    "probing_enabled",
]


@dataclass(frozen=True)
class MachineSpec:
    """Roofline parameters of one compute node.

    Attributes
    ----------
    name:
        Human-readable node name.
    peak_gflops:
        Theoretical double-precision peak of the node.
    gemm_efficiency:
        Fraction of peak a large vendor GEMM achieves.
    stream_bw_gbs:
        Sustainable streaming bandwidth (GB/s) of the memory feeding
        large working sets (DDR4 for both nodes: on KNL, Table IV shows
        the big factors do not fit MCDRAM).
    exp_gelems:
        Vectorized-exp throughput in Gelem/s (VML / SVML class).
    fused_efficiency:
        Fraction of peak the fused GSKS micro-kernel achieves on its
        semi-ring update (lower than GEMM: the kernel evaluation and
        reduction share the same registers).
    dispatch_us:
        Fixed per-call overhead (microseconds) of one small numpy/LAPACK
        dispatch from Python — the cost the level-batched paths amortize
        away.  Irrelevant for the paper's nodes (their inner loops are
        C); measured by :func:`probe_machine` for this host.
    """

    name: str
    peak_gflops: float
    gemm_efficiency: float
    stream_bw_gbs: float
    exp_gelems: float
    fused_efficiency: float
    dispatch_us: float = 15.0

    @property
    def gemm_gflops(self) -> float:
        return self.peak_gflops * self.gemm_efficiency

    @property
    def fused_gflops(self) -> float:
        return self.peak_gflops * self.fused_efficiency


#: Lonestar5 node: 2 x Xeon E5-2690 v3 (section IV).
HASWELL_NODE = MachineSpec(
    name="Haswell (2 x E5-2690 v3, 24 cores)",
    peak_gflops=998.0,
    gemm_efficiency=0.87,
    stream_bw_gbs=100.0,
    exp_gelems=4.0,
    fused_efficiency=0.70,
)

#: The execution environment of this reproduction itself: one numpy
#: process (BLAS may use a few threads, elementwise transcendentals do
#: not).  Unlike the paper's nodes, the "fused" path here is tiled
#: numpy, so recomputing a kernel block is exp-throughput bound and far
#: slower than streaming a stored copy — which is why the
#: :class:`~repro.perf.BlockCache` store-vs-recompute policy defaults
#: to this spec rather than HASWELL_NODE.
PYTHON_NODE = MachineSpec(
    name="single numpy process (reproduction host)",
    peak_gflops=50.0,
    gemm_efficiency=0.80,
    stream_bw_gbs=16.0,
    exp_gelems=0.25,
    fused_efficiency=0.10,
)

#: Stampede KNL node: Xeon Phi 7250, cache-quadrant mode (section IV).
KNL_NODE = MachineSpec(
    name="KNL (Xeon Phi 7250, 68 cores, cache-quadrant)",
    peak_gflops=3046.0,
    gemm_efficiency=0.69,
    stream_bw_gbs=85.0,
    exp_gelems=6.0,
    fused_efficiency=0.50,
)


# ---------------------------------------------------------------------------
# runtime probe: measured MachineSpec for the host actually running this
# process.  PYTHON_NODE above is a fixed guess; the probe replaces it with
# ~20 ms of micro-measurement so the BlockCache store-vs-recompute policy,
# the GSKS tile autotuner, and the level-batch threshold all see the real
# machine.  Results are quantized to two significant figures (damps
# run-to-run jitter) and cached for the life of the process.
# ---------------------------------------------------------------------------

_PROBE_LOCK = threading.Lock()
_PROBED: MachineSpec | None = None


def probing_enabled() -> bool:
    """Whether the runtime probe is on (``REPRO_MACHINE_PROBE=0`` kills it)."""
    return os.environ.get("REPRO_MACHINE_PROBE", "1").strip().lower() not in (
        "0",
        "false",
        "off",
    )


def _best_seconds(fn, reps: int) -> float:
    """Minimum wall time of ``fn()`` over ``reps`` runs (one warmup)."""
    fn()
    best = float("inf")
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return max(best, 1e-9)


def _round2(x: float) -> float:
    """Quantize to two significant figures (probe noise damping)."""
    return float(f"{x:.2g}")


def probe_machine() -> MachineSpec:
    """Measure a :class:`MachineSpec` for this host (~20 ms, uncached).

    Four micro-benchmarks: a square DGEMM (sustained GEMM rate), a large
    copy (stream bandwidth), a vectorized exp (transcendental rate), and
    a tiny LAPACK factor in a loop (per-call dispatch overhead).  Sizes
    are chosen so the whole probe stays well under the cost of a single
    small factorization.
    """
    import numpy as np
    import scipy.linalg

    rng = np.random.default_rng(12345)

    n = 192
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    t_gemm = _best_seconds(lambda: a @ b, reps=3)
    gemm_gflops = 2.0 * n**3 / t_gemm / 1e9

    src = rng.standard_normal(1 << 20)
    dst = np.empty_like(src)
    t_copy = _best_seconds(lambda: np.copyto(dst, src), reps=3)
    stream_bw_gbs = 2.0 * src.nbytes / t_copy / 1e9

    xs = rng.standard_normal(1 << 17)
    out = np.empty_like(xs)
    t_exp = _best_seconds(lambda: np.exp(xs, out=out), reps=3)
    exp_gelems = xs.size / t_exp / 1e9

    tiny = rng.standard_normal((4, 4)) + 4.0 * np.eye(4)

    def _dispatch_loop() -> None:
        for _ in range(32):
            scipy.linalg.lu_factor(tiny, check_finite=False)

    dispatch_us = _best_seconds(_dispatch_loop, reps=2) / 32 * 1e6

    # gemm_efficiency is pinned and peak derived from the measured rate, so
    # ``gemm_gflops`` reproduces the measurement; the fused path here is
    # tiled numpy (exp-bound), same as PYTHON_NODE.
    return MachineSpec(
        name="probed host (runtime micro-benchmark)",
        peak_gflops=_round2(gemm_gflops / 0.80),
        gemm_efficiency=0.80,
        stream_bw_gbs=_round2(stream_bw_gbs),
        exp_gelems=_round2(exp_gelems),
        fused_efficiency=0.10,
        dispatch_us=_round2(max(dispatch_us, 1.0)),
    )


def probed_machine() -> MachineSpec:
    """The cached probed spec, or :data:`PYTHON_NODE` when probing is off.

    This is the default machine for everything host-dependent: the
    :class:`~repro.perf.BlockCache` policy, the GSKS tile autotuner, and
    the level-batching threshold.  One probe per process; worker
    processes that receive a pickled spec (e.g. inside a BlockCache)
    keep the sender's numbers instead of re-probing.
    """
    global _PROBED
    if not probing_enabled():
        return PYTHON_NODE
    if _PROBED is None:
        with _PROBE_LOCK:
            if _PROBED is None:
                _PROBED = probe_machine()
    return _PROBED
