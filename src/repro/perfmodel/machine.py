"""Machine node models for Haswell and Knights Landing.

Peak numbers follow the paper's section IV footnote:

* Haswell node: 2 x 12 cores x 2.6 GHz x 16 DP flops/cycle = 998 GFLOPS,
  MKL GEMM reaches 87% of peak.
* KNL node: 68 cores x 1.4 GHz x 32 DP flops/cycle = 3,046 GFLOPS,
  MKL GEMM reaches 69% of peak (clock throttling under full FMA issue).

Bandwidths and the transcendental-function rates are representative
published STREAM / VML figures for the two parts; they control the
memory-bound regimes of the summation model.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineSpec", "HASWELL_NODE", "KNL_NODE", "PYTHON_NODE"]


@dataclass(frozen=True)
class MachineSpec:
    """Roofline parameters of one compute node.

    Attributes
    ----------
    name:
        Human-readable node name.
    peak_gflops:
        Theoretical double-precision peak of the node.
    gemm_efficiency:
        Fraction of peak a large vendor GEMM achieves.
    stream_bw_gbs:
        Sustainable streaming bandwidth (GB/s) of the memory feeding
        large working sets (DDR4 for both nodes: on KNL, Table IV shows
        the big factors do not fit MCDRAM).
    exp_gelems:
        Vectorized-exp throughput in Gelem/s (VML / SVML class).
    fused_efficiency:
        Fraction of peak the fused GSKS micro-kernel achieves on its
        semi-ring update (lower than GEMM: the kernel evaluation and
        reduction share the same registers).
    """

    name: str
    peak_gflops: float
    gemm_efficiency: float
    stream_bw_gbs: float
    exp_gelems: float
    fused_efficiency: float

    @property
    def gemm_gflops(self) -> float:
        return self.peak_gflops * self.gemm_efficiency

    @property
    def fused_gflops(self) -> float:
        return self.peak_gflops * self.fused_efficiency


#: Lonestar5 node: 2 x Xeon E5-2690 v3 (section IV).
HASWELL_NODE = MachineSpec(
    name="Haswell (2 x E5-2690 v3, 24 cores)",
    peak_gflops=998.0,
    gemm_efficiency=0.87,
    stream_bw_gbs=100.0,
    exp_gelems=4.0,
    fused_efficiency=0.70,
)

#: The execution environment of this reproduction itself: one numpy
#: process (BLAS may use a few threads, elementwise transcendentals do
#: not).  Unlike the paper's nodes, the "fused" path here is tiled
#: numpy, so recomputing a kernel block is exp-throughput bound and far
#: slower than streaming a stored copy — which is why the
#: :class:`~repro.perf.BlockCache` store-vs-recompute policy defaults
#: to this spec rather than HASWELL_NODE.
PYTHON_NODE = MachineSpec(
    name="single numpy process (reproduction host)",
    peak_gflops=50.0,
    gemm_efficiency=0.80,
    stream_bw_gbs=16.0,
    exp_gelems=0.25,
    fused_efficiency=0.10,
)

#: Stampede KNL node: Xeon Phi 7250, cache-quadrant mode (section IV).
KNL_NODE = MachineSpec(
    name="KNL (Xeon Phi 7250, 68 cores, cache-quadrant)",
    peak_gflops=3046.0,
    gemm_efficiency=0.69,
    stream_bw_gbs=85.0,
    exp_gelems=6.0,
    fused_efficiency=0.50,
)
