"""Roofline model of kernel summation (paper Table I, section II-D).

Reference path ("MKL + VML"): ``w = GEMV(K(GEMM(X_A^T, X_B)), u)`` —
three phases, each of which streams the m x n block through slow
memory:

1. GEMM rank-d update (2 m n d flops, writes m n words),
2. VML VEXP over the block (m n exps, reads + writes m n words),
3. GEMV reduction (2 m n flops, reads m n words).

GSKS path: one fused pass — same useful flops, but the block lives in
registers/cache, so slow-memory traffic is only the O(m d + n d)
operand streams.  Each phase is modeled as
``max(compute time, memory time)`` (the roofline), matching the
paper's observation that the reference is memory bound for small d
while GSKS stays compute bound.

Reported "efficiency" follows the paper's convention: useful GEMM
flops ``2 m n d`` divided by total time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel.machine import MachineSpec

__all__ = ["SummationTimings", "model_reference_summation", "model_gsks_summation"]

_WORD = 8  # float64 bytes
#: modeled flops charged per kernel evaluation inside the fused kernel
#: (scale + exp expanded in registers).
_FUSED_EXP_FLOPS = 12.0


@dataclass(frozen=True)
class SummationTimings:
    """Modeled timing of one m x n x d kernel summation."""

    seconds: float
    useful_flops: float
    moved_bytes: float

    @property
    def gflops(self) -> float:
        """Effective GFLOPS (useful GEMM work / time) — Table I's metric."""
        return self.useful_flops / self.seconds / 1e9


def model_reference_summation(
    machine: MachineSpec, m: int, n: int, d: int
) -> SummationTimings:
    """Modeled time of the evaluate-then-GEMV reference (MKL + VML)."""
    useful = 2.0 * m * n * d
    bw = machine.stream_bw_gbs * 1e9

    # phase 1: GEMM writes the m x n distance block.
    t_gemm = max(
        useful / (machine.gemm_gflops * 1e9),
        ((m * d + n * d + m * n) * _WORD) / bw,
    )
    # phase 2: VEXP streams the block in and out.
    t_exp = max(m * n / (machine.exp_gelems * 1e9), (2.0 * m * n * _WORD) / bw)
    # phase 3: GEMV reads the block once.
    t_gemv = max(
        2.0 * m * n / (machine.gemm_gflops * 1e9), (m * n * _WORD) / bw
    )
    seconds = t_gemm + t_exp + t_gemv
    moved = (m * d + n * d + 4.0 * m * n) * _WORD
    return SummationTimings(seconds=seconds, useful_flops=useful, moved_bytes=moved)


def model_gsks_summation(
    machine: MachineSpec, m: int, n: int, d: int
) -> SummationTimings:
    """Modeled time of the fused matrix-free GSKS path."""
    useful = 2.0 * m * n * d
    total_flops = useful + (_FUSED_EXP_FLOPS + 2.0) * m * n
    bw = machine.stream_bw_gbs * 1e9
    seconds = max(
        total_flops / (machine.fused_gflops * 1e9),
        ((m * d + n * d + m + n) * _WORD) / bw,
    )
    moved = (m * d + n * d + m + n) * _WORD
    return SummationTimings(seconds=seconds, useful_flops=useful, moved_bytes=moved)
