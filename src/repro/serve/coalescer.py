"""Request coalescing: many concurrent single-RHS solves, one batched call.

``BENCH_perf.json`` shows the batched multi-RHS path (one ``(N, k)``
panel through ``batch_rhs`` / ``gmres_batched``) is 3–5x faster than
``k`` separate single-RHS solves.  A serving daemon is exactly the
workload that can exploit it: many independent clients ask for one
column each, at the same time, against the same resident model.
:class:`RequestCoalescer` collects those requests for a small window,
stacks them column-wise, runs **one** batched solve, and scatters the
per-column results (and per-column residual/iteration info) back to
each caller.

Semantics (docs/SERVING.md):

* the first request against a model opens a batch; the batch flushes
  when its window closes or it reaches ``max_batch`` columns;
* requests whose deadline has already expired at flush time are shed
  with :class:`~repro.exceptions.DeadlineExceededError` and do not
  join the stack;
* the batch runs under the *loosest* member deadline (every member
  consented to wait for the batch; the tightest member's budget is
  enforced at admission and at flush, never by soft-stopping the whole
  batch at the tightest clock);
* a failing batch falls back to per-column solo solves, so one
  poisoned request cannot fail its batchmates — only the poisoned
  column gets its error.

All waiting happens in the submitting threads; one background flusher
thread executes the batched solves.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Hashable

import numpy as np

from repro.exceptions import DeadlineExceededError, OverloadedError
from repro.obs import registry as metrics_registry
from repro.resilience import Deadline

__all__ = ["RequestCoalescer"]

#: flush callback: (key, U (n, k), deadline, metas) -> k per-column results.
FlushFn = Callable[[Hashable, np.ndarray, "Deadline | None", list[dict]], list[Any]]


class _Pending:
    __slots__ = ("rhs", "deadline", "meta", "event", "result", "error")

    def __init__(self, rhs: np.ndarray, deadline, meta: dict) -> None:
        self.rhs = rhs
        self.deadline = deadline
        self.meta = meta
        self.event = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None

    def complete(self, result: Any = None, error: BaseException | None = None):
        self.result = result
        self.error = error
        self.event.set()


class _Batch:
    __slots__ = ("opened_at", "items")

    def __init__(self, opened_at: float) -> None:
        self.opened_at = opened_at
        self.items: list[_Pending] = []


def _loosest_deadline(items: list[_Pending]):
    """The batch deadline: the member with the most remaining budget
    (``None`` — unlimited — if any member is unlimited)."""
    loosest = None
    best = -1.0
    for req in items:
        if req.deadline is None:
            return None
        remaining = req.deadline.remaining()
        if remaining > best:
            best = remaining
            loosest = req.deadline
    return loosest


class RequestCoalescer:
    """Batches concurrent single-column requests per key (resident model).

    Parameters
    ----------
    flush_fn:
        ``flush_fn(key, U, deadline, metas) -> list`` solving the
        ``(n, k)`` panel ``U`` and returning one result per column (in
        column order).  Raising fails over to per-column solo calls.
    window_seconds / max_batch:
        See :class:`repro.serve.ServeConfig`.
    clock:
        Injectable monotonic clock (tests).
    """

    def __init__(
        self,
        flush_fn: FlushFn,
        *,
        window_seconds: float = 0.005,
        max_batch: int = 32,
        clock=time.monotonic,
    ) -> None:
        if window_seconds < 0:
            raise ValueError(f"window_seconds must be >= 0; got {window_seconds}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1; got {max_batch}")
        self._flush_fn = flush_fn
        self.window_seconds = window_seconds
        self.max_batch = max_batch
        self._clock = clock
        self._cond = threading.Condition()
        self._queues: dict[Hashable, _Batch] = {}
        self._closed = False
        # local counters (mirrored into the metrics registry) so
        # health() works even on a non-default registry.
        self._requests = 0
        self._batches = 0
        self._coalesced_batches = 0  # batches with >= 2 columns
        self._max_batch_seen = 0
        self._shed_expired = 0
        self._batch_failures = 0
        self._poisoned = 0
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-coalescer", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    def submit(
        self,
        key: Hashable,
        rhs: np.ndarray,
        *,
        deadline: Deadline | None = None,
        meta: dict | None = None,
    ) -> Any:
        """Queue one single-RHS request and block until its batch flushes.

        Returns the per-column result from ``flush_fn``; re-raises the
        per-request error (shed deadline, poisoned column, ...) in the
        caller's thread.
        """
        rhs = np.asarray(rhs, dtype=np.float64)
        if rhs.ndim != 1:
            raise ValueError(
                f"submit() coalesces single-RHS vectors; got shape {rhs.shape}"
            )
        req = _Pending(rhs, deadline, dict(meta or {}))
        with self._cond:
            if self._closed:
                raise OverloadedError("coalescer is shut down")
            batch = self._queues.get(key)
            if batch is None:
                batch = self._queues[key] = _Batch(self._clock())
            batch.items.append(req)
            self._requests += 1
            self._cond.notify_all()
        metrics_registry().counter("serve.coalesce.requests").inc()
        req.event.wait()
        if req.error is not None:
            raise req.error
        return req.result

    def flush_now(self) -> None:
        """Flush every open batch immediately (tests, shutdown drain)."""
        with self._cond:
            batches = [(k, self._queues.pop(k)) for k in list(self._queues)]
        for key, batch in batches:
            self._flush(key, batch)

    def close(self) -> None:
        """Stop accepting requests, drain open batches, join the flusher."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._cond.notify_all()
        self._thread.join()
        self.flush_now()

    def __enter__(self) -> "RequestCoalescer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _due_keys(self, now: float) -> list[Hashable]:
        return [
            key
            for key, batch in self._queues.items()
            if len(batch.items) >= self.max_batch
            or now - batch.opened_at >= self.window_seconds
        ]

    def _run(self) -> None:
        while True:
            with self._cond:
                while not self._closed:
                    due = self._due_keys(self._clock())
                    if due:
                        break
                    if self._queues:
                        next_due = min(
                            b.opened_at + self.window_seconds
                            for b in self._queues.values()
                        )
                        self._cond.wait(max(next_due - self._clock(), 0.0) + 1e-4)
                    else:
                        self._cond.wait()
                if self._closed:
                    # close() drains what remains after the join.
                    return
                batches = [(key, self._queues.pop(key)) for key in due]
            for key, batch in batches:
                self._flush(key, batch)

    # ------------------------------------------------------------------
    def _flush(self, key: Hashable, batch: _Batch) -> None:
        reg = metrics_registry()
        live: list[_Pending] = []
        for req in batch.items:
            if req.deadline is not None and req.deadline.expired:
                self._shed_expired += 1
                reg.counter("serve.coalesce.shed_expired").inc()
                req.complete(error=DeadlineExceededError(
                    "request deadline expired while waiting in the "
                    "coalescing window"
                ))
            else:
                live.append(req)
        if not live:
            return
        with self._cond:
            self._batches += 1
            if len(live) > 1:
                self._coalesced_batches += 1
            self._max_batch_seen = max(self._max_batch_seen, len(live))
        reg.counter("serve.coalesce.batches").inc()
        reg.histogram("serve.coalesce.batch_size").observe(len(live))
        try:
            U = np.stack([req.rhs for req in live], axis=1)
            results = self._flush_fn(
                key, U, _loosest_deadline(live), [req.meta for req in live]
            )
            if len(results) != len(live):  # pragma: no cover - contract guard
                raise RuntimeError(
                    f"flush_fn returned {len(results)} results for "
                    f"{len(live)} columns"
                )
        except BaseException:
            self._batch_failures += 1
            reg.counter("serve.coalesce.batch_failures").inc()
            self._flush_solo(key, live)
            return
        for req, result in zip(live, results):
            req.complete(result=result)

    def _flush_solo(self, key: Hashable, live: list[_Pending]) -> None:
        """Failover: solve each column alone so a poisoned request only
        fails itself, never its batchmates."""
        reg = metrics_registry()
        for req in live:
            try:
                results = self._flush_fn(
                    key, req.rhs[:, None], req.deadline, [req.meta]
                )
                req.complete(result=results[0])
            except BaseException as exc:
                self._poisoned += 1
                reg.counter("serve.coalesce.poisoned").inc()
                req.complete(error=exc)

    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """JSON-friendly digest for the health endpoint."""
        with self._cond:
            return {
                "requests": self._requests,
                "batches": self._batches,
                "coalesced_batches": self._coalesced_batches,
                "max_batch": self._max_batch_seen,
                "shed_expired": self._shed_expired,
                "batch_failures": self._batch_failures,
                "poisoned": self._poisoned,
                "window_seconds": self.window_seconds,
                "max_batch_limit": self.max_batch,
            }
