"""In-process solver service: registry + coalescer + admission control.

:class:`SolverService` is the daemon's brain, fully testable without a
socket: it owns a :class:`~repro.serve.ModelRegistry` of resident
factorized solvers and a :class:`~repro.serve.RequestCoalescer`, and
every :meth:`solve` call goes through

1. **resolution** — map the caller's (possibly abbreviated, possibly
   omitted) model fingerprint to a resident;
2. **admission control** — reject with
   :class:`~repro.exceptions.OverloadedError` when ``max_pending``
   requests are already in flight, *before* any memory or queue slot is
   consumed; derive the request's
   :class:`~repro.resilience.Deadline` / work budget from
   :class:`~repro.serve.ServeConfig` defaults (request overrides win);
3. **coalescing** — single-RHS requests wait up to ``window_seconds``
   to share a batched ``gmres_batched`` solve with concurrent requests
   against the same resident (multi-RHS requests are already batches
   and run directly);
4. **scatter** — each caller gets its own column back, with optional
   per-column residual/iteration diagnostics.

:meth:`health` returns the ``repro.serve/v1`` blob the daemon serves:
registry + coalescer + admission state, plus a per-resident
``repro.telemetry/v1`` blob (scoped to that solver's metric series via
:meth:`FastKernelSolver.scope_telemetry`).
"""

from __future__ import annotations

import threading
from dataclasses import asdict, dataclass

import numpy as np

from repro.exceptions import OverloadedError
from repro.obs import registry as metrics_registry
from repro.resilience import Deadline, WorkBudget, deadline_scope
from repro.serve.coalescer import RequestCoalescer
from repro.serve.config import ServeConfig
from repro.serve.registry import ModelRegistry
from repro.util.validation import check_vector

__all__ = ["SolverService", "ServeResult", "SERVE_SCHEMA"]

SERVE_SCHEMA = "repro.serve/v1"


@dataclass
class ServeResult:
    """One request's answer (one column of its flushed batch)."""

    #: solution in the caller's point order — (N,) for coalesced
    #: single-RHS requests.
    w: np.ndarray
    #: full fingerprint of the resident model that served the request.
    model: str
    #: columns in the batch this request was solved with (1 = solo).
    batch_size: int
    #: relative residual for *this* column (only when requested).
    residual: float | None = None
    #: reduced-system GMRES iterations of the flushed batch (lockstep
    #: across columns — a batch property, reported when requested).
    iterations: int | None = None

    @property
    def coalesced(self) -> bool:
        return self.batch_size > 1

    def to_payload(self) -> dict:
        """JSON-friendly form (daemon wire format)."""
        return {
            "w": np.asarray(self.w).tolist(),
            "model": self.model,
            "batch_size": self.batch_size,
            "coalesced": self.coalesced,
            "residual": self.residual,
            "iterations": self.iterations,
        }


class SolverService:
    """Serve solves against resident factorized models.

    Parameters
    ----------
    config:
        :class:`ServeConfig`; defaults are production-shaped (5 ms
        window, 32-column batches, 1024 pending).
    registry:
        Optional externally-constructed :class:`ModelRegistry` (tests);
        by default one is built with
        ``config.registry_budget_words``.
    """

    def __init__(
        self,
        config: ServeConfig | None = None,
        *,
        registry: ModelRegistry | None = None,
    ) -> None:
        self.config = config or ServeConfig()
        self.registry = registry or ModelRegistry(
            budget_words=self.config.registry_budget_words
        )
        self.coalescer = RequestCoalescer(
            self._solve_batch,
            window_seconds=self.config.window_seconds,
            max_batch=self.config.max_batch,
        )
        self._pending = 0
        self._shed = 0
        self._served = 0
        self._pending_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    def _admit(self) -> None:
        reg = metrics_registry()
        with self._pending_lock:
            if self._closed:
                raise OverloadedError("service is shut down")
            if self._pending >= self.config.max_pending:
                self._shed += 1
                reg.counter("serve.admission.shed").inc()
                raise OverloadedError(
                    f"{self._pending} requests already in flight "
                    f"(max_pending={self.config.max_pending}); request shed"
                )
            self._pending += 1
            reg.gauge("serve.admission.pending").set(self._pending)

    def _release(self) -> None:
        with self._pending_lock:
            self._pending -= 1
            metrics_registry().gauge("serve.admission.pending").set(self._pending)

    def _request_deadline(
        self, deadline_seconds: float | None, work_budget: int | None
    ) -> Deadline | None:
        """Admission derives every request's deadline here: config
        defaults, overridden per request; no limits at all → ``None``."""
        seconds = (
            self.config.deadline_seconds
            if deadline_seconds is None
            else deadline_seconds
        )
        units = self.config.work_budget if work_budget is None else work_budget
        if seconds is None and units is None:
            return None
        budget = WorkBudget(limit=units) if units is not None else None
        return Deadline(seconds=seconds, budget=budget)

    # ------------------------------------------------------------------
    # the serving path
    # ------------------------------------------------------------------
    def solve(
        self,
        rhs: np.ndarray,
        *,
        model: str | None = None,
        with_info: bool = False,
        deadline_seconds: float | None = None,
        work_budget: int | None = None,
    ):
        """Solve ``(lambda I + K~) w = rhs`` against a resident model.

        ``rhs`` of shape (N,) returns one :class:`ServeResult` and may
        be coalesced with concurrent requests; shape (N, k) is already
        a batch, runs directly, and returns ``k`` results (one per
        column).  ``model`` may be a full fingerprint, a unique prefix,
        or ``None`` when exactly one model is resident.
        """
        fingerprint = self.registry.resolve(model)
        resident = self.registry.get(fingerprint)
        rhs = check_vector(np.asarray(rhs, dtype=np.float64),
                           resident.solver.n_points)
        deadline = self._request_deadline(deadline_seconds, work_budget)
        self._admit()
        try:
            if rhs.ndim == 2:
                metas = [{"info": with_info}] * rhs.shape[1]
                result = self._solve_batch(fingerprint, rhs, deadline, metas)
            else:
                result = self.coalescer.submit(
                    fingerprint, rhs, deadline=deadline, meta={"info": with_info}
                )
        finally:
            self._release()
        with self._pending_lock:
            self._served += 1
        return result

    def _solve_batch(
        self,
        fingerprint: str,
        U: np.ndarray,
        deadline: Deadline | None,
        metas: list[dict],
    ) -> list[ServeResult]:
        """Coalescer flush callback: one batched solve, k scattered results."""
        resident = self.registry.peek(fingerprint)
        solver = resident.solver
        fact = solver.factorization
        before = len(fact.reduced_iterations)
        with deadline_scope(deadline):
            W = solver.solve(U)
        iterations = int(sum(fact.reduced_iterations[before:]))
        self.registry.count_solve(fingerprint)
        k = U.shape[1]
        want_info = any(meta.get("info") for meta in metas)
        residuals: list[float | None] = [None] * k
        if want_info:
            # one batched regularized matvec for the whole panel; the
            # per-column relative residual is eq. 15 column-wise.
            R = U - solver.regularized_matvec(fact.lam, W)
            norm_u = np.linalg.norm(U, axis=0)
            norm_r = np.linalg.norm(R, axis=0)
            residuals = [
                float(r / u) if u > 0 else float(r)
                for r, u in zip(norm_r, norm_u)
            ]
        results = []
        for j, meta in enumerate(metas):
            info = bool(meta.get("info"))
            results.append(
                ServeResult(
                    w=np.array(W[:, j]),
                    model=fingerprint,
                    batch_size=k,
                    residual=residuals[j] if info else None,
                    iterations=iterations if info else None,
                )
            )
        return results

    # ------------------------------------------------------------------
    # incremental updates (docs/UPDATES.md)
    # ------------------------------------------------------------------
    def update(
        self,
        *,
        model: str | None = None,
        X_insert: np.ndarray | None = None,
        X_delete=None,
        lam: float | None = None,
        kernel_params: dict | None = None,
    ) -> dict:
        """Incrementally update a resident model in place.

        Resolves ``model`` like :meth:`solve` and delegates to
        :meth:`ModelRegistry.update_resident`: the stale fingerprint is
        invalidated atomically, the solver is updated
        (:meth:`FastKernelSolver.update`), and the model is re-admitted
        under its new fingerprint.  Counts against ``max_pending`` like
        any other request so a flood of updates cannot starve solves.

        Returns ``{"previous", "model", "report"}`` with the old and
        new fingerprints and the structured
        :class:`~repro.core.update.UpdateReport` payload.
        """
        fingerprint = self.registry.resolve_for_update(model)
        self._admit()
        try:
            new_fp = self.registry.update_resident(
                fingerprint,
                X_insert=X_insert,
                X_delete=X_delete,
                lam=lam,
                kernel_params=kernel_params,
            )
        finally:
            self._release()
        with self._pending_lock:
            self._served += 1
        resident = self.registry.peek(new_fp)
        report = resident.solver.last_update
        return {
            "previous": fingerprint,
            "model": new_fp,
            "report": report.to_payload() if report is not None else None,
        }

    # ------------------------------------------------------------------
    # health / lifecycle
    # ------------------------------------------------------------------
    def health(self) -> dict:
        """The ``repro.serve/v1`` blob: service, registry, coalescer
        state plus one ``repro.telemetry/v1`` blob per resident model
        (scoped to that solver's series)."""
        models = {}
        for resident in self.registry.models():
            entry = resident.describe()
            entry["telemetry"] = resident.solver.telemetry()
            models[resident.fingerprint] = entry
        with self._pending_lock:
            pending, shed, served = self._pending, self._shed, self._served
        return {
            "schema": SERVE_SCHEMA,
            "config": asdict(self.config),
            "pending": pending,
            "shed": shed,
            "served": served,
            "registry": self.registry.stats(),
            "coalescer": self.coalescer.stats(),
            "models": models,
        }

    def close(self) -> None:
        """Stop admitting, drain the coalescer."""
        with self._pending_lock:
            if self._closed:
                return
            self._closed = True
        self.coalescer.close()

    def __enter__(self) -> "SolverService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
