"""Solver-as-a-service: resident factorizations, coalesced solves.

The paper's factorization is expensive (O(N log N) with heavy
constants) precisely so that solves become cheap (O(N log N) with tiny
constants); the serving layer completes that bargain by keeping
factorized solvers *resident* and amortizing them across requests:

* :class:`ModelRegistry` — LRU registry of factorized
  :class:`~repro.core.FastKernelSolver` instances keyed by their
  ``repro.checkpoint/v1`` config fingerprint, warm-loadable from
  checkpoint directories, bounded by a BlockCache-style word budget.
* :class:`RequestCoalescer` — stacks concurrent single-RHS requests
  into one batched ``gmres_batched`` solve per window and scatters the
  columns back (BENCH_perf.json: 3–5x over per-request solves).
* :class:`SolverService` — admission control (``max_pending``,
  per-request :class:`~repro.resilience.Deadline`/work budgets from
  :class:`ServeConfig`), the solve path, and the ``repro.serve/v1``
  health blob.
* :class:`ServeDaemon` / :func:`run_daemon` / :class:`ServeClient` —
  the ``repro serve`` TCP front end (newline-delimited JSON) and its
  minimal client.

See docs/SERVING.md.
"""

from repro.serve.client import RemoteServeError, RetryConfig, ServeClient
from repro.serve.coalescer import RequestCoalescer
from repro.serve.config import ServeConfig
from repro.serve.daemon import ServeDaemon, error_payload, run_daemon
from repro.serve.registry import ModelRegistry, ResidentModel
from repro.serve.service import SERVE_SCHEMA, ServeResult, SolverService

__all__ = [
    "SERVE_SCHEMA",
    "ModelRegistry",
    "RemoteServeError",
    "RetryConfig",
    "RequestCoalescer",
    "ResidentModel",
    "ServeClient",
    "ServeConfig",
    "ServeDaemon",
    "ServeResult",
    "SolverService",
    "error_payload",
    "run_daemon",
]
