"""Minimal synchronous client for the ``repro serve`` daemon.

One TCP connection, newline-delimited JSON requests/responses (see
:mod:`repro.serve.daemon` for the protocol).  The client is
intentionally dependency-free — tests and the CI smoke script use it,
and it doubles as executable protocol documentation.

A :class:`ServeClient` is **not** thread-safe; concurrent clients (the
whole point of the coalescer) should each open their own connection,
exactly like real network clients would.
"""

from __future__ import annotations

import json
import random
import socket
import time

import numpy as np

from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    DeadlineExceededError,
    OverloadedError,
    ReproError,
    ResidentEvictedError,
    ServeUnavailableError,
    StabilityError,
)

__all__ = ["ServeClient", "RemoteServeError", "RetryConfig"]

_STATUS_EXCEPTIONS = {
    "overloaded": OverloadedError,
    "deadline": DeadlineExceededError,
    "evicted": ResidentEvictedError,
    "usage": ConfigurationError,
    "checkpoint": CheckpointError,
    "numerical": StabilityError,
}


class RemoteServeError(ReproError):
    """A daemon-side failure that maps to no specific local exception."""

    def __init__(self, message: str, *, status: str = "error", code: int = 1):
        super().__init__(message)
        self.status = status
        self.code = code


def _raise_remote(response: dict) -> None:
    status = response.get("status", "error")
    message = response.get("error", "remote error")
    exc_type = _STATUS_EXCEPTIONS.get(status)
    if exc_type is not None:
        raise exc_type(message)
    raise RemoteServeError(
        message, status=status, code=int(response.get("code", 1))
    )


class RetryConfig:
    """Capped exponential backoff with jitter for transport failures.

    Attempt ``k`` (0-based) sleeps ``min(base * 2**k, cap)`` scaled by a
    uniform jitter in ``[1 - jitter, 1 + jitter]`` before retrying.  Only
    *transport* failures (refused connection, reset, daemon EOF) are
    retried; typed daemon-side errors such as
    :class:`~repro.exceptions.OverloadedError` propagate immediately —
    the daemon is alive and said no.
    """

    def __init__(
        self,
        retries: int = 3,
        *,
        base: float = 0.05,
        cap: float = 2.0,
        jitter: float = 0.25,
        seed: int | None = None,
    ) -> None:
        if retries < 0:
            raise ConfigurationError(f"retries must be >= 0; got {retries}")
        if base <= 0 or cap < base:
            raise ConfigurationError(
                f"need 0 < base <= cap; got base={base} cap={cap}"
            )
        if not 0.0 <= jitter < 1.0:
            raise ConfigurationError(f"jitter must be in [0, 1); got {jitter}")
        self.retries = retries
        self.base = base
        self.cap = cap
        self.jitter = jitter
        self._rng = random.Random(seed)

    def delay(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (0-based)."""
        raw = min(self.base * (2.0 ** attempt), self.cap)
        if self.jitter == 0.0:
            return raw
        return raw * self._rng.uniform(1.0 - self.jitter, 1.0 + self.jitter)


class ServeClient:
    """Blocking JSON-lines client; raises typed exceptions on failure.

    ``retry`` (a :class:`RetryConfig`, or ``None`` to disable) governs
    reconnection on transport failures, both at construction and inside
    :meth:`request`; once the budget is spent a
    :class:`~repro.exceptions.ServeUnavailableError` is raised.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        timeout: float = 60.0,
        retry: RetryConfig | None = None,
    ) -> None:
        self._host = host
        self._port = port
        self._timeout = timeout
        self._retry = retry if retry is not None else RetryConfig()
        self._sock: socket.socket | None = None
        self._file = None
        self._connect_with_retry()

    # ------------------------------------------------------------------
    def _connect_once(self) -> None:
        self._sock = socket.create_connection(
            (self._host, self._port), timeout=self._timeout
        )
        self._file = self._sock.makefile("rwb")

    def _connect_with_retry(self) -> None:
        attempts = self._retry.retries + 1
        last: Exception | None = None
        for attempt in range(attempts):
            try:
                self._connect_once()
                return
            except OSError as exc:
                last = exc
                self._teardown()
                if attempt + 1 < attempts:
                    time.sleep(self._retry.delay(attempt))
        raise ServeUnavailableError(
            f"serve daemon at {self._host}:{self._port} unreachable after "
            f"{attempts} attempt(s): {last}"
        ) from last

    def _teardown(self) -> None:
        try:
            if self._file is not None:
                self._file.close()
        except OSError:
            pass
        try:
            if self._sock is not None:
                self._sock.close()
        except OSError:
            pass
        self._file = None
        self._sock = None

    def _request_once(self, payload: dict) -> dict:
        if self._file is None:
            self._connect_once()
        self._file.write(json.dumps(payload).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("serve daemon closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            _raise_remote(response)
        return response

    # ------------------------------------------------------------------
    def request(self, payload: dict) -> dict:
        """Send one request object, return the (ok) response object.

        Transport failures reconnect and resend under the client's
        :class:`RetryConfig`; ``shutdown`` is never retried (a lost
        reply usually means the daemon honoured it).
        """
        if payload.get("op") == "shutdown":
            return self._request_once(payload)
        attempts = self._retry.retries + 1
        last: Exception | None = None
        for attempt in range(attempts):
            try:
                return self._request_once(payload)
            except ServeUnavailableError:
                raise
            except (ConnectionError, OSError) as exc:
                last = exc
                self._teardown()
                if attempt + 1 < attempts:
                    time.sleep(self._retry.delay(attempt))
        raise ServeUnavailableError(
            f"request to {self._host}:{self._port} failed after "
            f"{attempts} attempt(s): {last}"
        ) from last

    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request({"op": "ping"})["ok"])

    def solve(
        self,
        rhs,
        *,
        model: str | None = None,
        info: bool = False,
        deadline: float | None = None,
        work_budget: int | None = None,
    ) -> dict:
        """Solve against a resident model; returns the response payload
        with ``w`` converted to an ndarray."""
        rhs = np.asarray(rhs, dtype=np.float64)
        payload: dict = {"op": "solve", "rhs": rhs.tolist(), "info": info}
        if model is not None:
            payload["model"] = model
        if deadline is not None:
            payload["deadline"] = deadline
        if work_budget is not None:
            payload["work_budget"] = work_budget
        response = self.request(payload)
        if "columns" in response:
            for column in response["columns"]:
                column["w"] = np.asarray(column["w"], dtype=np.float64)
        else:
            response["w"] = np.asarray(response["w"], dtype=np.float64)
        return response

    def health(self) -> dict:
        return self.request({"op": "health"})["health"]

    def models(self) -> list[str]:
        return list(self.request({"op": "models"})["models"])

    def load(self, directory: str, *, lam: float | None = None) -> str:
        payload: dict = {"op": "load", "dir": str(directory)}
        if lam is not None:
            payload["lam"] = lam
        return self.request(payload)["model"]

    def update(
        self,
        *,
        model: str | None = None,
        insert=None,
        delete=None,
        lam: float | None = None,
        kernel_params: dict | None = None,
    ) -> dict:
        """Incrementally update a resident model in place.

        Returns the response payload: ``previous`` (invalidated
        fingerprint), ``model`` (the new fingerprint to solve against),
        and ``report`` (the structured update digest).
        """
        payload: dict = {"op": "update"}
        if model is not None:
            payload["model"] = model
        if insert is not None:
            payload["insert"] = np.asarray(insert, dtype=np.float64).tolist()
        if delete is not None:
            payload["delete"] = np.asarray(delete, dtype=np.intp).tolist()
        if lam is not None:
            payload["lam"] = lam
        if kernel_params is not None:
            payload["kernel_params"] = dict(kernel_params)
        return self.request(payload)

    def evict(self, model: str) -> bool:
        return bool(self.request({"op": "evict", "model": model})["evicted"])

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
