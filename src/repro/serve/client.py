"""Minimal synchronous client for the ``repro serve`` daemon.

One TCP connection, newline-delimited JSON requests/responses (see
:mod:`repro.serve.daemon` for the protocol).  The client is
intentionally dependency-free — tests and the CI smoke script use it,
and it doubles as executable protocol documentation.

A :class:`ServeClient` is **not** thread-safe; concurrent clients (the
whole point of the coalescer) should each open their own connection,
exactly like real network clients would.
"""

from __future__ import annotations

import json
import socket

import numpy as np

from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    DeadlineExceededError,
    OverloadedError,
    ReproError,
    StabilityError,
)

__all__ = ["ServeClient", "RemoteServeError"]

_STATUS_EXCEPTIONS = {
    "overloaded": OverloadedError,
    "deadline": DeadlineExceededError,
    "usage": ConfigurationError,
    "checkpoint": CheckpointError,
    "numerical": StabilityError,
}


class RemoteServeError(ReproError):
    """A daemon-side failure that maps to no specific local exception."""

    def __init__(self, message: str, *, status: str = "error", code: int = 1):
        super().__init__(message)
        self.status = status
        self.code = code


def _raise_remote(response: dict) -> None:
    status = response.get("status", "error")
    message = response.get("error", "remote error")
    exc_type = _STATUS_EXCEPTIONS.get(status)
    if exc_type is not None:
        raise exc_type(message)
    raise RemoteServeError(
        message, status=status, code=int(response.get("code", 1))
    )


class ServeClient:
    """Blocking JSON-lines client; raises typed exceptions on failure."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = 0, *, timeout: float = 60.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    # ------------------------------------------------------------------
    def request(self, payload: dict) -> dict:
        """Send one request object, return the (ok) response object."""
        self._file.write(json.dumps(payload).encode() + b"\n")
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("serve daemon closed the connection")
        response = json.loads(line)
        if not response.get("ok"):
            _raise_remote(response)
        return response

    # ------------------------------------------------------------------
    def ping(self) -> bool:
        return bool(self.request({"op": "ping"})["ok"])

    def solve(
        self,
        rhs,
        *,
        model: str | None = None,
        info: bool = False,
        deadline: float | None = None,
        work_budget: int | None = None,
    ) -> dict:
        """Solve against a resident model; returns the response payload
        with ``w`` converted to an ndarray."""
        rhs = np.asarray(rhs, dtype=np.float64)
        payload: dict = {"op": "solve", "rhs": rhs.tolist(), "info": info}
        if model is not None:
            payload["model"] = model
        if deadline is not None:
            payload["deadline"] = deadline
        if work_budget is not None:
            payload["work_budget"] = work_budget
        response = self.request(payload)
        if "columns" in response:
            for column in response["columns"]:
                column["w"] = np.asarray(column["w"], dtype=np.float64)
        else:
            response["w"] = np.asarray(response["w"], dtype=np.float64)
        return response

    def health(self) -> dict:
        return self.request({"op": "health"})["health"]

    def models(self) -> list[str]:
        return list(self.request({"op": "models"})["models"])

    def load(self, directory: str, *, lam: float | None = None) -> str:
        payload: dict = {"op": "load", "dir": str(directory)}
        if lam is not None:
            payload["lam"] = lam
        return self.request(payload)["model"]

    def evict(self, model: str) -> bool:
        return bool(self.request({"op": "evict", "model": model})["evicted"])

    def shutdown(self) -> None:
        self.request({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
