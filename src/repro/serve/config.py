"""Configuration for the serving layer (docs/SERVING.md)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["ServeConfig"]


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of :class:`repro.serve.SolverService`.

    Attributes
    ----------
    window_seconds:
        Coalescing window: the first single-RHS request against a
        resident model opens a batch; requests for the same model that
        arrive within this window join it.  The batch flushes at the
        window's close or as soon as ``max_batch`` columns are queued,
        whichever comes first.  ``0`` still coalesces requests that are
        already waiting when the flusher wakes, but adds no deliberate
        latency.
    max_batch:
        Maximum columns stacked into one batched solve.
    max_pending:
        Admission-control bound on requests in flight (queued or
        solving) per service.  Request ``max_pending + 1`` is shed with
        :class:`~repro.exceptions.OverloadedError` — the caller paid
        nothing and can retry elsewhere.
    deadline_seconds / work_budget:
        Per-request defaults for the :class:`repro.resilience.Deadline`
        (wall clock) and :class:`~repro.resilience.WorkBudget`
        (deterministic units) admission derives for every request;
        request-level overrides win.  ``None`` = unlimited.
    registry_budget_words:
        Word budget of the :class:`repro.serve.ModelRegistry` — the
        BlockCache discipline applied to whole resident models:
        least-recently-used residents are evicted to fit a new one, and
        a model larger than the whole budget is refused outright.
        ``None`` = unbounded.
    """

    window_seconds: float = 0.005
    max_batch: int = 32
    max_pending: int = 1024
    deadline_seconds: float | None = None
    work_budget: int | None = None
    registry_budget_words: int | None = None

    def __post_init__(self) -> None:
        if self.window_seconds < 0:
            raise ConfigurationError(
                f"window_seconds must be >= 0; got {self.window_seconds}"
            )
        if self.max_batch < 1:
            raise ConfigurationError(f"max_batch must be >= 1; got {self.max_batch}")
        if self.max_pending < 1:
            raise ConfigurationError(
                f"max_pending must be >= 1; got {self.max_pending}"
            )
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ConfigurationError(
                f"deadline_seconds must be > 0; got {self.deadline_seconds}"
            )
        if self.work_budget is not None and self.work_budget < 1:
            raise ConfigurationError(
                f"work_budget must be >= 1; got {self.work_budget}"
            )
        if self.registry_budget_words is not None and self.registry_budget_words < 0:
            raise ConfigurationError(
                "registry_budget_words must be >= 0 or None; got "
                f"{self.registry_budget_words}"
            )
