"""``repro serve``: the long-lived solver daemon.

A deliberately small wire protocol — newline-delimited JSON over TCP —
so clients need nothing beyond a socket and ``json`` (see
:class:`repro.serve.ServeClient`).  One request object per line, one
response object per line, in order, per connection:

``{"op": "ping"}``
    liveness probe.
``{"op": "solve", "rhs": [...], "model": fp?, "info": bool?,``
``  "deadline": sec?, "work_budget": units?}``
    solve against a resident model; concurrent solves coalesce.
``{"op": "health"}``
    the ``repro.serve/v1`` blob (registry, coalescer, admission state,
    per-resident ``repro.telemetry/v1`` telemetry).
``{"op": "models"}``
    resident fingerprints.
``{"op": "load", "dir": path, "lam": float?}`` / ``{"op": "evict", "model": fp}``
    registry lifecycle.
``{"op": "update", "model": fp?, "insert": [[...]]?, "delete": [...]?,``
``  "lam": float?, "kernel_params": {...}?}``
    incrementally update a resident model in place (point
    insertion/deletion, lambda refit, kernel-parameter sweep); the
    response carries the model's *new* fingerprint and the structured
    update report (docs/UPDATES.md).
``{"op": "shutdown"}``
    stop the daemon (the response is sent first).

Responses carry ``ok``; failures also carry ``error`` (message),
``status`` (machine-readable class) and ``code`` — the same exit-code
vocabulary as the CLI, so a shed request reports
:data:`repro.cli.EXIT_OVERLOADED` whether it dies in-process or over
the wire.

Solve requests run in a thread pool sized past ``max_batch`` — that is
what lets concurrent client requests sit in the coalescing window
together instead of serializing on the event loop.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    DeadlineExceededError,
    OverloadedError,
    ReproError,
    ResidentEvictedError,
    StabilityError,
)
from repro.serve.service import SolverService

__all__ = ["ServeDaemon", "run_daemon", "error_payload"]


def error_payload(exc: BaseException) -> dict:
    """Map an exception to the wire-format failure object.

    Mirrors :func:`repro.cli.main`'s exception ladder so the daemon's
    ``code`` field and the CLI's exit codes agree.
    """
    from repro import cli

    if isinstance(exc, OverloadedError):
        status, code = "overloaded", cli.EXIT_OVERLOADED
    elif isinstance(exc, DeadlineExceededError):
        status, code = "deadline", cli.EXIT_DEADLINE
    elif isinstance(exc, ResidentEvictedError):
        # before the generic KeyError rung: "was resident, vanished
        # mid-flight" means reload-and-retry, not a usage error.
        status, code = "evicted", cli.EXIT_ERROR
    elif isinstance(exc, (ConfigurationError, KeyError, ValueError)):
        status, code = "usage", cli.EXIT_USAGE
    elif isinstance(exc, CheckpointError):
        status, code = "checkpoint", cli.EXIT_CHECKPOINT
    elif isinstance(exc, StabilityError):
        status, code = "numerical", cli.EXIT_NUMERICAL
    elif isinstance(exc, ReproError):
        status, code = "error", cli.EXIT_ERROR
    else:
        status, code = "internal", cli.EXIT_ERROR
    message = str(exc) or type(exc).__name__
    return {"ok": False, "error": message, "status": status, "code": code}


class ServeDaemon:
    """Serve a :class:`SolverService` over newline-delimited JSON/TCP."""

    def __init__(
        self,
        service: SolverService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        #: bound port after :meth:`start` (differs from ``port`` when 0).
        self.bound_port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        # sized past max_batch so a full batch of concurrent solve
        # requests can block in the coalescing window simultaneously.
        self._pool = ThreadPoolExecutor(
            max_workers=max(8, service.config.max_batch + 4),
            thread_name_prefix="repro-serve",
        )

    # ------------------------------------------------------------------
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.bound_port = self._server.sockets[0].getsockname()[1]

    async def wait_stopped(self) -> None:
        assert self._stop is not None
        await self._stop.wait()

    def request_stop(self) -> None:
        """Ask the daemon to stop; safe from any thread.

        A bare ``Event.set()`` from a foreign thread would not wake the
        event loop blocked in :meth:`wait_stopped` — route through
        ``call_soon_threadsafe``.
        """
        if self._stop is None or self._loop is None:
            return
        if self._loop.is_closed():  # pragma: no cover - late stop
            return
        self._loop.call_soon_threadsafe(self._stop.set)

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._pool.shutdown(wait=True)
        self.service.close()

    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                except ValueError as exc:
                    response = error_payload(exc)
                else:
                    response = await self._dispatch(request)
                    response.setdefault("ok", True)
                    if "id" in request:
                        response["id"] = request["id"]
                writer.write(json.dumps(response).encode() + b"\n")
                await writer.drain()
                if response.get("op") == "shutdown" and response.get("ok"):
                    self.request_stop()
                    break
        except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
            pass
        finally:
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _dispatch(self, request: dict) -> dict:
        op = request.get("op")
        loop = asyncio.get_running_loop()
        try:
            if op == "ping":
                return {"ok": True, "op": "ping"}
            if op == "solve":
                # run in the pool: solve() blocks in the coalescing
                # window, and concurrent requests must overlap there.
                return await loop.run_in_executor(
                    self._pool, self._solve_blocking, request
                )
            if op == "health":
                return {"ok": True, "op": "health",
                        "health": self.service.health()}
            if op == "models":
                return {"ok": True, "op": "models",
                        "models": self.service.registry.fingerprints()}
            if op == "load":
                directory = request.get("dir")
                if not directory:
                    raise ValueError("load requires 'dir'")
                fingerprint = await loop.run_in_executor(
                    self._pool,
                    lambda: self.service.registry.load(
                        directory, lam=request.get("lam")
                    ),
                )
                return {"ok": True, "op": "load", "model": fingerprint}
            if op == "update":
                # run in the pool: the re-factorization is CPU-heavy
                # and must not stall the event loop's solve admissions.
                return await loop.run_in_executor(
                    self._pool, self._update_blocking, request
                )
            if op == "evict":
                fingerprint = self.service.registry.resolve(
                    request.get("model")
                )
                return {"ok": True, "op": "evict",
                        "evicted": self.service.registry.evict(fingerprint)}
            if op == "shutdown":
                return {"ok": True, "op": "shutdown"}
            raise ValueError(f"unknown op {op!r}")
        except BaseException as exc:  # noqa: BLE001 - wire boundary
            payload = error_payload(exc)
            payload["op"] = op
            return payload

    def _solve_blocking(self, request: dict) -> dict:
        rhs = np.asarray(request.get("rhs"), dtype=np.float64)
        result = self.service.solve(
            rhs,
            model=request.get("model"),
            with_info=bool(request.get("info")),
            deadline_seconds=request.get("deadline"),
            work_budget=request.get("work_budget"),
        )
        if isinstance(result, list):  # multi-RHS: one payload per column
            return {
                "ok": True,
                "op": "solve",
                "columns": [r.to_payload() for r in result],
            }
        return {"ok": True, "op": "solve", **result.to_payload()}

    def _update_blocking(self, request: dict) -> dict:
        insert = request.get("insert")
        if insert is not None:
            insert = np.asarray(insert, dtype=np.float64)
        delete = request.get("delete")
        if delete is not None:
            delete = np.asarray(delete, dtype=np.intp)
        kernel_params = request.get("kernel_params")
        if kernel_params is not None and not isinstance(kernel_params, dict):
            raise ValueError("kernel_params must be a JSON object")
        result = self.service.update(
            model=request.get("model"),
            X_insert=insert,
            X_delete=delete,
            lam=request.get("lam"),
            kernel_params=kernel_params,
        )
        return {"ok": True, "op": "update", **result}


async def _serve(daemon: ServeDaemon, *, health_out: str | None) -> None:
    await daemon.start()
    print(f"repro-serve listening on {daemon.host}:{daemon.bound_port}",
          flush=True)
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError, ValueError):
            loop.add_signal_handler(sig, daemon.request_stop)
    try:
        await daemon.wait_stopped()
    finally:
        if health_out:
            # final health snapshot, written while the service is still
            # alive — the CI smoke job archives this artifact.
            with open(health_out, "w") as f:
                json.dump(daemon.service.health(), f, indent=2)
            print(f"health blob written to {health_out}", flush=True)
        await daemon.aclose()


def run_daemon(
    service: SolverService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    health_out: str | None = None,
) -> None:
    """Run the daemon until a shutdown request or SIGINT/SIGTERM."""
    daemon = ServeDaemon(service, host=host, port=port)
    asyncio.run(_serve(daemon, health_out=health_out))
