"""Resident-factorization registry: the expensive artifact, kept warm.

The whole economic argument of the paper is that the O(N log N)
factorization is paid once and amortized over many cheap solves — yet
every CLI entry point used to rebuild it per invocation.
:class:`ModelRegistry` keeps factorized :class:`FastKernelSolver`
instances *resident*, keyed by their ``repro.checkpoint/v1``
``config_fingerprint`` (the same identity under which checkpoints are
written, so a checkpoint directory and a live model for the same
problem are interchangeable), and warm-loads models from checkpoint
directories via :meth:`FastKernelSolver.resume`.

Memory is governed by the BlockCache budget discipline applied at
model granularity: a word budget caps the summed persistent storage of
all residents, admission evicts least-recently-used residents to make
room, and a model that alone exceeds the budget is refused
(:class:`~repro.exceptions.OverloadedError`) rather than silently
evicting everything else.

Every admitted model is telemetry-scoped
(:meth:`FastKernelSolver.scope_telemetry`), so the health endpoint can
report a per-model ``repro.telemetry/v1`` blob without the residents
interleaving each other's metric series.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.core.solver import FastKernelSolver
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    NotFactorizedError,
    OverloadedError,
    ResidentEvictedError,
)
from repro.obs import registry as metrics_registry

__all__ = ["ModelRegistry", "ResidentModel"]


@dataclass
class ResidentModel:
    """One factorized solver held resident by the registry."""

    fingerprint: str
    solver: FastKernelSolver
    #: "registered" for in-process admissions, else the checkpoint path.
    source: str
    #: persistent float64 words (H-matrix + factorization) — the unit
    #: the registry budget is charged in.
    storage_words: int
    #: solve batches served through this resident (registry-lock guarded).
    solves: int = field(default=0)

    def describe(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "source": self.source,
            "storage_words": self.storage_words,
            "solves": self.solves,
            "n_points": self.solver.n_points,
            "lam": getattr(self.solver.factorization, "lam", None),
        }


def _model_words(solver: FastKernelSolver) -> int:
    words = solver.hmatrix.storage_words()
    if solver.factorization is not None:
        words += solver.factorization.storage_words()
    return int(words)


class ModelRegistry:
    """LRU registry of resident factorized solvers, keyed by fingerprint.

    Parameters
    ----------
    budget_words:
        Word budget over the summed ``storage_words`` of all residents
        (``None`` = unbounded).  Enforced on admission, BlockCache
        style: evict LRU residents until the newcomer fits; refuse a
        newcomer that cannot fit an empty registry.

    Thread safety: every method is safe to call concurrently; the lock
    covers the resident table and counters, never a solve (callers hold
    plain references to :class:`ResidentModel` while solving, so an
    eviction during a solve only prevents *future* lookups).
    """

    def __init__(self, budget_words: int | None = None) -> None:
        if budget_words is not None and budget_words < 0:
            raise ConfigurationError(
                f"budget_words must be >= 0 or None; got {budget_words}"
            )
        self.budget_words = budget_words
        self._lock = threading.Lock()
        self._models: "OrderedDict[str, ResidentModel]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # ------------------------------------------------------------------
    # admission
    # ------------------------------------------------------------------
    def register(
        self, solver: FastKernelSolver, *, source: str = "registered"
    ) -> str:
        """Admit a fitted+factorized solver; returns its fingerprint.

        Re-registering the same fingerprint replaces the resident (the
        new factorization may carry a different ``lam``).
        """
        if solver.hmatrix is None:
            raise ConfigurationError("register() requires a fitted solver")
        if solver.factorization is None:
            raise NotFactorizedError(
                "register() requires a factorized solver — the registry "
                "exists to amortize the factorization, not to rebuild it"
            )
        fingerprint = solver.fingerprint()
        solver.scope_telemetry(fingerprint[:12])
        words = _model_words(solver)
        model = ResidentModel(
            fingerprint=fingerprint,
            solver=solver,
            source=source,
            storage_words=words,
        )
        reg = metrics_registry()
        with self._lock:
            if self.budget_words is not None and words > self.budget_words:
                raise OverloadedError(
                    f"model {fingerprint[:12]} needs {words} words but the "
                    f"registry budget is {self.budget_words}; refusing to "
                    "evict every other resident for a model that cannot fit"
                )
            old = self._models.pop(fingerprint, None)
            if self.budget_words is not None:
                while (
                    self._resident_words() + words > self.budget_words
                    and self._models
                ):
                    evicted_fp, _ = self._models.popitem(last=False)
                    self._evictions += 1
                    reg.counter("serve.registry.evictions").inc()
            self._models[fingerprint] = model
            if old is None:
                reg.counter("serve.registry.loads").inc()
            reg.gauge("serve.registry.residents").set(len(self._models))
            reg.gauge("serve.registry.words").set(self._resident_words())
        return fingerprint

    def load(self, checkpoint_dir: str, *, lam: float | None = None) -> str:
        """Warm-load a model from a ``repro.checkpoint/v1`` directory.

        Uses :meth:`FastKernelSolver.resume`; when the checkpoint holds
        no factorized ``state`` payload (the writer was killed before
        :meth:`save_checkpoint`, or only per-level snapshots exist),
        ``lam`` selects the factorization to (re)build — resuming from
        whatever completed levels the checkpoint holds.
        """
        solver = FastKernelSolver.resume(checkpoint_dir)
        if solver.factorization is None:
            if lam is None:
                raise CheckpointError(
                    f"checkpoint at {checkpoint_dir} holds no factorized "
                    "state; pass lam= to factorize on load"
                )
            solver.factorize(lam)
        return self.register(solver, source=str(checkpoint_dir))

    # ------------------------------------------------------------------
    # lookup / lifecycle
    # ------------------------------------------------------------------
    def get(self, fingerprint: str) -> ResidentModel:
        """The resident for ``fingerprint`` (LRU-touched); KeyError if absent."""
        reg = metrics_registry()
        with self._lock:
            model = self._models.get(fingerprint)
            if model is None:
                self._misses += 1
                reg.counter("serve.registry.misses").inc()
                raise KeyError(
                    f"no resident model {fingerprint!r} "
                    f"(residents: {[f[:12] for f in self._models]})"
                )
            self._models.move_to_end(fingerprint)
            self._hits += 1
            reg.counter("serve.registry.hits").inc()
            return model

    def peek(self, fingerprint: str) -> ResidentModel:
        """Lookup without LRU touch or hit/miss accounting.

        The coalescer flush path uses this: the request already counted
        its hit at admission, and a flush must not re-order the LRU
        under the admissions that funded it.

        Raises
        ------
        ResidentEvictedError
            When the fingerprint was resident at admission time but was
            evicted — or invalidated by :meth:`update_resident` — before
            this flush pinned it.  A :class:`KeyError` subclass, but
            typed so the daemon can tell the client "reload and retry"
            instead of "unknown model".
        """
        with self._lock:
            model = self._models.get(fingerprint)
            if model is None:
                raise ResidentEvictedError(
                    f"resident model {fingerprint!r} was evicted mid-flight"
                )
            return model

    def resolve(self, fingerprint: str | None) -> str:
        """Resolve ``None``/a unique prefix to a full resident fingerprint.

        ``None`` selects the sole resident (errors when the registry
        holds zero or several models — the client must then name one).
        """
        with self._lock:
            if fingerprint is None:
                if len(self._models) != 1:
                    raise KeyError(
                        "model fingerprint required: registry holds "
                        f"{len(self._models)} residents"
                    )
                return next(iter(self._models))
            if fingerprint in self._models:
                return fingerprint
            matches = [f for f in self._models if f.startswith(fingerprint)]
            if len(matches) == 1:
                return matches[0]
            raise KeyError(
                f"no unique resident matches {fingerprint!r} "
                f"({len(matches)} candidates)"
            )

    def evict(self, fingerprint: str) -> bool:
        """Drop a resident; True if it was present."""
        with self._lock:
            model = self._models.pop(fingerprint, None)
            if model is not None:
                self._evictions += 1
                reg = metrics_registry()
                reg.counter("serve.registry.evictions").inc()
                reg.gauge("serve.registry.residents").set(len(self._models))
                reg.gauge("serve.registry.words").set(self._resident_words())
            return model is not None

    def resolve_for_update(self, fingerprint: str | None) -> str:
        """:meth:`resolve`, but a name matching *nothing* raises
        :class:`~repro.exceptions.ResidentEvictedError` instead of a
        bare ``KeyError``: in the update protocol a vanished fingerprint
        means a concurrent update or eviction rotated it away, and the
        client should re-list models and retry, not fix its request.
        Ambiguous prefixes and an empty/crowded registry stay usage
        errors.
        """
        try:
            return self.resolve(fingerprint)
        except ResidentEvictedError:
            raise
        except KeyError as exc:
            if fingerprint is None or "(0 candidates)" not in str(exc):
                raise
            raise ResidentEvictedError(
                f"resident model {fingerprint!r} was evicted mid-flight"
            ) from exc

    def update_resident(
        self,
        fingerprint: str,
        *,
        X_insert=None,
        X_delete=None,
        lam: float | None = None,
        kernel_params: dict | None = None,
    ) -> str:
        """Incrementally update a resident model in place; returns the
        *new* fingerprint it is resident under.

        The update mutates the model's data, so its
        ``config_fingerprint`` changes: the stale entry is removed
        *before* the mutation starts (atomically w.r.t. concurrent
        :meth:`peek`/:meth:`get` — an in-flight solve that already holds
        the :class:`ResidentModel` reference finishes against the
        pre-update factors; a later flush gets
        :class:`~repro.exceptions.ResidentEvictedError` and the client
        retries against the new fingerprint).  On update failure the
        stale entry is *not* re-admitted — its fingerprint promises a
        state the solver may no longer be in.

        Accepts a unique fingerprint prefix, like every other lookup
        (see :meth:`resolve_for_update` for the eviction-typed variant).
        """
        fingerprint = self.resolve_for_update(fingerprint)
        reg = metrics_registry()
        with self._lock:
            model = self._models.pop(fingerprint, None)
            if model is None:
                raise ResidentEvictedError(
                    f"resident model {fingerprint!r} was evicted mid-flight"
                )
            reg.gauge("serve.registry.residents").set(len(self._models))
            reg.gauge("serve.registry.words").set(self._resident_words())
        try:
            model.solver.update(
                X_insert=X_insert,
                X_delete=X_delete,
                lam=lam,
                kernel_params=kernel_params,
            )
        except Exception:
            reg.counter("serve.registry.update_failures").inc()
            raise
        reg.counter("serve.registry.updates").inc()
        new_fp = self.register(model.solver, source=model.source)
        with self._lock:
            resident = self._models.get(new_fp)
            if resident is not None:
                resident.solves = model.solves
        return new_fp

    def fingerprints(self) -> list[str]:
        with self._lock:
            return list(self._models)

    def models(self) -> list[ResidentModel]:
        with self._lock:
            return list(self._models.values())

    def count_solve(self, fingerprint: str) -> None:
        with self._lock:
            model = self._models.get(fingerprint)
            if model is not None:
                model.solves += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._models)

    def _resident_words(self) -> int:
        return sum(m.storage_words for m in self._models.values())

    def stats(self) -> dict:
        """JSON-friendly registry digest for the health endpoint."""
        with self._lock:
            return {
                "residents": len(self._models),
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "resident_words": self._resident_words(),
                "budget_words": self.budget_words,
                "models": {
                    fp: m.describe() for fp, m in self._models.items()
                },
            }
