"""Row sampling for skeletonization (ASKIT's kappa-neighbor sampling).

The interpolative decomposition of a node needs rows of ``K`` indexed
by points *outside* the node.  Using all N - |alpha| rows would cost
O(N^2); ASKIT instead samples a small set ``S'`` biased toward near
neighbors of the node's points (the rows with the largest entries, for
decaying kernels) plus uniform fill-in.
"""

from repro.sampling.neighbors import NeighborTable, approximate_knn
from repro.sampling.importance import RowSampler

__all__ = ["NeighborTable", "approximate_knn", "RowSampler"]
