"""Approximate k-nearest-neighbor search via randomized ball trees.

ASKIT uses approximate near neighbors (parameter ``kappa``) to bias the
skeletonization row sample.  Exact kNN is O(N^2 d); instead we run a
few randomized tree builds and, within every leaf, compute exact
neighbors among leaf-mates, merging the best candidates across rounds.
This is the same "greedy tree neighbors" strategy the ASKIT papers use
and costs O(T N m d) for T rounds and leaf size m.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import TreeConfig
from repro.kernels.distances import pairwise_sq_dists
from repro.tree.balltree import BallTree
from repro.util.random import as_generator

__all__ = ["NeighborTable", "approximate_knn"]


@dataclass
class NeighborTable:
    """Per-point candidate neighbors.

    Attributes
    ----------
    indices:
        (N, k) array; row i holds indices of i's approximate nearest
        neighbors, nearest first.  Self-neighbors are excluded.
    sq_dists:
        Matching squared distances.
    """

    indices: np.ndarray
    sq_dists: np.ndarray

    @property
    def k(self) -> int:
        return self.indices.shape[1]


def approximate_knn(
    X: np.ndarray,
    k: int,
    *,
    n_rounds: int = 3,
    leaf_size: int | None = None,
    seed: int | np.random.Generator | None = 0,
) -> NeighborTable:
    """Approximate k-nearest neighbors of every row of ``X``.

    Parameters
    ----------
    X:
        (N, d) points.
    k:
        Neighbors per point (clipped to N - 1).
    n_rounds:
        Number of randomized tree builds to merge.
    leaf_size:
        Leaf size of the search trees; defaults to ``max(2k + 1, 32)``.
    seed:
        RNG seed (each round derives its own child seed).
    """
    X = np.asarray(X, dtype=np.float64)
    n = X.shape[0]
    if n < 2:
        raise ValueError("need at least 2 points for neighbor search")
    k = min(k, n - 1)
    if k == 0:
        raise ValueError("k must be >= 1")
    if leaf_size is None:
        leaf_size = max(2 * k + 1, 32)
    rng = as_generator(seed)

    best_d = np.full((n, k), np.inf)
    best_i = np.full((n, k), -1, dtype=np.intp)

    for _ in range(max(1, n_rounds)):
        tree = BallTree(X, TreeConfig(leaf_size=leaf_size, seed=int(rng.integers(2**31))))
        for leaf in tree.leaves():
            ids = tree.perm[leaf.lo : leaf.hi]
            pts = tree.points[leaf.lo : leaf.hi]
            D2 = pairwise_sq_dists(pts, pts)
            np.fill_diagonal(D2, np.inf)
            kk = min(k, len(ids) - 1)
            if kk < 1:
                continue
            part = np.argpartition(D2, kk - 1, axis=1)[:, :kk]
            cand_d = np.take_along_axis(D2, part, axis=1)
            cand_i = ids[part]
            # merge candidates with the running best set per point,
            # keeping at most one occurrence of each neighbor index.
            rows = ids
            merged_d = np.concatenate([best_d[rows], cand_d], axis=1)
            merged_i = np.concatenate([best_i[rows], cand_i], axis=1)
            order = np.argsort(merged_d, axis=1, kind="stable")
            md = np.take_along_axis(merged_d, order, axis=1)
            mi = np.take_along_axis(merged_i, order, axis=1)
            # mark every repeated index (rows are distance-sorted, so a
            # stable index-sort keeps the nearest occurrence first).
            by_idx = np.argsort(mi, axis=1, kind="stable")
            si = np.take_along_axis(mi, by_idx, axis=1)
            dup_sorted = np.zeros(si.shape, dtype=bool)
            dup_sorted[:, 1:] = si[:, 1:] == si[:, :-1]
            dup = np.zeros_like(dup_sorted)
            np.put_along_axis(dup, by_idx, dup_sorted, axis=1)
            md[dup] = np.inf
            keep = np.argsort(md, axis=1, kind="stable")[:, :k]
            best_d[rows] = np.take_along_axis(md, keep, axis=1)
            best_i[rows] = np.take_along_axis(mi, keep, axis=1)

    # fill any remaining holes with random distinct points.
    holes = np.nonzero(best_i < 0)
    if len(holes[0]):
        for r, c in zip(*holes):
            while True:
                j = int(rng.integers(n))
                if j != r and j not in best_i[r]:
                    break
            best_i[r, c] = j
            diff = X[r] - X[j]
            best_d[r, c] = float(diff @ diff)

    return NeighborTable(indices=best_i, sq_dists=best_d)
