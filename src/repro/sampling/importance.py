"""Construction of the skeletonization row sample ``S'``.

For a tree node ``alpha``, the sample must lie *outside* alpha (the
skeleton approximates the off-diagonal rows ``K_{S alpha}``).  We work
in tree-permuted coordinates, where alpha's points occupy a contiguous
range ``[lo, hi)``, so the outside test is two comparisons.

The sample blends:

* neighbor rows — approximate near neighbors of alpha's points that
  fall outside alpha (these dominate the off-diagonal block's energy
  for decaying kernels), and
* uniform rows — random outside points, guarding against adversarial
  geometry where the neighbor set under-samples far-field structure.
"""

from __future__ import annotations

import numpy as np

from repro.sampling.neighbors import NeighborTable
from repro.tree.node import Node
from repro.util.random import as_generator

__all__ = ["RowSampler"]


class RowSampler:
    """Draws row samples ``S'`` for node skeletonizations.

    Parameters
    ----------
    n_points:
        Total number of points N (tree-permuted coordinates).
    neighbors:
        Optional :class:`NeighborTable` in *tree-permuted* coordinates;
        when ``None``, samples are purely uniform.
    num_samples:
        Target |S'|; clipped to N - |alpha| when the outside set is small.
    seed:
        RNG seed.
    """

    def __init__(
        self,
        n_points: int,
        neighbors: NeighborTable | None,
        num_samples: int,
        seed: int | None = 0,
    ) -> None:
        if num_samples < 1:
            raise ValueError("num_samples must be >= 1")
        self.n_points = int(n_points)
        self.neighbors = neighbors
        self.num_samples = int(num_samples)
        self.seed = int(seed) if seed is not None else 0
        self._rng = as_generator(self.seed)

    # ------------------------------------------------------------------
    def sample(self, node: Node) -> np.ndarray:
        """Row sample for ``node``: sorted unique tree positions outside it.

        The draw is keyed by ``(sampler seed, node id)``, so the sample
        for a given node is independent of traversal order — serial and
        distributed skeletonizations produce identical results.
        """
        self._rng = as_generator([self.seed, int(node.id)])
        lo, hi = node.lo, node.hi
        n_outside = self.n_points - (hi - lo)
        if n_outside <= 0:
            return np.empty(0, dtype=np.intp)
        budget = min(self.num_samples, n_outside)

        picked: np.ndarray
        if self.neighbors is not None:
            cand = self.neighbors.indices[lo:hi].ravel()
            cand = cand[(cand >= 0) & ((cand < lo) | (cand >= hi))]
            cand = np.unique(cand)
            if len(cand) > budget:
                cand = self._rng.choice(cand, size=budget, replace=False)
            picked = cand
        else:
            picked = np.empty(0, dtype=np.intp)

        deficit = budget - len(picked)
        if deficit > 0:
            picked = np.union1d(picked, self._uniform_outside(lo, hi, deficit, picked))
        return np.sort(np.asarray(picked, dtype=np.intp))

    # ------------------------------------------------------------------
    def _uniform_outside(
        self, lo: int, hi: int, count: int, exclude: np.ndarray
    ) -> np.ndarray:
        """Uniform sample of outside positions, avoiding ``exclude``.

        Positions outside ``[lo, hi)`` form two contiguous runs; we draw
        from a virtual concatenation of them, then reject collisions
        with ``exclude`` (cheap because samples are few).
        """
        n_outside = self.n_points - (hi - lo)
        count = min(count, n_outside - len(exclude))
        if count <= 0:
            return np.empty(0, dtype=np.intp)
        excluded = set(int(e) for e in exclude)
        out: list[int] = []
        # rejection sampling; outside set is much larger than the sample
        # in every non-degenerate configuration, so this terminates fast.
        attempts = 0
        while len(out) < count and attempts < 50 * count + 100:
            draws = self._rng.integers(0, n_outside, size=2 * (count - len(out)))
            for v in draws:
                pos = int(v) if v < lo else int(v) + (hi - lo)
                if pos not in excluded:
                    excluded.add(pos)
                    out.append(pos)
                    if len(out) == count:
                        break
            attempts += len(draws)
        if len(out) < count:
            # exhaustive fallback for tiny outside sets.
            remaining = [
                p
                for p in range(self.n_points)
                if (p < lo or p >= hi) and p not in excluded
            ]
            need = count - len(out)
            take = self._rng.choice(len(remaining), size=need, replace=False)
            out.extend(remaining[int(t)] for t in take)
        return np.asarray(out, dtype=np.intp)
