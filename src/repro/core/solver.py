"""FastKernelSolver: the one-stop public API.

Mirrors the paper's pipeline — tree construction, skeletonization
(Algorithm II.1), factorization (Algorithm II.2 / II.4 / hybrid II.6),
solve (Algorithm II.3 / II.5) — behind a scikit-learn-flavoured
interface, handling the tree permutation so callers work entirely in
their own point order::

    solver = FastKernelSolver(GaussianKernel(bandwidth=0.5))
    solver.fit(X)                      # tree + skeletons (ASKIT)
    solver.factorize(lam=1.0)          # lambda I + K~  =  L U ...
    w = solver.solve(u)                # (lambda I + K~)^{-1} u
    v = solver.matvec(u)               # K~ u (fast treecode product)

``factorize`` may be called repeatedly with different ``lam`` — the
cross-validation loop the paper optimizes for — without re-running the
(shared) skeletonization.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.exceptions import (
    CheckpointError,
    ConfigurationError,
    NotFactorizedError,
    NotSkeletonizedError,
)
from repro.hmatrix.errors import estimate_matrix_error
from repro.hmatrix.hmatrix import HMatrix, build_hmatrix
from repro.kernels.base import Kernel
from repro.kernels.gsks import gsks_matvec
from repro.resilience import (
    Checkpoint,
    CoarsenPolicy,
    Deadline,
    WorkBudget,
    config_fingerprint,
    deadline_scope,
    resilient_factorize,
)
from repro.solvers.factorization import HierarchicalFactorization, factorize
from repro.solvers.recovery import (
    IterativeFallback,
    SolverHealth,
    robust_factorize,
    robust_solve,
)
from repro.util.timing import StageTimes, Timer
from repro.util.validation import check_points, check_vector

__all__ = ["FastKernelSolver", "SolveInfo"]


@dataclass
class SolveInfo:
    """Diagnostics returned by :meth:`FastKernelSolver.solve_with_info`."""

    residual: float
    gmres_iterations: int
    stable: bool
    #: recovery-ladder report (None unless solver_config.recovery.enabled).
    health: SolverHealth | None = None


class FastKernelSolver:
    """Fast direct solver for ``(lambda I + K) w = u`` on N points.

    Parameters
    ----------
    kernel:
        A :class:`repro.kernels.Kernel` (e.g. Gaussian with the
        bandwidth ``h``).
    tree_config, skeleton_config, solver_config:
        See :mod:`repro.config`.  The solver method ("nlogn",
        "nlog2n", "hybrid") and the summation strategy live in
        ``solver_config``.

    Attributes
    ----------
    times:
        Stage wall-clock accumulator ("tree", "skeletonize",
        "factorize", "solve") — the paper's ASKIT/Tf/Ts columns.
    """

    def __init__(
        self,
        kernel: Kernel,
        *,
        tree_config: TreeConfig | None = None,
        skeleton_config: SkeletonConfig | None = None,
        solver_config: SolverConfig | None = None,
    ) -> None:
        self.kernel = kernel
        self.tree_config = tree_config or TreeConfig()
        self.skeleton_config = skeleton_config or SkeletonConfig()
        self.solver_config = solver_config or SolverConfig()
        self.hmatrix: HMatrix | None = None
        self.factorization: HierarchicalFactorization | IterativeFallback | None = None
        #: recovery report of the last factorize/solve cycle (populated
        #: only when ``solver_config.recovery.enabled``).
        self.health: SolverHealth | None = None
        self.times = StageTimes()
        #: metric-attribution label (see :meth:`scope_telemetry`).  When
        #: set, every series this solver's work emits carries a
        #: ``solver=<label>`` label and :meth:`telemetry` reports only
        #: this solver's series — two resident solvers in one process no
        #: longer interleave (docs/OBSERVABILITY.md).
        self.telemetry_label: str | None = None
        #: report of the last :meth:`update` call (None before any).
        self.last_update = None
        self._X: np.ndarray | None = None
        self._X_norms: np.ndarray | None = None
        #: pipeline deadline (created at fit() from solver_config.resilience;
        #: shared across fit/factorize/solve — the budget covers the whole
        #: pipeline, not each call).
        self._deadline: Deadline | None = None

    # ------------------------------------------------------------------
    # resilience plumbing
    # ------------------------------------------------------------------
    def _make_deadline(self) -> Deadline | None:
        res = self.solver_config.resilience
        if res.deadline_seconds is None and res.work_budget is None:
            return None
        budget = WorkBudget(res.work_budget) if res.work_budget is not None else None
        return Deadline(res.deadline_seconds, budget=budget)

    def _coarsen_policy(self) -> CoarsenPolicy | None:
        res = self.solver_config.resilience
        if self._deadline is None or not res.degrade:
            return None
        return CoarsenPolicy(
            pressure=res.coarsen_pressure, tau_factor=res.coarsen_tau_factor
        )

    def _fingerprint(self) -> str:
        return config_fingerprint(
            self._X, self.kernel, self.tree_config, self.skeleton_config
        )

    def fingerprint(self) -> str:
        """The ``repro.checkpoint/v1`` config fingerprint of this solver.

        sha256 over (data, kernel, tree/skeleton configs) — the identity
        under which checkpoints are written and the serving registry
        keys resident models.  Requires :meth:`fit`.
        """
        self._require_fitted()
        return self._fingerprint()

    # ------------------------------------------------------------------
    # per-solver telemetry attribution (docs/OBSERVABILITY.md)
    # ------------------------------------------------------------------
    def scope_telemetry(self, label: str | None = None) -> str:
        """Attribute this solver's metric series to a per-solver label.

        Without attribution, every solver publishes into the same
        process-global series names, so two resident solvers in one
        daemon interleave each other's GMRES/recovery/stability
        counters.  After this call, work done through this facade runs
        under :func:`repro.obs.label_scope`\\ ``(solver=label)`` and
        :meth:`telemetry` returns only series attributed to this solver
        (plus the shared, unattributed ones).

        ``label`` defaults to the first 12 hex chars of
        :meth:`fingerprint` (requires :meth:`fit`); pass an explicit
        label to scope an unfitted solver.  Returns the label.
        """
        if label is None:
            label = self.fingerprint()[:12]
        self.telemetry_label = str(label)
        return self.telemetry_label

    def _metric_scope(self):
        from repro.obs import label_scope

        return label_scope(solver=self.telemetry_label)

    def _open_checkpoint(self, mode: str = "write") -> Checkpoint | None:
        res = self.solver_config.resilience
        if res.checkpoint_dir is None:
            return None
        return Checkpoint(
            res.checkpoint_dir, fingerprint=self._fingerprint(), mode=mode
        )

    def _solve_deadline(self) -> Deadline | None:
        """Deadline to install around a solve.

        An *expired* deadline is not reinstalled: degradation already
        chose a cheap path, and soft-stopping its GMRES at iteration
        zero would turn a degraded answer into a useless one.
        """
        dl = self._deadline
        return dl if dl is not None and not dl.expired else None

    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        self._require_fitted()
        return self.hmatrix.n_points

    def _require_fitted(self) -> None:
        if self.hmatrix is None:
            raise NotSkeletonizedError("call fit(X) first")

    def _require_factorized(self) -> None:
        self._require_fitted()
        if self.factorization is None:
            raise NotFactorizedError("call factorize(lam) first")

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "FastKernelSolver":
        """Build the ball tree and skeletonize (the ASKIT phase).

        With ``solver_config.resilience`` armed, the pipeline deadline
        starts here, deadline pressure coarsens the rank tolerance
        (degradation rung 1), and — when a checkpoint directory is
        configured — the skeletonized state is snapshotted so a later
        kill resumes without redoing the ASKIT phase.
        """
        X = check_points(X)
        self._X = X
        self._X_norms = self.kernel.prepare_norms(X)
        self._deadline = self._make_deadline()
        with self._metric_scope(), Timer() as t, deadline_scope(self._deadline):
            self.hmatrix = build_hmatrix(
                X,
                self.kernel,
                tree_config=self.tree_config,
                skeleton_config=self.skeleton_config,
                summation=self.solver_config.summation,
                deadline=self._deadline,
                coarsen=self._coarsen_policy(),
            )
        self.times.add("tree+skeletonize", t.elapsed)
        self.factorization = None
        cp = self._open_checkpoint("write")
        if cp is not None:
            cp.save(
                "solver",
                {
                    "kernel": self.kernel,
                    "tree_config": self.tree_config,
                    "skeleton_config": self.skeleton_config,
                    "solver_config": self.solver_config,
                    "X": self._X,
                },
            )
            cp.save("skeletons", self.hmatrix)
        return self

    def factorize(self, lam: float = 0.0) -> "FastKernelSolver":
        """Factorize ``lambda I + K~`` with the configured method.

        With ``solver_config.recovery.enabled``, breakdown escalates
        through the recovery ladder (docs/ROBUSTNESS.md) instead of
        degrading silently; the report lands in :attr:`health`.

        With ``solver_config.resilience`` armed, node work is charged
        against the pipeline deadline, each completed level is
        checkpointed (and resumed, when the checkpoint directory holds
        matching levels), and running out of budget degrades through
        the frontier-freeze/iterative rungs instead of raising (see
        docs/ROBUSTNESS.md sections 6-8).
        """
        self._require_fitted()
        res = self.solver_config.resilience
        if not res.active:
            with self._metric_scope(), self.times.time("factorize"):
                if self.solver_config.recovery.enabled:
                    self.factorization, self.health = robust_factorize(
                        self.hmatrix, lam, self.solver_config
                    )
                else:
                    self.factorization = factorize(
                        self.hmatrix, lam, self.solver_config
                    )
                    self.health = None
            return self

        if self._deadline is None:
            self._deadline = self._make_deadline()
        health = SolverHealth()
        for ev in self.hmatrix.skeletons.degradation_events:
            health.record(
                ev.get("stage", "coarsen"),
                **{k: v for k, v in ev.items() if k != "stage"},
            )
        cp = self._open_checkpoint("write")
        with self._metric_scope(), self.times.time("factorize"), deadline_scope(
            self._deadline
        ):
            self.factorization, self.health = resilient_factorize(
                self.hmatrix,
                lam,
                self.solver_config,
                health=health,
                deadline=self._deadline,
                checkpoint=cp,
            )
        return self

    def update(
        self,
        *,
        X_insert: np.ndarray | None = None,
        X_delete: np.ndarray | None = None,
        lam: float | None = None,
        kernel_params: dict | None = None,
    ) -> "FastKernelSolver":
        """Incrementally update the fitted model (docs/UPDATES.md).

        * ``X_insert`` — (k, d) new points, routed to their owning
          leaves through the recorded splitting hyperplanes; only the
          dirty subtrees are re-skeletonized and refactorized, clean
          factors are transplanted verbatim.
        * ``X_delete`` — indices (in the caller's point order, i.e.
          rows of the ``X`` passed to :meth:`fit`) to remove.  After
          the update the surviving points keep their relative order and
          inserted points follow, so the new point order is
          ``concat(delete(X_old, X_delete), X_insert)``.
        * ``lam`` — refactorize at a new regularization, reusing the
          tree, skeletons, and cached kernel blocks (the paper's
          cross-validation loop).  An unchanged ``lam`` is a no-op.
        * ``kernel_params`` — e.g. ``{"bandwidth": 0.7}``: keep the
          skeleton structure frozen and least-squares refit the
          projections under the new kernel, then refactorize.  Cannot
          be combined with point changes in one call.

        Past ``solver_config.update_rebuild_threshold`` dirty fraction
        — or when the tree cannot route new points — the update falls
        back to a full rebuild; either way the solver ends consistent
        and (when previously factorized or ``lam`` is given) ready to
        :meth:`solve`.  The structured :class:`~repro.core.update.UpdateReport`
        lands in :attr:`last_update`; an exception leaves the solver
        unchanged.
        """
        self._require_fitted()
        from repro.core.update import apply_update

        with self._metric_scope():
            self.last_update = apply_update(
                self,
                X_insert=X_insert,
                X_delete=X_delete,
                lam=lam,
                kernel_params=kernel_params,
            )
        return self

    # ------------------------------------------------------------------
    def _to_tree(self, u: np.ndarray) -> np.ndarray:
        return u[self.hmatrix.tree.perm]

    def _from_tree(self, w: np.ndarray) -> np.ndarray:
        out = np.empty_like(w)
        out[self.hmatrix.tree.perm] = w
        return out

    def solve(self, u: np.ndarray) -> np.ndarray:
        """``w = (lambda I + K~)^{-1} u`` in the caller's point order.

        ``u`` may be (N,) or (N, k) for multiple right-hand sides.
        """
        self._require_factorized()
        u = check_vector(u, self.n_points)
        with self._metric_scope(), self.times.time("solve"), deadline_scope(
            self._solve_deadline()
        ):
            w = self.factorization.solve(self._to_tree(u))
        return self._from_tree(w)

    def solve_with_info(self, u: np.ndarray) -> tuple[np.ndarray, SolveInfo]:
        """Like :meth:`solve`, plus residual/iteration diagnostics.

        With recovery enabled, the solve is residual-verified and
        escalated through :func:`repro.solvers.recovery.robust_solve`
        when it misses ``recovery.solve_residual_limit``.
        """
        self._require_factorized()
        fact = self.factorization
        before = len(fact.reduced_iterations)
        # validate and permute once; both the recovery and plain paths
        # (and the residual below) reuse the same tree-order vectors.
        u_tree = self._to_tree(check_vector(u, self.n_points))
        with self._metric_scope(), self.times.time("solve"), deadline_scope(
            self._solve_deadline()
        ):
            if self.health is not None:
                w_tree, self.health = robust_solve(
                    fact, u_tree, self.solver_config, self.health
                )
            else:
                w_tree = fact.solve(u_tree)
        w = self._from_tree(w_tree)
        info = SolveInfo(
            residual=fact.residual(u_tree, w_tree),
            gmres_iterations=sum(fact.reduced_iterations[before:]),
            stable=fact.stability.is_stable,
            health=self.health,
        )
        return w, info

    def matvec(self, u: np.ndarray) -> np.ndarray:
        """Fast product ``K~ u`` (the ASKIT treecode evaluation)."""
        self._require_fitted()
        u = check_vector(u, self.n_points)
        return self._from_tree(self.hmatrix.matvec(self._to_tree(u)))

    def regularized_matvec(self, lam: float, u: np.ndarray) -> np.ndarray:
        """``(lambda I + K~) u`` in the caller's order."""
        return self.matvec(u) + lam * np.asarray(u, dtype=np.float64)

    def slogdet(self) -> tuple[float, float]:
        """Sign and log|det| of the factorized ``lambda I + K~``.

        O(N log N): the determinant telescopes out of the leaf and
        reduced-system LU factors (direct methods only).
        """
        self._require_factorized()
        return self.factorization.slogdet()

    def residual(self, u: np.ndarray, w: np.ndarray) -> float:
        """Relative residual ``||u - (lambda I + K~) w|| / ||u||``."""
        self._require_factorized()
        return self.factorization.residual(
            self._to_tree(check_vector(u, self.n_points)),
            self._to_tree(check_vector(w, self.n_points)),
        )

    def predict_matvec(self, X_new: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Out-of-sample products ``K(X_new, X_train) w`` (GSKS path)."""
        self._require_fitted()
        X_new = check_points(X_new, "X_new")
        w = check_vector(w, self.n_points, "w")
        return gsks_matvec(self.kernel, X_new, self._X, w, norms_b=self._X_norms)

    # ------------------------------------------------------------------
    # checkpoint/restart (repro.checkpoint/v1; docs/ROBUSTNESS.md §7)
    # ------------------------------------------------------------------
    def save_checkpoint(self, directory: str | None = None) -> str:
        """Snapshot the full solver state to a checkpoint directory.

        Writes the ``solver`` meta payload (data, kernel, configs), the
        skeletonized H-matrix, every completed factorization level, and
        — when factorized — a ``state`` payload carrying the whole
        factorization-like object, :attr:`health`, and stage times, so
        :meth:`resume` reproduces this solver exactly (recovery/
        degradation history included).

        Returns the checkpoint directory path.
        """
        self._require_fitted()
        directory = directory or self.solver_config.resilience.checkpoint_dir
        if directory is None:
            raise ConfigurationError(
                "no checkpoint directory: pass one or set "
                "solver_config.resilience.checkpoint_dir"
            )
        cp = Checkpoint(directory, fingerprint=self._fingerprint(), mode="write")
        cp.save(
            "solver",
            {
                "kernel": self.kernel,
                "tree_config": self.tree_config,
                "skeleton_config": self.skeleton_config,
                "solver_config": self.solver_config,
                "X": self._X,
            },
        )
        cp.save("skeletons", self.hmatrix)
        fact = self.factorization
        if isinstance(fact, HierarchicalFactorization):
            for lv in sorted(fact.completed_levels, reverse=True):
                cp.save_level(
                    lv,
                    fact.export_level_payload(lv),
                    lam=fact.lam,
                    method=fact.config.method,
                )
        if fact is not None:
            cp.save(
                "state",
                {
                    "factorization": fact,
                    "health": self.health,
                    "times": self.times,
                    "lam": fact.lam,
                },
            )
        return cp.path

    @classmethod
    def resume(cls, directory: str) -> "FastKernelSolver":
        """Rebuild a solver from a ``repro.checkpoint/v1`` directory.

        Restores data, configs, and the skeletonized H-matrix; when a
        full ``state`` snapshot exists (:meth:`save_checkpoint` after
        factorizing) the factorization, health report, and stage times
        come back too, and the solver solves identically to the one
        that was saved.  Otherwise call :meth:`factorize` — it resumes
        from the last completed checkpointed level instead of from
        scratch.

        Raises
        ------
        CheckpointError
            On a missing/corrupted checkpoint, or when the manifest's
            fingerprint does not match the payloads it indexes.
        """
        cp = Checkpoint(directory, mode="resume")
        meta = cp.load("solver")
        solver = cls(
            meta["kernel"],
            tree_config=meta["tree_config"],
            skeleton_config=meta["skeleton_config"],
            solver_config=meta["solver_config"],
        )
        res = solver.solver_config.resilience
        if res.checkpoint_dir != cp.path:
            solver.solver_config = replace(
                solver.solver_config, resilience=replace(res, checkpoint_dir=cp.path)
            )
        solver._X = check_points(meta["X"])
        solver._X_norms = solver.kernel.prepare_norms(solver._X)
        expect = solver._fingerprint()
        found = cp.manifest.get("fingerprint")
        if found != expect:
            raise CheckpointError(
                f"checkpoint at {cp.path} fingerprint {found!r} does not "
                "match the configuration stored in its own solver payload; "
                "refusing to resume from inconsistent state"
            )
        solver.hmatrix = cp.load("skeletons")
        if solver.hmatrix.n_points != solver._X.shape[0]:
            raise CheckpointError(
                f"checkpoint at {cp.path} holds skeletons for "
                f"{solver.hmatrix.n_points} points but data for "
                f"{solver._X.shape[0]}; the model was updated without "
                "re-checkpointing — refusing to resume"
            )
        if cp.has("state"):
            state = cp.load("state")
            solver.factorization = state["factorization"]
            solver.health = state["health"]
            if state.get("times") is not None:
                solver.times = state["times"]
        solver._deadline = solver._make_deadline()
        return solver

    # ------------------------------------------------------------------
    def approximation_error(self, n_probes: int = 8, seed: int | None = 0) -> float:
        """Randomized estimate of ``||K - K~|| / ||K||``."""
        self._require_fitted()
        return estimate_matrix_error(self.hmatrix, n_probes=n_probes, seed=seed)

    def diagnostics(self) -> dict:
        """Structured summary: ranks, frontier, storage, stability."""
        self._require_fitted()
        h = self.hmatrix
        ranks = [sk.rank for sk in h.skeletons.skeletons.values()]
        out = {
            "n_points": h.n_points,
            "depth": h.tree.depth,
            "frontier_size": len(h.frontier),
            "frontier_level": h.frontier[0].level if h.frontier else 0,
            "max_rank": max(ranks) if ranks else 0,
            "mean_rank": float(np.mean(ranks)) if ranks else 0.0,
            "reduced_size": h.skeletons.total_frontier_rank() if ranks else 0,
            "hmatrix_storage_words": h.storage_words(),
        }
        cache = h.cache_stats()
        out["cache_hit_rate"] = cache.hit_rate
        out["cache_peak_words"] = cache.peak_words
        out["cache_evictions"] = cache.evictions
        if self.factorization is not None:
            out["factor_storage_words"] = self.factorization.storage_words()
            out["min_rcond"] = self.factorization.stability.min_rcond
            out["stable"] = self.factorization.stability.is_stable
        return out

    def telemetry(self) -> dict:
        """The process telemetry blob plus this solver's stage times.

        One JSON-serializable answer to "what did this solve actually
        do?": the span tree (tree build, skeletonize, factorize, solve,
        per-level factorization), every metric series (block cache,
        fabric faults, GMRES, recovery, warnings), this solver's stage
        accumulators, and the recovery-health digest when armed.  See
        docs/OBSERVABILITY.md for the schema.

        When :meth:`scope_telemetry` has attributed this solver, the
        metric section contains only this solver's series plus the
        shared unattributed ones — two resident solvers in one process
        report disjoint, uncontaminated blobs.
        """
        from repro.obs import telemetry_snapshot

        if self.hmatrix is not None:
            self.hmatrix.cache.publish()
        scope = (
            {"solver": self.telemetry_label}
            if self.telemetry_label is not None
            else None
        )
        blob = telemetry_snapshot(scope=scope)
        blob["stages"] = dict(self.times.stages)
        if self.health is not None:
            blob["health"] = self.health.summary()
        res = self.solver_config.resilience
        if res.active:
            resilience: dict = {
                "checkpoint_dir": res.checkpoint_dir,
                "degrade": res.degrade,
            }
            if self._deadline is not None:
                resilience["deadline"] = self._deadline.summary()
            if self.hmatrix is not None:
                resilience["coarsen_events"] = list(
                    self.hmatrix.skeletons.degradation_events
                )
            if isinstance(self.factorization, HierarchicalFactorization):
                resilience["completed_levels"] = sorted(
                    self.factorization.completed_levels
                )
            blob["resilience"] = resilience
        return blob
