"""FastKernelSolver: the one-stop public API.

Mirrors the paper's pipeline — tree construction, skeletonization
(Algorithm II.1), factorization (Algorithm II.2 / II.4 / hybrid II.6),
solve (Algorithm II.3 / II.5) — behind a scikit-learn-flavoured
interface, handling the tree permutation so callers work entirely in
their own point order::

    solver = FastKernelSolver(GaussianKernel(bandwidth=0.5))
    solver.fit(X)                      # tree + skeletons (ASKIT)
    solver.factorize(lam=1.0)          # lambda I + K~  =  L U ...
    w = solver.solve(u)                # (lambda I + K~)^{-1} u
    v = solver.matvec(u)               # K~ u (fast treecode product)

``factorize`` may be called repeatedly with different ``lam`` — the
cross-validation loop the paper optimizes for — without re-running the
(shared) skeletonization.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.exceptions import NotFactorizedError, NotSkeletonizedError
from repro.hmatrix.errors import estimate_matrix_error
from repro.hmatrix.hmatrix import HMatrix, build_hmatrix
from repro.kernels.base import Kernel
from repro.kernels.gsks import gsks_matvec
from repro.solvers.factorization import HierarchicalFactorization, factorize
from repro.solvers.recovery import (
    IterativeFallback,
    SolverHealth,
    robust_factorize,
    robust_solve,
)
from repro.util.timing import StageTimes, Timer
from repro.util.validation import check_points, check_vector

__all__ = ["FastKernelSolver", "SolveInfo"]


@dataclass
class SolveInfo:
    """Diagnostics returned by :meth:`FastKernelSolver.solve_with_info`."""

    residual: float
    gmres_iterations: int
    stable: bool
    #: recovery-ladder report (None unless solver_config.recovery.enabled).
    health: SolverHealth | None = None


class FastKernelSolver:
    """Fast direct solver for ``(lambda I + K) w = u`` on N points.

    Parameters
    ----------
    kernel:
        A :class:`repro.kernels.Kernel` (e.g. Gaussian with the
        bandwidth ``h``).
    tree_config, skeleton_config, solver_config:
        See :mod:`repro.config`.  The solver method ("nlogn",
        "nlog2n", "hybrid") and the summation strategy live in
        ``solver_config``.

    Attributes
    ----------
    times:
        Stage wall-clock accumulator ("tree", "skeletonize",
        "factorize", "solve") — the paper's ASKIT/Tf/Ts columns.
    """

    def __init__(
        self,
        kernel: Kernel,
        *,
        tree_config: TreeConfig | None = None,
        skeleton_config: SkeletonConfig | None = None,
        solver_config: SolverConfig | None = None,
    ) -> None:
        self.kernel = kernel
        self.tree_config = tree_config or TreeConfig()
        self.skeleton_config = skeleton_config or SkeletonConfig()
        self.solver_config = solver_config or SolverConfig()
        self.hmatrix: HMatrix | None = None
        self.factorization: HierarchicalFactorization | IterativeFallback | None = None
        #: recovery report of the last factorize/solve cycle (populated
        #: only when ``solver_config.recovery.enabled``).
        self.health: SolverHealth | None = None
        self.times = StageTimes()
        self._X: np.ndarray | None = None
        self._X_norms: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        self._require_fitted()
        return self.hmatrix.n_points

    def _require_fitted(self) -> None:
        if self.hmatrix is None:
            raise NotSkeletonizedError("call fit(X) first")

    def _require_factorized(self) -> None:
        self._require_fitted()
        if self.factorization is None:
            raise NotFactorizedError("call factorize(lam) first")

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "FastKernelSolver":
        """Build the ball tree and skeletonize (the ASKIT phase)."""
        X = check_points(X)
        self._X = X
        self._X_norms = self.kernel.prepare_norms(X)
        with Timer() as t:
            self.hmatrix = build_hmatrix(
                X,
                self.kernel,
                tree_config=self.tree_config,
                skeleton_config=self.skeleton_config,
                summation=self.solver_config.summation,
            )
        self.times.add("tree+skeletonize", t.elapsed)
        self.factorization = None
        return self

    def factorize(self, lam: float = 0.0) -> "FastKernelSolver":
        """Factorize ``lambda I + K~`` with the configured method.

        With ``solver_config.recovery.enabled``, breakdown escalates
        through the recovery ladder (docs/ROBUSTNESS.md) instead of
        degrading silently; the report lands in :attr:`health`.
        """
        self._require_fitted()
        with self.times.time("factorize"):
            if self.solver_config.recovery.enabled:
                self.factorization, self.health = robust_factorize(
                    self.hmatrix, lam, self.solver_config
                )
            else:
                self.factorization = factorize(self.hmatrix, lam, self.solver_config)
                self.health = None
        return self

    # ------------------------------------------------------------------
    def _to_tree(self, u: np.ndarray) -> np.ndarray:
        return u[self.hmatrix.tree.perm]

    def _from_tree(self, w: np.ndarray) -> np.ndarray:
        out = np.empty_like(w)
        out[self.hmatrix.tree.perm] = w
        return out

    def solve(self, u: np.ndarray) -> np.ndarray:
        """``w = (lambda I + K~)^{-1} u`` in the caller's point order.

        ``u`` may be (N,) or (N, k) for multiple right-hand sides.
        """
        self._require_factorized()
        u = check_vector(u, self.n_points)
        with self.times.time("solve"):
            w = self.factorization.solve(self._to_tree(u))
        return self._from_tree(w)

    def solve_with_info(self, u: np.ndarray) -> tuple[np.ndarray, SolveInfo]:
        """Like :meth:`solve`, plus residual/iteration diagnostics.

        With recovery enabled, the solve is residual-verified and
        escalated through :func:`repro.solvers.recovery.robust_solve`
        when it misses ``recovery.solve_residual_limit``.
        """
        self._require_factorized()
        fact = self.factorization
        before = len(fact.reduced_iterations)
        if self.health is not None:
            u_tree = self._to_tree(check_vector(u, self.n_points))
            with self.times.time("solve"):
                w_tree, self.health = robust_solve(
                    fact, u_tree, self.solver_config, self.health
                )
            w = self._from_tree(w_tree)
        else:
            w = self.solve(u)
            u_tree = self._to_tree(check_vector(u, self.n_points))
        info = SolveInfo(
            residual=fact.residual(u_tree, self._to_tree(w)),
            gmres_iterations=sum(fact.reduced_iterations[before:]),
            stable=fact.stability.is_stable,
            health=self.health,
        )
        return w, info

    def matvec(self, u: np.ndarray) -> np.ndarray:
        """Fast product ``K~ u`` (the ASKIT treecode evaluation)."""
        self._require_fitted()
        u = check_vector(u, self.n_points)
        return self._from_tree(self.hmatrix.matvec(self._to_tree(u)))

    def regularized_matvec(self, lam: float, u: np.ndarray) -> np.ndarray:
        """``(lambda I + K~) u`` in the caller's order."""
        return self.matvec(u) + lam * np.asarray(u, dtype=np.float64)

    def slogdet(self) -> tuple[float, float]:
        """Sign and log|det| of the factorized ``lambda I + K~``.

        O(N log N): the determinant telescopes out of the leaf and
        reduced-system LU factors (direct methods only).
        """
        self._require_factorized()
        return self.factorization.slogdet()

    def residual(self, u: np.ndarray, w: np.ndarray) -> float:
        """Relative residual ``||u - (lambda I + K~) w|| / ||u||``."""
        self._require_factorized()
        return self.factorization.residual(
            self._to_tree(check_vector(u, self.n_points)),
            self._to_tree(check_vector(w, self.n_points)),
        )

    def predict_matvec(self, X_new: np.ndarray, w: np.ndarray) -> np.ndarray:
        """Out-of-sample products ``K(X_new, X_train) w`` (GSKS path)."""
        self._require_fitted()
        X_new = check_points(X_new, "X_new")
        w = check_vector(w, self.n_points, "w")
        return gsks_matvec(self.kernel, X_new, self._X, w, norms_b=self._X_norms)

    # ------------------------------------------------------------------
    def approximation_error(self, n_probes: int = 8, seed: int | None = 0) -> float:
        """Randomized estimate of ``||K - K~|| / ||K||``."""
        self._require_fitted()
        return estimate_matrix_error(self.hmatrix, n_probes=n_probes, seed=seed)

    def diagnostics(self) -> dict:
        """Structured summary: ranks, frontier, storage, stability."""
        self._require_fitted()
        h = self.hmatrix
        ranks = [sk.rank for sk in h.skeletons.skeletons.values()]
        out = {
            "n_points": h.n_points,
            "depth": h.tree.depth,
            "frontier_size": len(h.frontier),
            "frontier_level": h.frontier[0].level if h.frontier else 0,
            "max_rank": max(ranks) if ranks else 0,
            "mean_rank": float(np.mean(ranks)) if ranks else 0.0,
            "reduced_size": h.skeletons.total_frontier_rank() if ranks else 0,
            "hmatrix_storage_words": h.storage_words(),
        }
        cache = h.cache_stats()
        out["cache_hit_rate"] = cache.hit_rate
        out["cache_peak_words"] = cache.peak_words
        out["cache_evictions"] = cache.evictions
        if self.factorization is not None:
            out["factor_storage_words"] = self.factorization.storage_words()
            out["min_rcond"] = self.factorization.stability.min_rcond
            out["stable"] = self.factorization.stability.is_stable
        return out

    def telemetry(self) -> dict:
        """The process telemetry blob plus this solver's stage times.

        One JSON-serializable answer to "what did this solve actually
        do?": the span tree (tree build, skeletonize, factorize, solve,
        per-level factorization), every metric series (block cache,
        fabric faults, GMRES, recovery, warnings), this solver's stage
        accumulators, and the recovery-health digest when armed.  See
        docs/OBSERVABILITY.md for the schema.
        """
        from repro.obs import telemetry_snapshot

        if self.hmatrix is not None:
            self.hmatrix.cache.publish()
        blob = telemetry_snapshot()
        blob["stages"] = dict(self.times.stages)
        if self.health is not None:
            blob["health"] = self.health.summary()
        return blob
