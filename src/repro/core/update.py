"""Incremental model updates without full rebuilds (docs/UPDATES.md).

:func:`apply_update` is the engine behind
:meth:`repro.FastKernelSolver.update`.  Three update families, cheapest
first:

* **lambda refit** — ``update(lam=...)`` on unchanged geometry reuses
  the tree, skeletons, and cached kernel blocks and redoes only the
  diagonal-shifted factorization (the paper's cross-validation loop);
  an unchanged ``lam`` against a live factorization is a no-op.
* **kernel sweep** — ``update(kernel_params={"bandwidth": h})`` keeps
  the skeleton *structure* frozen and least-squares refits the
  projections under the new kernel
  (:func:`repro.skeleton.update.refresh_projections`), then
  refactorizes.
* **point insertion/deletion** — ``update(X_insert=..., X_delete=...)``
  routes the changed points to their owning leaves through the recorded
  splitting hyperplanes (:mod:`repro.tree.update`), re-skeletonizes
  only the dirty subtrees (:mod:`repro.skeleton.update`), and
  refactorizes with clean-subtree factors transplanted verbatim
  (``factorize(resume_nodes=...)``).  Past
  ``SolverConfig.update_rebuild_threshold`` dirty fraction — or when
  the tree cannot route (no recorded hyperplanes, a leaf would empty) —
  it falls back to a full rebuild.

The solver facade is only mutated on success, at the very end: an
exception anywhere leaves the caller's solver untouched.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ConfigurationError
from repro.obs import registry, span

__all__ = ["UpdateReport", "apply_update"]


@dataclass
class UpdateReport:
    """What an :func:`apply_update` call actually did.

    Attributes
    ----------
    mode:
        ``"noop"`` (unchanged lambda against a live factorization),
        ``"lambda"`` (diagonal-shift refit), ``"kernel"``
        (projection refresh), ``"incremental"`` (local repair), or
        ``"rebuild"`` (fallback full rebuild).
    nodes_total, nodes_refactored, nodes_reused:
        Below-frontier node counts for the (re)factorization:
        transplanted clean factors count as reused.  All zero when no
        factorization ran (solver had none and no ``lam`` was given).
    dirty_fraction:
        Fraction of the new point set owned by dirty leaves (geometry
        updates only).
    """

    mode: str
    lam: float | None = None
    n_inserted: int = 0
    n_deleted: int = 0
    dirty_leaves: int = 0
    dirty_fraction: float = 0.0
    nodes_total: int = 0
    nodes_refactored: int = 0
    nodes_reused: int = 0
    full_rebuild: bool = False
    seconds: float = 0.0
    kernel_params: dict = field(default_factory=dict)

    def to_payload(self) -> dict:
        """JSON-serializable digest (daemon wire protocol, CLI)."""
        return {
            "mode": self.mode,
            "lam": self.lam,
            "n_inserted": self.n_inserted,
            "n_deleted": self.n_deleted,
            "dirty_leaves": self.dirty_leaves,
            "dirty_fraction": self.dirty_fraction,
            "nodes_total": self.nodes_total,
            "nodes_refactored": self.nodes_refactored,
            "nodes_reused": self.nodes_reused,
            "full_rebuild": self.full_rebuild,
            "seconds": self.seconds,
            "kernel_params": dict(self.kernel_params),
        }


def _rebuild_kernel(kernel, params: dict):
    """A new kernel of the same type with ``params`` overriding.

    Every repro kernel stores each constructor parameter under an
    attribute of the same name, so the current values are recoverable
    generically; unknown names are a usage error.
    """
    sig = inspect.signature(type(kernel).__init__)
    names = [p for p in sig.parameters if p != "self"]
    unknown = sorted(set(params) - set(names))
    if unknown:
        raise ConfigurationError(
            f"{type(kernel).__name__} has no parameter(s) {unknown}; "
            f"accepted: {names}"
        )
    kwargs = {}
    for name in names:
        if name in params:
            kwargs[name] = params[name]
        elif hasattr(kernel, name):
            kwargs[name] = getattr(kernel, name)
    return type(kernel)(**kwargs)


def _refactorize(solver, lam, resume_nodes=None):
    """(Re)factorize the solver's H-matrix at ``lam``.

    Mirrors the facade's :meth:`~repro.FastKernelSolver.factorize`
    recovery wiring but threads the incremental-update transplant map
    through to the primary attempt.  Returns ``(nodes_total,
    nodes_reused)``.
    """
    from repro.solvers.factorization import factorize
    from repro.solvers.recovery import robust_factorize

    total = len(solver.hmatrix._nodes_at_or_below_frontier())
    with solver.times.time("factorize"):
        if solver.solver_config.recovery.enabled:
            solver.factorization, solver.health = robust_factorize(
                solver.hmatrix,
                lam,
                solver.solver_config,
                resume_nodes=resume_nodes,
            )
        else:
            solver.factorization = factorize(
                solver.hmatrix,
                lam,
                solver.solver_config,
                resume_nodes=resume_nodes,
            )
            solver.health = None
    reused = getattr(solver.factorization, "nodes_resumed", 0)
    return total, reused


def _checkpoint_after(solver) -> None:
    """Re-snapshot the (mutated) solver when checkpointing is armed.

    The fingerprint changed with the data, so this lands under a fresh
    manifest — the pre-update checkpoint can no longer be confused with
    the updated model (see ``test_checkpoint``'s point-count guard).
    """
    if solver.solver_config.resilience.checkpoint_dir is not None:
        solver.save_checkpoint()


def apply_update(
    solver,
    *,
    X_insert: np.ndarray | None = None,
    X_delete: np.ndarray | None = None,
    lam: float | None = None,
    kernel_params: dict | None = None,
) -> UpdateReport:
    """Apply an incremental update to a fitted ``FastKernelSolver``.

    See :meth:`repro.FastKernelSolver.update` for the public contract.
    """
    from repro.core.solver import FastKernelSolver  # noqa: F401 (doc link)
    from repro.hmatrix.hmatrix import HMatrix
    from repro.skeleton.update import (
        dirty_node_ids,
        refresh_projections,
        update_skeletons,
    )
    from repro.solvers.factorization import HierarchicalFactorization
    from repro.tree.update import apply_point_updates

    geometry = X_insert is not None or X_delete is not None
    if not geometry and lam is None and not kernel_params:
        raise ConfigurationError(
            "update() needs X_insert/X_delete, lam, or kernel_params"
        )
    if kernel_params and geometry:
        raise ConfigurationError(
            "kernel_params cannot be combined with point insertion/"
            "deletion; apply them in two update() calls"
        )

    old_fact = solver.factorization
    old_lam = (
        old_fact.lam if isinstance(old_fact, HierarchicalFactorization) else None
    )
    target_lam = float(lam) if lam is not None else old_lam
    t0 = time.perf_counter()

    # ------------------------------------------------------------- lambda
    if not geometry and not kernel_params:
        if old_lam is not None and target_lam == old_lam:
            return UpdateReport(mode="noop", lam=target_lam)
        with span("update", attrs={"mode": "lambda", "lam": target_lam}):
            # full facade semantics (recovery ladder, resilience,
            # checkpointed levels) — nothing to transplant, the whole
            # win is the reused skeletons and cached kernel blocks.
            solver.factorize(target_lam)
            total = len(solver.hmatrix._nodes_at_or_below_frontier())
        registry().counter("update.lambda_refits").inc()
        _checkpoint_after(solver)
        return UpdateReport(
            mode="lambda",
            lam=target_lam,
            nodes_total=total,
            nodes_refactored=total,
            seconds=time.perf_counter() - t0,
        )

    # ------------------------------------------------------------- kernel
    if kernel_params:
        with span("update", attrs={"mode": "kernel"}):
            new_kernel = _rebuild_kernel(solver.kernel, kernel_params)
            h = solver.hmatrix
            with span("update.skeletonize", attrs={"mode": "refresh"}):
                sset = refresh_projections(
                    h.skeletons, h.tree, new_kernel, solver.skeleton_config
                )
            new_h = HMatrix(
                h.tree,
                new_kernel,
                sset,
                summation=solver.solver_config.summation,
            )
            solver.kernel = new_kernel
            solver._X_norms = new_kernel.prepare_norms(solver._X)
            solver.hmatrix = new_h
            solver.factorization = None
            total = refac = 0
            if target_lam is not None:
                with span("update.factorize", attrs={"lam": target_lam}):
                    total, _ = _refactorize(solver, target_lam)
                refac = total
        registry().counter("update.kernel_refits").inc()
        _checkpoint_after(solver)
        return UpdateReport(
            mode="kernel",
            lam=target_lam,
            nodes_total=total,
            nodes_refactored=refac,
            seconds=time.perf_counter() - t0,
            kernel_params=dict(kernel_params),
        )

    # ----------------------------------------------------------- geometry
    n_old = solver._X.shape[0]
    delete_users = None
    if X_delete is not None:
        delete_users = np.unique(np.asarray(X_delete, dtype=np.intp))
        if len(delete_users) and (
            delete_users[0] < 0 or delete_users[-1] >= n_old
        ):
            raise ConfigurationError(
                f"X_delete indices out of range [0, {n_old})"
            )
    if X_insert is not None:
        X_insert = np.ascontiguousarray(X_insert, dtype=np.float64)

    def _new_X() -> np.ndarray:
        X = solver._X
        if delete_users is not None and len(delete_users):
            X = np.delete(X, delete_users, axis=0)
        if X_insert is not None and X_insert.shape[0]:
            X = np.concatenate([X, X_insert], axis=0)
        return np.ascontiguousarray(X)

    def _full_rebuild(report: UpdateReport) -> UpdateReport:
        with span("update", attrs={"mode": "rebuild"}):
            solver.fit(_new_X())
            if target_lam is not None:
                solver.factorize(target_lam)
                total = len(solver.hmatrix._nodes_at_or_below_frontier())
                report.nodes_total = total
                report.nodes_refactored = total
        registry().counter("update.full_rebuilds").inc()
        registry().counter("update.nodes_refactored").inc(
            report.nodes_refactored
        )
        report.mode = "rebuild"
        report.full_rebuild = True
        report.seconds = time.perf_counter() - t0
        return report

    report = UpdateReport(
        mode="incremental",
        lam=target_lam,
        n_inserted=0 if X_insert is None else int(X_insert.shape[0]),
        n_deleted=0 if delete_users is None else int(len(delete_users)),
    )

    tree = solver.hmatrix.tree
    try:
        delete_positions = (
            tree.iperm[delete_users] if delete_users is not None else None
        )
        with span("update.tree", attrs={"n_insert": report.n_inserted,
                                        "n_delete": report.n_deleted}):
            tu = apply_point_updates(
                tree, X_insert=X_insert, delete_positions=delete_positions
            )
    except ConfigurationError:
        # unroutable tree / emptied leaf / total deletion — rebuild.
        return _full_rebuild(report)

    report.dirty_leaves = len(tu.dirty_leaves)
    report.dirty_fraction = tu.dirty_fraction
    if tu.dirty_fraction > solver.solver_config.update_rebuild_threshold:
        return _full_rebuild(report)

    with span(
        "update",
        attrs={
            "mode": "incremental",
            "dirty_leaves": report.dirty_leaves,
            "dirty_fraction": report.dirty_fraction,
        },
    ):
        dirty = dirty_node_ids(tu.dirty_leaves)
        h = solver.hmatrix
        with span("update.skeletonize", attrs={"dirty_nodes": len(dirty)}):
            sset = update_skeletons(
                h.skeletons,
                tu.tree,
                solver.kernel,
                solver.skeleton_config,
                tu.pos_map,
                dirty,
            )
        new_h = HMatrix(
            tu.tree,
            solver.kernel,
            sset,
            summation=solver.solver_config.summation,
        )

        # clean-subtree factor transplant: valid only against the same
        # lambda and a full-storage direct factorization (low storage
        # drops the internal P^ a dirty parent of a clean child needs).
        resume: dict[int, dict] = {}
        if (
            isinstance(old_fact, HierarchicalFactorization)
            and target_lam is not None
            and old_fact.lam == target_lam
            and solver.solver_config.storage != "low"
        ):
            have = old_fact.leaf_factors.keys() | old_fact.node_factors.keys()
            for node in new_h._nodes_at_or_below_frontier():
                if node.id not in dirty and node.id in have:
                    resume[node.id] = old_fact.export_node_payload(node.id)

        X_new = _new_X()
        solver._X = X_new
        solver._X_norms = solver.kernel.prepare_norms(X_new)
        solver.hmatrix = new_h
        solver.factorization = None
        if target_lam is not None:
            with span(
                "update.factorize",
                attrs={"lam": target_lam, "resumed": len(resume)},
            ):
                total, reused = _refactorize(
                    solver, target_lam, resume_nodes=resume or None
                )
            report.nodes_total = total
            report.nodes_reused = reused
            report.nodes_refactored = total - reused

    registry().counter("update.points_inserted").inc(report.n_inserted)
    registry().counter("update.points_deleted").inc(report.n_deleted)
    registry().counter("update.dirty_leaves").inc(report.dirty_leaves)
    registry().counter("update.nodes_refactored").inc(report.nodes_refactored)
    registry().counter("update.nodes_reused").inc(report.nodes_reused)
    _checkpoint_after(solver)
    report.seconds = time.perf_counter() - t0
    return report
