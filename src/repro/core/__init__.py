"""Public facade of the solver pipeline."""

from repro.core.solver import FastKernelSolver, SolveInfo

__all__ = ["FastKernelSolver", "SolveInfo"]
