"""repro — An N log N parallel fast direct solver for kernel matrices.

Reproduction of Yu, March & Biros, IPDPS 2017 (arXiv:1701.02324).

Public API highlights
---------------------
* :class:`repro.core.FastKernelSolver` — the one-stop facade: build the
  ball tree, skeletonize (ASKIT), factorize (O(N log N) telescoping, the
  O(N log^2 N) baseline, level-restricted direct, or hybrid iterative),
  and solve ``(lambda I + K~) w = u``.
* :mod:`repro.kernels` — Gaussian/Laplacian/Matern/polynomial kernels and
  GSKS fused matrix-free kernel summation.
* :mod:`repro.parallel` — virtual-MPI runtime and the distributed
  factorization/solve (Algorithms II.4–II.5).
* :mod:`repro.learning` — kernel ridge regression on top of the solver.
* :mod:`repro.datasets` — the paper's synthetic NORMAL set and stand-ins
  for its real-world datasets.
"""

from repro.config import SolverConfig, SkeletonConfig, TreeConfig
from repro.kernels import (
    GaussianKernel,
    LaplacianKernel,
    MaternKernel,
    PolynomialKernel,
    kernel_by_name,
)

__version__ = "1.0.0"


def __getattr__(name: str):
    # FastKernelSolver pulls in the whole solver stack; import it lazily
    # so `import repro` stays light for kernel-only users.
    if name == "FastKernelSolver":
        from repro.core.solver import FastKernelSolver

        return FastKernelSolver
    if name == "UpdateReport":
        from repro.core.update import UpdateReport

        return UpdateReport
    raise AttributeError(f"module 'repro' has no attribute {name!r}")

__all__ = [
    "FastKernelSolver",
    "UpdateReport",
    "SolverConfig",
    "SkeletonConfig",
    "TreeConfig",
    "GaussianKernel",
    "LaplacianKernel",
    "MaternKernel",
    "PolynomialKernel",
    "kernel_by_name",
    "__version__",
]
