"""Conjugate gradients for symmetric positive-definite systems.

``lambda I + K`` is SPD for PSD kernels, so CG is the natural iterative
companion to GMRES when the operator is applied symmetrically (the
exact kernel, or a symmetrized K~).  Used by the estimator utilities
and available as a baseline; GMRES remains the default because the
two-sided skeleton approximation K~ is mildly nonsymmetric.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.config import GMRESConfig
from repro.exceptions import ConvergenceWarning
from repro.obs import emit_warning, registry
from repro.util.flops import count_flops

__all__ = ["CGResult", "conjugate_gradient"]


@dataclass
class CGResult:
    """Outcome of a CG solve."""

    x: np.ndarray
    converged: bool
    n_iters: int
    residuals: list[float] = field(default_factory=list)

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else float("nan")


def conjugate_gradient(
    matvec: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    config: GMRESConfig | None = None,
    *,
    x0: np.ndarray | None = None,
) -> CGResult:
    """Solve SPD ``A x = b`` given ``matvec``.

    Reuses :class:`~repro.config.GMRESConfig` for the tolerance and
    iteration budget (``restart``/``reorthogonalize`` are ignored).
    """
    from repro.resilience.deadline import current_deadline

    config = config or GMRESConfig()
    dl = current_deadline()  # soft stop: expiry ends iteration, never raises
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 1:
        raise ValueError("conjugate_gradient expects a 1-D right-hand side")
    n = len(b)
    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        return CGResult(x=np.zeros(n), converged=True, n_iters=0, residuals=[0.0])

    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()
    r = b - matvec(x) if x0 is not None else b.copy()
    p = r.copy()
    rs = float(r @ r)
    residuals = [np.sqrt(rs) / bnorm]
    converged = residuals[0] < config.tol
    k = 0

    while not converged and k < config.max_iters:
        if dl is not None and dl.expired:
            break
        Ap = matvec(p)
        pAp = float(p @ Ap)
        if pAp <= 0.0:
            emit_warning(
                "cg.breakdown",
                "CG breakdown: operator is not positive definite "
                f"(p^T A p = {pAp:.3e} at iteration {k})",
                ConvergenceWarning,
                stacklevel=2,
            )
            break
        alpha = rs / pAp
        x += alpha * p
        r -= alpha * Ap
        rs_new = float(r @ r)
        count_flops(10 * n, label="cg")
        k += 1
        rel = np.sqrt(rs_new) / bnorm
        residuals.append(rel)
        if rel < config.tol:
            converged = True
            break
        p = r + (rs_new / rs) * p
        rs = rs_new

    if not converged and k >= config.max_iters:
        emit_warning(
            "cg.unconverged",
            f"CG stopped after {k} iterations with relative residual "
            f"{residuals[-1]:.3e} (tol {config.tol:.1e})",
            ConvergenceWarning,
            stacklevel=2,
        )
    reg = registry()
    reg.counter("cg.solves").inc()
    reg.counter("cg.iterations").inc(k)
    if not converged:
        reg.counter("cg.unconverged").inc()
    return CGResult(x=x, converged=converged, n_iters=k, residuals=residuals)
