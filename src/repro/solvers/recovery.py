"""Numerical recovery ladder + solver health reporting (docs/ROBUSTNESS.md).

When a factorization or solve hits numerical breakdown (an rcond
estimate below ``RecoveryConfig.rcond_breakdown``, or a GMRES
Hessenberg breakdown), :func:`robust_factorize` / :func:`robust_solve`
escalate through a fixed ladder instead of returning garbage:

1. **lambda bump** — re-regularize the offending diagonal block(s) and
   re-factorize *just that subtree* (checkpointed skeletons make this
   local; implemented in
   :meth:`~repro.solvers.factorization.HierarchicalFactorization._recover_node`);
2. **frontier fallback** — move the skeletonization frontier one level
   down and retry with the hybrid method (Algorithm II.6), which never
   LU-factorizes the coalesced system;
3. **iterative fallback** — preconditioned GMRES directly on
   ``lambda I + K~`` (:class:`IterativeFallback`).

Every rung taken — plus the communication-fault history of distributed
runs — is recorded in a structured :class:`SolverHealth` report, so a
result always carries the story of how it was obtained.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace

import numpy as np

from repro.config import SolverConfig
from repro.exceptions import (
    NotFactorizedError,
    RecoveryExhaustedError,
    StabilityError,
)
from repro.hmatrix.hmatrix import HMatrix
from repro.solvers.factorization import HierarchicalFactorization, factorize
from repro.solvers.gmres import gmres, gmres_batched
from repro.solvers.stability import StabilityReport

__all__ = [
    "RecoveryEvent",
    "SolverHealth",
    "IterativeFallback",
    "descend_frontier",
    "robust_factorize",
    "robust_solve",
]


@dataclass
class RecoveryEvent:
    """One recovery action: a ladder rung taken or a fault recovered.

    ``stage`` is one of ``"lambda_bump"``, ``"escalation"``,
    ``"frontier_fallback"``, ``"iterative_fallback"``,
    ``"solve_escalation"``, ``"rank_respawn"``, or ``"repartition"``
    (elastic subtree reassignment after a permanent rank loss).
    """

    stage: str
    node_id: int | None = None
    detail: dict = field(default_factory=dict)


@dataclass
class SolverHealth:
    """Structured report of every recovery step behind a result.

    Attributes
    ----------
    events:
        Chronological :class:`RecoveryEvent` list — one entry per
        lambda bump, fallback, solve escalation, and rank respawn.
    faults:
        Aggregate communication-fault counters (drops, corruptions,
        delays, retries, crashes, respawns, duplicates_suppressed,
        suspicions, confirmed_losses, stale_rejected, repartitions)
        from the distributed fabric, summed over ingested launches.
    final_path:
        Which solver ultimately produced the result: the configured
        method name, ``"hybrid"`` after a frontier fallback, or
        ``"iterative"``.
    """

    events: list[RecoveryEvent] = field(default_factory=list)
    faults: dict[str, int] = field(default_factory=dict)
    final_path: str = "direct"

    def record(self, stage: str, node_id: int | None = None, **detail) -> None:
        self.events.append(RecoveryEvent(stage=stage, node_id=node_id, detail=detail))
        from repro.obs import registry

        registry().counter("recovery.events", stage=stage).inc()

    @property
    def degraded(self) -> bool:
        """True when any recovery rung was taken or any fault observed."""
        return bool(self.events) or any(self.faults.values())

    def ingest_factorization(self, fact: HierarchicalFactorization) -> None:
        """Absorb the lambda-bump events a factorization recorded."""
        for ev in fact.recovery_events:
            detail = {k: v for k, v in ev.items() if k not in ("stage", "node_id")}
            self.record(ev["stage"], ev.get("node_id"), **detail)

    def ingest_comm(self, stats) -> None:
        """Absorb a :class:`~repro.parallel.vmpi.fabric.CommStats`.

        Fault counters are summed; each supervisor crash recovery
        becomes a ``"rank_respawn"`` event.
        """
        for kind, n in stats.faults.items():
            self.faults[kind] = self.faults.get(kind, 0) + n
        for rec in stats.rank_recoveries:
            detail = {k: v for k, v in rec.items() if k not in ("stage", "rank")}
            self.record(rec.get("stage", "rank_respawn"), rec.get("rank"), **detail)

    def summary(self) -> dict:
        """Plain-dict digest for logs and diagnostics."""
        stages: dict[str, int] = {}
        for ev in self.events:
            stages[ev.stage] = stages.get(ev.stage, 0) + 1
        return {
            "final_path": self.final_path,
            "degraded": self.degraded,
            "n_events": len(self.events),
            "stages": stages,
            "faults": dict(self.faults),
        }


def descend_frontier(hmatrix: HMatrix) -> HMatrix | None:
    """A shallow copy of ``hmatrix`` with the frontier one level deeper.

    Every non-leaf frontier node whose children are skeletonized is
    replaced by its children (skeletons, blocks, and the cache are
    shared — only the factorization boundary moves).  Returns ``None``
    when no node can descend (the frontier is already all leaves).
    """
    tree = hmatrix.tree
    new_frontier = []
    moved = False
    for f in hmatrix.frontier:
        if not tree.is_leaf(f):
            left, right = tree.children(f)
            if hmatrix.skeletons.is_skeletonized(
                left.id
            ) and hmatrix.skeletons.is_skeletonized(right.id):
                new_frontier.extend([left, right])
                moved = True
                continue
        new_frontier.append(f)
    if not moved:
        return None
    lowered = copy.copy(hmatrix)
    lowered.frontier = new_frontier
    lowered._frontier_ids = {f.id for f in new_frontier}
    lowered._below = lowered._nodes_at_or_below_frontier()
    return lowered


class IterativeFallback:
    """Ladder rung 3: GMRES on ``lambda I + K~``, factorization-shaped.

    Quacks like a :class:`HierarchicalFactorization` for the facade's
    purposes (``solve`` / ``residual`` / ``stability`` /
    ``reduced_iterations``), so callers switch paths transparently.
    With a ``preconditioner`` (any object with a working ``solve``,
    e.g. a degraded factorization), the solve is right-preconditioned:
    GMRES iterates on ``A M^{-1}`` and un-preconditions the result.
    """

    def __init__(
        self,
        hmatrix: HMatrix,
        lam: float,
        config: SolverConfig | None = None,
        preconditioner=None,
    ) -> None:
        self.hmatrix = hmatrix
        self.lam = float(lam)
        self.config = config or SolverConfig()
        self.preconditioner = preconditioner
        self.stability = StabilityReport(enabled=False)
        self.reduced_iterations: list[int] = []
        self.reduced_histories: list[list[float]] = []

    def _op(self, v: np.ndarray) -> np.ndarray:
        if self.preconditioner is not None:
            v = self.preconditioner.solve(v)
        return self.hmatrix.regularized_matvec(self.lam, v)

    def solve(self, u: np.ndarray) -> np.ndarray:
        """``w ~= (lambda I + K~)^{-1} u`` by (preconditioned) GMRES."""
        u = np.asarray(u, dtype=np.float64)
        cfg = self.config.gmres
        if u.ndim == 1:
            res = gmres(self._op, u, cfg)
            self.reduced_iterations.append(res.n_iters)
            self.reduced_histories.append(res.residuals)
            y = res.x
        else:
            results = gmres_batched(self._op, u, cfg)
            for res in results:
                self.reduced_iterations.append(res.n_iters)
                self.reduced_histories.append(res.residuals)
            y = np.stack([res.x for res in results], axis=1)
        if self.preconditioner is not None:
            y = self.preconditioner.solve(y)
        return y

    def residual(self, u: np.ndarray, w: np.ndarray) -> float:
        r = u - self.hmatrix.regularized_matvec(self.lam, w)
        un = float(np.linalg.norm(u))
        return float(np.linalg.norm(r)) / un if un > 0 else float(np.linalg.norm(r))

    def storage_words(self) -> int:
        return 0

    def slogdet(self) -> tuple[float, float]:
        raise NotFactorizedError(
            "the iterative fallback never factorizes; no determinant available"
        )


def robust_factorize(
    hmatrix: HMatrix,
    lam: float = 0.0,
    config: SolverConfig | None = None,
    health: SolverHealth | None = None,
    *,
    deadline=None,
    resume_levels: dict[int, dict] | None = None,
    resume_nodes: dict[int, dict] | None = None,
    on_level=None,
    partial_sink: list | None = None,
) -> tuple[HierarchicalFactorization | IterativeFallback, SolverHealth]:
    """Factorize with the recovery ladder armed (docs/ROBUSTNESS.md).

    Returns ``(factorization, health)``; the factorization is an
    :class:`IterativeFallback` if both factorizing rungs failed.  The
    call itself is the opt-in: ``config.recovery.enabled`` is forced on.

    The keyword-only arguments are passed through to
    :func:`~repro.solvers.factorization.factorize` for the *primary*
    attempt (deadline charging, checkpoint resume/write hooks; see
    :mod:`repro.resilience`).  Fallback rungs keep the deadline but not
    the checkpoint hooks — their factors belong to a different frontier
    and must not overwrite the primary factorization's levels.

    Raises
    ------
    RecoveryExhaustedError
        When every allowed rung failed.
    """
    config = config or SolverConfig()
    if not config.recovery.enabled:
        config = replace(config, recovery=replace(config.recovery, enabled=True))
    rec = config.recovery
    health = health or SolverHealth()

    try:
        fact = factorize(
            hmatrix,
            lam,
            config,
            deadline=deadline,
            resume_levels=resume_levels,
            resume_nodes=resume_nodes,
            on_level=on_level,
            partial_sink=partial_sink,
        )
        health.ingest_factorization(fact)
        health.final_path = config.method
        return fact, health
    except StabilityError as exc:
        health.record("escalation", rung="factorize", error=repr(exc))
        first_error = exc

    if rec.allow_frontier_fallback:
        lowered = descend_frontier(hmatrix)
        target = lowered if lowered is not None else hmatrix
        hybrid_config = replace(config, method="hybrid")
        try:
            fact = factorize(target, lam, hybrid_config, deadline=deadline)
            health.ingest_factorization(fact)
            health.record(
                "frontier_fallback",
                descended=lowered is not None,
                frontier_size=len(target.frontier),
            )
            health.final_path = "hybrid"
            return fact, health
        except StabilityError as exc:
            health.record("escalation", rung="frontier_fallback", error=repr(exc))

    if rec.allow_iterative_fallback:
        health.record("iterative_fallback")
        health.final_path = "iterative"
        return IterativeFallback(hmatrix, lam, config), health

    raise RecoveryExhaustedError(
        f"all recovery rungs failed or were disabled: {first_error}"
    ) from first_error


def robust_solve(
    fact: HierarchicalFactorization | IterativeFallback,
    u: np.ndarray,
    config: SolverConfig | None = None,
    health: SolverHealth | None = None,
) -> tuple[np.ndarray, SolverHealth]:
    """Solve with residual verification and iterative escalation.

    Runs ``fact.solve``, *measures* the relative residual against the
    fast matvec, and — when it exceeds
    ``config.recovery.solve_residual_limit`` (e.g. after a silent GMRES
    breakdown in the hybrid reduced solve) — re-solves with GMRES on the
    full operator, preconditioned by the degraded factorization, keeping
    whichever answer is better.  Every escalation lands in ``health``.
    """
    config = config or getattr(fact, "config", None) or SolverConfig()
    health = health or SolverHealth()
    rec = config.recovery
    limit = rec.solve_residual_limit

    w = fact.solve(u)
    rel = fact.residual(u, w)
    if np.isfinite(rel) and rel <= limit:
        return w, health

    health.record("solve_escalation", residual=float(rel), limit=limit)
    best_w, best_rel = w, rel

    # right-preconditioning with the factorization is only sound when
    # its worst block is comfortably nonsingular — applying a
    # near-singular M^{-1} perturbs the operator GMRES sees by
    # O(eps/rcond) per matvec, which breaks the Arnoldi recursion and
    # produces *false* convergence.  Fall through to plain GMRES on
    # ``lambda I + K~`` (whose residual recursion is monotone) and keep
    # the best verified answer.
    preconds = []
    if (
        isinstance(fact, HierarchicalFactorization)
        and fact.stability.min_rcond >= rec.rcond_breakdown
    ):
        preconds.append(fact)
    preconds.append(None)
    for precond in preconds:
        fallback = IterativeFallback(
            fact.hmatrix, fact.lam, config, preconditioner=precond
        )
        w_it = fallback.solve(u)
        rel_it = fallback.residual(u, w_it)
        health.record(
            "iterative_fallback",
            preconditioned=precond is not None,
            residual=float(rel_it),
        )
        if np.isfinite(rel_it) and rel_it < best_rel:
            best_w, best_rel = w_it, rel_it
            health.final_path = "iterative"
        if np.isfinite(best_rel) and best_rel <= limit:
            break
    return best_w, health
