"""Numerical-stability monitoring (paper section III).

The factorization's pivoting is restricted to skeleton rows, so
``lambda I + D`` can become poorly conditioned even when
``lambda I + K`` is not — particularly for narrow bandwidths with small
``lambda``.  The paper's method *detects* this; so do we: every LU
(leaf blocks and reduced systems) gets an O(n^2) LAPACK ``gecon``
reciprocal-condition estimate, and blocks past the threshold are
recorded and reported via :class:`StabilityReport` (and a
:class:`~repro.exceptions.StabilityWarning`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import StabilityError, StabilityWarning
from repro.obs import emit_warning, registry
from repro.util import lapack

__all__ = [
    "StabilityReport",
    "estimate_rcond",
    "estimate_rcond_batched",
    "is_breakdown",
]


def is_breakdown(rcond: float, rcond_breakdown: float) -> bool:
    """Whether an rcond estimate signals numerical *breakdown*.

    Breakdown (the recovery ladder's trigger) is stricter than the
    ill-conditioning that merely warns: rcond at or below zero (exactly
    singular to the estimator) or below the configured floor.
    """
    return rcond <= 0.0 or rcond < rcond_breakdown


def estimate_rcond(lu: np.ndarray, anorm: float) -> float:
    """Reciprocal 1-norm condition estimate from an LU factor.

    Parameters
    ----------
    lu:
        The combined LU factor as returned by ``scipy.linalg.lu_factor``.
    anorm:
        1-norm of the original matrix.
    """
    if lu.size == 0:
        return 1.0
    rcond, info = lapack.gecon(lu, anorm)
    if info < 0:  # pragma: no cover - lapack argument error
        raise StabilityError(f"dgecon failed with info={info}")
    return float(rcond)


def estimate_rcond_batched(lu: np.ndarray, anorms: np.ndarray) -> np.ndarray:
    """Per-slice rcond estimates for a factored ``(b, n, n)`` stack.

    Bitwise equal to calling :func:`estimate_rcond` on each slice, but
    the whole stack runs under a single lock acquisition.
    """
    if lu.size == 0:
        return np.ones(lu.shape[0])
    try:
        return lapack.gecon_batched(lu, anorms)
    except ValueError as exc:  # pragma: no cover - lapack argument error
        raise StabilityError(str(exc)) from exc


@dataclass
class StabilityReport:
    """Condition diagnostics accumulated during a factorization.

    Attributes
    ----------
    min_rcond:
        Worst reciprocal condition number seen across all factored
        blocks.
    flagged:
        ``(kind, node_id, rcond)`` triples for blocks past the
        threshold; ``kind`` is "leaf", "reduced", or "frontier".
    threshold:
        1/rcond limit above which blocks are flagged.
    """

    threshold: float = 1e12
    min_rcond: float = 1.0
    flagged: list[tuple[str, int, float]] = field(default_factory=list)
    enabled: bool = True

    def record(self, kind: str, node_id: int, rcond: float) -> None:
        if not self.enabled:
            return
        self.min_rcond = min(self.min_rcond, rcond)
        if rcond <= 0.0 or (1.0 / max(rcond, np.finfo(np.float64).tiny)) > self.threshold:
            self.flagged.append((kind, node_id, rcond))
            registry().counter("stability.flagged_blocks", kind=kind).inc()

    @property
    def is_stable(self) -> bool:
        return not self.flagged

    def warn_if_unstable(self) -> None:
        """Emit one :class:`StabilityWarning` summarizing flagged blocks."""
        if not self.flagged:
            return
        worst = min(self.flagged, key=lambda t: t[2])
        emit_warning(
            "stability.unstable",
            f"{len(self.flagged)} ill-conditioned block(s) detected during "
            f"factorization (worst: {worst[0]} node {worst[1]}, "
            f"rcond={worst[2]:.2e}); the computed solution may be "
            "inaccurate.  Consider a larger regularization lambda "
            "(paper section III).",
            StabilityWarning,
            stacklevel=3,
        )
