"""Hierarchical factorization as a preconditioner for the *exact* system.

The direct solver inverts the approximation ``lambda I + K~``; its
residual against the *true* kernel matrix ``lambda I + K`` is bounded by
the skeletonization error.  Following the INV-ASKIT paper's suggestion
(and this paper's "related work" note that the method can be used as a
preconditioner), this module closes that gap: solve

    (lambda I + K) x = u

with right-preconditioned GMRES, where the operator applies K exactly
(matrix-free, GSKS tiles — no O(N^2) storage) and the preconditioner is
one O(N log N) hierarchical solve.  Since ``M ~= A``, convergence takes
a handful of iterations, and the final residual is measured against the
exact matrix — machine precision solutions for the true system at
O(N log N + iterations * N^2 / tile) cost, where the N^2 matvec is the
unavoidable exact-kernel application.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import GMRESConfig
from repro.kernels.gsks import GSKSWorkspace, gsks_matvec
from repro.solvers.factorization import HierarchicalFactorization
from repro.solvers.gmres import gmres
from repro.util.validation import check_vector

__all__ = ["PreconditionedSolveResult", "solve_exact"]


@dataclass
class PreconditionedSolveResult:
    """Outcome of a preconditioned exact-kernel solve.

    Attributes
    ----------
    x:
        Solution of ``(lambda I + K) x = u`` (tree order).
    n_iters:
        Preconditioned GMRES iterations.
    residual:
        Final relative residual against the *exact* operator.
    residuals:
        Full history (one entry per iteration).
    """

    x: np.ndarray
    n_iters: int
    residual: float
    residuals: list[float]


def exact_matvec(
    fact: HierarchicalFactorization,
    lam: float,
    v: np.ndarray,
    *,
    workspace: GSKSWorkspace | None = None,
) -> np.ndarray:
    """``(lambda I + K) v`` with exact kernel entries, matrix-free."""
    pts = fact.hmatrix.tree.points
    norms = fact.hmatrix.norms.all()
    return (
        gsks_matvec(
            fact.hmatrix.kernel, pts, pts, v,
            workspace=workspace, norms_a=norms, norms_b=norms,
        )
        + lam * v
    )


def solve_exact(
    fact: HierarchicalFactorization,
    u: np.ndarray,
    config: GMRESConfig | None = None,
) -> PreconditionedSolveResult:
    """Solve the exact system ``(lambda I + K) x = u`` (tree order).

    Uses right preconditioning, ``(A M^{-1}) y = u`` with ``x = M^{-1} y``
    and ``M = lambda I + K~`` (the hierarchical factorization), so the
    reported GMRES residual is the true unpreconditioned residual.

    Parameters
    ----------
    fact:
        A factorization of ``lambda I + K~`` (any direct method; the
        hybrid works too, at higher per-application cost).
    u:
        Right-hand side in tree order, shape (N,).
    config:
        GMRES controls; with a good skeletonization the iteration count
        is the log10 of the accuracy gap (a handful).
    """
    config = config or GMRESConfig(tol=1e-12, max_iters=50)
    u = check_vector(u, fact.hmatrix.n_points)
    if u.ndim != 1:
        raise ValueError("solve_exact expects a single right-hand side")
    lam = fact.lam
    workspace = GSKSWorkspace()

    def op(y: np.ndarray) -> np.ndarray:
        return exact_matvec(fact, lam, fact.solve(y), workspace=workspace)

    res = gmres(op, u, config)
    x = fact.solve(res.x)
    true_residual = float(
        np.linalg.norm(u - exact_matvec(fact, lam, x, workspace=workspace))
        / max(np.linalg.norm(u), np.finfo(float).tiny)
    )
    return PreconditionedSolveResult(
        x=x,
        n_iters=res.n_iters,
        residual=true_residual,
        residuals=res.residuals,
    )
