"""Stochastic matrix estimators on fast matvecs/solves.

With only ``O(N log N)`` products available, global matrix quantities
are estimated stochastically:

* :func:`hutchinson_trace` — ``tr(A)`` from Rademacher probes;
* :func:`estimate_diagonal` — ``diag(A)`` from the same probes;
* :func:`effective_dof` — the ridge effective degrees of freedom
  ``tr(K (lambda I + K)^{-1})``, the standard model-complexity
  diagnostic for kernel ridge regression (used by GCV-style model
  selection); one hierarchical solve per probe.

These also provide an *independent cross-check* of the factorization's
telescoped :meth:`slogdet` and work for the hybrid method, which has no
explicit determinant.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.solvers.factorization import HierarchicalFactorization
from repro.util.random import as_generator

__all__ = ["hutchinson_trace", "estimate_diagonal", "effective_dof"]


def hutchinson_trace(
    matvec: Callable[[np.ndarray], np.ndarray],
    n: int,
    *,
    n_probes: int = 32,
    seed: int | np.random.Generator | None = 0,
) -> float:
    """Hutchinson trace estimate ``E[z^T A z] = tr(A)``, z Rademacher.

    Standard error scales like ``sqrt(2 ||A||_F^2 / n_probes)``.
    """
    if n_probes < 1:
        raise ValueError("n_probes must be >= 1")
    rng = as_generator(seed)
    total = 0.0
    for _ in range(n_probes):
        z = rng.choice([-1.0, 1.0], size=n)
        total += float(z @ matvec(z))
    return total / n_probes


def estimate_diagonal(
    matvec: Callable[[np.ndarray], np.ndarray],
    n: int,
    *,
    n_probes: int = 64,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """Stochastic diagonal estimator ``diag(A) ~= E[z * (A z)]``.

    With Rademacher probes the estimator is unbiased; variance at entry
    i is the squared off-diagonal mass of row i divided by n_probes.
    """
    if n_probes < 1:
        raise ValueError("n_probes must be >= 1")
    rng = as_generator(seed)
    acc = np.zeros(n)
    for _ in range(n_probes):
        z = rng.choice([-1.0, 1.0], size=n)
        acc += z * matvec(z)
    return acc / n_probes


def effective_dof(
    fact: HierarchicalFactorization,
    *,
    n_probes: int = 32,
    seed: int | np.random.Generator | None = 0,
) -> float:
    """Effective degrees of freedom ``tr(K~ (lambda I + K~)^{-1})``.

    Equals ``N - lambda * tr((lambda I + K~)^{-1})``; each probe costs
    one hierarchical solve.  Ranges from ~N (lambda -> 0, interpolation)
    to ~0 (lambda -> inf, constant model).
    """
    n = fact.hmatrix.n_points
    if fact.lam == 0.0:
        return float(n)
    trace_inv = hutchinson_trace(
        fact.solve, n, n_probes=n_probes, seed=seed
    )
    return float(n - fact.lam * trace_inv)
