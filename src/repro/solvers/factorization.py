"""Hierarchical factorization of ``lambda I + K~`` (paper section II-B/C).

The factorization processes the tree bottom-up (Algorithm II.2):

* **leaves** — dense LU of ``lambda I + K_leaf`` (LAPACK ``getrf``), and
  ``P^_leaf = (lambda I + K_leaf)^{-1} P_leaf`` directly;
* **internal nodes at/below the frontier** — form the reduced system
  ``Z = I + V W`` (eq. 8) from the children's ``P^`` factors, LU it, and
  *telescope* ``P^_alpha`` from the children via eq. (10) — no subtree
  traversal, which is what removes the extra log factor;
* **above the frontier** — one coalesced system over the frontier
  skeletons, solved by dense LU (``"direct"``/``"nlogn"``) or
  matrix-free GMRES (``"hybrid"``, Algorithm II.6).  When the frontier
  is the root's children this coalesced system *is* the root step of
  Algorithm II.2, so no special casing is needed.

The ``"nlog2n"`` method reproduces INV-ASKIT [36]: identical ``Z``
factors, but ``P^_alpha`` is computed by explicitly forming
``P_{alpha alpha~}`` and running the recursive subtree solve
(Algorithm II.3 with ``do_recur = true``), which costs an extra log
factor.  Both methods produce the same factors to roundoff — the paper
(and our tests) rely on that.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.config import GMRESConfig, SolverConfig
from repro.exceptions import NotFactorizedError, StabilityError
from repro.hmatrix.hmatrix import HMatrix
from repro.kernels.summation import KernelSummation, SummationMethod
from repro.obs import registry, span
from repro.perf import levelbatch
from repro.solvers.gmres import gmres, gmres_batched
from repro.solvers.stability import (
    StabilityReport,
    estimate_rcond,
    estimate_rcond_batched,
    is_breakdown,
)
from repro.tree.node import Node
from repro.util import lapack
from repro.util.flops import count_flops, count_mops
from repro.util.validation import check_vector

__all__ = [
    "LeafFactor",
    "InternalFactor",
    "ReducedSystem",
    "HierarchicalFactorization",
    "factorize",
]


@dataclass
class LeafFactor:
    """LU of one leaf block ``lambda I + K_leaf`` plus its ``P^``."""

    lu: tuple[np.ndarray, np.ndarray]
    phat: np.ndarray | None  # (m, s) or None for a skeleton-less root leaf
    rcond: float


@dataclass
class InternalFactor:
    """Per-internal-node factors at/below the frontier.

    ``z_lu`` factors eq. (8)'s ``Z = [[I, K_{l~r} P^_r], [K_{r~l} P^_l, I]]``;
    ``vblock_l``/``vblock_r`` are the (possibly matrix-free) skeleton-row
    blocks ``K_{l~ r}`` and ``K_{r~ l}``; ``phat`` is the telescoped
    ``P^_{alpha alpha~}`` (None exactly at frontier-less internal use).
    """

    z_lu: tuple[np.ndarray, np.ndarray]
    s_l: int
    s_r: int
    vblock_l: KernelSummation
    vblock_r: KernelSummation
    phat: np.ndarray | None
    rcond: float


@dataclass
class ReducedSystem:
    """The coalesced above-frontier system (paper section II-C).

    ``V`` has block rows ``K_{f~ , X \\ f}`` over frontier nodes ``f``,
    stored as per-pair blocks ``pair_blocks[(f, g)] = K_{f~ g}`` for
    ``g != f`` (sibling pairs reuse the H-matrix's cached blocks, so
    the frontier stage adds no kernel evaluations beyond the paper's
    V factors).  ``W^`` is blockdiag of the frontier ``P^`` factors.
    ``z_lu`` holds the dense LU of ``I + V W^`` for the direct methods
    and is ``None`` for the hybrid method (GMRES instead).
    """

    frontier: list[Node]
    slices: dict[int, slice]  # node id -> rows of the reduced system
    size: int
    pair_blocks: dict[tuple[int, int], KernelSummation]
    z_lu: tuple[np.ndarray, np.ndarray] | None
    rcond: float


class HierarchicalFactorization:
    """Factorized ``lambda I + K~``; created by :func:`factorize`.

    All vectors are in *tree order*; the facade handles permutation.
    """

    def __init__(
        self,
        hmatrix: HMatrix,
        lam: float,
        config: SolverConfig,
    ) -> None:
        self.hmatrix = hmatrix
        self.lam = float(lam)
        self.config = config
        self.leaf_factors: dict[int, LeafFactor] = {}
        self.node_factors: dict[int, InternalFactor] = {}
        self.reduced: ReducedSystem | None = None
        self.stability = StabilityReport(
            threshold=config.cond_threshold, enabled=config.check_stability
        )
        self._factored = False
        #: recovery-ladder events (lambda bumps) taken during this
        #: factorization; :class:`repro.solvers.recovery.SolverHealth`
        #: ingests them.  Empty unless ``config.recovery.enabled``.
        self.recovery_events: list[dict] = []
        #: per-leaf extra regularization added by the lambda-bump rung.
        self._lam_extra: dict[int, float] = {}
        self._leaf_anorms: dict[int, float] = {}
        #: GMRES iteration counts of reduced-system solves (hybrid).
        self.reduced_iterations: list[int] = []
        #: per-solve GMRES relative-residual histories (hybrid) — the
        #: convergence curves of Figure 5.
        self.reduced_histories: list[list[float]] = []
        #: tree levels whose factors are complete (checkpoint/resume
        #: granularity; includes restored levels).
        self.completed_levels: set[int] = set()
        #: nodes transplanted from a prior factorization during an
        #: incremental update (``factorize(resume_nodes=...)``).
        self.nodes_resumed: int = 0
        #: contiguous per-level factor storage (level -> list of stacked
        #: arrays); the per-node ``LeafFactor``/``InternalFactor`` fields
        #: are *views* into these stacks when the level was batched.
        self.level_stacks: dict[int, list[np.ndarray]] = {}
        #: node id -> (phat stack, slice index, the exact view handed to
        #: the node's factor).  Lets the next level up gather children
        #: P^ blocks as one strided view instead of a stack copy; the
        #: view identity check makes recovery-rewritten entries fall
        #: back to copying automatically.
        self._phat_slots: dict[int, tuple[np.ndarray, int, np.ndarray]] = {}
        #: batching threshold for this factorization; ``None`` runs the
        #: per-node path (set by :func:`factorize`).
        self._batch_policy: levelbatch.BatchPolicy | None = None
        # low-storage solves temporarily re-materialize P^ blocks; the
        # lock serializes concurrent solves in that mode (full-storage
        # solves are read-only and need no coordination).
        self._solve_lock = threading.Lock()

    # -- pickling: locks are not picklable; recreate on load -------------
    def __getstate__(self):
        state = dict(self.__dict__)
        del state["_solve_lock"]
        # the per-node factors (views into the stacks) pickle as plain
        # arrays; shipping the stacks too would double the payload.
        state["level_stacks"] = {}
        state["_phat_slots"] = {}
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._solve_lock = threading.Lock()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _factor_leaf(self, leaf: Node) -> None:
        h = self.hmatrix
        rec = self.config.recovery
        A = np.array(h.leaf_block(leaf), copy=True)
        idx = np.arange(A.shape[0])
        A[idx, idx] += self.lam + self._lam_extra.get(leaf.id, 0.0)
        check = self.config.check_stability or rec.enabled
        anorm = float(np.linalg.norm(A, 1)) if check else 0.0
        self._leaf_anorms[leaf.id] = anorm
        lu = lapack.lu_factor(A)
        count_flops(2 * A.shape[0] ** 3 // 3, label="factor_leaf_lu")
        rcond = estimate_rcond(lu[0], anorm) if check else 1.0
        self.stability.record("leaf", leaf.id, rcond)
        if rec.enabled and is_breakdown(rcond, rec.rcond_breakdown):
            raise StabilityError(
                f"leaf block {leaf.id} broke down (rcond={rcond:.2e})"
            )

        phat = None
        if h.skeletons.is_skeletonized(leaf.id):
            proj = h.skeletons[leaf.id].proj  # (s, m)
            phat = lapack.lu_solve(lu, proj.T)
            count_flops(2 * A.shape[0] ** 2 * proj.shape[0], label="factor_leaf_phat")
        self.leaf_factors[leaf.id] = LeafFactor(lu=lu, phat=phat, rcond=rcond)

    def _factor_internal(self, node: Node) -> None:
        """Z assembly + P^ telescoping for one internal node (Alg. II.2)."""
        h = self.hmatrix
        tree = h.tree
        left, right = tree.children(node)
        sk_l = h.skeletons[left.id]
        sk_r = h.skeletons[right.id]
        s_l, s_r = sk_l.rank, sk_r.rank
        vbl = h.sibling_block(left)  # K_{l~ r}, (s_l, |r|)
        vbr = h.sibling_block(right)  # K_{r~ l}, (s_r, |l|)
        phat_l = self._phat(left)
        phat_r = self._phat(right)

        # Z = I + V W (eq. 8); GEMMs through the summation blocks.
        B_lr = vbl.matvec(phat_r)  # (s_l, s_r)
        B_rl = vbr.matvec(phat_l)  # (s_r, s_l)
        Z = np.empty((s_l + s_r, s_l + s_r))
        Z[:s_l, :s_l] = np.eye(s_l)
        Z[s_l:, s_l:] = np.eye(s_r)
        Z[:s_l, s_l:] = B_lr
        Z[s_l:, :s_l] = B_rl
        rec = self.config.recovery
        check = self.config.check_stability or rec.enabled
        anorm = float(np.linalg.norm(Z, 1)) if check else 0.0
        z_lu = lapack.lu_factor(Z)
        count_flops(2 * (s_l + s_r) ** 3 // 3, label="factor_z_lu")
        rcond = estimate_rcond(z_lu[0], anorm) if check else 1.0
        self.stability.record("reduced", node.id, rcond)
        if rec.enabled and is_breakdown(rcond, rec.rcond_breakdown):
            raise StabilityError(
                f"reduced system at node {node.id} broke down "
                f"(rcond={rcond:.2e})"
            )

        factor = InternalFactor(
            z_lu=z_lu,
            s_l=s_l,
            s_r=s_r,
            vblock_l=vbl,
            vblock_r=vbr,
            phat=None,
            rcond=rcond,
        )
        self.node_factors[node.id] = factor

        if h.skeletons.is_skeletonized(node.id):
            if self.config.method == "nlog2n":
                factor.phat = self._phat_recursive(node)
            else:
                factor.phat = self._phat_telescoped(node, factor, phat_l, phat_r)

    # ------------------------------------------------------------------
    # level-synchronous batched construction (repro.perf.levelbatch)
    # ------------------------------------------------------------------
    def _factor_level_batched(
        self,
        nodes: list[Node],
        level: int,
        policy: levelbatch.BatchPolicy,
        deadline,
        factor_one,
    ) -> None:
        """Factor one tree level with shape-batched stacked numerics.

        Deadline charges land per node (same units and tags as the
        per-node loop) before any numerics run, so a deadline trips at
        the level boundary instead of mid-stack.  Nodes in groups too
        small or ragged to batch — and nodes whose ``V`` blocks the
        cache policy keeps matrix-free — go through ``factor_one``
        unchanged.  Broken-down nodes are collected and re-run through
        the recovery ladder afterwards, in node order; the recovered
        subtrees are disjoint, so deferral is value-identical to the
        per-node path's recover-on-the-spot.
        """
        if deadline is not None:
            for node in nodes:
                deadline.charge(1, f"factorize.node({node.id})")
        tree = self.hmatrix.tree
        stacks = self.level_stacks.setdefault(level, [])
        leaves = [n for n in nodes if tree.is_leaf(n)]
        internals = [n for n in nodes if not tree.is_leaf(n)]
        pernode: list[Node] = []
        broken: list[tuple[Node, StabilityError]] = []
        if leaves:
            pn, br = self._factor_leaves_batched(leaves, policy, stacks)
            pernode.extend(pn)
            broken.extend(br)
        if internals:
            pn, br = self._factor_internals_batched(internals, policy, stacks)
            pernode.extend(pn)
            broken.extend(br)
        if not stacks:
            del self.level_stacks[level]
        registry().counter("levelbatch.nodes").inc(len(nodes) - len(pernode))
        registry().counter("levelbatch.fallback").inc(len(pernode))
        for node in pernode:
            factor_one(node)
        for node, exc in broken:
            if not self.config.recovery.enabled:
                raise exc
            self._recover_node(node)
        # shape groups insert factors out of node order; restore the
        # per-node visit order so order-dependent float accumulations
        # over the dicts (slogdet's log sum) stay bitwise identical.
        for node in nodes:
            if node.id in self.leaf_factors:
                self.leaf_factors[node.id] = self.leaf_factors.pop(node.id)
            else:
                self.node_factors[node.id] = self.node_factors.pop(node.id)

    def _factor_leaves_batched(
        self,
        leaves: list[Node],
        policy: levelbatch.BatchPolicy,
        stacks: list[np.ndarray],
    ) -> tuple[list[Node], list[tuple[Node, StabilityError]]]:
        """Stacked counterpart of :meth:`_factor_leaf` for one level."""
        h = self.hmatrix
        sset = h.skeletons
        rec = self.config.recovery
        check = self.config.check_stability or rec.enabled
        pernode: list[Node] = []
        broken: list[tuple[Node, StabilityError]] = []
        groups = levelbatch.group_by_key(
            leaves,
            lambda leaf: (
                leaf.size,
                sset[leaf.id].rank if sset.is_skeletonized(leaf.id) else -1,
            ),
        )
        for (m, s), idxs in groups.items():
            members = [leaves[i] for i in idxs]
            g = len(members)
            if m == 0 or not policy.worth(g, m * m, calls_saved=8):
                pernode.extend(members)
                continue
            A = h.leaf_blocks_stacked(members)
            idx = np.arange(m)
            lam = self.lam + np.array(
                [self._lam_extra.get(leaf.id, 0.0) for leaf in members]
            )
            A[:, idx, idx] += lam[:, None]
            anorms = levelbatch.one_norms_stacked(A) if check else np.zeros(g)
            for i, leaf in enumerate(members):
                self._leaf_anorms[leaf.id] = float(anorms[i])
            phat = None
            if s >= 0:
                # F-sliced right-hand sides let dgesv solve in place.
                P = np.empty((g, s, m)).transpose(0, 2, 1)
                for i, leaf in enumerate(members):
                    P[i] = sset[leaf.id].proj.T
                lu, piv, phat = lapack.lu_factor_solve_batched(
                    A, P, overwrite_b=True
                )
                count_flops(g * (2 * m**3 // 3), label="factor_leaf_lu")
                count_flops(g * 2 * m**2 * s, label="factor_leaf_phat")
            else:
                lu, piv = lapack.lu_factor_batched(A)
                count_flops(g * (2 * m**3 // 3), label="factor_leaf_lu")
            stacks.extend([lu, piv] + ([phat] if phat is not None else []))
            rconds = (
                estimate_rcond_batched(lu, anorms) if check else np.ones(g)
            )
            for i, leaf in enumerate(members):
                rcond = float(rconds[i])
                self.stability.record("leaf", leaf.id, rcond)
                factor = LeafFactor(
                    lu=(lu[i], piv[i]),
                    phat=None if phat is None else phat[i],
                    rcond=rcond,
                )
                self.leaf_factors[leaf.id] = factor
                if phat is not None:
                    self._phat_slots[leaf.id] = (phat, i, factor.phat)
                if rec.enabled and is_breakdown(rcond, rec.rcond_breakdown):
                    broken.append(
                        (
                            leaf,
                            StabilityError(
                                f"leaf block {leaf.id} broke down "
                                f"(rcond={rcond:.2e})"
                            ),
                        )
                    )
        return pernode, broken

    def _factor_internals_batched(
        self,
        nodes: list[Node],
        policy: levelbatch.BatchPolicy,
        stacks: list[np.ndarray],
    ) -> tuple[list[Node], list[tuple[Node, StabilityError]]]:
        """Stacked counterpart of :meth:`_factor_internal` for one level.

        Groups by the full operand-shape tuple, materializes the
        children's ``V`` blocks through the cache (honoring its
        store-vs-recompute policy — a declined block drops the node to
        the per-node matrix-free path), then issues one stacked GEMM /
        LU / solve per step of eq. (8) and eq. (10).  Flops and memory
        ops are charged with the per-node labels and totals.
        """
        h = self.hmatrix
        tree = h.tree
        sset = h.skeletons
        rec = self.config.recovery
        check = self.config.check_stability or rec.enabled
        low = self.config.storage == "low"
        pernode: list[Node] = []
        broken: list[tuple[Node, StabilityError]] = []

        def node_key(node: Node):
            left, right = tree.children(node)
            return (
                left.size,
                right.size,
                sset[left.id].rank,
                sset[right.id].rank,
                sset[node.id].rank if sset.is_skeletonized(node.id) else -1,
            )

        groups = levelbatch.group_by_key(nodes, node_key)
        for (nl, nr, s_l, s_r, s_a), idxs in groups.items():
            members = [nodes[i] for i in idxs]
            g = len(members)
            s = s_l + s_r
            item_words = s * s + s_l * nr + s_r * nl + max(s_a, 0) * (nl + nr)
            if not policy.worth(g, item_words, calls_saved=12):
                pernode.extend(members)
                continue
            children = [tree.children(n) for n in members]
            vbls = [h.sibling_block(l) for l, _ in children]
            vbrs = [h.sibling_block(r) for _, r in children]
            K_l = h.materialize_blocks(vbls)  # K_{l~ r}, (s_l, |r|)
            K_r = h.materialize_blocks(vbrs)  # K_{r~ l}, (s_r, |l|)
            keep = [
                i for i in range(g) if K_l[i] is not None and K_r[i] is not None
            ]
            if len(keep) < g:
                kept = set(keep)
                pernode.extend(members[i] for i in range(g) if i not in kept)
                if len(keep) < 2:
                    pernode.extend(members[i] for i in keep)
                    continue
                members = [members[i] for i in keep]
                children = [children[i] for i in keep]
                vbls = [vbls[i] for i in keep]
                vbrs = [vbrs[i] for i in keep]
                K_l = [K_l[i] for i in keep]
                K_r = [K_r[i] for i in keep]
                g = len(members)
            K_lr = np.stack(K_l)
            K_rl = np.stack(K_r)
            phat_l = self._gather_phats([l for l, _ in children])
            phat_r = self._gather_phats([r for _, r in children])

            # Z = I + V W (eq. 8), one stacked GEMM per off-diagonal block.
            B_lr = np.matmul(K_lr, phat_r)  # (g, s_l, s_r)
            B_rl = np.matmul(K_rl, phat_l)  # (g, s_r, s_l)
            count_flops(g * 2 * s_l * nr * s_r, label="summation_gemv")
            count_mops(g * (s_l * nr + nr * s_r + s_l * s_r))
            count_flops(g * 2 * s_r * nl * s_l, label="summation_gemv")
            count_mops(g * (s_r * nl + nl * s_l + s_r * s_l))
            # With stability checks off, F-sliced storage lets the LU
            # factor Z in place; the 1-norm estimate must read a
            # C-ordered stack (summation order is layout-dependent, and
            # the per-node reference norm runs on C-ordered blocks).
            if check:
                Z = np.zeros((g, s, s))
            else:
                Z = np.zeros((g, s, s)).transpose(0, 2, 1)
            di = np.arange(s)
            Z[:, di, di] = 1.0
            Z[:, :s_l, s_l:] = B_lr
            Z[:, s_l:, :s_l] = B_rl
            anorms = levelbatch.one_norms_stacked(Z) if check else np.zeros(g)
            y = None
            if s_a >= 0:
                # eq. (10) telescoping, one stacked GEMM per step; the
                # reduced solve fuses with the LU below (one dgesv pass).
                projT_l = np.empty((g, s_l, s_a))
                projT_r = np.empty((g, s_r, s_a))
                for i, node in enumerate(members):
                    proj = sset[node.id].proj  # (s_a, s_l + s_r)
                    projT_l[i] = proj[:, :s_l].T
                    projT_r[i] = proj[:, s_l:].T
                G_l = np.matmul(phat_l, projT_l)  # (g, |l|, s_a)
                G_r = np.matmul(phat_r, projT_r)  # (g, |r|, s_a)
                count_flops(
                    g * 2 * s_a * (nl * s_l + nr * s_r),
                    label="factor_telescope",
                )
                t_top = np.matmul(K_lr, G_r)
                t_bot = np.matmul(K_rl, G_l)
                count_flops(g * 2 * s_l * nr * s_a, label="summation_gemv")
                count_mops(g * (s_l * nr + nr * s_a + s_l * s_a))
                count_flops(g * 2 * s_r * nl * s_a, label="summation_gemv")
                count_mops(g * (s_r * nl + nl * s_a + s_r * s_a))
                t = np.empty((g, s_a, s)).transpose(0, 2, 1)
                t[:, :s_l] = t_top
                t[:, s_l:] = t_bot
                z_lu, z_piv, y = lapack.lu_factor_solve_batched(
                    Z, t, overwrite_a=not check, overwrite_b=True
                )
                count_flops(g * 2 * s**2 * s_a, label="factor_z_solve")
            else:
                z_lu, z_piv = lapack.lu_factor_batched(Z, overwrite_a=not check)
            count_flops(g * (2 * s**3 // 3), label="factor_z_lu")
            stacks.extend([z_lu, z_piv])
            rconds = (
                estimate_rcond_batched(z_lu, anorms) if check else np.ones(g)
            )
            factors: list[InternalFactor] = []
            for i, node in enumerate(members):
                rcond = float(rconds[i])
                self.stability.record("reduced", node.id, rcond)
                factor = InternalFactor(
                    z_lu=(z_lu[i], z_piv[i]),
                    s_l=s_l,
                    s_r=s_r,
                    vblock_l=vbls[i],
                    vblock_r=vbrs[i],
                    phat=None,
                    rcond=rcond,
                )
                self.node_factors[node.id] = factor
                factors.append(factor)
                if rec.enabled and is_breakdown(rcond, rec.rcond_breakdown):
                    broken.append(
                        (
                            node,
                            StabilityError(
                                f"reduced system at node {node.id} broke down "
                                f"(rcond={rcond:.2e})"
                            ),
                        )
                    )

            if s_a >= 0:
                top = G_l - np.matmul(phat_l, y[:, :s_l])
                bot = G_r - np.matmul(phat_r, y[:, s_l:])
                count_flops(
                    g * 2 * s_a * (nl * s_l + nr * s_r),
                    label="factor_telescope",
                )
                phat = np.concatenate([top, bot], axis=1)
                if low:
                    # low-storage mode releases internal P^ blocks right
                    # after the parent level; per-node copies keep that
                    # release effective (a stack would stay pinned by any
                    # surviving frontier view).
                    for i, factor in enumerate(factors):
                        factor.phat = phat[i].copy()
                else:
                    stacks.append(phat)
                    for i, factor in enumerate(factors):
                        factor.phat = phat[i]
                    for i, node in enumerate(members):
                        self._phat_slots[node.id] = (phat, i, factors[i].phat)
        return pernode, broken

    # ------------------------------------------------------------------
    # recovery ladder, rung 1: per-subtree lambda bump (docs/ROBUSTNESS.md)
    # ------------------------------------------------------------------
    def _subtree_nodes(self, node: Node) -> list[Node]:
        """Postorder nodes of ``node``'s subtree (children before parents)."""
        tree = self.hmatrix.tree
        out: list[Node] = []

        def visit(n: Node) -> None:
            if not tree.is_leaf(n):
                left, right = tree.children(n)
                visit(left)
                visit(right)
            out.append(n)

        visit(node)
        return out

    def _refactor_subtree(self, node: Node) -> None:
        """Re-factorize ``node``'s subtree bottom-up with current lambdas.

        Only the subtree is redone: skeletons, sibling blocks, and every
        factor outside it are untouched — the checkpointed-skeleton
        property that makes recovery local.
        """
        tree = self.hmatrix.tree
        for n in self._subtree_nodes(node):
            if tree.is_leaf(n):
                self._factor_leaf(n)
            else:
                self._factor_internal(n)

    def _recover_node(self, node: Node) -> None:
        """Lambda-bump ladder for a broken-down block at ``node``.

        Bumps the regularization on the subtree's diagonal (leaf) blocks
        — first by ``lambda_bump0`` relative to each leaf's 1-norm, then
        geometrically — re-factorizing just that subtree each attempt.
        Raises :class:`~repro.exceptions.StabilityError` when the bump
        budget is exhausted (the caller escalates to the next rung).
        """
        rec = self.config.recovery
        tree = self.hmatrix.tree
        leaves = [n for n in self._subtree_nodes(node) if tree.is_leaf(n)]
        last: StabilityError | None = None
        for attempt in range(rec.max_lambda_bumps):
            scale = rec.lambda_bump_factor**attempt
            for lf in leaves:
                bump = (
                    rec.lambda_bump0
                    * max(self._leaf_anorms.get(lf.id, 1.0), 1.0)
                    * scale
                )
                self._lam_extra[lf.id] = self._lam_extra.get(lf.id, 0.0) + bump
            try:
                self._refactor_subtree(node)
            except StabilityError as exc:
                last = exc
                continue
            self.recovery_events.append(
                {
                    "stage": "lambda_bump",
                    "node_id": node.id,
                    "attempts": attempt + 1,
                    "bumped_leaves": len(leaves),
                    "max_lam_extra": max(
                        self._lam_extra[lf.id] for lf in leaves
                    ),
                }
            )
            return
        raise StabilityError(
            f"lambda-bump ladder exhausted ({rec.max_lambda_bumps} attempts) "
            f"at node {node.id}: {last}"
        ) from last

    # ------------------------------------------------------------------
    # checkpoint payloads (repro.checkpoint/v1, level granularity)
    # ------------------------------------------------------------------
    def export_level_payload(self, level: int) -> dict:
        """Serializable factors of one completed tree level.

        The :class:`KernelSummation` sibling blocks are *excluded* —
        they hold cache handles and are rebuilt deterministically from
        the H-matrix on restore (kernel evaluation is pure), which keeps
        payloads small and decouples them from cache state.
        """
        tree = self.hmatrix.tree
        leaves: dict[int, dict] = {}
        internals: dict[int, dict] = {}
        for nid, lf in self.leaf_factors.items():
            if tree.node(nid).level != level:
                continue
            leaves[nid] = {
                "lu": lf.lu[0],
                "piv": lf.lu[1],
                "phat": lf.phat,
                "rcond": lf.rcond,
                "anorm": self._leaf_anorms.get(nid, 0.0),
                "lam_extra": self._lam_extra.get(nid, 0.0),
            }
        for nid, nf in self.node_factors.items():
            if tree.node(nid).level != level:
                continue
            internals[nid] = {
                "z_lu": nf.z_lu[0],
                "piv": nf.z_lu[1],
                "s_l": nf.s_l,
                "s_r": nf.s_r,
                "phat": nf.phat,
                "rcond": nf.rcond,
            }
        events = [
            e
            for e in self.recovery_events
            if tree.node(e["node_id"]).level == level
        ]
        return {
            "level": level,
            "lam": self.lam,
            "leaves": leaves,
            "internals": internals,
            "recovery_events": events,
        }

    def restore_level_payload(self, payload: dict) -> None:
        """Transplant one level's factors back (inverse of export).

        Sibling ``V`` blocks are re-derived from the H-matrix; stability
        records are replayed so reports stay faithful across a resume.
        """
        h = self.hmatrix
        tree = h.tree
        for nid, d in payload["leaves"].items():
            self.leaf_factors[nid] = LeafFactor(
                lu=(d["lu"], d["piv"]), phat=d["phat"], rcond=d["rcond"]
            )
            self._leaf_anorms[nid] = d["anorm"]
            if d["lam_extra"]:
                self._lam_extra[nid] = d["lam_extra"]
            self.stability.record("leaf", nid, d["rcond"])
        for nid, d in payload["internals"].items():
            left, right = tree.children(tree.node(nid))
            self.node_factors[nid] = InternalFactor(
                z_lu=(d["z_lu"], d["piv"]),
                s_l=d["s_l"],
                s_r=d["s_r"],
                vblock_l=h.sibling_block(left),
                vblock_r=h.sibling_block(right),
                phat=d["phat"],
                rcond=d["rcond"],
            )
            self.stability.record("reduced", nid, d["rcond"])
        self.recovery_events.extend(payload.get("recovery_events", []))
        self.completed_levels.add(payload["level"])

    def export_node_payload(self, node_id: int) -> dict:
        """Serializable factors of one node (task-DAG granularity).

        Same shape as one entry of :meth:`export_level_payload`: the
        :class:`KernelSummation` sibling blocks are excluded and
        re-derived on restore (kernel evaluation is pure), so the
        payload is a handful of dense arrays that travel cheaply
        between the task-parallel executor's worker processes.
        """
        if node_id in self.leaf_factors:
            lf = self.leaf_factors[node_id]
            return {
                "kind": "leaf",
                "node_id": node_id,
                "lu": lf.lu[0],
                "piv": lf.lu[1],
                "phat": lf.phat,
                "rcond": lf.rcond,
                "anorm": self._leaf_anorms.get(node_id, 0.0),
                "lam_extra": self._lam_extra.get(node_id, 0.0),
            }
        nf = self.node_factors[node_id]
        return {
            "kind": "internal",
            "node_id": node_id,
            "z_lu": nf.z_lu[0],
            "piv": nf.z_lu[1],
            "s_l": nf.s_l,
            "s_r": nf.s_r,
            "phat": nf.phat,
            "rcond": nf.rcond,
        }

    def restore_node_payload(self, payload: dict) -> None:
        """Transplant one node's factors back (inverse of export).

        Idempotent: a node already present is left untouched (a DAG
        worker that factored a child locally skips the shipped copy
        without double-recording its stability entry).
        """
        h = self.hmatrix
        nid = payload["node_id"]
        if payload["kind"] == "leaf":
            if nid in self.leaf_factors:
                return
            self.leaf_factors[nid] = LeafFactor(
                lu=(payload["lu"], payload["piv"]),
                phat=payload["phat"],
                rcond=payload["rcond"],
            )
            self._leaf_anorms[nid] = payload["anorm"]
            if payload["lam_extra"]:
                self._lam_extra[nid] = payload["lam_extra"]
            self.stability.record("leaf", nid, payload["rcond"])
            return
        if nid in self.node_factors:
            return
        left, right = h.tree.children(h.tree.node(nid))
        self.node_factors[nid] = InternalFactor(
            z_lu=(payload["z_lu"], payload["piv"]),
            s_l=payload["s_l"],
            s_r=payload["s_r"],
            vblock_l=h.sibling_block(left),
            vblock_r=h.sibling_block(right),
            phat=payload["phat"],
            rcond=payload["rcond"],
        )
        self.stability.record("reduced", nid, payload["rcond"])

    def _gather_phats(self, nodes: list[Node]) -> np.ndarray:
        """Children's P^ blocks as one ``(g, n, s)`` stack.

        When every block still sits at its recorded slot in one child
        level stack (no recovery rewrote it) and the slots step
        uniformly, this is a strided *view* — no copy at all.  The step
        may be negative: level node order often stores the right child
        before the left, and a negative outer stride leaves the
        per-slice layout (hence the GEMM bit patterns) unchanged.  The
        fallback copy preserves the blocks' own layout — leaf ``P^``
        blocks are F-ordered (LAPACK solve outputs), internal ones
        C-ordered (concatenated telescopes) — because ``np.matmul``
        results follow operand strides and a layout flip here would
        silently break bitwise parity with the per-node path.
        """
        slots = [self._phat_slots.get(n.id) for n in nodes]
        first = slots[0]
        if first is not None and all(
            s is not None and s[0] is first[0] and self._phat(n) is s[2]
            for s, n in zip(slots, nodes)
        ):
            idx = [s[1] for s in slots]
            step = idx[1] - idx[0] if len(idx) > 1 else 1
            if step != 0 and all(b - a == step for a, b in zip(idx, idx[1:])):
                stop = idx[0] + step * len(idx)
                # a negative stop means "past the front": only None
                # expresses that in a slice.
                return first[0][idx[0] : (stop if stop >= 0 else None) : step]
        blocks = [self._phat(n) for n in nodes]
        n, s = blocks[0].shape
        if all(b.flags.f_contiguous for b in blocks):
            out = np.empty((len(blocks), s, n)).transpose(0, 2, 1)
        else:
            out = np.empty((len(blocks), n, s))
        for i, block in enumerate(blocks):
            out[i] = block
        return out

    def _phat(self, node: Node) -> np.ndarray:
        if self.hmatrix.tree.is_leaf(node):
            phat = self.leaf_factors[node.id].phat
        else:
            phat = self.node_factors[node.id].phat
        if phat is None:
            raise NotFactorizedError(
                f"P^ of node {node.id} is not materialized (low-storage "
                "mode: use solve(), which re-telescopes it, or storage='full')"
            )
        return phat

    # -- low-storage mode (paper section III, "Recomputing W with (10)
    # can reduce another sN log(N/m) to sN") --------------------------
    def _drop_internal_phats(self, level: int) -> None:
        """Release P^ of internal non-frontier nodes at ``level``."""
        frontier_ids = {f.id for f in self.hmatrix.frontier}
        tree = self.hmatrix.tree
        for nid, factor in self.node_factors.items():
            node = tree.node(nid)
            if node.level == level and nid not in frontier_ids:
                factor.phat = None

    def _materialize_phats(self) -> list[InternalFactor]:
        """Re-telescope dropped internal P^ blocks (bottom-up, eq. 10).

        Returns the factors that were restored so the caller can release
        them again after the solve.
        """
        tree = self.hmatrix.tree
        restored: list[InternalFactor] = []
        missing = [
            (tree.node(nid), factor)
            for nid, factor in self.node_factors.items()
            if factor.phat is None
            and self.hmatrix.skeletons.is_skeletonized(nid)
        ]
        for node, factor in sorted(missing, key=lambda nf: -nf[0].level):
            left, right = tree.children(node)
            factor.phat = self._phat_telescoped(
                node, factor, self._phat(left), self._phat(right)
            )
            restored.append(factor)
        return restored

    @staticmethod
    def _release_phats(restored: list[InternalFactor]) -> None:
        for factor in restored:
            factor.phat = None

    def _phat_telescoped(
        self,
        node: Node,
        factor: InternalFactor,
        phat_l: np.ndarray,
        phat_r: np.ndarray,
    ) -> np.ndarray:
        """Eq. (10): P^_alpha from the children's P^ — no recursion."""
        proj = self.hmatrix.skeletons[node.id].proj  # (s_a, s_l + s_r)
        s_l = factor.s_l
        G_l = phat_l @ proj[:, :s_l].T  # (|l|, s_a)
        G_r = phat_r @ proj[:, s_l:].T  # (|r|, s_a)
        count_flops(
            2 * proj.shape[0] * (phat_l.size + phat_r.size), label="factor_telescope"
        )
        t = np.vstack(
            [factor.vblock_l.matvec(G_r), factor.vblock_r.matvec(G_l)]
        )
        y = lapack.lu_solve(factor.z_lu, t)
        count_flops(2 * t.shape[0] ** 2 * t.shape[1], label="factor_z_solve")
        top = G_l - phat_l @ y[:s_l]
        bot = G_r - phat_r @ y[s_l:]
        count_flops(
            2 * proj.shape[0] * (phat_l.size + phat_r.size), label="factor_telescope"
        )
        return np.vstack([top, bot])

    def _phat_recursive(self, node: Node) -> np.ndarray:
        """INV-ASKIT [36]: P^_alpha = Solve(alpha, P_alpha, recurse=True).

        Forms the explicit telescoped basis ``P_{alpha alpha~}`` and
        runs the full recursive subtree solve — the O(N log^2 N) path.
        """
        P = self.hmatrix.skeletons.telescoped_basis(node)
        count_flops(2 * P.size * self.hmatrix.skeletons[node.id].rank, label="factor_basis")
        return self.solve_subtree(node, P)

    # ------------------------------------------------------------------
    def _build_reduced(self) -> None:
        """Coalesced frontier system (section II-C / root of Alg. II.2)."""
        h = self.hmatrix
        frontier = h.frontier
        slices: dict[int, slice] = {}
        offset = 0
        for f in frontier:
            s = h.skeletons[f.id].rank
            slices[f.id] = slice(offset, offset + s)
            offset += s
        size = offset
        method = SummationMethod(self.config.summation)

        # off-diagonal pair blocks K_{f~ g}; sibling pairs reuse the
        # blocks the per-node factorization already built/cached, the
        # rest come from the H-matrix's block cache (shared across
        # factorizations of the same matrix).
        pair_blocks: dict[tuple[int, int], KernelSummation] = {}
        for f in frontier:
            for g in frontier:
                if f.id == g.id:
                    continue
                if g.id == f.sibling_id:
                    pair_blocks[(f.id, g.id)] = h.sibling_block(f)
                else:
                    pair_blocks[(f.id, g.id)] = h.pair_block(f, g, method)

        z_lu = None
        rcond = 1.0
        if self.config.method != "hybrid":
            Z = np.eye(size)
            handled: set[tuple[int, int]] = set()
            if self._batch_policy is not None and len(frontier) > 1:
                handled = self._assemble_reduced_batched(
                    Z, slices, frontier, pair_blocks, self._batch_policy
                )
            for g in frontier:
                phat_g = self._phat(g)
                for f in frontier:
                    if f.id == g.id or (f.id, g.id) in handled:
                        continue
                    Z[slices[f.id], slices[g.id]] += pair_blocks[
                        (f.id, g.id)
                    ].matvec(phat_g)
            rec = self.config.recovery
            check = self.config.check_stability or rec.enabled
            anorm = float(np.linalg.norm(Z, 1)) if check else 0.0
            z_lu = lapack.lu_factor(Z)
            count_flops(2 * size**3 // 3, label="factor_reduced_lu")
            rcond = estimate_rcond(z_lu[0], anorm) if check else 1.0
            self.stability.record("frontier", 1, rcond)
            if rec.enabled and is_breakdown(rcond, rec.rcond_breakdown):
                # no local fix exists for the coalesced system — the
                # caller (robust_factorize) descends the frontier and
                # retries with the hybrid method.
                raise StabilityError(
                    f"coalesced frontier system broke down (rcond={rcond:.2e})"
                )

        self.reduced = ReducedSystem(
            frontier=frontier,
            slices=slices,
            size=size,
            pair_blocks=pair_blocks,
            z_lu=z_lu,
            rcond=rcond,
        )

    def _assemble_reduced_batched(
        self,
        Z: np.ndarray,
        slices: dict[int, slice],
        frontier: list[Node],
        pair_blocks: dict[tuple[int, int], KernelSummation],
        policy: levelbatch.BatchPolicy,
    ) -> set[tuple[int, int]]:
        """Stacked assembly of the same-shaped frontier pair products.

        Returns the ``(f.id, g.id)`` pairs it accumulated into ``Z`` so
        the per-pair loop skips them; the remaining (ragged or cache-
        declined) pairs keep the matrix-free ``matvec`` path.  The
        scatter targets are disjoint, so the accumulation is bitwise
        identical to the per-pair loop regardless of order.
        """
        h = self.hmatrix
        sset = h.skeletons
        done: set[tuple[int, int]] = set()
        pairs = [(f, g) for g in frontier for f in frontier if f.id != g.id]
        groups = levelbatch.group_by_key(
            pairs,
            lambda fg: (sset[fg[0].id].rank, fg[1].size, sset[fg[1].id].rank),
        )
        for (s_f, ng, s_g), idxs in groups.items():
            if not policy.worth(
                len(idxs), s_f * ng + ng * s_g, calls_saved=6
            ):
                continue
            members = [pairs[i] for i in idxs]
            blocks = h.materialize_blocks(
                [pair_blocks[(f.id, g.id)] for f, g in members]
            )
            keep = [i for i, blk in enumerate(blocks) if blk is not None]
            if len(keep) < 2:
                continue
            K = np.stack([blocks[i] for i in keep])
            phat_g = np.stack([self._phat(members[i][1]) for i in keep])
            prod = np.matmul(K, phat_g)
            n_keep = len(keep)
            count_flops(n_keep * 2 * s_f * ng * s_g, label="summation_gemv")
            count_mops(n_keep * (s_f * ng + ng * s_g + s_f * s_g))
            for pos, i in enumerate(keep):
                f, g = members[i]
                Z[slices[f.id], slices[g.id]] += prod[pos]
                done.add((f.id, g.id))
        return done

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def solve_subtree(self, node: Node, u: np.ndarray) -> np.ndarray:
        """Algorithm II.3: ``w = (lambda I + K~_{node node})^{-1} u``.

        ``node`` must be at or below the frontier.  ``u`` is indexed by
        the node's points (shape ``(|node|,)`` or ``(|node|, k)``).
        """
        tree = self.hmatrix.tree
        if tree.is_leaf(node):
            w = lapack.lu_solve(self.leaf_factors[node.id].lu, u)
            k = 1 if u.ndim == 1 else u.shape[1]
            count_flops(2 * node.size**2 * k, label="solve_leaf")
            return w
        left, right = tree.children(node)
        nl = left.size
        w_l = self.solve_subtree(left, u[:nl])
        w_r = self.solve_subtree(right, u[nl:])
        factor = self.node_factors[node.id]
        t_top = factor.vblock_l.matvec(w_r)
        t_bot = factor.vblock_r.matvec(w_l)
        t = np.concatenate([t_top, t_bot], axis=0)
        y = lapack.lu_solve(factor.z_lu, t)
        k = 1 if u.ndim == 1 else u.shape[1]
        count_flops(2 * t.shape[0] ** 2 * k, label="solve_z")
        phat_l = self._phat(left)
        phat_r = self._phat(right)
        w_l = w_l - phat_l @ y[: factor.s_l]
        w_r = w_r - phat_r @ y[factor.s_l :]
        count_flops(2 * (phat_l.size + phat_r.size) * k, label="solve_correct")
        return np.concatenate([w_l, w_r], axis=0)

    def _apply_v(self, x: np.ndarray) -> np.ndarray:
        """``V x``: frontier-skeleton rows against all out-of-node points."""
        assert self.reduced is not None
        red = self.reduced
        t = (
            np.zeros(red.size)
            if x.ndim == 1
            else np.zeros((red.size, x.shape[1]))
        )
        for f in red.frontier:
            acc = t[red.slices[f.id]]
            for g in red.frontier:
                if f.id == g.id:
                    continue
                acc += red.pair_blocks[(f.id, g.id)].matvec(x[g.lo : g.hi])
        return t

    def _apply_what(self, y: np.ndarray) -> np.ndarray:
        """``W^ y``: scatter reduced coefficients through the P^ blocks."""
        assert self.reduced is not None
        red = self.reduced
        n = self.hmatrix.n_points
        w = (
            np.zeros(n)
            if y.ndim == 1
            else np.zeros((n, y.shape[1]))
        )
        for f in red.frontier:
            phat = self._phat(f)
            w[f.lo : f.hi] = phat @ y[red.slices[f.id]]
            count_flops(2 * phat.size * (1 if y.ndim == 1 else y.shape[1]), label="solve_what")
        return w

    def reduced_matvec(self, y: np.ndarray) -> np.ndarray:
        """``(I + V W^) y`` — the hybrid method's GMRES operator."""
        return y + self._apply_v(self._apply_what(y))

    def _solve_reduced(self, t: np.ndarray) -> np.ndarray:
        """Solve ``(I + V W^) y = t`` by LU (direct) or GMRES (hybrid)."""
        assert self.reduced is not None
        red = self.reduced
        if red.z_lu is not None:
            k = 1 if t.ndim == 1 else t.shape[1]
            count_flops(2 * red.size**2 * k, label="solve_reduced")
            return lapack.lu_solve(red.z_lu, t)
        cfg: GMRESConfig = self.config.gmres
        if t.ndim == 1:
            res = gmres(self.reduced_matvec, t, cfg)
            self.reduced_iterations.append(res.n_iters)
            self.reduced_histories.append(res.residuals)
            return res.x
        if self.config.batch_rhs:
            # one block-Krylov lockstep iteration per matvec: every pair
            # block sees the whole (size, k) panel at once (BLAS-3).
            results = gmres_batched(self.reduced_matvec, t, cfg)
            for res in results:
                self.reduced_iterations.append(res.n_iters)
                self.reduced_histories.append(res.residuals)
            return np.stack([res.x for res in results], axis=1)
        cols = []
        for j in range(t.shape[1]):
            res = gmres(self.reduced_matvec, t[:, j], cfg)
            self.reduced_iterations.append(res.n_iters)
            self.reduced_histories.append(res.residuals)
            cols.append(res.x)
        return np.stack(cols, axis=1)

    def solve(self, u: np.ndarray) -> np.ndarray:
        """``w = (lambda I + K~)^{-1} u`` (tree order; (N,) or (N, k))."""
        if not self._factored:
            raise NotFactorizedError("call factorize() first")
        h = self.hmatrix
        u = check_vector(u, h.n_points)
        if h.tree.depth == 0:
            return lapack.lu_solve(self.leaf_factors[h.tree.root.id].lu, u)
        assert self.reduced is not None

        def run() -> np.ndarray:
            x = np.empty_like(u)
            for f in h.frontier:
                x[f.lo : f.hi] = self.solve_subtree(f, u[f.lo : f.hi])
            t = self._apply_v(x)
            y = self._solve_reduced(t)
            return x - self._apply_what(y)

        if self.config.storage != "low":
            return run()
        with self._solve_lock:
            restored = self._materialize_phats()
            try:
                return run()
            finally:
                self._release_phats(restored)

    def slogdet(self) -> tuple[float, float]:
        """Sign and log|det| of ``lambda I + K~`` — for free from the LUs.

        By Sylvester's identity, ``det(D (I + W V)) = det(D) * det(Z)``
        at every node, so the determinant telescopes into the leaf LUs,
        the per-node reduced systems, and the coalesced frontier system:

        ``logdet = sum_leaf logdet(lam I + K_leaf) + sum_node logdet(Z_node)
        + logdet(Z_frontier)``.

        This is what makes Gaussian-process log-marginal-likelihoods
        O(N log N) (see :mod:`repro.learning.gp`).  Not available for
        the hybrid method (the frontier system is never factorized).

        Returns
        -------
        (sign, logabsdet):
            As :func:`numpy.linalg.slogdet`.
        """
        if not self._factored:
            raise NotFactorizedError("call factorize() first")
        if self.reduced is not None and self.reduced.z_lu is None:
            raise NotFactorizedError(
                "slogdet requires a direct factorization; the hybrid "
                "method never factorizes the frontier system"
            )

        sign = 1.0
        logdet = 0.0

        def accumulate(lu_piv: tuple[np.ndarray, np.ndarray]) -> None:
            nonlocal sign, logdet
            lu, piv = lu_piv
            diag = np.diag(lu)
            if np.any(diag == 0.0):
                sign = 0.0
                return
            neg = int(np.count_nonzero(diag < 0))
            # each row interchange flips the permutation sign.
            swaps = int(np.count_nonzero(piv != np.arange(len(piv))))
            if (neg + swaps) % 2:
                sign = -sign
            logdet += float(np.sum(np.log(np.abs(diag))))

        for lf in self.leaf_factors.values():
            accumulate(lf.lu)
        for nf in self.node_factors.values():
            accumulate(nf.z_lu)
        if self.reduced is not None and self.reduced.z_lu is not None:
            accumulate(self.reduced.z_lu)
        if sign == 0.0:
            return 0.0, -np.inf
        return sign, logdet

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def residual(self, u: np.ndarray, w: np.ndarray) -> float:
        """Relative residual ``||u - (lambda I + K~) w|| / ||u||`` (eq. 15)."""
        r = u - self.hmatrix.regularized_matvec(self.lam, w)
        un = float(np.linalg.norm(u))
        return float(np.linalg.norm(r)) / un if un > 0 else float(np.linalg.norm(r))

    def storage_words(self) -> int:
        """Persistent float64 words held by the factorization."""
        total = 0
        for lf in self.leaf_factors.values():
            total += lf.lu[0].size
            if lf.phat is not None:
                total += lf.phat.size
        for nf in self.node_factors.values():
            total += nf.z_lu[0].size
            total += nf.vblock_l.storage_words + nf.vblock_r.storage_words
            if nf.phat is not None:
                total += nf.phat.size
        if self.reduced is not None:
            counted = set()
            for nf in self.node_factors.values():
                counted.add(id(nf.vblock_l))
                counted.add(id(nf.vblock_r))
            for block in self.reduced.pair_blocks.values():
                if id(block) not in counted:  # sibling blocks counted above
                    total += block.storage_words
                    counted.add(id(block))
            if self.reduced.z_lu is not None:
                total += self.reduced.z_lu[0].size
        return total


def factorize(
    hmatrix: HMatrix,
    lam: float = 0.0,
    config: SolverConfig | None = None,
    *,
    deadline=None,
    resume_levels: dict[int, dict] | None = None,
    resume_nodes: dict[int, dict] | None = None,
    on_level=None,
    partial_sink: list | None = None,
) -> HierarchicalFactorization:
    """Factorize ``lambda I + K~`` (Algorithm II.2 / II.4 counterpart).

    Parameters
    ----------
    hmatrix:
        The hierarchical matrix (tree + skeletons + kernel).
    lam:
        Regularization ``lambda >= 0``.
    config:
        Method selection; see :class:`~repro.config.SolverConfig`.
    deadline:
        Optional :class:`repro.resilience.Deadline`; defaults to the one
        installed by :func:`repro.resilience.deadline_scope`.  Charged
        one work unit per node, so a
        :class:`~repro.exceptions.DeadlineExceededError` lands between
        nodes, never inside a BLAS call.
    resume_levels:
        ``{level: payload}`` from :meth:`export_level_payload` — the
        contiguous deepest levels are transplanted instead of recomputed
        (resume-from-checkpoint; contiguity is enforced here, so a gap
        falls back to recomputing).
    resume_nodes:
        ``{node_id: payload}`` from :meth:`export_node_payload` — *node*
        granularity transplant for incremental updates: clean-subtree
        factors are restored verbatim (their inputs are unchanged, so a
        recompute would be bitwise identical) and only the remaining
        dirty nodes are factored.  Unlike ``resume_levels`` no
        contiguity is required — validity is the caller's contract that
        every resumed node's *entire subtree* is unchanged.  Restored
        nodes charge no deadline work and skip level stacking
        (:func:`repro.perf.levelbatch.partition_resume`).
    on_level:
        ``on_level(level, fact)`` called after each freshly computed
        level (the checkpoint write hook).
    partial_sink:
        When given, the factorization-in-progress is appended *before*
        work starts, so a caller catching ``DeadlineExceededError`` can
        inspect ``completed_levels`` and transplant the finished factors
        (degradation rung 2).

    Returns
    -------
    HierarchicalFactorization

    Warns
    -----
    StabilityWarning
        When a diagonal block or reduced system is ill-conditioned past
        ``config.cond_threshold`` (paper section III detection).
    """
    from repro.resilience.deadline import current_deadline

    config = config or SolverConfig()
    if lam < 0:
        raise ValueError(f"lambda must be >= 0; got {lam}")
    if deadline is None:
        deadline = current_deadline()
    fact = HierarchicalFactorization(hmatrix, lam, config)
    # level-synchronous batching: the batched path is bitwise identical
    # to the per-node path (see repro.perf.levelbatch), so this is purely
    # an execution-strategy choice.  nlog2n's recursive P^ has no stacked
    # form; it always runs per node.
    if (
        config.level_batch
        and config.method != "nlog2n"
        and levelbatch.batching_enabled()
    ):
        fact._batch_policy = levelbatch.BatchPolicy.current()
    if partial_sink is not None:
        partial_sink.append(fact)
    tree = hmatrix.tree

    recover = config.recovery.enabled

    def factor_one(node: Node) -> None:
        try:
            if tree.is_leaf(node):
                fact._factor_leaf(node)
            else:
                fact._factor_internal(node)
        except StabilityError:
            if not recover:
                raise
            # rung 1: bump lambda on the offending subtree's diagonal
            # blocks and re-factorize just that subtree.  Exhaustion
            # re-raises for robust_factorize's higher rungs.
            fact._recover_node(node)

    if tree.depth == 0:
        factor_one(tree.root)
        fact.completed_levels.add(0)
        fact._factored = True
        fact.stability.warn_if_unstable()
        return fact

    # bottom-up over nodes at/below the frontier (level-wise postorder).
    below = hmatrix._nodes_at_or_below_frontier()
    by_level: dict[int, list[Node]] = {}
    for node in below:
        by_level.setdefault(node.level, []).append(node)
    levels = sorted(by_level, reverse=True)
    # resume: transplant the contiguous deepest checkpointed levels; a
    # gap means the shallower payloads may depend on recomputed factors,
    # so they are discarded and recomputed.
    restorable = True
    for level in levels:
        if restorable and resume_levels and level in resume_levels:
            fact.restore_level_payload(resume_levels[level])
            continue
        restorable = False
        members = by_level[level]
        todo = members
        restored: list[Node] = []
        if resume_nodes:
            todo, restored = levelbatch.partition_resume(members, resume_nodes)
            for node in restored:
                fact.restore_node_payload(resume_nodes[node.id])
        with span(
            "factorize.level",
            attrs={"level": level, "nodes": len(todo)},
        ):
            if fact._batch_policy is not None and todo:
                fact._factor_level_batched(
                    todo,
                    level,
                    fact._batch_policy,
                    deadline,
                    factor_one,
                )
            else:
                for node in todo:
                    if deadline is not None:
                        deadline.charge(1, f"factorize.node({node.id})")
                    factor_one(node)
        if restored:
            fact.nodes_resumed += len(restored)
            # restores and computes interleave out of node order; restore
            # the per-node visit order so order-dependent accumulations
            # over the factor dicts (slogdet) stay bitwise identical to
            # a from-scratch factorization of the same H-matrix.
            for node in members:
                if node.id in fact.leaf_factors:
                    fact.leaf_factors[node.id] = fact.leaf_factors.pop(node.id)
                else:
                    fact.node_factors[node.id] = fact.node_factors.pop(node.id)
        fact.completed_levels.add(level)
        if on_level is not None:
            on_level(level, fact)
        if config.storage == "low" and level + 1 in by_level:
            # the level just below is no longer needed: its P^ blocks fed
            # this level's Z and telescoping (paper section III memory
            # scheme) — keep only leaf and frontier P^ persistent.
            fact._drop_internal_phats(level + 1)

    if deadline is not None:
        deadline.check("factorize.reduced")
    with span("factorize.reduced", attrs={"frontier": len(hmatrix.frontier)}):
        fact._build_reduced()
    if config.storage == "low":
        for level in levels:
            fact._drop_internal_phats(level)
    fact._factored = True
    fact.stability.warn_if_unstable()
    return fact
