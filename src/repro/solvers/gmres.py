"""GMRES with modified Gram-Schmidt and optional CGS2 refinement.

The paper uses PETSc's GMRES "with modified Gram-Schmidt for
re-orthogonalization and GMRES CGS refinement"; this is a faithful
numpy implementation with restart support and a recorded residual
history (Figure 5 plots these histories).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.config import GMRESConfig
from repro.exceptions import ConvergenceWarning
from repro.obs import emit_warning, registry
from repro.util.flops import count_flops

__all__ = ["GMRESResult", "gmres", "gmres_batched"]

#: a Hessenberg entry below this fraction of its column's norm is a
#: numerical zero — exact-zero tests miss breakdowns masked by roundoff
#: (a singular operator leaves a ~1e-16 pivot that, divided through,
#: poisons the update while the Givens recursion reports convergence).
_BREAKDOWN_RTOL = 1e-13


@dataclass
class GMRESResult:
    """Outcome of a GMRES solve.

    Attributes
    ----------
    x:
        Approximate solution.
    converged:
        True when the relative residual reached the tolerance.
    n_iters:
        Total inner iterations (matvec count, across restarts).
    residuals:
        Relative residual norm after every iteration (index 0 is the
        initial residual, always 1.0 for a zero initial guess).
    breakdown:
        True when the Arnoldi/Givens recursion hit a zero Hessenberg
        pivot before converging (Krylov space exhausted — typically a
        singular operator).  The returned ``x`` is the minimum-norm
        least-squares solution over the space built so far.
    """

    x: np.ndarray
    converged: bool
    n_iters: int
    residuals: list[float] = field(default_factory=list)
    breakdown: bool = False

    @property
    def final_residual(self) -> float:
        return self.residuals[-1] if self.residuals else float("nan")


def _orthogonalize(
    w: np.ndarray, V: list[np.ndarray], reorthogonalize: bool
) -> tuple[np.ndarray, np.ndarray]:
    """Modified Gram-Schmidt of ``w`` against basis ``V`` (+ CGS2 pass)."""
    h = np.zeros(len(V) + 1)
    for i, v in enumerate(V):
        hi = float(np.dot(v, w))
        h[i] = hi
        w = w - hi * v
    if reorthogonalize:
        # one classical re-orthogonalization sweep ("CGS refinement").
        for i, v in enumerate(V):
            c = float(np.dot(v, w))
            h[i] += c
            w = w - c * v
    count_flops(4 * len(V) * len(w) * (2 if reorthogonalize else 1), label="gmres_mgs")
    h[len(V)] = float(np.linalg.norm(w))
    return w, h


def gmres(
    matvec: Callable[[np.ndarray], np.ndarray],
    b: np.ndarray,
    config: GMRESConfig | None = None,
    *,
    x0: np.ndarray | None = None,
    callback: Callable[[int, float], None] | None = None,
) -> GMRESResult:
    """Solve ``A x = b`` given only ``matvec(v) = A v``.

    Parameters
    ----------
    matvec:
        The operator.
    b:
        Right-hand side (1-D).
    config:
        Tolerance / iteration budget / restart length.
    x0:
        Initial guess (default zero).
    callback:
        Called as ``callback(iteration, relative_residual)`` after each
        inner step — the benchmark harness uses it to record
        residual-versus-work series.
    """
    from repro.resilience.deadline import current_deadline

    config = config or GMRESConfig()
    dl = current_deadline()  # soft stop: expiry ends iteration, never raises
    b = np.asarray(b, dtype=np.float64)
    if b.ndim != 1:
        raise ValueError("gmres expects a 1-D right-hand side")
    n = len(b)
    bnorm = float(np.linalg.norm(b))
    if bnorm == 0.0:
        result = GMRESResult(
            x=np.zeros(n), converged=True, n_iters=0, residuals=[0.0]
        )
        _publish(result)
        return result

    restart = config.restart or config.max_iters
    x = np.zeros(n) if x0 is None else np.asarray(x0, dtype=np.float64).copy()

    residuals: list[float] = []
    total_iters = 0
    converged = False
    breakdown = False
    stopped = False

    while (
        total_iters < config.max_iters
        and not converged
        and not breakdown
        and not stopped
    ):
        r = b - matvec(x) if (x0 is not None or total_iters > 0) else b.copy()
        beta = float(np.linalg.norm(r))
        rel = beta / bnorm
        if not residuals:
            residuals.append(rel)
        if rel < config.tol:
            converged = True
            break

        V = [r / beta]
        H = np.zeros((restart + 1, restart))
        # Givens rotations for the incremental least-squares solve.
        cs = np.zeros(restart)
        sn = np.zeros(restart)
        g = np.zeros(restart + 1)
        g[0] = beta

        k = 0
        for k in range(restart):
            if total_iters >= config.max_iters:
                break
            if dl is not None and dl.expired:
                # out of budget: keep the best iterate built so far —
                # a degraded-but-finite answer beats an exception here
                # (the caller's degradation ladder records the rung).
                stopped = True
                break
            w = matvec(V[k])
            w, h = _orthogonalize(w, V, config.reorthogonalize)
            colnorm = float(np.linalg.norm(h[: k + 2]))
            if h[k + 1] <= colnorm * _BREAKDOWN_RTOL:
                # Krylov space closed (to roundoff): candidate lucky or
                # hard breakdown, settled by the pivot test below.
                h[k + 1] = 0.0
                V.append(np.zeros_like(w))
            else:
                V.append(w / h[k + 1])
            H[: k + 2, k] = h[: k + 2]

            # apply accumulated rotations to the new column.
            for i in range(k):
                t = cs[i] * H[i, k] + sn[i] * H[i + 1, k]
                H[i + 1, k] = -sn[i] * H[i, k] + cs[i] * H[i + 1, k]
                H[i, k] = t
            denom = float(np.hypot(H[k, k], H[k + 1, k]))
            if denom <= colnorm * _BREAKDOWN_RTOL:
                # zero Hessenberg pivot: the Krylov space is exhausted
                # and the k-th direction carries no information — a
                # breakdown, not a lucky exit, unless the residual is
                # already at tolerance.
                cs[k], sn[k] = 1.0, 0.0
                H[k, k] = 0.0  # min-norm back-substitution drops it
                breakdown = True
            else:
                cs[k] = H[k, k] / denom
                sn[k] = H[k + 1, k] / denom
            H[k, k] = cs[k] * H[k, k] + sn[k] * H[k + 1, k]
            H[k + 1, k] = 0.0
            g[k + 1] = -sn[k] * g[k]
            g[k] = cs[k] * g[k]

            total_iters += 1
            # on breakdown the degenerate rotation zeroes g[k+1]; the
            # true min-norm least-squares residual keeps the g[k] term.
            rel = abs(g[k]) / bnorm if breakdown else abs(g[k + 1]) / bnorm
            residuals.append(rel)
            if callback is not None:
                callback(total_iters, rel)
            if rel < config.tol:
                converged = True
                breakdown = False  # lucky breakdown: exact solution.
                k += 1
                break
            if breakdown:
                k += 1
                break
        else:
            k = restart

        if k > 0:
            y = _back_substitute(H, g, k)
            update = np.zeros(n)
            for i in range(k):
                update += y[i] * V[i]
            x = x + update
        else:
            break

    if breakdown and not converged:
        emit_warning(
            "gmres.breakdown",
            f"GMRES breakdown: zero Hessenberg pivot after {total_iters} "
            f"iterations (relative residual {residuals[-1]:.3e}, tol "
            f"{config.tol:.1e}); the operator is singular or the Krylov "
            "space is exhausted — returning the minimum-norm "
            "least-squares solution.",
            ConvergenceWarning,
            stacklevel=2,
        )
    elif not converged:
        emit_warning(
            "gmres.unconverged",
            f"GMRES stopped after {total_iters} iterations with relative "
            f"residual {residuals[-1]:.3e} (tol {config.tol:.1e})",
            ConvergenceWarning,
            stacklevel=2,
        )
    result = GMRESResult(
        x=x,
        converged=converged,
        n_iters=total_iters,
        residuals=residuals,
        breakdown=breakdown and not converged,
    )
    _publish(result)
    return result


def _publish(res: GMRESResult) -> None:
    """One solve's worth of GMRES telemetry into the metrics registry."""
    reg = registry()
    reg.counter("gmres.solves").inc()
    reg.counter("gmres.iterations").inc(res.n_iters)
    if res.breakdown:
        reg.counter("gmres.breakdowns").inc()
    if not res.converged:
        reg.counter("gmres.unconverged").inc()
    reg.histogram("gmres.iters_per_solve").observe(res.n_iters)
    if res.residuals:
        reg.histogram("gmres.final_residual").observe(res.final_residual)


def _back_substitute(H: np.ndarray, g: np.ndarray, k: int) -> np.ndarray:
    """Solve the k x k upper-triangular system from the Givens sweep.

    A zero diagonal (breakdown column) contributes nothing: the
    minimum-norm choice ``y[i] = 0`` — dividing by a tiny stand-in
    would blow the update up by ~1e308 instead.
    """
    y = np.zeros(k)
    for i in range(k - 1, -1, -1):
        rhs = g[i] - H[i, i + 1 : k] @ y[i + 1 : k]
        y[i] = rhs / H[i, i] if H[i, i] != 0.0 else 0.0
    return y


def gmres_batched(
    matvec: Callable[[np.ndarray], np.ndarray],
    B: np.ndarray,
    config: GMRESConfig | None = None,
    *,
    x0: np.ndarray | None = None,
) -> list[GMRESResult]:
    """Solve ``A X = B`` for a panel of right-hand sides in lockstep.

    Each column runs the same MGS(+CGS2)/Givens recursion as
    :func:`gmres` on its own Krylov space, but all columns advance
    together: every iteration issues **one** ``matvec`` on an ``(n, k)``
    block, so the operator sees BLAS-3 panels instead of ``k`` separate
    GEMVs, and the Gram-Schmidt inner products vectorize across columns.
    Columns that converge early simply ride along (the residual
    recursion is monotone), with their iteration counts and histories
    frozen at convergence.  Columns that *break down* mid-block (zero
    Hessenberg pivot — e.g. a singular operator direction) are frozen
    the same way instead of stalling the whole panel: they stop
    iterating, keep their minimum-norm least-squares solution, and are
    reported with ``breakdown=True``.

    Parameters
    ----------
    matvec:
        Operator accepting and returning ``(n, k)`` blocks (must act
        column-wise, i.e. represent one linear operator).
    B:
        Right-hand sides, shape ``(n, k)``.
    config:
        Shared tolerance / iteration budget / restart length.
    x0:
        Optional initial guess, shape ``(n, k)``.

    Returns
    -------
    list of :class:`GMRESResult`, one per column (same fields as the
    single-vector solver, so callers can switch paths transparently).
    """
    from repro.resilience.deadline import current_deadline

    config = config or GMRESConfig()
    dl = current_deadline()  # soft stop, as in gmres()
    B = np.asarray(B, dtype=np.float64)
    if B.ndim != 2:
        raise ValueError("gmres_batched expects a 2-D block of right-hand sides")
    n, k = B.shape
    bnorm = np.linalg.norm(B, axis=0)
    nonzero = bnorm > 0.0
    safe_bnorm = np.where(nonzero, bnorm, 1.0)

    restart = config.restart or config.max_iters
    X = np.zeros((n, k)) if x0 is None else np.array(x0, dtype=np.float64)

    residuals: list[list[float]] = [[] for _ in range(k)]
    n_iters = np.zeros(k, dtype=np.int64)
    converged = ~nonzero  # zero columns are solved by X = 0
    broken = np.zeros(k, dtype=bool)
    for c in np.flatnonzero(converged):
        residuals[c].append(0.0)

    total = 0
    stopped = False
    while total < config.max_iters and not (converged | broken).all() and not stopped:
        R = B - matvec(X) if (x0 is not None or total > 0) else B.copy()
        beta = np.linalg.norm(R, axis=0)
        rel = beta / safe_bnorm
        if total == 0:
            for c in np.flatnonzero(nonzero):
                residuals[c].append(float(rel[c]))
        converged |= nonzero & (rel < config.tol)
        broken &= ~converged
        if (converged | broken).all():
            break

        V = np.zeros((restart + 1, n, k))
        V[0] = R / np.where(beta > 0.0, beta, 1.0)
        H = np.zeros((restart + 1, restart, k))
        cs = np.zeros((restart, k))
        sn = np.zeros((restart, k))
        g = np.zeros((restart + 1, k))
        g[0] = beta
        active = ~converged & ~broken

        j = 0
        for j in range(restart):
            if total >= config.max_iters:
                break
            if dl is not None and dl.expired:
                stopped = True
                break
            W = matvec(V[j])
            # MGS against the basis, all columns at once.
            for i in range(j + 1):
                hi = np.einsum("nk,nk->k", V[i], W)
                H[i, j] = hi
                W -= hi * V[i]
            if config.reorthogonalize:
                for i in range(j + 1):
                    corr = np.einsum("nk,nk->k", V[i], W)
                    H[i, j] += corr
                    W -= corr * V[i]
            count_flops(
                4 * (j + 1) * n * k * (2 if config.reorthogonalize else 1),
                label="gmres_mgs",
            )
            hlast = np.linalg.norm(W, axis=0)
            H[j + 1, j] = hlast
            colnorm = np.sqrt(np.einsum("ik,ik->k", H[: j + 2, j], H[: j + 2, j]))
            # columns whose Krylov space closed (to roundoff) get a zero
            # direction and are protected in the triangular solve.
            hz = hlast <= colnorm * _BREAKDOWN_RTOL
            hlast = np.where(hz, 0.0, hlast)
            H[j + 1, j] = hlast
            V[j + 1] = np.where(hz, 0.0, W / np.where(hz, 1.0, hlast))

            # accumulated Givens rotations, per column.
            for i in range(j):
                t = cs[i] * H[i, j] + sn[i] * H[i + 1, j]
                H[i + 1, j] = -sn[i] * H[i, j] + cs[i] * H[i + 1, j]
                H[i, j] = t
            denom = np.hypot(H[j, j], H[j + 1, j])
            dz = denom <= colnorm * _BREAKDOWN_RTOL
            denom_safe = np.where(dz, 1.0, denom)
            cs[j] = np.where(dz, 1.0, H[j, j] / denom_safe)
            sn[j] = np.where(dz, 0.0, H[j + 1, j] / denom_safe)
            # breakdown columns zero the pivot so back-substitution takes
            # the minimum-norm branch instead of dividing by roundoff.
            H[j, j] = np.where(dz, 0.0, cs[j] * H[j, j] + sn[j] * H[j + 1, j])
            H[j + 1, j] = 0.0
            g[j + 1] = -sn[j] * g[j]
            g[j] = cs[j] * g[j]

            total += 1
            # dz columns hit a zero Hessenberg pivot: the degenerate
            # rotation zeroes g[j+1], so their true min-norm LS residual
            # keeps the g[j] term (cs=1 left it unchanged).
            rel = np.abs(g[j + 1]) / safe_bnorm
            rel = np.where(dz, np.abs(g[j]) / safe_bnorm, rel)
            for c in np.flatnonzero(active):
                residuals[c].append(float(rel[c]))
                n_iters[c] += 1
            newly = active & (rel < config.tol)
            converged |= newly
            active &= ~newly
            # hard breakdown: pivot lost *and* not at tolerance — freeze
            # the column like an early-converged one instead of letting
            # it spin the whole panel through every remaining restart.
            newly_broken = active & dz
            broken |= newly_broken
            active &= ~newly_broken
            if not active.any():
                j += 1
                break
        else:
            j = restart

        if j == 0:
            break
        Y = _back_substitute_batched(H, g, j)
        X = X + np.einsum("jnk,jk->nk", V[:j], Y)
        count_flops(2 * j * n * k, label="gmres_update")

    bad = np.flatnonzero(~converged)
    if bad.size:
        worst = max(residuals[c][-1] for c in bad)
        down = np.flatnonzero(broken)
        extra = (
            f", {down.size} of them by Hessenberg-pivot breakdown "
            f"{down.tolist()}" if down.size else ""
        )
        emit_warning(
            "gmres.batched_unconverged",
            f"batched GMRES stopped after {total} iterations with "
            f"{bad.size}/{k} unconverged columns {bad.tolist()}{extra} "
            f"(worst relative residual {worst:.3e}, tol {config.tol:.1e})",
            ConvergenceWarning,
            stacklevel=2,
        )
    results = [
        GMRESResult(
            x=X[:, c].copy(),
            converged=bool(converged[c]),
            n_iters=int(n_iters[c]),
            residuals=residuals[c],
            breakdown=bool(broken[c]),
        )
        for c in range(k)
    ]
    for res in results:
        _publish(res)
    return results


def _back_substitute_batched(H: np.ndarray, g: np.ndarray, j: int) -> np.ndarray:
    """Column-wise upper-triangular solve; ``H`` is (restart+1, restart, k).

    Zero diagonals (breakdown columns) take the minimum-norm ``Y = 0``.
    """
    k = H.shape[2]
    Y = np.zeros((j, k))
    for i in range(j - 1, -1, -1):
        rhs = g[i] - np.einsum("mk,mk->k", H[i, i + 1 : j], Y[i + 1 : j])
        dz = H[i, i] == 0.0
        Y[i] = np.where(dz, 0.0, rhs / np.where(dz, 1.0, H[i, i]))
    return Y
