"""Factorization and solve algorithms (paper sections II-B and II-C).

* :func:`factorize` — build a :class:`HierarchicalFactorization` of
  ``lambda I + K~`` with one of the paper's methods:

  - ``"nlogn"`` / ``"direct"``: Algorithm II.2 with the telescoping
    identity (eq. 10) — O(N log N) work (the paper's contribution);
  - ``"nlog2n"``: the INV-ASKIT [36] baseline that re-solves on every
    subtree — O(N log^2 N) work, *identical factors* up to roundoff;
  - ``"hybrid"``: partial factorization up to the skeletonization
    frontier + matrix-free GMRES on the reduced system (Algorithm II.6).

* :mod:`repro.solvers.gmres` — the Krylov solver (MGS + optional CGS2).
"""

from repro.solvers.factorization import HierarchicalFactorization, factorize
from repro.solvers.gmres import GMRESResult, gmres, gmres_batched
from repro.solvers.cg import CGResult, conjugate_gradient
from repro.solvers.estimators import effective_dof, estimate_diagonal, hutchinson_trace
from repro.solvers.preconditioned import PreconditionedSolveResult, solve_exact
from repro.solvers.recovery import (
    IterativeFallback,
    RecoveryEvent,
    SolverHealth,
    descend_frontier,
    robust_factorize,
    robust_solve,
)
from repro.solvers.stability import StabilityReport, estimate_rcond, is_breakdown

__all__ = [
    "HierarchicalFactorization",
    "factorize",
    "GMRESResult",
    "gmres",
    "gmres_batched",
    "CGResult",
    "conjugate_gradient",
    "hutchinson_trace",
    "estimate_diagonal",
    "effective_dof",
    "PreconditionedSolveResult",
    "solve_exact",
    "StabilityReport",
    "estimate_rcond",
    "is_breakdown",
    "RecoveryEvent",
    "SolverHealth",
    "IterativeFallback",
    "descend_frontier",
    "robust_factorize",
    "robust_solve",
]
