"""Dataset registry: names, loaders, and the paper's Table II parameters."""

from __future__ import annotations

import numpy as np

from repro.datasets.standins import _SPECS, Dataset, make_standin

__all__ = ["DATASET_NAMES", "load_dataset", "paper_parameters"]

#: All dataset names from Table II.
DATASET_NAMES: tuple[str, ...] = tuple(sorted(_SPECS))


def load_dataset(
    name: str,
    n_train: int = 4096,
    *,
    n_test: int | None = None,
    seed: int | np.random.Generator | None = 0,
) -> Dataset:
    """Load (generate) a stand-in dataset by Table II name."""
    return make_standin(name, n_train, n_test=n_test, seed=seed)


def paper_parameters(name: str) -> dict:
    """Table II row for ``name``: d, h, lambda, paper N, paper accuracy."""
    key = name.lower()
    if key not in _SPECS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(_SPECS)}")
    d, h, lam, paper_n, paper_acc, _kind, _opts = _SPECS[key]
    return {"d": d, "h": h, "lam": lam, "paper_n": paper_n, "paper_acc": paper_acc}
