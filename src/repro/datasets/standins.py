"""Stand-in datasets for the paper's real-world corpora (Table II).

Each stand-in matches the original's ambient dimension ``d``, has a
small intrinsic dimension (what makes hierarchical compression work in
high d), and — for the classification sets — a two-class cluster
structure whose achievable accuracy is in the ballpark the paper
reports.  DESIGN.md documents the substitution rationale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.synthetic import normal_embedded, two_class_mixture
from repro.util.random import as_generator

__all__ = ["Dataset", "make_standin"]


@dataclass
class Dataset:
    """A loaded dataset with its paper metadata.

    ``X_test``/``y_test`` are disjoint from the training data (the
    paper samples 10K test points; we sample ~10%).  ``h``/``lam`` are
    the paper's cross-validated Gaussian-kernel parameters for the
    original dataset, kept as sensible defaults for the stand-in.
    """

    name: str
    X_train: np.ndarray
    y_train: np.ndarray | None
    X_test: np.ndarray | None
    y_test: np.ndarray | None
    d: int
    h: float
    lam: float
    paper_n: str
    paper_acc: str

    @property
    def n(self) -> int:
        return self.X_train.shape[0]


# name -> (d, paper h, paper lambda, paper N, paper Acc, generator kind,
#          generator options)
_SPECS: dict[str, tuple] = {
    # COVTYPE: 54 cartographic variables, 7 forest cover types -> binary.
    "covtype": (54, 0.07, 0.3, "0.1-0.5M", "96%", "classify",
                dict(n_clusters=14, spread=0.25, separation=2.5, label_noise=0.02)),
    # SUSY: 8 kinematic features, signal vs background, overlapping.
    "susy": (8, 0.07, 10.0, "4.5M", "78%", "classify",
             dict(n_clusters=6, spread=0.9, separation=1.2, label_noise=0.12)),
    # HIGGS: 28 features, hard overlap (73% in the paper).
    "higgs": (28, 0.90, 0.01, "10.5M", "73%", "classify",
              dict(n_clusters=6, spread=1.0, separation=1.0, label_noise=0.16)),
    # MNIST2M: 784 pixels, digit one-vs-all (easy, 100% in the paper).
    "mnist2m": (784, 0.30, 0.0, "1.6M", "100%", "classify",
                dict(n_clusters=20, spread=0.15, separation=3.5, label_noise=0.0)),
    # MNIST8M: augmented MNIST (no regression task in the paper).
    "mnist8m": (784, 1.0, 1.0, "8.1M", "-", "points",
                dict(n_clusters=20, spread=0.2, separation=3.0)),
    # MRI: 128-D patches of brain MRI, smooth manifold, no labels.
    "mri": (128, 3.5, 10.0, "3.2M", "-", "points",
            dict(n_clusters=4, spread=0.6, separation=1.5)),
    # NORMAL: the paper's own synthetic set (exact construction).
    "normal": (64, 0.19, 1.0, "1-32M", "-", "normal",
               dict(intrinsic_dim=6, noise=0.1)),
}


def make_standin(
    name: str,
    n_train: int,
    *,
    n_test: int | None = None,
    seed: int | np.random.Generator | None = 0,
) -> Dataset:
    """Generate the stand-in for a paper dataset.

    Parameters
    ----------
    name:
        One of ``covtype, susy, higgs, mnist2m, mnist8m, mri, normal``
        (case-insensitive).
    n_train:
        Training points to generate.
    n_test:
        Test points (default: ~10% of training, min 50); only produced
        for classification datasets.
    seed:
        RNG seed.
    """
    key = name.lower()
    if key not in _SPECS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(_SPECS)}")
    d, h, lam, paper_n, paper_acc, kind, opts = _SPECS[key]
    rng = as_generator(seed)
    if n_test is None:
        n_test = max(50, n_train // 10)

    if kind == "normal":
        X = normal_embedded(n_train + n_test, ambient_dim=d, seed=rng, **opts)
        return Dataset(
            name=key, X_train=X[:n_train], y_train=None,
            X_test=None, y_test=None,
            d=d, h=h, lam=lam, paper_n=paper_n, paper_acc=paper_acc,
        )
    if kind == "points":
        from repro.datasets.synthetic import gaussian_mixture

        X, _ = gaussian_mixture(n_train, d, seed=rng, **opts)
        return Dataset(
            name=key, X_train=X, y_train=None, X_test=None, y_test=None,
            d=d, h=h, lam=lam, paper_n=paper_n, paper_acc=paper_acc,
        )

    X, y = two_class_mixture(n_train + n_test, d, seed=rng, **opts)
    return Dataset(
        name=key,
        X_train=X[:n_train],
        y_train=y[:n_train],
        X_test=X[n_train:],
        y_test=y[n_train:],
        d=d,
        h=h,
        lam=lam,
        paper_n=paper_n,
        paper_acc=paper_acc,
    )
