"""Dataset generators (paper Table II).

The paper evaluates on COVTYPE, SUSY, HIGGS, MNIST, MRI (0.1M-10.5M
points) plus a synthetic NORMAL set.  Those real datasets are not
available offline, so :mod:`repro.datasets.standins` provides synthetic
stand-ins with the *matched structure that drives the solver's
behaviour*: ambient dimensionality d, a much smaller intrinsic
dimension, cluster/class geometry for the classification tasks, and
zero-mean unit-variance normalization.  NORMAL is generated exactly as
the paper describes (6-D Gaussian embedded in 64-D with noise).
N is scaled to laptop sizes; EXPERIMENTS.md records the mapping.
"""

from repro.datasets.synthetic import (
    normal_embedded,
    gaussian_mixture,
    two_class_mixture,
    normalize_features,
)
from repro.datasets.standins import Dataset, make_standin
from repro.datasets.registry import DATASET_NAMES, load_dataset, paper_parameters

__all__ = [
    "normal_embedded",
    "gaussian_mixture",
    "two_class_mixture",
    "normalize_features",
    "Dataset",
    "make_standin",
    "DATASET_NAMES",
    "load_dataset",
    "paper_parameters",
]
