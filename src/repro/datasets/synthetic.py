"""Synthetic point-cloud generators.

:func:`normal_embedded` reproduces the paper's NORMAL dataset ("drawn
from a 6D Normal distribution and embedded in 64D with additional
noise ... high ambient but relatively small intrinsic dimension").
The mixture generators build the class structure of the stand-in
datasets.
"""

from __future__ import annotations

import numpy as np

from repro.util.random import as_generator
from repro.util.validation import check_positive

__all__ = [
    "normal_embedded",
    "gaussian_mixture",
    "two_class_mixture",
    "normalize_features",
]


def normalize_features(X: np.ndarray) -> np.ndarray:
    """Zero-mean, unit-variance per coordinate (paper Table II note).

    Coordinates with zero variance are left centered (not divided).
    """
    X = np.asarray(X, dtype=np.float64)
    mu = X.mean(axis=0)
    sd = X.std(axis=0)
    sd = np.where(sd > 0, sd, 1.0)
    return (X - mu) / sd


def normal_embedded(
    n: int,
    *,
    ambient_dim: int = 64,
    intrinsic_dim: int = 6,
    noise: float = 0.1,
    seed: int | np.random.Generator | None = 0,
) -> np.ndarray:
    """The paper's NORMAL dataset at size ``n``.

    A standard ``intrinsic_dim``-dimensional Gaussian is embedded into
    ``ambient_dim`` dimensions by a random orthonormal map, then
    isotropic Gaussian noise of scale ``noise`` is added; features are
    normalized to zero mean and unit variance.
    """
    check_positive(n, "n")
    if intrinsic_dim > ambient_dim:
        raise ValueError("intrinsic_dim must be <= ambient_dim")
    rng = as_generator(seed)
    Z = rng.standard_normal((n, intrinsic_dim))
    basis = np.linalg.qr(rng.standard_normal((ambient_dim, intrinsic_dim)))[0]
    X = Z @ basis.T
    if noise > 0:
        X = X + noise * rng.standard_normal((n, ambient_dim))
    return normalize_features(X)


def gaussian_mixture(
    n: int,
    d: int,
    *,
    n_clusters: int = 8,
    intrinsic_dim: int | None = None,
    spread: float = 0.3,
    separation: float = 2.0,
    seed: int | np.random.Generator | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Mixture of Gaussians with low-dimensional cluster structure.

    Returns ``(X, cluster_id)``.  Cluster centers are drawn at distance
    ``separation`` scale; each cluster lives near an
    ``intrinsic_dim``-dimensional random subspace (default d // 4,
    capped at 10) — the geometry ASKIT exploits.
    """
    check_positive(n, "n")
    check_positive(d, "d")
    rng = as_generator(seed)
    if intrinsic_dim is None:
        intrinsic_dim = max(1, min(10, d // 4))
    intrinsic_dim = min(intrinsic_dim, d)
    centers = separation * rng.standard_normal((n_clusters, d))
    labels = rng.integers(0, n_clusters, size=n)
    X = np.empty((n, d))
    for c in range(n_clusters):
        mask = labels == c
        k = int(mask.sum())
        if k == 0:
            continue
        basis = np.linalg.qr(rng.standard_normal((d, intrinsic_dim)))[0]
        Z = rng.standard_normal((k, intrinsic_dim))
        X[mask] = centers[c] + spread * (Z @ basis.T)
        X[mask] += 0.05 * spread * rng.standard_normal((k, d))
    return normalize_features(X), labels


def two_class_mixture(
    n: int,
    d: int,
    *,
    n_clusters: int = 8,
    spread: float = 0.3,
    separation: float = 2.0,
    label_noise: float = 0.02,
    seed: int | np.random.Generator | None = 0,
) -> tuple[np.ndarray, np.ndarray]:
    """Binary classification data: mixture clusters assigned to +-1.

    Alternating clusters get alternating labels, then ``label_noise``
    of the labels are flipped — produces the high-but-not-perfect
    accuracies of Table II.
    """
    rng = as_generator(seed)
    X, cluster = gaussian_mixture(
        n,
        d,
        n_clusters=n_clusters,
        spread=spread,
        separation=separation,
        seed=rng,
    )
    y = np.where(cluster % 2 == 0, 1.0, -1.0)
    flip = rng.random(n) < label_noise
    y[flip] *= -1.0
    return X, y
