"""The serialized LAPACK wrapper (OpenBLAS thread-safety workaround)."""

import threading

import numpy as np
import pytest
import scipy.linalg

from repro.util import lapack

RNG = np.random.default_rng(39)


class TestEquivalence:
    def test_lu_roundtrip(self):
        A = RNG.standard_normal((30, 30)) + 10 * np.eye(30)
        b = RNG.standard_normal(30)
        x = lapack.lu_solve(lapack.lu_factor(A), b)
        assert np.allclose(A @ x, b, atol=1e-10)

    def test_qr_matches_scipy(self):
        G = RNG.standard_normal((20, 12))
        q1, r1, p1 = lapack.qr(G, pivoting=True)
        q2, r2, p2 = scipy.linalg.qr(G, mode="economic", pivoting=True)
        assert np.array_equal(p1, p2)
        assert np.allclose(np.abs(np.diag(r1)), np.abs(np.diag(r2)))

    def test_solve_triangular(self):
        R = np.triu(RNG.standard_normal((10, 10))) + 5 * np.eye(10)
        B = RNG.standard_normal((10, 3))
        X = lapack.solve_triangular(R, B)
        assert np.allclose(R @ X, B, atol=1e-10)

    def test_gecon(self):
        A = np.diag(np.geomspace(1.0, 1e-6, 20))
        lu, _ = lapack.lu_factor(A)
        rcond, info = lapack.gecon(lu, np.linalg.norm(A, 1))
        assert info == 0
        assert rcond == pytest.approx(1e-6, rel=1.0)


class TestThreadSafety:
    def test_concurrent_lu_solves_deterministic(self):
        """The regression case: concurrent getrs through the wrapper must
        never corrupt results (raw scipy calls do on this OpenBLAS)."""
        A = RNG.standard_normal((64, 64)) + 10 * np.eye(64)
        lu = lapack.lu_factor(A)
        us = [RNG.standard_normal(64) for _ in range(8)]
        expected = [lapack.lu_solve(lu, u) for u in us]
        bad = []

        def work(i):
            for _ in range(50):
                if not np.array_equal(lapack.lu_solve(lu, us[i]), expected[i]):
                    bad.append(i)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not bad
