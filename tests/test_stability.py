"""Stability monitoring (paper section III): rcond estimates, detection."""

import warnings

import numpy as np
import pytest
import scipy.linalg

from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.exceptions import StabilityWarning
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.solvers import factorize
from repro.solvers.stability import StabilityReport, estimate_rcond

RNG = np.random.default_rng(9)


class TestRcondEstimate:
    def test_tracks_true_condition(self):
        n = 30
        Q, _ = np.linalg.qr(RNG.standard_normal((n, n)))
        for cond in (1e2, 1e6, 1e10):
            s = np.geomspace(1.0, 1.0 / cond, n)
            A = (Q * s) @ Q.T
            lu = scipy.linalg.lu_factor(A)
            r = estimate_rcond(lu[0], np.linalg.norm(A, 1))
            # gecon 1-norm estimate: right order of magnitude.
            assert 1.0 / (100 * cond) < r < 100.0 / cond

    def test_identity_rcond_one(self):
        A = np.eye(10)
        lu = scipy.linalg.lu_factor(A)
        assert estimate_rcond(lu[0], 1.0) == pytest.approx(1.0)

    def test_empty_matrix(self):
        assert estimate_rcond(np.zeros((0, 0)), 0.0) == 1.0


class TestReport:
    def test_records_min(self):
        rep = StabilityReport(threshold=1e6)
        rep.record("leaf", 4, 0.5)
        rep.record("leaf", 5, 1e-3)
        assert rep.min_rcond == 1e-3
        assert rep.is_stable

    def test_flags_past_threshold(self):
        rep = StabilityReport(threshold=1e6)
        rep.record("reduced", 7, 1e-9)
        assert not rep.is_stable
        assert rep.flagged == [("reduced", 7, 1e-9)]
        with pytest.warns(StabilityWarning):
            rep.warn_if_unstable()

    def test_disabled_report_records_nothing(self):
        rep = StabilityReport(threshold=1e6, enabled=False)
        rep.record("leaf", 1, 1e-12)
        assert rep.is_stable

    def test_no_warning_when_stable(self):
        rep = StabilityReport()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            rep.warn_if_unstable()  # must not raise


class TestDetectionEndToEnd:
    """The paper's #30 regime: narrow h + tiny lambda => unstable D."""

    def _build(self, bandwidth):
        X = np.concatenate(
            [RNG.standard_normal((100, 3)) * 0.01,  # near-duplicate cluster
             RNG.standard_normal((156, 3))]
        )
        return build_hmatrix(
            X,
            GaussianKernel(bandwidth=bandwidth),
            tree_config=TreeConfig(leaf_size=32, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-7, max_rank=64, num_samples=128, num_neighbors=8, seed=2
            ),
        )

    def test_warns_on_illconditioned_leaf(self):
        h = self._build(bandwidth=50.0)  # huge h: leaf blocks ~ rank one
        with pytest.warns(StabilityWarning):
            fact = factorize(h, 1e-14, SolverConfig(cond_threshold=1e10))
        assert not fact.stability.is_stable
        assert fact.stability.min_rcond < 1e-10

    def test_no_warning_with_good_lambda(self):
        h = self._build(bandwidth=50.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error", StabilityWarning)
            fact = factorize(h, 1.0, SolverConfig(cond_threshold=1e10))
        assert fact.stability.is_stable

    def test_check_disabled_skips_gecon(self):
        h = self._build(bandwidth=50.0)
        with warnings.catch_warnings():
            warnings.simplefilter("error", StabilityWarning)
            fact = factorize(h, 1e-14, SolverConfig(check_stability=False))
        assert fact.stability.min_rcond == 1.0  # never measured
