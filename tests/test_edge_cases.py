"""Cross-cutting edge cases: odd geometries, kernels, small problems."""

import warnings

import numpy as np
import pytest

from repro import FastKernelSolver
from repro.config import GMRESConfig, SkeletonConfig, SolverConfig, TreeConfig
from repro.hmatrix import build_hmatrix
from repro.hmatrix.dense import assemble_dense_block
from repro.kernels import GaussianKernel, MaternKernel, PolynomialKernel
from repro.learning import GaussianProcessRegressor
from repro.parallel import execute_factorization
from repro.solvers import factorize

RNG = np.random.default_rng(36)


class TestDegenerateGeometry:
    def test_duplicate_points_with_regularization(self):
        """Exact duplicates make K singular; lambda > 0 must still solve."""
        base = RNG.standard_normal((100, 3))
        X = np.vstack([base, base[:50]])  # 50 exact duplicates
        solver = FastKernelSolver(
            GaussianKernel(bandwidth=1.0),
            tree_config=TreeConfig(leaf_size=20, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-6, max_rank=32, num_samples=64, num_neighbors=0, seed=2
            ),
        )
        solver.fit(X)
        solver.factorize(1.0)
        u = RNG.standard_normal(150)
        w, info = solver.solve_with_info(u)
        assert info.residual < 1e-9

    def test_points_on_a_line(self):
        """1-D manifold in 5-D: extreme intrinsic-dimension mismatch."""
        t = np.linspace(0, 10, 300)[:, None]
        direction = RNG.standard_normal((1, 5))
        X = t @ direction + 0.01 * RNG.standard_normal((300, 5))
        solver = FastKernelSolver(
            GaussianKernel(bandwidth=2.0),
            tree_config=TreeConfig(leaf_size=30, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-7, max_rank=48, num_samples=128, num_neighbors=0, seed=2
            ),
        )
        solver.fit(X)
        # low intrinsic dimension -> tiny skeleton ranks.
        assert solver.diagnostics()["mean_rank"] < 24
        solver.factorize(0.5)
        u = RNG.standard_normal(300)
        assert solver.residual(u, solver.solve(u)) < 1e-9

    def test_tiny_problem(self):
        X = RNG.standard_normal((5, 2))
        solver = FastKernelSolver(GaussianKernel(bandwidth=1.0))
        solver.fit(X)
        solver.factorize(0.1)
        u = RNG.standard_normal(5)
        assert solver.residual(u, solver.solve(u)) < 1e-12

    def test_leaf_size_larger_than_n(self):
        X = RNG.standard_normal((30, 3))
        solver = FastKernelSolver(
            GaussianKernel(bandwidth=1.0), tree_config=TreeConfig(leaf_size=1000)
        )
        solver.fit(X)
        assert solver.hmatrix.tree.depth == 0
        solver.factorize(0.2)
        u = RNG.standard_normal(30)
        assert solver.residual(u, solver.solve(u)) < 1e-12


class TestKernelVariety:
    @pytest.mark.parametrize(
        "kernel",
        [MaternKernel(bandwidth=1.5, nu=1.5), PolynomialKernel(degree=2, gamma=0.1)],
        ids=["matern32", "poly2"],
    )
    def test_end_to_end_other_kernels(self, kernel):
        X = RNG.standard_normal((400, 4))
        solver = FastKernelSolver(
            kernel,
            tree_config=TreeConfig(leaf_size=40, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-8, max_rank=64, num_samples=160, num_neighbors=8, seed=2
            ),
        )
        solver.fit(X)
        solver.factorize(2.0)
        u = RNG.standard_normal(400)
        assert solver.residual(u, solver.solve(u)) < 1e-9

    def test_gp_with_matern(self):
        X = RNG.uniform(-1, 1, size=(300, 2))
        y = np.sin(3 * X[:, 0]) + 0.05 * RNG.standard_normal(300)
        gp = GaussianProcessRegressor(
            MaternKernel(bandwidth=0.5, nu=2.5), noise=0.05,
            tree_config=TreeConfig(leaf_size=40, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-8, max_rank=64, num_samples=160, num_neighbors=8, seed=2
            ),
        ).fit(X, y)
        res = gp.predict(X[:20], return_variance=True)
        assert np.sqrt(np.mean((res.mean - y[:20]) ** 2)) < 0.2
        assert (res.variance >= 0).all()


class TestAdaptiveFrontierIntegration:
    @pytest.fixture(scope="class")
    def adaptive_hmatrix(self):
        X = RNG.standard_normal((512, 8))
        return build_hmatrix(
            X,
            GaussianKernel(bandwidth=0.5),
            tree_config=TreeConfig(leaf_size=32, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-12, max_rank=4096, num_samples=256, num_neighbors=0,
                seed=2, adaptive_stop=True,
            ),
        )

    def test_mixed_level_frontier_direct(self, adaptive_hmatrix):
        h = adaptive_hmatrix
        levels = {f.level for f in h.frontier}
        # the point of adaptive stop: the frontier need not be one level.
        fact = factorize(h, 0.5, SolverConfig(check_stability=False))
        u = RNG.standard_normal(h.n_points)
        assert fact.residual(u, fact.solve(u)) < 1e-9

    def test_mixed_level_frontier_hybrid(self, adaptive_hmatrix):
        h = adaptive_hmatrix
        cfg = SolverConfig(
            method="hybrid", check_stability=False,
            gmres=GMRESConfig(tol=1e-10, max_iters=400),
        )
        fact = factorize(h, 0.5, cfg)
        u = RNG.standard_normal(h.n_points)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            w = fact.solve(u)
        assert fact.residual(u, w) < 1e-7

    def test_taskparallel_on_restricted_frontier(self):
        X = RNG.standard_normal((512, 4))
        h = build_hmatrix(
            X,
            GaussianKernel(bandwidth=2.0),
            tree_config=TreeConfig(leaf_size=32, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-7, max_rank=32, num_samples=128, num_neighbors=0, seed=2,
                level_restriction=2,
            ),
        )
        serial = factorize(h, 0.5)
        parallel = execute_factorization(h, 0.5, n_workers=4)
        u = RNG.standard_normal(512)
        assert np.allclose(parallel.solve(u), serial.solve(u), atol=1e-10)


class TestDenseAssembly:
    def test_block_matches_full_assembly(self, hmatrix_small):
        h = hmatrix_small
        D = h.to_dense()
        for f in h.frontier:
            block = assemble_dense_block(h, f)
            assert np.allclose(block, D[f.lo : f.hi, f.lo : f.hi], atol=1e-12)


class TestDegenerateRightHandSides:
    """Input validation must reject malformed RHS before any numerics."""

    @pytest.fixture(scope="class")
    def factored(self):
        X = RNG.standard_normal((64, 3))
        solver = FastKernelSolver(
            GaussianKernel(bandwidth=1.0), tree_config=TreeConfig(leaf_size=32)
        )
        solver.fit(X)
        solver.factorize(0.5)
        return solver

    def test_rejects_empty_rhs(self, factored):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="non-empty"):
            factored.solve(np.zeros((0,)))

    def test_rejects_zero_column_rhs(self, factored):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError, match="at least one column"):
            factored.solve(np.zeros((64, 0)))

    def test_rejects_nan_rhs(self, factored):
        from repro.exceptions import ConfigurationError

        u = np.ones(64)
        u[13] = np.nan
        with pytest.raises(ConfigurationError, match="non-finite"):
            factored.solve(u)

    def test_rejects_inf_rhs(self, factored):
        from repro.exceptions import ConfigurationError

        u = np.ones((64, 2))
        u[5, 1] = np.inf
        with pytest.raises(ConfigurationError, match="non-finite"):
            factored.solve(u)

    def test_rejects_wrong_length_rhs(self, factored):
        from repro.exceptions import ReproError

        with pytest.raises(ReproError):
            factored.solve(np.ones(63))

    def test_multirhs_still_accepted(self, factored):
        W = factored.solve(np.ones((64, 3)))
        assert W.shape == (64, 3) and np.all(np.isfinite(W))
