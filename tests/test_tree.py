"""Ball tree: topology, permutation, splits, traversals."""

import numpy as np
import pytest

from repro.config import TreeConfig
from repro.exceptions import ConfigurationError
from repro.tree import BallTree
from repro.tree.partition import median_split, split_direction

RNG = np.random.default_rng(2)


class TestTopology:
    def test_perfect_binary(self, tree_small):
        d = tree_small.depth
        assert tree_small.n_nodes == 2 ** (d + 1) - 1
        for level in range(d + 1):
            nodes = tree_small.level_nodes(level)
            assert len(nodes) == 2**level
            assert sum(n.size for n in nodes) == tree_small.n_points

    def test_leaf_sizes_bounded(self, tree_small):
        m = tree_small.config.leaf_size
        for leaf in tree_small.leaves():
            assert 1 <= leaf.size <= m

    def test_sibling_sizes_differ_by_at_most_one(self, tree_small):
        for node in tree_small.postorder():
            if node.is_root:
                continue
            sib = tree_small.node(node.sibling_id)
            assert abs(node.size - sib.size) <= 1

    def test_children_partition_parent(self, tree_small):
        for level in range(tree_small.depth):
            for node in tree_small.level_nodes(level):
                left, right = tree_small.children(node)
                assert left.lo == node.lo
                assert left.hi == right.lo
                assert right.hi == node.hi

    def test_depth_formula(self, points_small):
        tree = BallTree(points_small, TreeConfig(leaf_size=25, seed=0))
        n, m = len(points_small), 25
        assert tree.depth == int(np.ceil(np.log2(n / m)))

    def test_single_leaf_tree(self):
        X = RNG.standard_normal((10, 3))
        tree = BallTree(X, TreeConfig(leaf_size=16))
        assert tree.depth == 0
        assert tree.n_nodes == 1
        assert tree.root.size == 10
        assert tree.is_leaf(tree.root)

    def test_n_equals_leaf_size(self):
        X = RNG.standard_normal((16, 2))
        tree = BallTree(X, TreeConfig(leaf_size=16))
        assert tree.depth == 0


class TestPermutation:
    def test_perm_is_bijection(self, tree_small):
        assert sorted(tree_small.perm.tolist()) == list(range(tree_small.n_points))

    def test_iperm_inverts(self, tree_small):
        n = tree_small.n_points
        assert np.array_equal(tree_small.perm[tree_small.iperm], np.arange(n))

    def test_points_are_permuted_copy(self, points_small, tree_small):
        assert np.array_equal(tree_small.points, points_small[tree_small.perm])

    def test_input_not_modified(self, points_small):
        before = points_small.copy()
        BallTree(points_small, TreeConfig(leaf_size=30, seed=1))
        assert np.array_equal(points_small, before)

    def test_node_points_view(self, tree_small):
        leaf = tree_small.leaves()[0]
        assert np.shares_memory(tree_small.node_points(leaf), tree_small.points)


class TestTraversal:
    def test_postorder_children_before_parents(self, tree_small):
        seen = set()
        for node in tree_small.postorder():
            if not tree_small.is_leaf(node):
                assert node.left_id in seen and node.right_id in seen
            seen.add(node.id)
        assert 1 in seen

    def test_ancestors(self, tree_small):
        leaf = tree_small.leaves()[-1]
        anc = list(tree_small.ancestors(leaf))
        assert [a.level for a in anc] == list(range(tree_small.depth - 1, -1, -1))
        assert anc[-1].is_root
        for a in anc:
            assert a.lo <= leaf.lo and leaf.hi <= a.hi

    def test_subtree_at(self, tree_small):
        root = tree_small.root
        leaves = tree_small.subtree_at(root, tree_small.depth)
        assert [n.id for n in leaves] == [n.id for n in tree_small.leaves()]
        with pytest.raises(ValueError):
            tree_small.subtree_at(tree_small.leaves()[0], 0)

    def test_node_properties(self, tree_small):
        node = tree_small.node(2)
        assert node.parent_id == 1
        assert node.sibling_id == 3
        assert node.left_id == 4 and node.right_id == 5
        assert tree_small.root.sibling_id == 0
        assert list(node.indices()) == list(range(node.lo, node.hi))


class TestSplits:
    def test_split_direction_unit_norm(self):
        X = RNG.standard_normal((50, 7))
        d = split_direction(X, RNG)
        assert np.isclose(np.linalg.norm(d), 1.0)

    def test_degenerate_points_still_split(self):
        X = np.ones((20, 3))
        left, right = median_split(X, np.arange(20), np.random.default_rng(0))
        assert len(left) == 10 and len(right) == 10
        assert sorted(np.concatenate([left, right]).tolist()) == list(range(20))

    def test_odd_split(self):
        X = RNG.standard_normal((21, 2))
        left, right = median_split(X, np.arange(21), RNG)
        assert {len(left), len(right)} == {10, 11}

    def test_split_separates_on_projection(self):
        # two well-separated blobs must be split apart.
        X = np.concatenate([RNG.standard_normal((25, 2)), 100 + RNG.standard_normal((25, 2))])
        left, right = median_split(X, np.arange(50), np.random.default_rng(0))
        groups = {tuple(sorted(left)), tuple(sorted(right))}
        assert groups == {tuple(range(25)), tuple(range(25, 50))}

    def test_cannot_split_single_point(self):
        with pytest.raises(ValueError):
            median_split(np.zeros((1, 2)), np.arange(1), RNG)

    def test_deterministic_given_seed(self, points_small):
        t1 = BallTree(points_small, TreeConfig(leaf_size=30, seed=9))
        t2 = BallTree(points_small, TreeConfig(leaf_size=30, seed=9))
        assert np.array_equal(t1.perm, t2.perm)


class TestErrors:
    def test_rejects_bad_input(self):
        with pytest.raises(ConfigurationError):
            BallTree(np.zeros(5))
