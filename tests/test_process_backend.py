"""Process-backed vMPI: backend parity, spawn safety, env-knob bugfixes.

The tentpole invariant: ``run_spmd(..., backend="process")`` — real
``multiprocessing`` workers over shared-memory transport — produces
*bitwise-identical* results to the thread backend, including under
chaos (the seeded FaultPlan hash is pure, so both backends see the same
fault schedule) and across a rank crash + respawn.

All SPMD functions here are module-level: the process backend pickles
the program for spawn, so closures are rejected (covered below too).
"""

import os
import pickle

import numpy as np
import pytest

from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.exceptions import ConfigurationError
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.parallel.dist_solver import distributed_factorize, distributed_solve
from repro.parallel.vmpi import (
    BACKENDS,
    CommStats,
    FaultPlan,
    resolve_backend,
    run_spmd,
)
from repro.parallel.vmpi import shm

RNG = np.random.default_rng(42)


# ----------------------------------------------------------------------
# module-level SPMD programs (spawn-picklable)
# ----------------------------------------------------------------------

def ring_prog(comm, base):
    """Point-to-point ring + collective; payloads above the shm threshold."""
    x = np.full(3000, float(comm.rank) + base)  # 24 kB > DEFAULT_THRESHOLD
    comm.send(x, (comm.rank + 1) % comm.size, tag=1)
    y = comm.recv((comm.rank - 1) % comm.size, tag=1)
    return comm.allreduce(float(y.sum()))


def cache_publish_prog(comm):
    """Publish to the default BlockCache inside a worker process."""
    from repro.perf import default_cache

    cache = default_cache()
    key = ("test", "spawn", comm.rank)
    cache.put(key, np.ones((64, 64)))
    hit = cache.fetch(key)
    stats = cache.stats()
    return {
        "got_back": hit is not None,
        "hits": stats.hits,
        "lookups": stats.lookups,
    }


def metrics_prog(comm):
    """Increment a counter in the child; shipped back and merged."""
    from repro.obs.metrics import registry

    registry().counter("test.child_work").inc(comm.rank + 1)
    return comm.rank


@pytest.fixture(scope="module")
def problem():
    X = RNG.standard_normal((512, 3))
    h = build_hmatrix(
        X,
        GaussianKernel(bandwidth=1.5),
        tree_config=TreeConfig(leaf_size=32, seed=1),
        skeleton_config=SkeletonConfig(
            tau=1e-8, max_rank=48, num_samples=192, num_neighbors=8, seed=2
        ),
    )
    u = RNG.standard_normal(512)
    return h, u


# ----------------------------------------------------------------------
# tentpole: thread/process parity
# ----------------------------------------------------------------------

class TestBackendParity:
    def test_spmd_results_and_stats_match(self):
        rt, st = run_spmd(ring_prog, 2, 5.0, backend="thread")
        rp, sp = run_spmd(ring_prog, 2, 5.0, backend="process")
        assert rt == rp
        assert (st.messages, st.bytes) == (sp.messages, sp.bytes)

    def test_distributed_solve_bitwise_identical(self, problem):
        h, u = problem
        dt = distributed_factorize(h, 0.7, n_ranks=2)
        wt, _ = distributed_solve(dt, u)
        dp = distributed_factorize(h, 0.7, n_ranks=2, backend="process")
        wp, _ = distributed_solve(dp, u)
        assert dp.backend == "process"
        assert np.array_equal(wt, wp)

    def test_process_states_share_callers_hmatrix(self, problem):
        h, u = problem
        dp = distributed_factorize(h, 0.7, n_ranks=2, backend="process")
        assert all(s.local.hmatrix is h for s in dp.states)

    def test_factor_payloads_bitwise_identical(self, problem):
        h, _ = problem
        dt = distributed_factorize(h, 0.7, n_ranks=2)
        dp = distributed_factorize(h, 0.7, n_ranks=2, backend="process")
        for st, sp in zip(dt.states, dp.states):
            for nid, lf in st.local.leaf_factors.items():
                assert np.array_equal(lf.lu[0], sp.local.leaf_factors[nid].lu[0])
                assert np.array_equal(lf.phat, sp.local.leaf_factors[nid].phat)

    def test_parity_under_chaos(self, problem):
        h, u = problem
        plan = lambda: FaultPlan(  # noqa: E731 - two identical plans
            seed=9, drop_rate=0.05, corrupt_rate=0.025, delay_rate=0.0125
        )
        dt = distributed_factorize(h, 0.7, n_ranks=2, fault_plan=plan())
        wt, _ = distributed_solve(dt, u)
        dp = distributed_factorize(
            h, 0.7, n_ranks=2, fault_plan=plan(), backend="process"
        )
        wp, _ = distributed_solve(dp, u)
        assert np.array_equal(wt, wp)
        assert dp.factor_stats.drops == dt.factor_stats.drops
        assert dp.factor_stats.retries == dt.factor_stats.retries

    def test_rank_crash_respawn(self, problem):
        h, u = problem
        dt = distributed_factorize(h, 0.7, n_ranks=2)
        wt, _ = distributed_solve(dt, u)
        dp = distributed_factorize(
            h,
            0.7,
            n_ranks=2,
            fault_plan=FaultPlan(seed=5, crash_rank=1, crash_op=4),
            backend="process",
        )
        wp, _ = distributed_solve(dp, u)
        assert np.array_equal(wt, wp)
        assert dp.factor_stats.crashes == 1
        assert dp.factor_stats.respawns == 1
        assert dp.factor_stats.rank_recoveries[0]["rank"] == 1

    def test_env_backend_selects_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_VMPI_BACKEND", "process")
        res, _ = run_spmd(ring_prog, 2, 1.0)
        rt, _ = run_spmd(ring_prog, 2, 1.0, backend="thread")
        assert res == rt


class TestTaskDagProcessBackend:
    def test_bitwise_identical_to_thread(self, problem):
        from repro.parallel.taskdag import execute_factorization

        h, u = problem
        ft = execute_factorization(h, 0.7, n_workers=2)
        fp = execute_factorization(h, 0.7, n_workers=2, backend="process")
        assert np.array_equal(ft.solve(u), fp.solve(u))
        assert fp.stability.min_rcond == ft.stability.min_rcond

    def test_recovery_rejected_on_process_backend(self, problem):
        from repro.config import RecoveryConfig
        from repro.parallel.taskdag import execute_factorization

        h, _ = problem
        cfg = SolverConfig(recovery=RecoveryConfig(enabled=True))
        with pytest.raises(ConfigurationError, match="recovery"):
            execute_factorization(h, 0.7, cfg, backend="process")


# ----------------------------------------------------------------------
# backend resolution and pickling rules
# ----------------------------------------------------------------------

class TestBackendResolution:
    def test_explicit_values(self):
        assert resolve_backend("thread") == "thread"
        assert resolve_backend("process") == "process"
        assert resolve_backend("socket") == "socket"
        assert set(BACKENDS) == {"thread", "process", "socket"}

    def test_explicit_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="backend"):
            resolve_backend("mpi")

    def test_env_default_and_override(self, monkeypatch):
        monkeypatch.delenv("REPRO_VMPI_BACKEND", raising=False)
        assert resolve_backend() == "thread"
        monkeypatch.setenv("REPRO_VMPI_BACKEND", "process")
        assert resolve_backend() == "process"

    def test_env_typo_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_VMPI_BACKEND", "proces")
        assert resolve_backend() == "thread"

    def test_config_backend_validation(self):
        assert SolverConfig(backend="process").backend == "process"
        with pytest.raises(ConfigurationError, match="backend"):
            SolverConfig(backend="mpi")

    def test_closures_rejected_with_guidance(self):
        captured = 3.0

        def closure_prog(comm):
            return captured

        with pytest.raises(ConfigurationError, match="module-level"):
            run_spmd(closure_prog, 2, backend="process")

    def test_run_spmd_error_message_parity(self):
        with pytest.raises(RuntimeError, match="rank 0 failed"):
            run_spmd(failing_prog, 2, backend="process")


def failing_prog(comm):
    raise ValueError(f"boom from rank {comm.rank}")


# ----------------------------------------------------------------------
# satellite: spawn/fork safety of process-wide singletons
# ----------------------------------------------------------------------

class TestSpawnSafety:
    def test_blockcache_publish_after_spawn(self):
        results, _ = run_spmd(cache_publish_prog, 2, backend="process")
        for r in results:
            assert r["got_back"]
            # child stats start from zero: exactly this worker's traffic.
            assert r["lookups"] == 1 and r["hits"] == 1

    def test_blockcache_pickles_as_configuration(self):
        from repro.perf.blockcache import BlockCache

        cache = BlockCache(budget_words=1234)
        cache.put(("k", 1), np.ones((8, 8)))
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.budget_words == cache.budget_words
        assert clone.fetch(("k", 1)) is None  # entries do not cross
        assert clone.stats().lookups == 1  # fresh stats (the miss above)

    def test_metrics_merge_from_children(self):
        from repro.obs.metrics import registry

        before = registry().total("test.child_work")
        run_spmd(metrics_prog, 2, backend="process")
        # ranks 0 and 1 incremented by 1 and 2 respectively.
        assert registry().total("test.child_work") == before + 3.0

    def test_commstats_pickle_roundtrip(self):
        st = CommStats()
        st.record(0, 1, 100)
        st.record_fault("drops", rank=1)
        clone = pickle.loads(pickle.dumps(st))
        assert clone.messages == 1 and clone.bytes == 100
        assert clone.drops == 1
        clone.record(1, 0, 50)  # lock was recreated
        assert clone.messages == 2

    def test_faultplan_pickle_preserves_decisions(self):
        plan = FaultPlan(seed=13, drop_rate=0.3, corrupt_rate=0.1)
        clone = pickle.loads(pickle.dumps(plan))
        key = ("world", 0, 1, 7)
        assert [plan.decide(key, s, 0) for s in range(64)] == [
            clone.decide(key, s, 0) for s in range(64)
        ]

    def test_faultplan_disarm_crash(self):
        plan = FaultPlan(seed=1, crash_rank=0, crash_op=0)
        plan.disarm_crash()
        plan.on_op(0)  # would raise RankCrashError if still armed


# ----------------------------------------------------------------------
# shared-memory envelopes
# ----------------------------------------------------------------------

class TestShmEnvelopes:
    def test_roundtrip_large_and_small(self):
        obj = {
            "big": np.arange(10000, dtype=np.float64),
            "small": np.arange(4, dtype=np.float64),
            "meta": ("x", 3),
        }
        env = shm.pack(obj)
        kinds = [slot[0] for slot in env["slots"]]
        assert "shm" in kinds and "inline" in kinds
        out = shm.unpack(env, unlink=True)
        assert np.array_equal(out["big"], obj["big"])
        assert np.array_equal(out["small"], obj["small"])
        assert out["meta"] == obj["meta"]

    def test_free_is_idempotent(self):
        env = shm.pack(np.ones(5000))
        assert shm.segment_names(env)
        shm.free(env)
        shm.free(env)  # second free is a no-op

    def test_unpacked_object_survives_unlink(self):
        env = shm.pack(np.arange(8192, dtype=np.float64))
        out = shm.unpack(env, unlink=True)
        # no live dependency on the (now unlinked) segment: data is intact
        # and usable after the name is gone.
        assert out[0] == 0.0 and out[-1] == 8191.0
        assert (out + 1.0)[0] == 1.0

    def test_threshold_keeps_small_payloads_inline(self):
        env = shm.pack(np.ones(4))
        assert shm.segment_names(env) == []


# ----------------------------------------------------------------------
# satellite: dtype coercion at the validation boundary
# ----------------------------------------------------------------------

class TestFloat32Regression:
    def test_balltree_coerces_float32(self):
        from repro.tree import BallTree

        X32 = RNG.standard_normal((128, 3)).astype(np.float32)
        tree = BallTree(X32, TreeConfig(leaf_size=16, seed=0))
        assert tree.points.dtype == np.float64

    def test_float32_and_float64_same_fingerprint(self):
        from repro.resilience import config_fingerprint

        X = RNG.standard_normal((64, 3))
        k = GaussianKernel(bandwidth=1.0)
        assert config_fingerprint(X.astype(np.float32).astype(np.float64), k) == \
            config_fingerprint(X.astype(np.float32), k)

    def test_backend_excluded_from_fingerprint(self):
        from repro.resilience import config_fingerprint

        X = RNG.standard_normal((32, 2))
        k = GaussianKernel(bandwidth=1.0)
        fp_t = config_fingerprint(X, k, SolverConfig(backend="thread"))
        fp_p = config_fingerprint(X, k, SolverConfig(backend="process"))
        assert fp_t == fp_p

    def test_float32_pipeline_end_to_end(self):
        from repro import FastKernelSolver

        X32 = RNG.standard_normal((256, 3)).astype(np.float32)
        solver = FastKernelSolver(
            GaussianKernel(bandwidth=1.5),
            tree_config=TreeConfig(leaf_size=32, seed=0),
            skeleton_config=SkeletonConfig(rank=16, seed=0),
        )
        solver.fit(X32).factorize(1.0)
        w = solver.solve(np.ones(256))
        assert w.dtype == np.float64 and np.all(np.isfinite(w))


# ----------------------------------------------------------------------
# satellite: malformed environment knobs must not crash
# ----------------------------------------------------------------------

class TestMalformedEnvKnobs:
    def test_malformed_fault_rate_falls_back(self, monkeypatch):
        from repro.parallel.vmpi.faults import plan_from_env

        monkeypatch.setenv("REPRO_FAULT_RATE", "not-a-float")
        assert plan_from_env() is None  # default rate 0 -> no plan

    def test_malformed_fault_seed_falls_back(self, monkeypatch):
        from repro.parallel.vmpi.faults import plan_from_env

        monkeypatch.setenv("REPRO_FAULT_RATE", "0.05")
        monkeypatch.setenv("REPRO_FAULT_SEED", "3.5")
        plan = plan_from_env()  # falls back to the default seed
        assert plan is not None and plan.drop_rate == pytest.approx(0.05)

    def test_out_of_range_fault_rate_clamped(self, monkeypatch):
        from repro.parallel.vmpi.faults import _MAX_ENV_RATE, plan_from_env

        monkeypatch.setenv("REPRO_FAULT_RATE", "0.9")
        plan = plan_from_env()
        assert plan is not None
        assert plan.drop_rate == pytest.approx(_MAX_ENV_RATE)

    def test_malformed_trace_tiles_disables_sampling(self, monkeypatch):
        from repro.obs.trace import Tracer

        monkeypatch.setenv("REPRO_TRACE_TILES", "every-third")
        tracer = Tracer()  # must not raise
        with tracer.span("check"):
            pass

    def test_malformed_knobs_emit_warnings_not_crashes(self, monkeypatch):
        from repro.obs.metrics import registry
        from repro.parallel.vmpi.faults import plan_from_env

        before = registry().total("warnings.emitted")
        monkeypatch.setenv("REPRO_FAULT_RATE", "banana")
        plan_from_env()
        assert registry().total("warnings.emitted") >= before
