"""Concurrency safety: shared workspaces and caches under threads."""

import threading

import numpy as np
import pytest

from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.hmatrix import build_hmatrix
from repro.kernels import GaussianKernel
from repro.kernels.gsks import GSKSWorkspace, gsks_matvec
from repro.parallel import execute_factorization
from repro.solvers import factorize

RNG = np.random.default_rng(35)


class TestWorkspaceThreadSafety:
    def test_shared_workspace_concurrent_matvecs(self):
        """One workspace, many threads: results must match serial.

        Tiles are thread-local, so concurrent fused summations through a
        shared workspace are race-free.
        """
        kernel = GaussianKernel(bandwidth=1.5)
        ws = GSKSWorkspace(tile_m=32, tile_n=64)
        XA = RNG.standard_normal((150, 5))
        XB = RNG.standard_normal((200, 5))
        us = [RNG.standard_normal(200) for _ in range(8)]
        expected = [kernel(XA, XB) @ u for u in us]

        results = [None] * 8
        errors = []

        def work(i):
            try:
                for _ in range(5):  # repeat to widen the race window
                    results[i] = gsks_matvec(kernel, XA, XB, us[i], workspace=ws)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        for got, want in zip(results, expected):
            assert np.allclose(got, want, atol=1e-10)

    def test_taskparallel_fused_factorization(self):
        """Task-parallel factorization with the FUSED summation: the
        regression case for the shared-tile race."""
        X = RNG.standard_normal((512, 4))
        h = build_hmatrix(
            X,
            GaussianKernel(bandwidth=2.0),
            tree_config=TreeConfig(leaf_size=32, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-7, max_rank=32, num_samples=128, num_neighbors=0, seed=2
            ),
            summation="fused",
        )
        cfg = SolverConfig(summation="fused")
        serial = factorize(h, 0.5, cfg)
        u = RNG.standard_normal(512)
        w_ref = serial.solve(u)
        for _ in range(3):  # repeated runs to catch flaky interleavings
            par = execute_factorization(h, 0.5, cfg, n_workers=8)
            assert np.allclose(par.solve(u), w_ref, atol=1e-9)

    def test_concurrent_solves_share_factorization(self):
        """solve() is read-only on the factors: concurrent solves agree."""
        X = RNG.standard_normal((512, 4))
        h = build_hmatrix(
            X,
            GaussianKernel(bandwidth=2.0),
            tree_config=TreeConfig(leaf_size=64, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-7, max_rank=48, num_samples=128, num_neighbors=0, seed=2
            ),
        )
        fact = factorize(h, 0.5)
        us = [RNG.standard_normal(512) for _ in range(6)]
        expected = [fact.solve(u) for u in us]
        results = [None] * 6

        def work(i):
            results[i] = fact.solve(us[i])

        threads = [threading.Thread(target=work, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for got, want in zip(results, expected):
            assert np.array_equal(got, want)

    def test_concurrent_low_storage_solves_serialized(self):
        """Low-storage solves mutate the P^ cache; the solve lock must
        keep concurrent callers correct."""
        X = RNG.standard_normal((512, 4))
        h = build_hmatrix(
            X,
            GaussianKernel(bandwidth=2.0),
            tree_config=TreeConfig(leaf_size=32, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-7, max_rank=32, num_samples=128, num_neighbors=0, seed=2
            ),
        )
        fact = factorize(h, 0.5, SolverConfig(storage="low"))
        us = [RNG.standard_normal(512) for _ in range(6)]
        expected = [fact.solve(u) for u in us]
        results = [None] * 6

        def work(i):
            results[i] = fact.solve(us[i])

        threads = [threading.Thread(target=work, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for got, want in zip(results, expected):
            assert np.array_equal(got, want)

    def test_hmatrix_cache_single_instance_under_races(self):
        """Lazy caches must resolve to one object per key under threads."""
        X = RNG.standard_normal((256, 3))
        h = build_hmatrix(
            X,
            GaussianKernel(bandwidth=2.0),
            tree_config=TreeConfig(leaf_size=32, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-6, max_rank=32, num_samples=96, num_neighbors=0, seed=2
            ),
        )
        leaf = h.tree.leaves()[0]
        out = []

        def work():
            out.append(id(h.leaf_block(leaf)))

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(out)) == 1
