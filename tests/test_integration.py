"""Cross-module integration tests at moderate scale.

These exercise the whole pipeline the way the benchmarks do: dataset
generator -> tree -> skeletons -> factorization -> solve/learning, plus
the complexity relationships the paper claims (flop counts rather than
wall clock, so they are robust on any machine).
"""

import numpy as np
import pytest

from repro import FastKernelSolver, GaussianKernel
from repro.config import GMRESConfig, SkeletonConfig, SolverConfig, TreeConfig
from repro.datasets import load_dataset, normal_embedded
from repro.hmatrix import build_hmatrix
from repro.parallel import distributed_factorize, distributed_solve
from repro.solvers import factorize, gmres
from repro.util.flops import FlopCounter


class TestEndToEnd:
    def test_normal_dataset_pipeline(self):
        X = normal_embedded(2048, ambient_dim=64, intrinsic_dim=6, seed=0)
        solver = FastKernelSolver(
            GaussianKernel(bandwidth=4.0),
            tree_config=TreeConfig(leaf_size=128, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-5, max_rank=128, num_samples=256, num_neighbors=16, seed=2
            ),
        )
        solver.fit(X)
        solver.factorize(1.0)
        u = np.random.default_rng(3).standard_normal(2048)
        w, info = solver.solve_with_info(u)
        assert info.residual < 1e-9
        # sampled skeletonization at this budget: a few percent accuracy.
        assert solver.approximation_error(4) < 0.15

    def test_lambda_sweep_shares_skeletons(self):
        """The cross-validation workload: one fit, many factorizations."""
        X = normal_embedded(1024, seed=1)
        solver = FastKernelSolver(
            GaussianKernel(bandwidth=4.0),
            tree_config=TreeConfig(leaf_size=64, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-5, max_rank=64, num_samples=192, num_neighbors=8, seed=2
            ),
        )
        solver.fit(X)
        u = np.random.default_rng(0).standard_normal(1024)
        for lam in (10.0, 1.0, 0.1):
            solver.factorize(lam)
            w = solver.solve(u)
            assert solver.residual(u, w) < 1e-8, lam

    def test_hybrid_beats_unpreconditioned_gmres(self):
        """Figure 5's claim: the hybrid solve converges in far fewer
        matvec-equivalents than plain GMRES on lambda*I + K~."""
        ds = load_dataset("susy", 1024, seed=0)
        kernel = GaussianKernel(bandwidth=1.0)
        h = build_hmatrix(
            ds.X_train,
            kernel,
            tree_config=TreeConfig(leaf_size=64, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-6, max_rank=96, num_samples=256, num_neighbors=16, seed=2,
                level_restriction=2,
            ),
        )
        lam = 0.005  # small lambda: ill-conditioned, GMRES struggles
        u = np.random.default_rng(1).standard_normal(1024)

        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            plain = gmres(
                lambda v: h.regularized_matvec(lam, v),
                u,
                GMRESConfig(tol=1e-9, max_iters=60),
            )
            fact = factorize(
                h, lam,
                SolverConfig(method="hybrid", gmres=GMRESConfig(tol=1e-9, max_iters=400)),
            )
            w = fact.solve(u)
        hybrid_res = fact.residual(u, w)
        assert hybrid_res < 1e-7
        # plain GMRES stalls on this ill-conditioned system while the
        # hybrid (preconditioned by the partial factorization) converges.
        assert plain.final_residual > 1e4 * hybrid_res

    def test_distributed_pipeline_on_dataset(self):
        ds = load_dataset("covtype", 1024, seed=0)
        kernel = GaussianKernel(bandwidth=1.5)
        h = build_hmatrix(
            ds.X_train,
            kernel,
            tree_config=TreeConfig(leaf_size=64, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-5, max_rank=64, num_samples=192, num_neighbors=8, seed=2
            ),
        )
        u = np.asarray(ds.y_train, dtype=np.float64)
        serial = factorize(h, 0.3).solve(u)
        dist = distributed_factorize(h, 0.3, 4)
        w, _ = distributed_solve(dist, u)
        assert np.abs(w - serial).max() < 1e-9


class TestComplexityShape:
    """Flop-count versions of the paper's complexity claims."""

    def _factor_flops(self, n, method, leaf=32, rank=16):
        X = normal_embedded(n, ambient_dim=16, intrinsic_dim=4, seed=5)
        h = build_hmatrix(
            X,
            GaussianKernel(bandwidth=4.0),
            tree_config=TreeConfig(leaf_size=leaf, seed=1),
            skeleton_config=SkeletonConfig(
                rank=rank, num_samples=96, num_neighbors=0, seed=2
            ),
        )
        with FlopCounter() as fc:
            factorize(h, 1.0, SolverConfig(method=method, check_stability=False))
        return fc.flops

    def test_nlogn_growth_rate(self):
        """Doubling N should grow factorization flops ~2x (log factor is
        mild), clearly below the ~4x of a quadratic method."""
        f1 = self._factor_flops(1024, "nlogn")
        f2 = self._factor_flops(2048, "nlogn")
        ratio = f2 / f1
        assert 1.7 < ratio < 3.0, ratio

    def test_nlog2n_slower_and_gap_grows(self):
        gaps = []
        for n in (1024, 4096):
            fn = self._factor_flops(n, "nlogn")
            fb = self._factor_flops(n, "nlog2n")
            gaps.append(fb / fn)
            assert fb > fn
        # the [36] baseline's extra log factor grows with N.
        assert gaps[1] > gaps[0]

    def test_solve_cheaper_than_factorize(self):
        X = normal_embedded(2048, ambient_dim=16, intrinsic_dim=4, seed=5)
        h = build_hmatrix(
            X,
            GaussianKernel(bandwidth=4.0),
            tree_config=TreeConfig(leaf_size=32, seed=1),
            skeleton_config=SkeletonConfig(
                rank=16, num_samples=96, num_neighbors=0, seed=2
            ),
        )
        with FlopCounter() as ff:
            fact = factorize(h, 1.0, SolverConfig(check_stability=False))
        u = np.random.default_rng(0).standard_normal(2048)
        with FlopCounter() as fs:
            fact.solve(u)
        assert fs.flops < ff.flops / 5
