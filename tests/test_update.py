"""Incremental updates (insert/delete, lambda/bandwidth sweeps) vs rebuilds.

ISSUE 10 acceptance: after inserting 1% clustered points into N=4096,
``update()`` must match a from-scratch rebuild to 1e-10 while
refactorizing fewer than 25% of the nodes.  The wide-bandwidth /
large-sample recipe below is what makes 1e-10 achievable — the ASKIT
approximation error, not the update machinery, is the accuracy floor.
"""

import numpy as np
import pytest

from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.core.solver import FastKernelSolver
from repro.exceptions import CheckpointError, ConfigurationError
from repro.kernels import GaussianKernel, MaternKernel
from repro.obs import registry
from repro.resilience.checkpoint import Checkpoint

RNG = np.random.default_rng(42)


def make_solver(
    X,
    *,
    bandwidth=8.0,
    num_samples=2048,
    solver_config=None,
    fit=True,
):
    solver = FastKernelSolver(
        GaussianKernel(bandwidth=bandwidth),
        tree_config=TreeConfig(leaf_size=64, seed=1),
        skeleton_config=SkeletonConfig(
            tau=1e-12, num_samples=num_samples, num_neighbors=64, seed=2
        ),
        solver_config=solver_config or SolverConfig(),
    )
    if fit:
        solver.fit(X)
    return solver


def clustered_inserts(X, k, scale=0.02, seed=7):
    """k new points huddled around one existing point: dirties few leaves."""
    rng = np.random.default_rng(seed)
    return X[7] + scale * rng.standard_normal((k, X.shape[1]))


def rel_err(w, w_ref):
    return np.abs(w - w_ref).max() / max(1.0, np.abs(w_ref).max())


# ---------------------------------------------------------------------------
# acceptance-scale parity (the ISSUE's headline numbers)
# ---------------------------------------------------------------------------
class TestAcceptanceParity:
    def test_insert_one_percent_clustered(self):
        n, lam = 4096, 5.0
        X = RNG.standard_normal((n, 4))
        Xi = clustered_inserts(X, n // 100)
        u = RNG.standard_normal(n + len(Xi))

        solver = make_solver(X)
        solver.factorize(lam)
        before = registry().total("update.nodes_refactored")
        solver.update(X_insert=Xi)
        report = solver.last_update

        fresh = make_solver(np.concatenate([X, Xi]))
        fresh.factorize(lam)

        assert report.mode == "incremental"
        assert not report.full_rebuild
        assert report.n_inserted == len(Xi)
        assert solver.n_points == n + len(Xi)
        # < 25% of the nodes touched, and the counter agrees with the report
        assert report.nodes_refactored < 0.25 * report.nodes_total
        assert report.nodes_reused > 0
        delta = registry().total("update.nodes_refactored") - before
        assert delta == report.nodes_refactored
        # parity with the from-scratch rebuild
        assert rel_err(solver.solve(u), fresh.solve(u)) < 1e-10


# ---------------------------------------------------------------------------
# smaller-scale geometry updates
# ---------------------------------------------------------------------------
class TestGeometryUpdates:
    N = 1024
    LAM = 5.0

    @pytest.fixture()
    def X(self):
        return np.random.default_rng(3).standard_normal((self.N, 4))

    def factorized(self, X):
        solver = make_solver(X, num_samples=512)
        solver.factorize(self.LAM)
        return solver

    def test_delete_parity(self, X):
        solver = self.factorized(X)
        # drop a handful of scattered points
        delete = np.array([5, 17, 300, 301, 999])
        solver.update(X_delete=delete)
        assert solver.last_update.mode == "incremental"
        assert solver.last_update.n_deleted == len(delete)
        X_new = np.delete(X, delete, axis=0)
        assert solver.n_points == len(X_new)
        fresh = make_solver(X_new, num_samples=512)
        fresh.factorize(self.LAM)
        u = np.random.default_rng(4).standard_normal(len(X_new))
        assert rel_err(solver.solve(u), fresh.solve(u)) < 1e-9

    def test_mixed_insert_delete_order_contract(self, X):
        solver = self.factorized(X)
        Xi = clustered_inserts(X, 8)
        delete = np.array([0, 50, 1000])
        solver.update(X_insert=Xi, X_delete=delete)
        # new user order is concat(delete(X_old, X_delete), X_insert)
        expected = np.concatenate([np.delete(X, delete, axis=0), Xi])
        assert np.array_equal(solver._X, expected)
        fresh = make_solver(expected, num_samples=512)
        fresh.factorize(self.LAM)
        u = np.random.default_rng(5).standard_normal(len(expected))
        assert rel_err(solver.solve(u), fresh.solve(u)) < 1e-9

    def test_unfactorized_update_keeps_solver_unfactorized(self, X):
        solver = make_solver(X, num_samples=512)  # fitted, never factorized
        Xi = clustered_inserts(X, 4)
        solver.update(X_insert=Xi)
        assert solver.n_points == self.N + 4
        assert solver.factorization is None
        assert solver.last_update.nodes_total == 0
        solver.factorize(self.LAM)  # still usable afterwards
        solver.solve(np.ones(self.N + 4))

    def test_update_requires_fit(self):
        solver = make_solver(None, fit=False)
        with pytest.raises(Exception):
            solver.update(lam=1.0)

    def test_delete_out_of_range(self, X):
        solver = self.factorized(X)
        with pytest.raises(ConfigurationError):
            solver.update(X_delete=np.array([self.N]))

    def test_no_arguments_rejected(self, X):
        solver = self.factorized(X)
        with pytest.raises(ConfigurationError):
            solver.update()


# ---------------------------------------------------------------------------
# lambda refits and kernel-parameter sweeps
# ---------------------------------------------------------------------------
class TestLambdaAndKernelUpdates:
    @pytest.fixture(scope="class")
    def X(self):
        return np.random.default_rng(6).standard_normal((768, 4))

    def test_lambda_noop(self, X):
        solver = make_solver(X, num_samples=512)
        solver.factorize(2.0)
        fact = solver.factorization
        solver.update(lam=2.0)
        assert solver.last_update.mode == "noop"
        assert solver.factorization is fact  # untouched, not refactorized

    def test_lambda_refit_matches_fresh_factorize(self, X):
        solver = make_solver(X, num_samples=512)
        solver.factorize(2.0)
        solver.update(lam=0.5)
        assert solver.last_update.mode == "lambda"
        assert solver.factorization.lam == 0.5
        fresh = make_solver(X, num_samples=512)
        fresh.factorize(0.5)
        u = np.random.default_rng(7).standard_normal(len(X))
        # same deterministic pipeline, only the construction is shared
        assert rel_err(solver.solve(u), fresh.solve(u)) < 1e-12

    def test_lambda_sweep_never_solves_stale_factors(self, X):
        solver = make_solver(X, num_samples=512)
        solver.factorize(1.0)
        u = np.random.default_rng(8).standard_normal(len(X))
        for lam in [0.1, 1.0, 10.0]:
            solver.update(lam=lam)
            assert solver.factorization.lam == lam
            fresh = make_solver(X, num_samples=512)
            fresh.factorize(lam)
            assert rel_err(solver.solve(u), fresh.solve(u)) < 1e-12

    def test_bandwidth_sweep(self, X):
        solver = make_solver(X, num_samples=512, bandwidth=8.0)
        solver.factorize(2.0)
        solver.update(kernel_params={"bandwidth": 6.0})
        report = solver.last_update
        assert report.mode == "kernel"
        assert report.kernel_params == {"bandwidth": 6.0}
        assert solver.kernel.bandwidth == 6.0
        fresh = make_solver(X, num_samples=512, bandwidth=6.0)
        fresh.factorize(2.0)
        u = np.random.default_rng(9).standard_normal(len(X))
        # frozen skeleton structure + LS-refit projections: looser parity
        assert rel_err(solver.solve(u), fresh.solve(u)) < 1e-4

    def test_kernel_params_validated(self, X):
        solver = make_solver(X, num_samples=512)
        solver.factorize(1.0)
        with pytest.raises(ConfigurationError, match="no parameter"):
            solver.update(kernel_params={"bandwith": 1.0})

    def test_kernel_params_exclusive_with_geometry(self, X):
        solver = make_solver(X, num_samples=512)
        solver.factorize(1.0)
        with pytest.raises(ConfigurationError, match="cannot be combined"):
            solver.update(
                X_insert=np.zeros((1, 4)), kernel_params={"bandwidth": 2.0}
            )

    def test_generic_kernel_rebuild(self):
        """kernel_params works for any kernel via introspection."""
        X = np.random.default_rng(10).standard_normal((384, 3))
        solver = FastKernelSolver(
            MaternKernel(bandwidth=4.0, nu=1.5),
            tree_config=TreeConfig(leaf_size=48, seed=1),
            skeleton_config=SkeletonConfig(
                tau=1e-8, num_samples=192, num_neighbors=16, seed=2
            ),
        )
        solver.fit(X)
        solver.factorize(1.0)
        solver.update(kernel_params={"nu": 2.5})
        assert solver.kernel.nu == 2.5
        assert solver.kernel.bandwidth == 4.0  # untouched params carried over
        solver.solve(np.ones(len(X)))


# ---------------------------------------------------------------------------
# full-rebuild fallbacks
# ---------------------------------------------------------------------------
class TestRebuildFallbacks:
    @pytest.fixture()
    def X(self):
        return np.random.default_rng(11).standard_normal((512, 4))

    def test_dirty_fraction_threshold_forces_rebuild(self, X):
        cfg = SolverConfig(update_rebuild_threshold=0.01)
        solver = make_solver(X, num_samples=256, solver_config=cfg)
        solver.factorize(2.0)
        before = registry().total("update.full_rebuilds")
        solver.update(X_insert=clustered_inserts(X, 32))
        report = solver.last_update
        assert report.mode == "rebuild"
        assert report.full_rebuild
        assert report.nodes_refactored == report.nodes_total > 0
        assert registry().total("update.full_rebuilds") == before + 1
        # the rebuilt solver is a from-scratch fit: exact parity
        fresh = make_solver(
            np.concatenate([X, clustered_inserts(X, 32)]), num_samples=256
        )
        fresh.factorize(2.0)
        u = np.random.default_rng(12).standard_normal(solver.n_points)
        assert rel_err(solver.solve(u), fresh.solve(u)) < 1e-12

    def test_unroutable_tree_falls_back(self, X):
        solver = make_solver(X, num_samples=256)
        solver.factorize(2.0)
        # simulate a tree unpickled from a pre-routing checkpoint
        solver.hmatrix.tree.splits = {}
        assert not solver.hmatrix.tree.has_routing
        solver.update(X_insert=clustered_inserts(X, 4))
        assert solver.last_update.mode == "rebuild"
        assert solver.n_points == len(X) + 4

    def test_emptied_leaf_falls_back(self, X):
        solver = make_solver(X, num_samples=256)
        solver.factorize(2.0)
        tree = solver.hmatrix.tree
        leaf = tree.leaf_of_position(0)
        users = np.sort(tree.perm[leaf.lo : leaf.hi])
        solver.update(X_delete=users)
        assert solver.last_update.mode == "rebuild"
        assert solver.n_points == len(X) - len(users)

    def test_threshold_config_validated(self):
        with pytest.raises(ConfigurationError):
            SolverConfig(update_rebuild_threshold=0.0)
        with pytest.raises(ConfigurationError):
            SolverConfig(update_rebuild_threshold=1.5)

    def test_threshold_not_in_fingerprint(self, X):
        a = make_solver(X, num_samples=256)
        b = make_solver(
            X,
            num_samples=256,
            solver_config=SolverConfig(update_rebuild_threshold=0.5),
        )
        assert a.fingerprint() == b.fingerprint()


# ---------------------------------------------------------------------------
# fingerprints and checkpoints across updates
# ---------------------------------------------------------------------------
class TestFingerprintAndCheckpoint:
    @pytest.fixture()
    def X(self):
        return np.random.default_rng(13).standard_normal((512, 4))

    def test_fingerprint_tracks_data_mutation(self, X):
        solver = make_solver(X, num_samples=256)
        solver.factorize(1.0)
        fp0 = solver.fingerprint()
        solver.update(lam=2.0)
        assert solver.fingerprint() == fp0  # lambda is not part of the data
        solver.update(X_insert=clustered_inserts(X, 4))
        fp1 = solver.fingerprint()
        assert fp1 != fp0
        solver.update(X_delete=np.array([0]))
        assert solver.fingerprint() not in (fp0, fp1)

    def test_checkpoint_rewritten_after_update(self, X, tmp_path):
        solver = make_solver(X, num_samples=256)
        solver.factorize(1.0)
        solver.save_checkpoint(str(tmp_path))
        cfg = solver.solver_config
        solver.solver_config = cfg.__class__(
            **{**cfg.__dict__, "resilience": cfg.resilience.__class__(
                **{**cfg.resilience.__dict__, "checkpoint_dir": str(tmp_path)}
            )}
        )
        solver.update(X_insert=clustered_inserts(X, 4))
        resumed = FastKernelSolver.resume(str(tmp_path))
        assert resumed.n_points == solver.n_points
        u = np.random.default_rng(14).standard_normal(solver.n_points)
        assert np.array_equal(resumed.solve(u), solver.solve(u))

    def test_resume_rejects_stale_skeletons(self, X, tmp_path):
        """Point-count mismatch between payloads → typed CheckpointError."""
        solver = make_solver(X, num_samples=256)
        solver.factorize(1.0)
        solver.save_checkpoint(str(tmp_path))
        # simulate a crash between mutating the model and re-checkpointing:
        # the manifest/solver payload still validate, but the skeletons
        # belong to a smaller point set.
        small = make_solver(X[: len(X) // 2], num_samples=128)
        cp = Checkpoint(
            str(tmp_path), fingerprint=solver._fingerprint(), mode="write"
        )
        cp.save("skeletons", small.hmatrix)
        with pytest.raises(CheckpointError, match="updated without"):
            FastKernelSolver.resume(str(tmp_path))
