"""Gaussian-process regression on the fast solver."""

import numpy as np
import pytest

from repro.config import SkeletonConfig, SolverConfig, TreeConfig
from repro.exceptions import NotFactorizedError
from repro.kernels import GaussianKernel
from repro.learning import GaussianProcessRegressor

RNG = np.random.default_rng(22)

TREE = TreeConfig(leaf_size=64, seed=1)
SKEL = SkeletonConfig(tau=1e-8, max_rank=96, num_samples=256, num_neighbors=8, seed=2)


@pytest.fixture(scope="module")
def gp_problem():
    X = RNG.uniform(-2, 2, size=(600, 2))
    f = np.sin(2 * X[:, 0]) * np.cos(X[:, 1])
    y = f + 0.05 * RNG.standard_normal(600)
    gp = GaussianProcessRegressor(
        GaussianKernel(bandwidth=0.7), noise=0.05,
        tree_config=TREE, skeleton_config=SKEL,
    ).fit(X, y)
    return X, y, gp


@pytest.fixture(scope="module")
def dense_reference(gp_problem):
    X, y, _ = gp_problem
    K = GaussianKernel(bandwidth=0.7)(X, X) + 0.05**2 * np.eye(len(X))
    alpha = np.linalg.solve(K, y)
    _s, logdet = np.linalg.slogdet(K)
    lml = -0.5 * y @ alpha - 0.5 * logdet - 0.5 * len(y) * np.log(2 * np.pi)
    return K, alpha, lml


class TestPrediction:
    def test_mean_accuracy(self, gp_problem):
        _, _, gp = gp_problem
        Xq = RNG.uniform(-1.8, 1.8, size=(80, 2))
        fq = np.sin(2 * Xq[:, 0]) * np.cos(Xq[:, 1])
        res = gp.predict(Xq)
        rms = np.sqrt(np.mean((res.mean - fq) ** 2))
        assert rms < 0.1
        assert res.variance is None

    def test_variance_matches_dense(self, gp_problem, dense_reference):
        X, _, gp = gp_problem
        K, _, _ = dense_reference
        Xq = RNG.uniform(-1.5, 1.5, size=(10, 2))
        res = gp.predict(Xq, return_variance=True)
        Kxs = GaussianKernel(bandwidth=0.7)(X, Xq)
        v_ref = 1.0 - np.einsum("ij,ij->j", Kxs, np.linalg.solve(K, Kxs))
        assert np.allclose(res.variance, v_ref, atol=1e-5)

    def test_variance_nonnegative_and_shrinks_near_data(self, gp_problem):
        X, _, gp = gp_problem
        near = X[:5] + 1e-3
        far = np.full((5, 2), 10.0)
        v_near = gp.predict(near, return_variance=True).variance
        v_far = gp.predict(far, return_variance=True).variance
        assert (v_near >= 0).all() and (v_far >= 0).all()
        assert v_near.max() < v_far.min()
        assert np.allclose(v_far, 1.0, atol=1e-3)  # prior variance far away

    def test_mean_matches_dense(self, gp_problem, dense_reference):
        X, _, gp = gp_problem
        _, alpha, _ = dense_reference
        Xq = RNG.uniform(-1.5, 1.5, size=(20, 2))
        Kq = GaussianKernel(bandwidth=0.7)(Xq, X)
        assert np.allclose(gp.predict(Xq).mean, Kq @ alpha, atol=1e-4)


class TestLikelihood:
    def test_lml_matches_dense(self, gp_problem, dense_reference):
        _, _, gp = gp_problem
        _, _, lml_ref = dense_reference
        assert gp.log_marginal_likelihood() == pytest.approx(lml_ref, abs=0.1)

    def test_select_noise_prefers_truth(self, gp_problem):
        X, y, _ = gp_problem
        gp = GaussianProcessRegressor(
            GaussianKernel(bandwidth=0.7), noise=1.0,
            tree_config=TREE, skeleton_config=SKEL,
        ).fit(X, y)
        best = gp.select_noise([0.005, 0.05, 0.5])
        assert best == 0.05  # the generating noise level

    def test_lml_requires_direct_method(self):
        X = RNG.uniform(-1, 1, size=(300, 2))
        y = np.sin(X[:, 0])
        gp = GaussianProcessRegressor(
            GaussianKernel(bandwidth=0.5), noise=0.1,
            tree_config=TREE, skeleton_config=SKEL,
            solver_config=SolverConfig(method="hybrid"),
        ).fit(X, y)
        with pytest.raises(NotFactorizedError):
            gp.log_marginal_likelihood()


class TestLifecycle:
    def test_predict_before_fit(self):
        gp = GaussianProcessRegressor(GaussianKernel(), noise=0.1)
        with pytest.raises(NotFactorizedError):
            gp.predict(np.zeros((2, 2)))
        with pytest.raises(NotFactorizedError):
            gp.log_marginal_likelihood()

    def test_rejects_bad_noise(self):
        with pytest.raises(ValueError):
            GaussianProcessRegressor(GaussianKernel(), noise=0.0)

    def test_multioutput_matches_columnwise(self):
        X = RNG.standard_normal((60, 2))
        Y = RNG.standard_normal((60, 3))
        gp = GaussianProcessRegressor(
            GaussianKernel(bandwidth=0.9), noise=0.2,
            tree_config=TREE, skeleton_config=SKEL,
        ).fit(X, Y)
        assert gp.alpha.shape == (60, 3)
        Xq = RNG.standard_normal((7, 2))
        mean = gp.predict(Xq).mean
        assert mean.shape == (7, 3)
        lml_cols = []
        for j in range(3):
            gp_j = GaussianProcessRegressor(
                GaussianKernel(bandwidth=0.9), noise=0.2,
                tree_config=TREE, skeleton_config=SKEL,
            ).fit(X, Y[:, j])
            np.testing.assert_allclose(
                mean[:, j], gp_j.predict(Xq).mean, rtol=1e-8, atol=1e-10
            )
            lml_cols.append(gp_j.log_marginal_likelihood())
        np.testing.assert_allclose(
            gp.log_marginal_likelihood(), sum(lml_cols), rtol=1e-8
        )

    def test_select_noise_rejects_nonpositive(self, gp_problem):
        X, y, _ = gp_problem
        gp = GaussianProcessRegressor(
            GaussianKernel(bandwidth=0.7), noise=0.1,
            tree_config=TREE, skeleton_config=SKEL,
        ).fit(X, y)
        with pytest.raises(ValueError):
            gp.select_noise([0.1, -1.0])
