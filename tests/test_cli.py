"""Command-line interface."""

import pytest

from repro.cli import (
    EXIT_CHECKPOINT,
    EXIT_DEADLINE,
    EXIT_OK,
    EXIT_USAGE,
    build_parser,
    main,
)

SMALL = ["--dataset", "normal", "--n", "512", "--bandwidth", "4", "--lam", "1",
         "--leaf", "64", "--smax", "32", "--neighbors", "0"]


class TestParser:
    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.command == "solve"
        assert args.dataset == "normal"
        assert args.method == "nlogn"

    def test_classify_args(self):
        args = build_parser().parse_args(
            ["classify", "--dataset", "susy", "--n", "512"]
        )
        assert args.dataset == "susy" and args.n == 512

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--dataset", "imagenet"])

    def test_rejects_missing_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "covtype" in out and "paper Acc" in out

    def test_solve_small(self, capsys):
        code = main(
            ["solve", "--dataset", "normal", "--n", "512", "--bandwidth", "4",
             "--lam", "1", "--leaf", "64", "--smax", "32", "--neighbors", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "residual" in out and "factorize" in out

    def test_solve_hybrid_small(self, capsys):
        code = main(
            ["solve", "--dataset", "susy", "--n", "512", "--method", "hybrid",
             "--level", "2", "--bandwidth", "1", "--lam", "1",
             "--leaf", "64", "--smax", "32", "--neighbors", "0"]
        )
        assert code == 0
        assert "gmres_iters" in capsys.readouterr().out

    def test_classify_small(self, capsys):
        code = main(
            ["classify", "--dataset", "covtype", "--n", "512",
             "--bandwidth", "1.0", "--lam", "0.3",
             "--leaf", "64", "--smax", "48", "--neighbors", "8"]
        )
        assert code == 0
        assert "test accuracy" in capsys.readouterr().out

    def test_classify_unlabeled_dataset_fails(self, capsys):
        code = main(["classify", "--dataset", "mri", "--n", "256"])
        assert code == 2
        assert "no labels" in capsys.readouterr().err

    def test_trace_renders_span_tree(self, capsys):
        code = main(
            ["trace", "--dataset", "normal", "--n", "512", "--bandwidth", "4",
             "--lam", "1", "--leaf", "64", "--smax", "32", "--neighbors", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "== span tree" in out
        for stage in ("tree", "skeletonize", "factorize", "solve"):
            assert stage in out

    def test_solve_trace_out_writes_blob(self, tmp_path, capsys):
        import json

        path = tmp_path / "run.json"
        code = main(
            ["solve", "--dataset", "normal", "--n", "512", "--bandwidth", "4",
             "--lam", "1", "--leaf", "64", "--smax", "32", "--neighbors", "0",
             "--trace-out", str(path)]
        )
        assert code == 0
        blob = json.loads(path.read_text())
        assert blob["schema"] == "repro.telemetry/v1"
        assert "stages" in blob and "spans" in blob and "metrics" in blob


class TestExitCodes:
    """Shell callers tell failure classes apart without parsing stderr."""

    def test_usage_error_is_2(self, capsys):
        code = main(["solve", *SMALL, "--leaf", "-5"])
        assert code == EXIT_USAGE
        assert "usage error" in capsys.readouterr().err

    def test_deadline_with_degrade_off_is_4(self, capsys):
        code = main(["solve", *SMALL, "--work-budget", "3", "--no-degrade"])
        assert code == EXIT_DEADLINE
        assert "deadline exceeded" in capsys.readouterr().err

    def test_tiny_budget_degrades_to_exit_0(self, capsys):
        code = main(["solve", *SMALL, "--work-budget", "3"])
        assert code == EXIT_OK
        assert "degraded" in capsys.readouterr().out

    def test_missing_checkpoint_is_5(self, tmp_path, capsys):
        code = main(["checkpoint", "verify", str(tmp_path / "nothing")])
        assert code == EXIT_CHECKPOINT
        assert "checkpoint error" in capsys.readouterr().err


class TestCheckpointCommands:
    def test_solve_writes_then_inspect_and_verify(self, tmp_path, capsys):
        ckdir = tmp_path / "cp"
        assert main(["solve", *SMALL, "--checkpoint-dir", str(ckdir)]) == EXIT_OK
        capsys.readouterr()
        assert main(["checkpoint", "inspect", str(ckdir)]) == EXIT_OK
        out = capsys.readouterr().out
        assert "repro.checkpoint/v1" in out and "skeletons" in out
        assert main(["checkpoint", "verify", str(ckdir)]) == EXIT_OK
        assert "intact" in capsys.readouterr().out

    def test_inspect_json(self, tmp_path, capsys):
        import json

        ckdir = tmp_path / "cp"
        assert main(["solve", *SMALL, "--checkpoint-dir", str(ckdir)]) == EXIT_OK
        capsys.readouterr()
        assert main(["checkpoint", "inspect", str(ckdir), "--json"]) == EXIT_OK
        desc = json.loads(capsys.readouterr().out)
        assert desc["schema"] == "repro.checkpoint/v1"
        assert all(e["intact"] for e in desc["payloads"].values())

    def test_verify_flags_corruption(self, tmp_path, capsys):
        ckdir = tmp_path / "cp"
        assert main(["solve", *SMALL, "--checkpoint-dir", str(ckdir)]) == EXIT_OK
        pkl = next(p for p in ckdir.iterdir() if p.suffix == ".pkl")
        pkl.write_bytes(b"garbage")
        capsys.readouterr()
        assert main(["checkpoint", "verify", str(ckdir)]) == EXIT_CHECKPOINT
        assert "corrupt" in capsys.readouterr().err

    def test_solve_deadline_flag_roomy(self, capsys):
        code = main(["solve", *SMALL, "--deadline", "3600"])
        assert code == EXIT_OK
        assert "residual" in capsys.readouterr().out


class TestUpdateCommand:
    def _checkpointed_solver(self, tmp_path):
        import numpy as np

        from repro import FastKernelSolver, GaussianKernel
        from repro.config import SkeletonConfig, TreeConfig

        X = np.random.default_rng(0).standard_normal((256, 3))
        solver = FastKernelSolver(
            GaussianKernel(bandwidth=2.0),
            tree_config=TreeConfig(leaf_size=64, seed=0),
            skeleton_config=SkeletonConfig(
                tau=1e-6, max_rank=48, num_samples=96, num_neighbors=0, seed=0
            ),
        )
        solver.fit(X)
        solver.factorize(1.0)
        ckpt = str(tmp_path / "ckpt")
        solver.save_checkpoint(ckpt)
        return X, ckpt

    def test_offline_insert_rechckpoints(self, tmp_path, capsys):
        import json

        import numpy as np

        from repro import FastKernelSolver

        X, ckpt = self._checkpointed_solver(tmp_path)
        Xi = X[7] + 0.02 * np.random.default_rng(1).standard_normal((4, 3))
        npy = tmp_path / "insert.npy"
        np.save(npy, Xi)
        code = main(["update", "--checkpoint", ckpt,
                     "--insert", str(npy), "--json"])
        assert code == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["report"]["n_inserted"] == 4
        assert payload["previous"] != payload["model"]
        # the directory was re-checkpointed under the new fingerprint
        resumed = FastKernelSolver.resume(ckpt)
        assert resumed.n_points == 260
        assert resumed.fingerprint() == payload["model"]

    def test_offline_lambda_refit(self, tmp_path, capsys):
        import json

        _, ckpt = self._checkpointed_solver(tmp_path)
        code = main(["update", "--checkpoint", ckpt, "--lam", "0.25", "--json"])
        assert code == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["report"]["mode"] == "lambda"
        assert payload["previous"] == payload["model"]

    def test_update_usage_errors(self, tmp_path, capsys):
        # no update arguments at all
        assert main(["update", "--checkpoint", "x"]) == EXIT_USAGE
        # daemon and offline modes are exclusive
        assert main(["update", "--checkpoint", "x", "--host", "h",
                     "--port", "1", "--lam", "2"]) == EXIT_USAGE
        # half a daemon endpoint
        assert main(["update", "--host", "h", "--lam", "2"]) == EXIT_USAGE
        # no target at all
        assert main(["update", "--lam", "2"]) == EXIT_USAGE
        capsys.readouterr()
