"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_solve_defaults(self):
        args = build_parser().parse_args(["solve"])
        assert args.command == "solve"
        assert args.dataset == "normal"
        assert args.method == "nlogn"

    def test_classify_args(self):
        args = build_parser().parse_args(
            ["classify", "--dataset", "susy", "--n", "512"]
        )
        assert args.dataset == "susy" and args.n == 512

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["solve", "--dataset", "imagenet"])

    def test_rejects_missing_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "covtype" in out and "paper Acc" in out

    def test_solve_small(self, capsys):
        code = main(
            ["solve", "--dataset", "normal", "--n", "512", "--bandwidth", "4",
             "--lam", "1", "--leaf", "64", "--smax", "32", "--neighbors", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "residual" in out and "factorize" in out

    def test_solve_hybrid_small(self, capsys):
        code = main(
            ["solve", "--dataset", "susy", "--n", "512", "--method", "hybrid",
             "--level", "2", "--bandwidth", "1", "--lam", "1",
             "--leaf", "64", "--smax", "32", "--neighbors", "0"]
        )
        assert code == 0
        assert "gmres_iters" in capsys.readouterr().out

    def test_classify_small(self, capsys):
        code = main(
            ["classify", "--dataset", "covtype", "--n", "512",
             "--bandwidth", "1.0", "--lam", "0.3",
             "--leaf", "64", "--smax", "48", "--neighbors", "8"]
        )
        assert code == 0
        assert "test accuracy" in capsys.readouterr().out

    def test_classify_unlabeled_dataset_fails(self, capsys):
        code = main(["classify", "--dataset", "mri", "--n", "256"])
        assert code == 2
        assert "no labels" in capsys.readouterr().err

    def test_trace_renders_span_tree(self, capsys):
        code = main(
            ["trace", "--dataset", "normal", "--n", "512", "--bandwidth", "4",
             "--lam", "1", "--leaf", "64", "--smax", "32", "--neighbors", "0"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "== span tree" in out
        for stage in ("tree", "skeletonize", "factorize", "solve"):
            assert stage in out

    def test_solve_trace_out_writes_blob(self, tmp_path, capsys):
        import json

        path = tmp_path / "run.json"
        code = main(
            ["solve", "--dataset", "normal", "--n", "512", "--bandwidth", "4",
             "--lam", "1", "--leaf", "64", "--smax", "32", "--neighbors", "0",
             "--trace-out", str(path)]
        )
        assert code == 0
        blob = json.loads(path.read_text())
        assert blob["schema"] == "repro.telemetry/v1"
        assert "stages" in blob and "spans" in blob and "metrics" in blob
